#!/usr/bin/env python
"""Explore the unroll-and-interleave transformation on real IR.

Prints the parallel representation of a small kernel before and after
thread and block coarsening, showing barrier merging, shared-memory
duplication, and the epilogue kernel — the machinery of §IV/§V of the
paper.

Run:  python examples/coarsening_explorer.py
"""

from repro.dialects import polygeist
from repro.frontend import ModuleGenerator, parse_translation_unit
from repro.ir import print_op
from repro.transforms import (block_coarsen, check_unroll_legality,
                              run_cleanup, thread_coarsen)
from repro.transforms.coarsen import block_parallels, thread_parallel
from repro.analysis import shared_bytes_per_block

SOURCE = r"""
__global__ void reverse(float *in, float *out) {
    __shared__ float tile[8];
    int t = threadIdx.x;
    int g = blockIdx.x * blockDim.x + t;
    tile[t] = in[g];
    __syncthreads();
    out[g] = tile[7 - t];
}
"""


def build():
    unit = parse_translation_unit(SOURCE)
    generator = ModuleGenerator(unit)
    generator.get_launch_wrapper("reverse", 1, (8,))
    run_cleanup(generator.module)
    wrapper = polygeist.find_gpu_wrappers(generator.module.op)[0]
    return generator.module, wrapper


def banner(title):
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main():
    module, wrapper = build()
    banner("ORIGINAL parallel representation (Fig. 2 of the paper)")
    print(print_op(wrapper))

    main_loop = block_parallels(wrapper)[0]
    print("\nlegality of unrolling the block loop:",
          check_unroll_legality(main_loop) or "LEGAL")
    print("shared memory per block: %d bytes" %
          shared_bytes_per_block(main_loop))

    # -- thread coarsening ---------------------------------------------------
    module, wrapper = build()
    thread_coarsen(wrapper, (2,))
    run_cleanup(module)
    banner("THREAD coarsening x2 — note: ONE barrier (merged, Fig. 10 "
           "left),\ncoalescing-friendly indexing t and t+4 (Fig. 11)")
    print(print_op(wrapper))

    # -- block coarsening ----------------------------------------------------
    module, wrapper = build()
    block_coarsen(wrapper, (2,))
    run_cleanup(module)
    banner("BLOCK coarsening x2 — TWO shared allocations (duplicated, "
           "§V-C),\nplus an EPILOGUE loop for grid remainders")
    print(print_op(wrapper))
    loops = block_parallels(wrapper)
    print("\nblock loops after coarsening: %d (main + %d epilogue)" %
          (len(loops), len(loops) - 1))
    print("shared memory per fused block: %d bytes" %
          shared_bytes_per_block(loops[0]))

    # -- an illegal case -----------------------------------------------------
    illegal = r"""
    __global__ void divergent(float *out) {
        __shared__ float s[8];
        if (blockIdx.x > 0) {
            s[threadIdx.x] = 1.0f;
            __syncthreads();
            out[blockIdx.x * 8 + threadIdx.x] = s[threadIdx.x];
        }
    }
    """
    unit = parse_translation_unit(illegal)
    generator = ModuleGenerator(unit)
    generator.get_launch_wrapper("divergent", 1, (8,))
    wrapper = polygeist.find_gpu_wrappers(generator.module.op)[0]
    loop = block_parallels(wrapper)[0]
    banner("LEGALITY (Fig. 10 right): barrier under block-dependent "
           "control flow")
    print("block coarsening legality:", check_unroll_legality(loop))
    print("thread coarsening legality:",
          check_unroll_legality(block_parallels(wrapper)[0],
                                trust_convergence=True) or
          "LEGAL (convergence guarantees uniformity across threads)")


if __name__ == "__main__":
    main()
