#!/usr/bin/env python
"""Reproduce the lud case study (Fig. 14): sweep block × thread coarsening
factors for the main lud kernel and print the speedup landscape.

Run:  python examples/autotune_lud.py        (a few minutes)
      python examples/autotune_lud.py quick  (coarser sweep, ~30 s)
"""

import sys

from repro.benchsuite.experiments import fig14_heatmap
from repro.targets import A100


def main():
    quick = len(sys.argv) > 1 and sys.argv[1] == "quick"
    totals = (1, 2, 4, 8) if quick else (1, 2, 4, 8, 16, 32)
    print("sweeping lud_internal on %s (totals %s)..." %
          (A100.name, list(totals)))
    heatmap = fig14_heatmap(arch=A100, totals=totals)

    print("\nspeedup over the uncoarsened kernel "
          "(rows: block total, cols: thread total):\n")
    header = "        " + "".join("t=%-7d" % t for t in totals)
    print(header)
    best = (None, 0.0)
    for block_total in totals:
        cells = []
        for thread_total in totals:
            value = heatmap.get((block_total, thread_total))
            if value is None:
                cells.append("  --    ")  # invalid (e.g. shared overflow)
            else:
                cells.append("%6.2fx " % value)
                if value > best[1]:
                    best = ((block_total, thread_total), value)
        print("b=%-4d  %s" % (block_total, "".join(cells)))

    print("\npeak: %.2fx at (block, thread) = %s" % (best[1], best[0]))
    print("\npaper shapes to compare against (§VII-B, Fig. 14):")
    print(" * block-only beats thread-only at the same factor")
    print(" * the peak needs BOTH kinds of coarsening")
    print(" * thread factors that break full warps (>= 16 for a "
          "256-thread block) fall off a cliff")
    print(" * large block factors exceed the shared-memory limit (--)")


if __name__ == "__main__":
    main()
