#!/usr/bin/env python
"""Quickstart: compile a CUDA kernel, run it on a simulated GPU, and let the
Polygeist-GPU pipeline retune its granularity.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import compile_cuda
from repro.runtime import GPURuntime
from repro.targets import A100

CUDA_SOURCE = r"""
// A tiled vector "blur": each block stages a tile in shared memory,
// synchronizes, and writes the 3-point average back out.
#define TILE 128

__global__ void blur(float *in, float *out, int n) {
    __shared__ float tile[TILE];
    int t = threadIdx.x;
    int g = blockIdx.x * blockDim.x + t;
    if (g >= n) return;
    tile[t] = in[g];
    __syncthreads();
    float left  = tile[max(t - 1, 0)];
    float mid   = tile[t];
    float right = tile[min(t + 1, TILE - 1)];
    out[g] = (left + mid + right) / 3.0f;
}
"""


def main():
    n = 1 << 16
    rng = np.random.default_rng(0)
    data = rng.random(n, dtype=np.float32)

    # 1. Compile. tier="polygeist" enables the paper's full pipeline:
    #    coarsening alternatives -> shared-memory/register pruning -> TDO.
    program = compile_cuda(CUDA_SOURCE, arch=A100, tier="polygeist")

    # 2. Allocate and transfer through the simulated runtime, which tracks
    #    composite time (kernel + PCIe) exactly like the paper's
    #    "composite measurements".
    runtime = GPURuntime(A100)
    d_in = runtime.to_device(data)
    d_out = runtime.malloc(n, np.float32)

    # 3. Launch: grid x block, CUDA-style.
    result = program.launch("blur", grid=n // 128, block=128,
                            args=[d_in, d_out, n], runtime=runtime)
    out = runtime.to_host(d_out)

    # 4. Check against numpy.
    tiles = data.reshape(-1, 128)
    left = np.concatenate([tiles[:, :1], tiles[:, :-1]], axis=1)
    right = np.concatenate([tiles[:, 1:], tiles[:, -1:]], axis=1)
    expected = ((left + tiles + right) / np.float32(3.0)).ravel()
    np.testing.assert_allclose(out, expected, rtol=1e-6)
    print("correctness: OK (matches numpy reference)")

    # 5. Inspect what the autotuner decided.
    print("\nsimulated kernel time: %.3e s" % result.kernel_seconds)
    print("composite (with transfers): %.3e s" % runtime.composite_seconds)
    for wrapper, outcome in program.tuning_outcomes.items():
        print("\nTDO for %s:" % wrapper)
        print("  selected: %s (%.3e s)" % (outcome.selected_desc,
                                           outcome.selected_time))
        for candidate in sorted(outcome.candidates,
                                key=lambda c: c.time_seconds)[:5]:
            marker = "*" if candidate.desc == outcome.selected_desc else " "
            print("  %s %-22s %.3e s" % (marker, candidate.desc,
                                         candidate.time_seconds))


if __name__ == "__main__":
    main()
