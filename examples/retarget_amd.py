#!/usr/bin/env python
"""Retarget a CUDA benchmark to AMD, two ways (§VII-D of the paper):

1. hipify + clang: source-to-source translation, counting the manual fixes
   a human must make;
2. Polygeist-GPU: the IR is target-agnostic — only the target flag changes —
   and the granularity autotuner re-specializes for the new GPU.

Also demonstrates the nw anomaly: its 136 bytes of shared memory per thread
trigger the AMD backend's LDS->global offload.

Run:  python examples/retarget_amd.py
"""

import numpy as np

from repro.benchsuite import get_benchmark, simulate_composite
from repro.benchsuite.base import verify_benchmark
from repro.targets import A4000, RX6800
from repro.translate import hipify, retarget_ease_report

#: a Rodinia-style file prelude: exactly the constructs that trip hipify
PRELUDE = """#include <cuda_runtime.h>
#include "helper_cuda.h"
#ifdef __CUDACC__
#define DEVICE_ONLY
#endif
"""


def main():
    bench = get_benchmark("nw")
    source = PRELUDE + bench.source

    print("=" * 72)
    print("ROUTE 1: hipify + clang")
    print("=" * 72)
    result = hipify(source)
    print("automatic rewrites:")
    for change in result.changes:
        print("  -", change)
    print("manual fixes REQUIRED before it compiles/works:")
    for fix in result.manual_fixes:
        print("  !", fix)

    print()
    print("=" * 72)
    print("ROUTE 2: Polygeist-GPU (IR-level retargeting)")
    print("=" * 72)
    report = retarget_ease_report("nw", source)
    print("manual source fixes required: %d (only a -target flag changes)"
          % report.polygeist_fix_count)

    # correctness on the AMD model
    outcome = verify_benchmark("nw", RX6800, tier="polygeist")
    print("nw on %s: %s (max err %.1e)" %
          (RX6800.name, "OK" if outcome.passed else "FAIL",
           outcome.max_error))

    print()
    print("=" * 72)
    print("PERFORMANCE PORTABILITY (Fig. 17 flavor)")
    print("=" * 72)
    for name in ("nw", "lud", "lavaMD"):
        nv = simulate_composite(name, A4000, tier="polygeist-noopt")
        amd = simulate_composite(name, RX6800, tier="polygeist-noopt")
        ratio = nv / amd
        notes = ""
        if name == "nw":
            notes = "  <- LDS offloaded to global on AMD (136 B/thread)"
        if get_benchmark(name).uses_double:
            notes = "  <- double precision favors RX6800"
        print("%-8s A4000 %.3e s   RX6800 %.3e s   (RX6800 is %.2fx)%s"
              % (name, nv, amd, ratio, notes))


if __name__ == "__main__":
    main()
