"""Tests for alternative code paths (multi-versioning, §VI)."""

import numpy as np
import pytest

from repro.dialects import polygeist
from repro.frontend import ModuleGenerator, parse_translation_unit
from repro.interpreter import MemoryBuffer, run_module
from repro.ir import F32, verify_module
from repro.transforms import (generate_coarsening_alternatives,
                              select_alternative)
from repro.transforms.alternatives import find_alternatives, \
    prune_alternatives

SOURCE = """
__global__ void k(float *in, float *out) {
    __shared__ float tile[8];
    int t = threadIdx.x;
    int g = blockIdx.x * blockDim.x + t;
    tile[t] = in[g] * 2.0f;
    __syncthreads();
    out[g] = tile[7 - t];
}
"""

DIVERGENT = """
__global__ void k(float *out) {
    __shared__ float s[8];
    if (blockIdx.x > 0) {
        s[threadIdx.x] = 1.0f;
        __syncthreads();
        out[blockIdx.x * 8 + threadIdx.x] = s[threadIdx.x];
    }
}
"""


def build(source=SOURCE):
    unit = parse_translation_unit(source)
    gen = ModuleGenerator(unit)
    name = gen.get_launch_wrapper("k", 1, (8,))
    wrapper = polygeist.find_gpu_wrappers(gen.module.op)[0]
    return gen.module, name, wrapper


CONFIGS = [
    {"block_total": 1, "thread_total": 1},
    {"block_total": 2, "thread_total": 1},
    {"block_total": 1, "thread_total": 2},
    {"block_total": 2, "thread_total": 2},
]


class TestGeneration:
    def test_regions_created(self):
        module, name, wrapper = build()
        report = generate_coarsening_alternatives(wrapper, CONFIGS)
        verify_module(module)
        assert report.op is not None
        assert len(report.op.regions) == 4
        assert len(polygeist.alternative_descs(report.op)) == 4
        assert not report.rejected

    def test_illegal_configs_rejected(self):
        module, name, wrapper = build(DIVERGENT)
        report = generate_coarsening_alternatives(wrapper, CONFIGS)
        # block coarsening configs are illegal for this kernel
        assert len(report.rejected) == 2
        assert len(report.alternatives) == 2

    def test_each_alternative_equivalent(self):
        rng = np.random.default_rng(5)
        data = rng.random(32, dtype=np.float32)

        module, name, wrapper = build()
        inp = MemoryBuffer((32,), F32, data=data)
        reference = MemoryBuffer((32,), F32)
        run_module(module, name, [4, inp, reference])

        module2, name2, wrapper2 = build()
        report = generate_coarsening_alternatives(wrapper2, CONFIGS)
        verify_module(module2)
        for index in range(len(report.op.regions)):
            inp2 = MemoryBuffer((32,), F32, data=data)
            out2 = MemoryBuffer((32,), F32)
            run_module(module2, name2, [4, inp2, out2],
                       alternative_selector=lambda op: index)
            np.testing.assert_array_equal(out2.array, reference.array,
                                          err_msg="alternative %d" % index)


class TestSelection:
    def test_select_splices_region(self):
        module, name, wrapper = build()
        report = generate_coarsening_alternatives(wrapper, CONFIGS)
        select_alternative(report.op, 3)
        verify_module(module)
        assert not find_alternatives(module.op)
        # the selected config (block 2, thread 2) is in place
        from repro.transforms.coarsen import block_parallels, \
            thread_parallel
        from repro.dialects import arith, scf
        mains = block_parallels(wrapper, include_epilogues=False)
        threads = thread_parallel(mains[0])
        ub = scf.parallel_upper_bounds(threads)[0]
        assert arith.constant_value(ub) == 4  # 8 / thread factor 2

    def test_selected_module_runs(self):
        module, name, wrapper = build()
        report = generate_coarsening_alternatives(wrapper, CONFIGS)
        select_alternative(report.op, 1)
        verify_module(module)
        inp = MemoryBuffer((32,), F32,
                           data=np.arange(32, dtype=np.float32))
        out = MemoryBuffer((32,), F32)
        run_module(module, name, [4, inp, out])
        expected = (np.arange(32).reshape(4, 8) * 2)[:, ::-1].ravel()
        np.testing.assert_array_equal(out.array,
                                      expected.astype(np.float32))

    def test_prune(self):
        module, name, wrapper = build()
        report = generate_coarsening_alternatives(wrapper, CONFIGS)
        prune_alternatives(report.op, [0, 2])
        verify_module(module)
        assert len(report.op.regions) == 2
        descs = polygeist.alternative_descs(report.op)
        assert len(descs) == 2

    def test_prune_all_rejected(self):
        module, name, wrapper = build()
        report = generate_coarsening_alternatives(wrapper, CONFIGS)
        with pytest.raises(ValueError):
            prune_alternatives(report.op, [])

    def test_out_of_range_selection(self):
        module, name, wrapper = build()
        report = generate_coarsening_alternatives(wrapper, CONFIGS)
        with pytest.raises(IndexError):
            select_alternative(report.op, 9)
