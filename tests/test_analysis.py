"""Tests for uniformity, affine, statistics, and shared-memory analyses."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (affine_of, is_uniform_in, kernel_statistics,
                            shared_bytes_per_block, stride_in)
from repro.dialects import arith, func, memref, polygeist, scf
from repro.frontend import ModuleGenerator, parse_translation_unit
from repro.ir import (Builder, F32, FunctionType, INDEX, MemRefType, Module,
                      verify_module)
from repro.transforms.coarsen import block_parallels, thread_parallel


def kernel_ir(source, kernel="k", block=(8,), grid_rank=1):
    unit = parse_translation_unit(source)
    gen = ModuleGenerator(unit)
    gen.get_launch_wrapper(kernel, grid_rank, block)
    verify_module(gen.module)
    wrapper = polygeist.find_gpu_wrappers(gen.module.op)[0]
    blocks = block_parallels(wrapper)[0]
    threads = thread_parallel(blocks)
    return gen.module, blocks, threads


@pytest.fixture
def builder_ctx():
    module = Module()
    b = Builder(module.body)
    f = func.func(b, "f", FunctionType((INDEX, INDEX), ()), ["a", "b"])
    return module, f, Builder(f.body_block())


class TestAffine:
    def test_linear_combination(self, builder_ctx):
        _, f, b = builder_ctx
        a, v = f.body_block().args
        c4 = arith.index_constant(b, 4)
        expr = arith.addi(b, arith.muli(b, a, c4), v)  # 4a + b
        form = affine_of(expr)
        assert form.coefficient(a) == 4
        assert form.coefficient(v) == 1
        assert form.const == 0

    def test_constants_fold(self, builder_ctx):
        _, f, b = builder_ctx
        c3 = arith.index_constant(b, 3)
        c5 = arith.index_constant(b, 5)
        expr = arith.muli(b, c3, c5)
        assert affine_of(expr).const == 15
        assert affine_of(expr).is_constant

    def test_subtraction_and_shift(self, builder_ctx):
        _, f, b = builder_ctx
        a, v = f.body_block().args
        c2 = arith.index_constant(b, 2)
        shifted = arith.binary(b, "arith.shli", a, c2)  # a * 4
        expr = arith.subi(b, shifted, v)
        form = affine_of(expr)
        assert form.coefficient(a) == 4
        assert form.coefficient(v) == -1

    def test_nonlinear_becomes_symbol(self, builder_ctx):
        _, f, b = builder_ctx
        a, v = f.body_block().args
        product = arith.muli(b, a, v)  # non-affine
        form = affine_of(product)
        assert form.coefficient(product) == 1
        assert len(form.terms) == 1

    def test_stride_in(self, builder_ctx):
        _, f, b = builder_ctx
        a, v = f.body_block().args
        c8 = arith.index_constant(b, 8)
        expr = arith.addi(b, arith.muli(b, v, c8), a)  # a + 8b
        assert stride_in(expr, a) == 1
        assert stride_in(expr, v) == 8

    def test_stride_unknown_when_nested(self, builder_ctx):
        _, f, b = builder_ctx
        a, v = f.body_block().args
        hidden = arith.muli(b, a, v)   # contains `a` opaquely
        expr = arith.addi(b, hidden, a)
        assert stride_in(expr, a) is None

    @given(st.integers(-20, 20), st.integers(-20, 20), st.integers(-8, 8))
    @settings(max_examples=40, deadline=None)
    def test_property_affine_matches_concrete(self, x, y, k):
        """affine_of must agree with concrete evaluation."""
        module = Module()
        b = Builder(module.body)
        f = func.func(b, "f", FunctionType((INDEX, INDEX), ()), ["a", "b"])
        fb = Builder(f.body_block())
        a, v = f.body_block().args
        ck = arith.index_constant(fb, k)
        c7 = arith.index_constant(fb, 7)
        # expr = (a * k) + (b - 7)
        expr = arith.addi(fb, arith.muli(fb, a, ck), arith.subi(fb, v, c7))
        form = affine_of(expr)
        concrete = form.const + form.coefficient(a) * x + \
            form.coefficient(v) * y
        assert concrete == x * k + (y - 7)


class TestUniformity:
    def test_iv_dependence_detected(self, builder_ctx):
        _, f, b = builder_ctx
        c0 = arith.index_constant(b, 0)
        c8 = arith.index_constant(b, 8)
        c1 = arith.index_constant(b, 1)
        par = scf.parallel(b, [c0], [c8], [c1], gpu_kind="threads")
        pb = Builder(par.body_block())
        iv = par.body_block().arg(0)
        derived = arith.addi(pb, iv, c1)
        unrelated = arith.addi(pb, c1, c1)
        scf.yield_(pb)
        assert not is_uniform_in(derived, [iv])
        assert is_uniform_in(unrelated, [iv])

    def test_function_args_uniform(self, builder_ctx):
        _, f, b = builder_ctx
        a = f.body_block().arg(0)
        c0 = arith.index_constant(b, 0)
        c8 = arith.index_constant(b, 8)
        c1 = arith.index_constant(b, 1)
        par = scf.parallel(b, [c0], [c8], [c1], gpu_kind="blocks")
        iv = par.body_block().arg(0)
        assert is_uniform_in(a, [iv])

    def test_loads_conservative(self, builder_ctx):
        _, f, b = builder_ctx
        buf = memref.alloc(b, MemRefType((8,), F32))
        c0 = arith.index_constant(b, 0)
        c8 = arith.index_constant(b, 8)
        c1 = arith.index_constant(b, 1)
        par = scf.parallel(b, [c0], [c8], [c1], gpu_kind="blocks")
        pb = Builder(par.body_block())
        iv = par.body_block().arg(0)
        loaded = memref.load(pb, buf, [c0])
        scf.yield_(pb)
        assert not is_uniform_in(loaded, [iv])
        assert is_uniform_in(loaded, [iv], loads_are_dependent=False)


class TestKernelStats:
    def test_flop_and_access_counting(self):
        source = """
        __global__ void k(float *a, float *b) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            float x = a[i] * 2.0f + 1.0f;
            b[i] = x;
        }
        """
        _, _, threads = kernel_ir(source)
        stats = kernel_statistics(threads)
        assert stats.flops_f32 == 2  # mul + add
        assert stats.loads_global == 1
        assert stats.stores_global == 1
        assert not stats.symbolic

    def test_loop_multiplies_counts(self):
        source = """
        __global__ void k(float *a) {
            float acc = 0.0f;
            for (int j = 0; j < 10; j++) acc += a[j];
            a[threadIdx.x] = acc;
        }
        """
        _, _, threads = kernel_ir(source)
        stats = kernel_statistics(threads)
        assert stats.loads_global == 10
        assert stats.flops_f32 == 10

    def test_symbolic_bounds_flagged(self):
        source = """
        __global__ void k(float *a, int n) {
            float acc = 0.0f;
            for (int j = 0; j < n; j++) acc += a[j];
            a[threadIdx.x] = acc;
        }
        """
        _, _, threads = kernel_ir(source)
        stats = kernel_statistics(threads, symbolic_trips=32)
        assert stats.symbolic
        assert stats.loads_global == 32

    def test_shared_accesses_classified(self):
        source = """
        __global__ void k(float *a) {
            __shared__ float s[8];
            s[threadIdx.x] = a[threadIdx.x];
            __syncthreads();
            a[threadIdx.x] = s[7 - threadIdx.x];
        }
        """
        _, _, threads = kernel_ir(source)
        stats = kernel_statistics(threads)
        assert stats.loads_shared == 1
        assert stats.stores_shared == 1
        assert stats.loads_global == 1
        assert stats.stores_global == 1
        assert stats.barriers == 1

    def test_branches_counted(self):
        source = """
        __global__ void k(float *a, int n) {
            int i = threadIdx.x;
            if (i < n) a[i] = 1.0f; else a[i] = 2.0f;
        }
        """
        _, _, threads = kernel_ir(source)
        stats = kernel_statistics(threads)
        assert stats.branches == 1
        # each side at half weight
        assert stats.stores_global == 1


class TestSharedBytes:
    def test_static_accounting(self):
        source = """
        __global__ void k(float *a) {
            __shared__ float s1[16][16];
            __shared__ double s2[8];
            s1[threadIdx.x][0] = 0.0f;
            s2[0] = 0.0;
            a[threadIdx.x] = s1[0][0] + (float)s2[0];
        }
        """
        _, blocks, _ = kernel_ir(source, block=(16,))
        assert shared_bytes_per_block(blocks) == 16 * 16 * 4 + 8 * 8

    def test_block_coarsening_doubles_shared(self):
        source = """
        __global__ void k(float *a) {
            __shared__ float s[32];
            s[threadIdx.x] = 1.0f;
            a[threadIdx.x] = s[threadIdx.x];
        }
        """
        module, blocks, _ = kernel_ir(source, block=(8,))
        from repro.transforms import block_coarsen
        wrapper = polygeist.find_gpu_wrappers(module.op)[0]
        block_coarsen(wrapper, (4,))
        main = block_parallels(wrapper, include_epilogues=False)[0]
        assert shared_bytes_per_block(main) == 4 * 32 * 4
