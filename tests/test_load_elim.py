"""Tests for redundant load elimination and store-to-load forwarding."""

import numpy as np
import pytest

from repro.dialects import arith, func, memref, polygeist, scf
from repro.frontend import ModuleGenerator, parse_translation_unit
from repro.interpreter import MemoryBuffer, run_module
from repro.ir import (Builder, F32, FunctionType, INDEX, MemRefType, Module,
                      verify_module)
from repro.transforms import RedundantLoadElimination


def count_loads(root):
    return len(root.ops_matching("memref.load"))


@pytest.fixture
def ctx():
    module = Module()
    builder = Builder(module.body)
    f = func.func(builder, "f", FunctionType((MemRefType((8,), F32),), ()),
                  ["buf"])
    return module, f, Builder(f.body_block()), f.body_block().arg(0)


class TestRLE:
    def test_duplicate_loads_merged(self, ctx):
        module, f, b, buf = ctx
        i = arith.index_constant(b, 0)
        v1 = memref.load(b, buf, [i])
        v2 = memref.load(b, buf, [i])
        s = arith.addf(b, v1, v2)
        memref.store(b, s, buf, [i])
        func.return_(b)
        assert RedundantLoadElimination().run(module)
        verify_module(module)
        assert count_loads(module.op) == 1

    def test_different_indices_kept(self, ctx):
        module, f, b, buf = ctx
        i0 = arith.index_constant(b, 0)
        i1 = arith.index_constant(b, 1)
        v1 = memref.load(b, buf, [i0])
        v2 = memref.load(b, buf, [i1])
        memref.store(b, arith.addf(b, v1, v2), buf, [i0])
        func.return_(b)
        RedundantLoadElimination().run(module)
        assert count_loads(module.op) == 2

    def test_intervening_store_blocks_reuse(self, ctx):
        module, f, b, buf = ctx
        i = arith.index_constant(b, 0)
        j = arith.index_constant(b, 1)
        v1 = memref.load(b, buf, [i])
        memref.store(b, v1, buf, [j])        # may alias (index values)
        v2 = memref.load(b, buf, [i])
        memref.store(b, arith.addf(b, v1, v2), buf, [j])
        func.return_(b)
        RedundantLoadElimination().run(module)
        # load of [i] after store to same buffer must be kept
        assert count_loads(module.op) == 2

    def test_barrier_invalidates(self):
        source = """
        __global__ void k(float *out) {
            __shared__ float s[8];
            s[threadIdx.x] = threadIdx.x;
            float a = s[0];
            __syncthreads();
            float b = s[0];
            out[threadIdx.x] = a + b;
        }
        """
        unit = parse_translation_unit(source)
        gen = ModuleGenerator(unit)
        gen.get_launch_wrapper("k", 1, (8,))
        module = gen.module
        RedundantLoadElimination().run(module)
        # both s[0] loads must survive: the barrier fences them
        assert count_loads(module.op) == 2

    def test_semantics_preserved(self):
        source = """
        __global__ void k(float *out, float *in) {
            float a = in[threadIdx.x];
            float b = in[threadIdx.x];
            out[threadIdx.x] = a * b;
        }
        """
        unit = parse_translation_unit(source)
        gen = ModuleGenerator(unit)
        name = gen.get_launch_wrapper("k", 1, (8,))
        data = np.arange(8, dtype=np.float32)
        src_buf = MemoryBuffer((8,), F32, data=data)
        out1 = MemoryBuffer((8,), F32)
        run_module(gen.module, name, [1, out1, src_buf])
        # CSE first: the two loads' index chains are clones until then
        from repro.transforms import CSE, Canonicalize
        Canonicalize().run(gen.module)
        CSE().run(gen.module)
        changed = RedundantLoadElimination().run(gen.module)
        assert changed
        out2 = MemoryBuffer((8,), F32)
        src_buf2 = MemoryBuffer((8,), F32, data=data)
        run_module(gen.module, name, [1, out2, src_buf2])
        np.testing.assert_array_equal(out1.array, out2.array)


class TestStoreToLoadForwarding:
    def test_forwarded(self, ctx):
        module, f, b, buf = ctx
        i = arith.index_constant(b, 0)
        value = arith.constant(b, 3.0, F32)
        memref.store(b, value, buf, [i])
        loaded = memref.load(b, buf, [i])
        memref.store(b, arith.addf(b, loaded, loaded), buf, [i])
        func.return_(b)
        RedundantLoadElimination().run(module)
        verify_module(module)
        assert count_loads(module.op) == 0

    def test_forwarding_blocked_by_barrier(self):
        source = """
        __global__ void k(float *out) {
            __shared__ float s[8];
            s[threadIdx.x] = 1.0f;
            __syncthreads();
            out[threadIdx.x] = s[7 - threadIdx.x];
        }
        """
        unit = parse_translation_unit(source)
        gen = ModuleGenerator(unit)
        name = gen.get_launch_wrapper("k", 1, (8,))
        RedundantLoadElimination().run(gen.module)
        assert count_loads(gen.module.op) == 1  # the post-barrier load

    def test_forwarding_preserves_execution(self):
        source = """
        __global__ void k(float *out) {
            float tmp[2];
            tmp[0] = 5.0f;
            tmp[1] = tmp[0] * 2.0f;
            out[threadIdx.x] = tmp[1];
        }
        """
        unit = parse_translation_unit(source)
        gen = ModuleGenerator(unit)
        name = gen.get_launch_wrapper("k", 1, (4,))
        RedundantLoadElimination().run(gen.module)
        verify_module(gen.module)
        out = MemoryBuffer((4,), F32)
        run_module(gen.module, name, [1, out])
        assert (out.array == 10.0).all()

    def test_cross_copy_reuse_after_block_coarsening(self):
        """The lud mechanism: copies' uniform loads dedup after coarsening."""
        from repro.transforms import block_coarsen, run_cleanup
        source = """
        __global__ void k(float *a, float *b) {
            float shared_row = a[threadIdx.x];   // uniform in blockIdx.x
            b[blockIdx.x * blockDim.x + threadIdx.x] = shared_row;
        }
        """
        unit = parse_translation_unit(source)
        gen = ModuleGenerator(unit)
        gen.get_launch_wrapper("k", 1, (32,))
        run_cleanup(gen.module)
        wrapper = polygeist.find_gpu_wrappers(gen.module.op)[0]
        block_coarsen(wrapper, (4,))
        run_cleanup(gen.module)
        from repro.transforms.coarsen import block_parallels
        main = block_parallels(wrapper, include_epilogues=False)[0]
        # 4 copies of the load collapse to 1; 4 stores remain
        assert len(main.ops_matching("memref.load")) == 1
        assert len(main.ops_matching("memref.store")) == 4
