"""Unit tests for dialect builders, verifiers, and effect summaries."""

import pytest

from repro.ir import (Builder, F32, FunctionType, I1, INDEX, MemRefType,
                      Module, VerificationError, verify_module)
from repro.dialects import (arith, effects, func, gpu, math, memref,
                            polygeist, scf)


@pytest.fixture
def ctx():
    module = Module()
    builder = Builder(module.body)
    f = func.func(builder, "f", FunctionType((INDEX,), ()), ["n"])
    return module, f, Builder(f.body_block())


class TestArith:
    def test_constant_types(self, ctx):
        _, _, b = ctx
        c = arith.constant(b, 3, F32)
        assert c.type == F32
        assert c.owner.attr("value") == 3.0
        i = arith.index_constant(b, 5)
        assert i.type == INDEX
        assert arith.constant_value(i) == 5
        assert arith.constant_value(arith.addi(b, i, i)) is None

    def test_binary_type_propagation(self, ctx):
        _, _, b = ctx
        x = arith.constant(b, 1.0, F32)
        y = arith.constant(b, 2.0, F32)
        z = arith.addf(b, x, y)
        assert z.type == F32

    def test_unknown_binary_rejected(self, ctx):
        _, _, b = ctx
        x = arith.index_constant(b, 1)
        with pytest.raises(ValueError):
            arith.binary(b, "arith.bogus", x, x)

    def test_cmp_produces_i1(self, ctx):
        _, _, b = ctx
        x = arith.index_constant(b, 1)
        assert arith.cmpi(b, "lt", x, x).type == I1
        with pytest.raises(ValueError):
            arith.cmpi(b, "slt", x, x)

    def test_select(self, ctx):
        _, _, b = ctx
        c = arith.constant(b, 1, I1)
        x = arith.index_constant(b, 1)
        y = arith.index_constant(b, 2)
        assert arith.select(b, c, x, y).type == INDEX


class TestMemref:
    def test_load_store_rank_checked(self, ctx):
        _, _, b = ctx
        buf = memref.alloca(b, MemRefType((4, 4), F32, "shared"))
        i = arith.index_constant(b, 0)
        v = memref.load(b, buf, [i, i])
        memref.store(b, v, buf, [i, i])
        with pytest.raises(ValueError):
            memref.load(b, buf, [i])
        with pytest.raises(ValueError):
            memref.store(b, v, buf, [i, i, i])

    def test_alloca_requires_static_shape(self, ctx):
        _, _, b = ctx
        from repro.ir import DYNAMIC
        with pytest.raises(ValueError):
            memref.alloca(b, MemRefType((DYNAMIC,), F32, "shared"))

    def test_access_helpers(self, ctx):
        _, _, b = ctx
        buf = memref.alloc(b, MemRefType((8,), F32))
        i = arith.index_constant(b, 0)
        v = memref.load(b, buf, [i])
        store = memref.store(b, v, buf, [i])
        assert memref.load_op_ref(v.owner) is buf
        assert memref.load_op_ref(store) is buf
        assert list(memref.access_indices(v.owner)) == [i]

    def test_globals(self, ctx):
        module, f, b = ctx
        mb = Builder(module.body, 0)
        memref.global_(mb, "table", MemRefType((16,), F32), constant=True)
        value = memref.get_global(b, module.op, "table")
        assert value.type == MemRefType((16,), F32)
        with pytest.raises(KeyError):
            memref.get_global(b, module.op, "missing")


class TestScf:
    def test_for_structure(self, ctx):
        _, _, b = ctx
        c0 = arith.index_constant(b, 0)
        c4 = arith.index_constant(b, 4)
        c1 = arith.index_constant(b, 1)
        init = arith.constant(b, 0.0, F32)
        loop = scf.build_for(
            b, c0, c4, c1, [init],
            lambda bb, iv, iters: [iters[0]])
        assert loop.num_results == 1
        assert scf.for_iv(loop).type == INDEX
        assert len(scf.for_iter_args(loop)) == 1

    def test_parallel_accessors(self, ctx):
        _, _, b = ctx
        c0 = arith.index_constant(b, 0)
        c8 = arith.index_constant(b, 8)
        c1 = arith.index_constant(b, 1)
        par = scf.parallel(b, [c0, c0], [c8, c8], [c1, c1],
                           gpu_kind=scf.KIND_THREADS)
        assert scf.parallel_num_dims(par) == 2
        assert scf.parallel_upper_bounds(par) == [c8, c8]
        assert scf.parallel_steps(par) == [c1, c1]
        assert len(scf.parallel_ivs(par)) == 2
        assert scf.is_gpu_threads(par)
        assert not scf.is_gpu_blocks(par)

    def test_for_verifier_catches_missing_yield(self, ctx):
        module, _, b = ctx
        c0 = arith.index_constant(b, 0)
        c1 = arith.index_constant(b, 1)
        scf.for_(b, c0, c1, c1)  # body left without terminator
        func.return_(b)
        with pytest.raises(VerificationError):
            verify_module(module)

    def test_if_verifier_checks_yield_arity(self, ctx):
        module, _, b = ctx
        cond = arith.constant(b, 1, I1)
        if_op = scf.if_(b, cond, [F32])
        then_b = Builder(scf.if_then_block(if_op))
        scf.yield_(then_b, [arith.constant(then_b, 1.0, F32)])
        else_b = Builder(scf.if_else_block(if_op))
        scf.yield_(else_b, [])  # arity mismatch
        func.return_(b)
        with pytest.raises(VerificationError):
            verify_module(module)


class TestPolygeist:
    def test_barrier_scope_matching(self, ctx):
        _, _, b = ctx
        c0 = arith.index_constant(b, 0)
        c8 = arith.index_constant(b, 8)
        c1 = arith.index_constant(b, 1)
        outer = scf.parallel(b, [c0], [c8], [c1], gpu_kind="blocks")
        ob = Builder(outer.body_block())
        inner = scf.parallel(ob, [c0], [c8], [c1], gpu_kind="threads")
        ib = Builder(inner.body_block())
        bar = polygeist.barrier(ib, [inner.body_block().arg(0)])
        scf.yield_(ib)
        scf.yield_(ob)
        assert polygeist.barrier_syncs_loop(bar, inner)
        assert not polygeist.barrier_syncs_loop(bar, outer)

    def test_barrier_rejects_non_iv_operand(self, ctx):
        module, _, b = ctx
        c0 = arith.index_constant(b, 0)
        polygeist.barrier(b, [c0])
        func.return_(b)
        with pytest.raises(VerificationError):
            verify_module(module)

    def test_alternatives_descs_checked(self, ctx):
        _, _, b = ctx
        from repro.ir import single_block_region
        with pytest.raises(ValueError):
            polygeist.alternatives(b, [single_block_region()], ["a", "b"])


class TestGpuDialect:
    def test_launch_accessors(self, ctx):
        _, _, b = ctx
        c1 = arith.index_constant(b, 1)
        c2 = arith.index_constant(b, 2)
        buf = memref.alloc(b, MemRefType((8,), F32))
        launch = gpu.launch_func(b, "k", [c1, c2], [c2], [buf])
        assert gpu.launch_grid(launch) == [c1, c2]
        assert gpu.launch_block(launch) == [c2]
        assert gpu.launch_args(launch) == [buf]

    def test_launch_rejects_bad_dims(self, ctx):
        _, _, b = ctx
        c1 = arith.index_constant(b, 1)
        with pytest.raises(ValueError):
            gpu.launch_func(b, "k", [c1] * 4, [c1], [])


class TestEffects:
    def test_pure_classification(self, ctx):
        _, _, b = ctx
        c = arith.index_constant(b, 1)
        add = arith.addi(b, c, c)
        assert effects.is_pure(c.owner)
        assert effects.is_pure(add.owner)
        s = math.sqrt(b, arith.constant(b, 2.0, F32))
        assert effects.is_pure(s.owner)

    def test_memory_ops_not_pure(self, ctx):
        _, _, b = ctx
        buf = memref.alloc(b, MemRefType((8,), F32))
        i = arith.index_constant(b, 0)
        load = memref.load(b, buf, [i]).owner
        store = memref.store(b, arith.constant(b, 0.0, F32), buf, [i])
        assert not effects.is_pure(load)
        assert effects.reads_memory(load)
        assert not effects.has_side_effects(load)  # removable when unused
        assert effects.writes_memory(store)
        assert effects.has_side_effects(store)

    def test_region_effects_propagate(self, ctx):
        _, _, b = ctx
        c0 = arith.index_constant(b, 0)
        c1 = arith.index_constant(b, 1)
        buf = memref.alloc(b, MemRefType((8,), F32))
        loop = scf.for_(b, c0, c1, c1)
        lb = Builder(loop.body_block())
        memref.store(lb, arith.constant(lb, 0.0, F32), buf, [c0])
        scf.yield_(lb)
        assert effects.writes_memory(loop)
        assert effects.has_side_effects(loop)
        assert not effects.is_pure(loop)

    def test_barrier_is_sync(self, ctx):
        _, _, b = ctx
        c0 = arith.index_constant(b, 0)
        c8 = arith.index_constant(b, 8)
        c1 = arith.index_constant(b, 1)
        par = scf.parallel(b, [c0], [c8], [c1], gpu_kind="threads")
        pb = Builder(par.body_block())
        polygeist.barrier(pb, [par.body_block().arg(0)])
        scf.yield_(pb)
        assert effects.is_sync(par)
        assert effects.has_side_effects(par)
