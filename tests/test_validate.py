"""Tests for repro.validate: differential harness, lint, gate, and CLI.

The regression tests in this file name the layer that found the bug they
pin down (the differential harness, the barrier lint, or the fuzzer), per
the validation-subsystem convention: every flushed-out bug keeps a test
crediting its finder.
"""

import numpy as np
import pytest

import repro.transforms.alternatives as alternatives_mod
from repro.dialects import polygeist
from repro.engine import TuningEngine, VALIDATE_ENV
from repro.frontend import ModuleGenerator, parse_translation_unit
from repro.obs import decisions as obs_decisions
from repro.targets import arch_by_name
from repro.transforms import check_unroll_legality, run_cleanup
from repro.transforms.coarsen import block_parallels
from repro.validate import (BARRIER_BLOCK_DEPENDENT, BARRIER_DIVERGENT,
                            DIVERGED, ERROR, OK, SHARED_WRITE_RACE, SKIPPED,
                            block_coarsening_illegal, compare_buffers,
                            lint_wrapper, validate_alternatives,
                            validate_benchmark, validate_source)

A100 = arch_by_name("a100")

SHARED_KERNEL = """
__global__ void k(float *in, float *out, int n) {
    __shared__ float tile[8];
    int t = threadIdx.x;
    int g = blockIdx.x * blockDim.x + t;
    tile[t] = in[g] * 2.0f;
    __syncthreads();
    out[g] = tile[(t + 1) % 8] + 1.5f;
}
"""

CONFIGS = [{"thread_total": 1}, {"thread_total": 2}, {"block_total": 2}]


def build_wrapper(source, kernel="k", grid_rank=1, block=(8,)):
    generator = ModuleGenerator(parse_translation_unit(source))
    name = generator.get_launch_wrapper(kernel, grid_rank, block)
    run_cleanup(generator.module)
    func_op = generator.module.func(name)
    wrapper = polygeist.find_gpu_wrappers(func_op)[0]
    return generator, name, func_op, wrapper


def sabotage_first_addf(alt_op, index):
    """Flip the first arith.addf of region ``index`` to a subtraction."""
    flipped = []

    def visit(op):
        if not flipped and op.name == "arith.addf":
            op.name = "arith.subf"
            flipped.append(op)
    for op in list(alt_op.body_block(index).ops):
        op.walk_preorder(visit, include_self=True)
    assert flipped, "no arith.addf to sabotage in region %d" % index


class TestDifferentialHarness:
    def test_all_alternatives_equivalent(self):
        report = validate_source(SHARED_KERNEL, "k", [4], (8,),
                                 configs=CONFIGS)
        assert report.ok
        assert not report.baseline_note
        assert len(report.verdicts) == len(CONFIGS)
        assert all(v.status == OK for v in report.verdicts)
        assert report.first_divergence is None
        assert report.keep_indices() == list(range(len(CONFIGS)))

    def test_miscompiled_alternative_diverges_with_minimized_diff(self):
        generator, _, func_op, wrapper = build_wrapper(SHARED_KERNEL)
        baseline_func = func_op.clone({})
        sizing = polygeist.find_gpu_wrappers(baseline_func)[0]
        grid_env = {func_op.body_block().args[0]: 4}
        generation = alternatives_mod.generate_coarsening_alternatives(
            wrapper, CONFIGS)
        run_cleanup(generator.module)
        sabotage_first_addf(generation.op, 1)
        report = validate_alternatives(baseline_func, generation.op,
                                       grid_env, sizing)
        assert not report.ok
        bad = report.verdicts[1]
        assert bad.status == DIVERGED
        assert report.first_divergence is bad
        assert report.keep_indices() == [0, 2]
        # the diff is minimized: counts, first index, bounded samples
        diff = bad.diff
        assert diff is not None
        assert 0 < diff.mismatches <= diff.elements
        assert 0 <= diff.first_index < diff.elements
        assert 1 <= len(diff.samples) <= 8
        assert diff.max_error > 0.0
        assert "elements differ" in bad.explain()

    def test_order_dependent_baseline_is_skipped(self):
        """All threads racing on out[0] must make validation inconclusive,
        not a spurious failure (found by the differential harness on
        backprop/lud: seeded scalars aliased per-thread indices)."""
        racy = """
        __global__ void k(float *in, float *out, int n) {
            int t = threadIdx.x;
            out[0] = in[t] + (float)t;
        }
        """
        report = validate_source(racy, "k", [2], (8,), configs=CONFIGS)
        assert report.ok  # skipped, never diverged
        assert "order-dependent" in report.baseline_note
        assert all(v.status == SKIPPED for v in report.verdicts)

    def test_scalar_ladder_recovers_oob_baseline(self):
        """Scalar-stride kernels overrun buffers when the free scalar is
        seeded to the thread total; the retry ladder must find a value
        that executes."""
        strided = """
        __global__ void k(float *in, float *out, int n) {
            int t = threadIdx.x;
            out[n * t] = in[t] * 3.0f;
        }
        """
        report = validate_source(strided, "k", [1], (4,), configs=CONFIGS)
        assert not report.baseline_note, report.baseline_note
        assert report.ok

    def test_divergent_barrier_alternative_reports_error(self):
        generator, _, func_op, wrapper = build_wrapper(SHARED_KERNEL)
        baseline_func = func_op.clone({})
        sizing = polygeist.find_gpu_wrappers(baseline_func)[0]
        grid_env = {func_op.body_block().args[0]: 4}
        generation = alternatives_mod.generate_coarsening_alternatives(
            wrapper, CONFIGS)
        run_cleanup(generator.module)
        # guard region 1's barrier behind a thread-dependent condition
        from repro.dialects import arith, scf
        from repro.ir import Builder
        barrier = generation.op.body_block(1).ops[0].ops_matching(
            polygeist.BARRIER)[0]
        thread_loop = barrier.parent_op
        while thread_loop.name != scf.PARALLEL:
            thread_loop = thread_loop.parent_op
        parent = barrier.parent
        builder = Builder(parent, parent.index_of(barrier))
        c2 = arith.index_constant(builder, 2)
        cond = arith.cmpi(builder, "lt",
                          thread_loop.body_block().args[0], c2)
        if_op = scf.if_(builder, cond, [])
        then_b = Builder(scf.if_then_block(if_op))
        barrier.detach()
        then_b.insert(barrier)
        scf.yield_(then_b)
        scf.yield_(Builder(scf.if_else_block(if_op)))
        report = validate_alternatives(baseline_func, generation.op,
                                       grid_env, sizing)
        assert report.verdicts[1].status == ERROR
        assert "barrier divergence" in report.verdicts[1].detail

    def test_compare_buffers_int_exact_float_tolerant(self):
        ints = np.arange(8, dtype=np.int32)
        off = ints.copy()
        off[3] += 1
        diff = compare_buffers(ints, off, "arg0", 0)
        assert diff is not None and diff.mismatches == 1
        assert diff.first_index == 3
        floats = np.linspace(0.0, 1.0, 8, dtype=np.float32)
        wiggled = floats * (1.0 + 1e-7)
        assert compare_buffers(floats, wiggled, "arg1", 1) is None
        assert compare_buffers(floats, floats + 1.0, "arg1", 1) is not None


class TestLint:
    def lint(self, source, block=(8,)):
        _, _, _, wrapper = build_wrapper(source, block=block)
        return lint_wrapper(wrapper, label="k"), wrapper

    def test_clean_kernel(self):
        report, wrapper = self.lint(SHARED_KERNEL)
        assert not report.findings
        assert "clean" in report.summary()
        assert not block_coarsening_illegal(wrapper)

    def test_thread_divergent_barrier_is_error(self):
        source = """
        __global__ void k(float *out) {
            __shared__ float tile[8];
            int t = threadIdx.x;
            if (t < 4) {
                tile[t] = (float)t;
                __syncthreads();
            }
            out[t] = tile[t % 4];
        }
        """
        report, _ = self.lint(source)
        findings = report.by_rule(BARRIER_DIVERGENT)
        assert findings and findings[0].severity == "error"
        assert report.errors

    def test_block_dependent_barrier_is_note(self):
        source = """
        __global__ void k(float *out) {
            __shared__ float tile[8];
            int t = threadIdx.x;
            int b = blockIdx.x;
            if (b < 2) {
                tile[t] = (float)t;
                __syncthreads();
                out[b * 8 + t] = tile[7 - t];
            }
        }
        """
        report, wrapper = self.lint(source)
        findings = report.by_rule(BARRIER_BLOCK_DEPENDENT)
        assert findings and findings[0].severity == "note"
        assert not report.errors
        assert block_coarsening_illegal(wrapper)

    def test_shared_write_race_is_warning(self):
        source = """
        __global__ void k(float *out) {
            __shared__ float acc[1];
            int t = threadIdx.x;
            acc[0] = (float)t;
            __syncthreads();
            out[t] = acc[0];
        }
        """
        report, _ = self.lint(source)
        findings = report.by_rule(SHARED_WRITE_RACE)
        assert findings and findings[0].severity == "warning"

    def test_agrees_with_unroll_legality_on_benchsuite(self):
        """The lint's §V-C verdict must match check_unroll_legality on
        every benchsuite kernel's main block loops."""
        from repro.benchsuite import BENCHMARKS, get_benchmark

        checked = 0
        for name in sorted(BENCHMARKS):
            bench = get_benchmark(name)
            generator = ModuleGenerator(parse_translation_unit(
                bench.source))
            seen = set()
            for kernel, grid, block in bench.iter_launches(
                    bench.verify_size):
                key = (kernel, len(grid), tuple(block))
                if key in seen:
                    continue
                seen.add(key)
                generator.get_launch_wrapper(kernel, len(grid),
                                             tuple(block))
            run_cleanup(generator.module)
            for wrapper in polygeist.find_gpu_wrappers(
                    generator.module.op):
                transform_illegal = any(
                    check_unroll_legality(loop) is not None
                    for loop in block_parallels(
                        wrapper, include_epilogues=False))
                assert block_coarsening_illegal(wrapper) == \
                    transform_illegal, name
                checked += 1
        assert checked >= 20


class TestValidationGate:
    def test_engine_flag_defaults_and_env(self, monkeypatch):
        monkeypatch.delenv(VALIDATE_ENV, raising=False)
        assert TuningEngine().validate is False
        monkeypatch.setenv(VALIDATE_ENV, "1")
        assert TuningEngine().validate is True
        assert TuningEngine(validate=False).validate is False
        monkeypatch.setenv(VALIDATE_ENV, "off")
        assert TuningEngine().validate is False
        assert TuningEngine(validate=True).validate is True

    def test_validation_stage_registered(self):
        assert obs_decisions.VALIDATION in obs_decisions.STAGES

    def tune(self, engine, sabotage=None):
        from repro.autotune import tune_wrapper

        generator, _, func_op, wrapper = build_wrapper(SHARED_KERNEL)
        env = {func_op.body_block().args[0]: 8}
        # tune_wrapper materializes clones lazily, so the sabotage hook
        # wraps PlannedAlternatives.materialize (the point where the
        # alternatives op first exists)
        real = alternatives_mod.PlannedAlternatives.materialize
        mutated = []

        def instrumented(planned, indices):
            alt = real(planned, indices)
            if sabotage is not None:
                index = sabotage(alt)
                mutated.append(polygeist.alternative_descs(alt)[index])
            return alt

        alternatives_mod.PlannedAlternatives.materialize = instrumented
        try:
            with obs_decisions.logging_decisions() as log:
                outcome = tune_wrapper(wrapper, A100, env, CONFIGS,
                                       engine=engine)
        finally:
            alternatives_mod.PlannedAlternatives.materialize = real
        return outcome, log, (mutated[0] if mutated else None)

    def test_gate_rejects_miscompiled_alternative(self):
        def sabotage(alt_op):
            sabotage_first_addf(alt_op, 0)
            return 0

        engine = TuningEngine(validate=True)
        outcome, log, mutated = self.tune(engine, sabotage=sabotage)
        assert mutated is not None
        decision = log.decisions[0]
        record = decision.find(mutated)
        assert record is not None
        assert record.eliminated_by == obs_decisions.VALIDATION
        assert "diverged" in record.reason
        assert outcome.selected_desc != mutated
        assert outcome.validation is not None
        assert not outcome.validation.ok
        # the selected config must replay correctly despite the pruning
        assert outcome.selected_config is not None

    def test_gate_passes_clean_alternatives(self):
        engine = TuningEngine(validate=True)
        outcome, log, _ = self.tune(engine)
        assert outcome.validation is not None
        assert outcome.validation.ok
        assert not any(d.eliminated_by == obs_decisions.VALIDATION
                       for d in log.decisions[0].alternatives)

    def test_gate_off_keeps_miscompiled_alternative(self):
        """Without --validate nothing catches the miscompile: the gate is
        what changes the outcome (guards the test above against passing
        for an unrelated reason)."""
        def sabotage(alt_op):
            sabotage_first_addf(alt_op, 0)
            return 0

        engine = TuningEngine(validate=False)
        outcome, log, mutated = self.tune(engine, sabotage=sabotage)
        assert outcome.validation is None
        record = log.decisions[0].find(mutated)
        assert record is None or \
            record.eliminated_by != obs_decisions.VALIDATION

    def test_gate_rejecting_everything_raises(self):
        def sabotage(alt_op):
            for index in range(len(alt_op.regions)):
                sabotage_first_addf(alt_op, index)
            return 0

        engine = TuningEngine(validate=True)
        with pytest.raises(ValueError, match="validation rejected every"):
            self.tune(engine, sabotage=sabotage)


class TestBenchmarkValidation:
    def test_lud_end_to_end(self):
        report = validate_benchmark("lud", A100)
        assert report.ok, report.summary()
        assert not report.baseline_note
        assert any(v.status == OK for v in report.verdicts)


class TestCLI:
    def test_validate_benchmark_cli(self, capsys):
        from repro.__main__ import main

        assert main(["validate", "lud", "--arch", "a100"]) == 0
        out = capsys.readouterr().out
        assert "lint:" in out
        assert "validation of lud:" in out

    def test_validate_source_cli(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "k.cu"
        path.write_text(SHARED_KERNEL)
        assert main(["validate", str(path), "--grid", "4",
                     "--block", "8"]) == 0
        out = capsys.readouterr().out
        assert "ok" in out

    def test_tune_validate_cli(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "k.cu"
        path.write_text(SHARED_KERNEL)
        assert main(["tune", str(path), "k", "--grid", "8", "--block", "8",
                     "--max-factor", "4", "--validate"]) == 0
        out = capsys.readouterr().out
        assert "validation of" in out
