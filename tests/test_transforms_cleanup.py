"""Tests for canonicalize, CSE, DCE, LICM, and barrier elimination."""

import numpy as np
import pytest

from repro.dialects import arith, func, memref, polygeist, scf
from repro.frontend import ModuleGenerator, parse_translation_unit
from repro.interpreter import MemoryBuffer, run_module
from repro.ir import (Builder, F32, FunctionType, INDEX, MemRefType, Module,
                      verify_module)
from repro.transforms import (BarrierElimination, CSE, Canonicalize, DCE,
                              LICM, run_cleanup)


def count_ops(root, name):
    return len(root.ops_matching(name))


def compile_kernel(source, kernel, grid_rank=1, block=(8,)):
    unit = parse_translation_unit(source)
    gen = ModuleGenerator(unit)
    wrapper = gen.get_launch_wrapper(kernel, grid_rank, block)
    verify_module(gen.module)
    return gen.module, wrapper


@pytest.fixture
def simple_func():
    module = Module()
    builder = Builder(module.body)
    f = func.func(builder, "f", FunctionType((INDEX,), ()), ["n"])
    return module, f, Builder(f.body_block())


class TestCanonicalize:
    def test_constant_folding(self, simple_func):
        module, f, b = simple_func
        x = arith.index_constant(b, 6)
        y = arith.index_constant(b, 7)
        product = arith.muli(b, x, y)
        buf = memref.alloc(b, MemRefType((1,), INDEX))
        memref.store(b, product, buf, [arith.index_constant(b, 0)])
        func.return_(b)
        Canonicalize().run(module)
        verify_module(module)
        store = module.op.ops_matching("memref.store")[0]
        assert arith.constant_value(store.operand(0)) == 42

    def test_identities(self, simple_func):
        module, f, b = simple_func
        n = f.body_block().arg(0)
        zero = arith.index_constant(b, 0)
        one = arith.index_constant(b, 1)
        v1 = arith.addi(b, n, zero)
        v2 = arith.muli(b, v1, one)
        buf = memref.alloc(b, MemRefType((1,), INDEX))
        memref.store(b, v2, buf, [zero])
        func.return_(b)
        Canonicalize().run(module)
        DCE().run(module)
        verify_module(module)
        store = module.op.ops_matching("memref.store")[0]
        assert store.operand(0) is n

    def test_static_if_inlined(self, simple_func):
        module, f, b = simple_func
        from repro.ir import I1
        cond = arith.constant(b, 1, I1)
        if_op = scf.if_(b, cond, [INDEX])
        tb = Builder(scf.if_then_block(if_op))
        scf.yield_(tb, [arith.index_constant(tb, 5)])
        eb = Builder(scf.if_else_block(if_op))
        scf.yield_(eb, [arith.index_constant(eb, 6)])
        buf = memref.alloc(b, MemRefType((1,), INDEX))
        memref.store(b, if_op.result(), buf, [arith.index_constant(b, 0)])
        func.return_(b)
        Canonicalize().run(module)
        verify_module(module)
        assert count_ops(module.op, "scf.if") == 0
        store = module.op.ops_matching("memref.store")[0]
        assert arith.constant_value(store.operand(0)) == 5

    def test_division_folds(self, simple_func):
        module, f, b = simple_func
        a = arith.index_constant(b, -7)
        two = arith.index_constant(b, 2)
        q = arith.divsi(b, a, two)
        buf = memref.alloc(b, MemRefType((1,), INDEX))
        memref.store(b, q, buf, [arith.index_constant(b, 0)])
        func.return_(b)
        Canonicalize().run(module)
        store = module.op.ops_matching("memref.store")[0]
        assert arith.constant_value(store.operand(0)) == -3  # C semantics


class TestCSE:
    def test_duplicate_constants_merged(self, simple_func):
        module, f, b = simple_func
        a = arith.index_constant(b, 5)
        c = arith.index_constant(b, 5)
        s = arith.addi(b, a, c)
        buf = memref.alloc(b, MemRefType((1,), INDEX))
        memref.store(b, s, buf, [arith.index_constant(b, 0)])
        func.return_(b)
        CSE().run(module)
        DCE().run(module)
        constants = [op for op in module.op.ops_matching("arith.constant")
                     if op.attr("value") == 5]
        assert len(constants) == 1

    def test_outer_value_reused_in_region(self, simple_func):
        module, f, b = simple_func
        n = f.body_block().arg(0)
        outer = arith.addi(b, n, n)
        c0 = arith.index_constant(b, 0)
        c1 = arith.index_constant(b, 1)
        buf = memref.alloc(b, MemRefType((1,), INDEX))
        loop = scf.for_(b, c0, c1, c1)
        lb = Builder(loop.body_block())
        inner = arith.addi(lb, n, n)  # same computation inside the loop
        memref.store(lb, inner, buf, [arith.index_constant(lb, 0)])
        scf.yield_(lb)
        func.return_(b)
        verify_module(module)
        CSE().run(module)
        verify_module(module)
        store = module.op.ops_matching("memref.store")[0]
        assert store.operand(0) is outer

    def test_loads_not_csed(self, simple_func):
        module, f, b = simple_func
        buf = memref.alloc(b, MemRefType((4,), F32))
        c0 = arith.index_constant(b, 0)
        v1 = memref.load(b, buf, [c0])
        v2 = memref.load(b, buf, [c0])
        s = arith.addf(b, v1, v2)
        memref.store(b, s, buf, [c0])
        func.return_(b)
        CSE().run(module)
        assert count_ops(module.op, "memref.load") == 2


class TestDCE:
    def test_unused_pure_removed(self, simple_func):
        module, f, b = simple_func
        n = f.body_block().arg(0)
        arith.addi(b, n, n)  # dead
        func.return_(b)
        assert DCE().run(module)
        assert count_ops(module.op, "arith.addi") == 0

    def test_dead_chain_removed(self, simple_func):
        module, f, b = simple_func
        n = f.body_block().arg(0)
        a = arith.addi(b, n, n)
        arith.muli(b, a, a)  # dead; makes `a` dead too
        func.return_(b)
        DCE().run(module)
        assert count_ops(module.op, "arith.addi") == 0
        assert count_ops(module.op, "arith.muli") == 0

    def test_store_kept(self, simple_func):
        module, f, b = simple_func
        buf = memref.alloc(b, MemRefType((1,), INDEX))
        memref.store(b, f.body_block().arg(0), buf,
                     [arith.index_constant(b, 0)])
        func.return_(b)
        DCE().run(module)
        assert count_ops(module.op, "memref.store") == 1

    def test_unused_load_removed(self, simple_func):
        module, f, b = simple_func
        buf = memref.alloc(b, MemRefType((1,), INDEX))
        memref.store(b, f.body_block().arg(0), buf,
                     [arith.index_constant(b, 0)])
        memref.load(b, buf, [arith.index_constant(b, 0)])  # dead
        func.return_(b)
        DCE().run(module)
        assert count_ops(module.op, "memref.load") == 0


class TestLICM:
    def test_invariant_arith_hoisted(self, simple_func):
        module, f, b = simple_func
        n = f.body_block().arg(0)
        c0 = arith.index_constant(b, 0)
        c8 = arith.index_constant(b, 8)
        c1 = arith.index_constant(b, 1)
        buf = memref.alloc(b, MemRefType((8,), INDEX))
        loop = scf.for_(b, c0, c8, c1)
        lb = Builder(loop.body_block())
        invariant = arith.addi(lb, n, n)
        iv = loop.body_block().arg(0)
        memref.store(lb, invariant, buf, [iv])
        scf.yield_(lb)
        func.return_(b)
        assert LICM().run(module)
        verify_module(module)
        assert invariant.owner.parent is f.body_block()

    def test_shared_load_hoisted_when_not_written(self):
        """The lavaMD pattern: shared-memory load inside a compute loop."""
        source = """
        __global__ void k(float *out) {
            __shared__ float s[4];
            s[threadIdx.x % 4] = threadIdx.x % 4;
            __syncthreads();
            float acc = 0.0f;
            for (int i = 0; i < 16; i++) {
                acc += s[1] * i;
            }
            out[threadIdx.x] = acc;
        }
        """
        module, wrapper = compile_kernel(source, "k")
        run_cleanup(module)
        verify_module(module)
        # the s[1] load must have left the loop body
        loop = module.op.ops_matching("scf.for")[0]
        loads_in_loop = loop.ops_matching("memref.load")
        assert not loads_in_loop
        out = MemoryBuffer((8,), F32)
        run_module(module, wrapper, [1, out])
        expected = np.full(8, 1.0 * sum(range(16)), dtype=np.float32)
        np.testing.assert_array_equal(out.array, expected)

    def test_load_not_hoisted_when_buffer_written(self, simple_func):
        module, f, b = simple_func
        c0 = arith.index_constant(b, 0)
        c8 = arith.index_constant(b, 8)
        c1 = arith.index_constant(b, 1)
        buf = memref.alloc(b, MemRefType((8,), F32))
        loop = scf.for_(b, c0, c8, c1)
        lb = Builder(loop.body_block())
        iv = loop.body_block().arg(0)
        v = memref.load(lb, buf, [c0])
        memref.store(lb, v, buf, [iv])
        scf.yield_(lb)
        func.return_(b)
        LICM().run(module)
        assert v.owner.parent is loop.body_block()

    def test_division_not_speculated(self, simple_func):
        module, f, b = simple_func
        n = f.body_block().arg(0)
        c0 = arith.index_constant(b, 0)
        c1 = arith.index_constant(b, 1)
        buf = memref.alloc(b, MemRefType((8,), INDEX))
        # zero-trip-count possible: bounds are (0, n)
        loop = scf.for_(b, c0, n, c1)
        lb = Builder(loop.body_block())
        c10 = arith.index_constant(lb, 10)
        q = arith.divsi(lb, c10, n)  # n might be 0; must not speculate
        memref.store(lb, q, buf, [loop.body_block().arg(0)])
        scf.yield_(lb)
        func.return_(b)
        LICM().run(module)
        assert q.owner.parent is loop.body_block()


class TestBarrierElimination:
    def test_adjacent_barriers_merged(self):
        source = """
        __global__ void k(float *out) {
            __shared__ float s[8];
            s[threadIdx.x] = 1.0f;
            __syncthreads();
            __syncthreads();
            out[threadIdx.x] = s[7 - threadIdx.x];
        }
        """
        module, wrapper = compile_kernel(source, "k")
        assert len(module.op.ops_matching("polygeist.barrier")) == 2
        BarrierElimination().run(module)
        verify_module(module)
        assert len(module.op.ops_matching("polygeist.barrier")) == 1
        out = MemoryBuffer((8,), F32)
        run_module(module, wrapper, [1, out])
        assert (out.array == 1.0).all()

    def test_leading_and_trailing_barriers_removed(self):
        source = """
        __global__ void k(float *out) {
            __syncthreads();
            out[threadIdx.x] = 2.0f;
            __syncthreads();
        }
        """
        module, wrapper = compile_kernel(source, "k")
        BarrierElimination().run(module)
        assert len(module.op.ops_matching("polygeist.barrier")) == 0

    def test_needed_barrier_kept(self):
        source = """
        __global__ void k(float *out) {
            __shared__ float s[8];
            s[threadIdx.x] = threadIdx.x;
            __syncthreads();
            out[threadIdx.x] = s[7 - threadIdx.x];
        }
        """
        module, wrapper = compile_kernel(source, "k")
        BarrierElimination().run(module)
        assert len(module.op.ops_matching("polygeist.barrier")) == 1


class TestEndToEndCleanup:
    def test_cleanup_preserves_semantics(self):
        source = """
        __global__ void k(float *out, int n) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i >= n) return;
            float v = 0.0f;
            for (int j = 0; j < 4; j++) {
                v += (i + 0) * 1 * j;
            }
            out[i] = v;
        }
        """
        module, wrapper = compile_kernel(source, "k")
        out1 = MemoryBuffer((16,), F32)
        run_module(module, wrapper, [2, out1, 16])
        run_cleanup(module)
        verify_module(module)
        out2 = MemoryBuffer((16,), F32)
        run_module(module, wrapper, [2, out2, 16])
        np.testing.assert_array_equal(out1.array, out2.array)

    def test_cleanup_reduces_op_count(self):
        source = """
        __global__ void k(float *out) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            out[i] = (i + 0) * 1 + 2 * 3;
        }
        """
        module, wrapper = compile_kernel(source, "k")
        before = []
        module.op.walk(lambda op: before.append(op))
        run_cleanup(module)
        after = []
        module.op.walk(lambda op: after.append(op))
        assert len(after) < len(before)


class TestDivModRecompose:
    def test_pattern_folds_to_source(self, simple_func):
        """(x / y) * y + x % y == x with C division semantics."""
        module, f, b = simple_func
        n = f.body_block().arg(0)
        x = arith.addi(b, n, arith.index_constant(b, 5))
        q = arith.divsi(b, x, n)
        r = arith.remsi(b, x, n)
        recomposed = arith.addi(b, arith.muli(b, q, n), r)
        buf = memref.alloc(b, MemRefType((1,), INDEX))
        memref.store(b, recomposed, buf, [arith.index_constant(b, 0)])
        func.return_(b)
        Canonicalize().run(module)
        store = module.op.ops_matching("memref.store")[0]
        assert store.operand(0) is x

    def test_commuted_order_also_folds(self, simple_func):
        module, f, b = simple_func
        n = f.body_block().arg(0)
        x = arith.addi(b, n, n)
        q = arith.divsi(b, x, n)
        r = arith.remsi(b, x, n)
        recomposed = arith.addi(b, r, arith.muli(b, n, q))
        buf = memref.alloc(b, MemRefType((1,), INDEX))
        memref.store(b, recomposed, buf, [arith.index_constant(b, 0)])
        func.return_(b)
        Canonicalize().run(module)
        store = module.op.ops_matching("memref.store")[0]
        assert store.operand(0) is x

    def test_mismatched_divisor_kept(self, simple_func):
        module, f, b = simple_func
        n = f.body_block().arg(0)
        m = arith.addi(b, n, arith.index_constant(b, 1))
        x = arith.addi(b, n, n)
        q = arith.divsi(b, x, n)
        r = arith.remsi(b, x, m)  # different modulus: NOT recomposable
        v = arith.addi(b, arith.muli(b, q, n), r)
        buf = memref.alloc(b, MemRefType((1,), INDEX))
        memref.store(b, v, buf, [arith.index_constant(b, 0)])
        func.return_(b)
        Canonicalize().run(module)
        store = module.op.ops_matching("memref.store")[0]
        assert store.operand(0) is v

    def test_srad_indexing_becomes_coalesced(self):
        """The srad row/col idiom must model as stride-1 after cleanup."""
        source = """
        __global__ void k(float *image, float *out, int nr, int nc) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i >= nr * nc) return;
            int row = i / nc;
            int col = i % nc;
            out[i] = image[row * nc + col];
        }
        """
        from repro.simulator import analyze_coalescing
        from repro.transforms.coarsen import block_parallels, \
            thread_parallel
        module, wrapper = compile_kernel(source, "k", block=(256,))
        run_cleanup(module)
        from repro.dialects import polygeist as pg
        w = pg.find_gpu_wrappers(module.op)[0]
        threads = thread_parallel(block_parallels(w)[0])
        accesses = analyze_coalescing(threads, warp_size=32)
        load = [a for a in accesses if not a.is_store][0]
        assert load.stride_x == 1, "div/mod recomposition must fire"
