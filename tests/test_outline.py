"""Tests for kernel outlining (gpu_wrapper → standalone kernel function)."""

import numpy as np
import pytest

from repro.dialects import func as func_d, polygeist
from repro.frontend import ModuleGenerator, parse_translation_unit
from repro.interpreter import MemoryBuffer, run_module
from repro.ir import F32, verify_module
from repro.transforms import outline_gpu_wrappers, run_cleanup

SOURCE = """
__global__ void k(float *out, float s) {
    __shared__ float t[8];
    t[threadIdx.x] = s;
    __syncthreads();
    out[blockIdx.x * 8 + threadIdx.x] = t[7 - threadIdx.x] * 2.0f;
}
"""


def build():
    unit = parse_translation_unit(SOURCE)
    generator = ModuleGenerator(unit)
    name = generator.get_launch_wrapper("k", 1, (8,))
    return generator.module, name


class TestOutlining:
    def test_wrapper_replaced_by_call(self):
        module, name = build()
        outlined = outline_gpu_wrappers(module)
        verify_module(module)
        assert outlined == ["k_kernel_0"]
        assert not polygeist.find_gpu_wrappers(module.func(name))
        calls = module.func(name).ops_matching("func.call")
        assert len(calls) == 1
        assert calls[0].attr("callee") == "k_kernel_0"

    def test_outlined_kernel_is_marked(self):
        module, name = build()
        outline_gpu_wrappers(module)
        kernel = module.func("k_kernel_0")
        assert func_d.is_kernel(kernel)
        assert polygeist.find_gpu_wrappers(kernel)

    def test_execution_preserved(self):
        module, name = build()
        reference = MemoryBuffer((16,), F32)
        run_module(module, name, [2, reference, np.float32(3.0)])

        module2, name2 = build()
        outline_gpu_wrappers(module2)
        verify_module(module2)
        out = MemoryBuffer((16,), F32)
        run_module(module2, name2, [2, out, np.float32(3.0)])
        np.testing.assert_array_equal(out.array, reference.array)

    def test_cleanup_after_outlining(self):
        module, name = build()
        outline_gpu_wrappers(module)
        run_cleanup(module)
        verify_module(module)
        out = MemoryBuffer((16,), F32)
        run_module(module, name, [2, out, np.float32(3.0)])
        assert (out.array == 6.0).all()

    def test_multiple_wrappers(self):
        source = SOURCE + """
        __global__ void k2(float *out) {
            out[blockIdx.x * 4 + threadIdx.x] = 1.0f;
        }
        """
        unit = parse_translation_unit(source)
        generator = ModuleGenerator(unit)
        generator.get_launch_wrapper("k", 1, (8,))
        generator.get_launch_wrapper("k2", 1, (4,))
        outlined = outline_gpu_wrappers(generator.module)
        assert len(outlined) == 2
        verify_module(generator.module)


class TestGpuLaunchOp:
    """Direct coverage of gpu.launch_func interpretation."""

    def test_launch_func_executes_kernel(self):
        import numpy as np
        from repro.dialects import arith, func as func_d, gpu, memref, scf
        from repro.ir import (Builder, F32, FunctionType, INDEX, MemRefType,
                              Module)
        from repro.interpreter import MemoryBuffer, run_module

        module = Module()
        top = Builder(module.body)
        # kernel: (grid, block, buf) -> fills buf with 3.0 over the nest
        kernel = func_d.func(
            top, "dev_kernel",
            FunctionType((INDEX, INDEX, MemRefType((8,), F32)), ()),
            ["g", "b", "buf"], kernel=True)
        kb = Builder(kernel.body_block())
        g, b_dim, buf = kernel.body_block().args
        c0 = arith.index_constant(kb, 0)
        c1 = arith.index_constant(kb, 1)
        par = scf.parallel(kb, [c0], [g], [c1], gpu_kind="blocks")
        pb = Builder(par.body_block())
        inner = scf.parallel(pb, [c0], [b_dim], [c1], gpu_kind="threads")
        ib = Builder(inner.body_block())
        bx = par.body_block().arg(0)
        tx = inner.body_block().arg(0)
        idx = arith.addi(ib, arith.muli(ib, bx, b_dim), tx)
        memref.store(ib, arith.constant(ib, 3.0, F32), buf, [idx])
        scf.yield_(ib)
        scf.yield_(pb)
        func_d.return_(kb)

        host = func_d.func(top, "main",
                           FunctionType((MemRefType((8,), F32),), ()),
                           ["buf"])
        hb = Builder(host.body_block())
        grid = arith.index_constant(hb, 2)
        block_dim = arith.index_constant(hb, 4)
        gpu.launch_func(hb, "dev_kernel", [grid], [block_dim],
                        [host.body_block().arg(0)])
        func_d.return_(hb)

        out = MemoryBuffer((8,), F32)
        run_module(module, "main", [out])
        assert (out.array == 3.0).all()
