"""Tests for the simulator: coalescing, timing model, caches, traces."""

import numpy as np
import pytest

from repro.dialects import polygeist
from repro.frontend import ModuleGenerator, parse_translation_unit
from repro.interpreter import MemoryBuffer
from repro.ir import F32, verify_module
from repro.simulator import analyze_coalescing, trace_kernel
from repro.simulator.cache import Cache
from repro.simulator.coalescing import transactions_for_stride
from repro.simulator.model import (InvalidLaunch, KernelModel,
                                   model_wrapper_launch)
from repro.targets import A100, A4000, RX6800
from repro.transforms import block_coarsen, coarsen_wrapper, thread_coarsen
from repro.transforms.coarsen import block_parallels, thread_parallel


def build(source, kernel="k", block=(64,), grid_rank=1, coarsen=None):
    unit = parse_translation_unit(source)
    gen = ModuleGenerator(unit)
    name = gen.get_launch_wrapper(kernel, grid_rank, block)
    verify_module(gen.module)
    wrapper = polygeist.find_gpu_wrappers(gen.module.op)[0]
    if coarsen:
        coarsen(wrapper)
        verify_module(gen.module)
    return gen.module, name, wrapper


COALESCED = """
__global__ void k(float *a, float *b) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    b[i] = a[i] * 2.0f;
}
"""

STRIDED = """
__global__ void k(float *a, float *b) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    b[i] = a[i * 32];
}
"""

SHARED_HEAVY = """
__global__ void k(float *a) {
    __shared__ float tile[64];
    int t = threadIdx.x;
    tile[t] = a[blockIdx.x * blockDim.x + t];
    __syncthreads();
    float acc = 0.0f;
    for (int j = 0; j < 64; j++) acc += tile[j];
    a[blockIdx.x * blockDim.x + t] = acc;
}
"""


def grid_env(module, name, values):
    f = module.func(name)
    return dict(zip(f.body_block().args, values))


class TestCoalescingAnalysis:
    def test_unit_stride_detected(self):
        module, name, wrapper = build(COALESCED)
        threads = thread_parallel(block_parallels(wrapper)[0])
        accesses = analyze_coalescing(threads, warp_size=32)
        assert len(accesses) == 2
        for access in accesses:
            assert access.stride_x == 1
            assert access.efficiency == 1.0
            assert access.transactions_per_warp == 4.0  # 128 B / 32 B

    def test_large_stride_detected(self):
        module, name, wrapper = build(STRIDED)
        threads = thread_parallel(block_parallels(wrapper)[0])
        accesses = analyze_coalescing(threads, warp_size=32)
        load = [a for a in accesses if not a.is_store][0]
        assert load.stride_x == 32
        assert load.transactions_per_warp == 32.0
        assert load.efficiency <= 0.125

    def test_transactions_for_stride(self):
        assert transactions_for_stride(0, 4, 32) == 1.0       # broadcast
        assert transactions_for_stride(1, 4, 32) == 4.0       # 128 B span
        assert transactions_for_stride(2, 4, 32) == 8.0       # half waste
        assert transactions_for_stride(None, 4, 32) == 32.0   # scattered
        assert transactions_for_stride(1, 8, 32) == 8.0       # f64

    def test_coalescing_friendly_coarsening_keeps_stride(self):
        """Thread coarsening must not introduce strided accesses
        (Fig. 11: iv + k * new_ub indexing)."""
        module, name, wrapper = build(
            COALESCED, coarsen=lambda w: thread_coarsen(w, (4,)))
        threads = thread_parallel(block_parallels(wrapper)[0])
        accesses = analyze_coalescing(threads, warp_size=32)
        assert len(accesses) == 8  # 4 copies x (load + store)
        for access in accesses:
            assert access.stride_x == 1, "coarsening broke coalescing"

    def test_loop_multiplies_executions(self):
        module, name, wrapper = build(SHARED_HEAVY)
        threads = thread_parallel(block_parallels(wrapper)[0])
        accesses = analyze_coalescing(threads, warp_size=32)
        # only the two global accesses count (tile is shared)
        assert len(accesses) == 2


class TestKernelModel:
    def test_basic_timing_positive(self):
        module, name, wrapper = build(COALESCED)
        loop = block_parallels(wrapper)[0]
        model = KernelModel(loop, A100)
        timing = model.time_launch(1024)
        assert timing.time_seconds > 0
        assert timing.occupancy.occupancy > 0

    def test_more_blocks_more_time(self):
        module, name, wrapper = build(COALESCED)
        loop = block_parallels(wrapper)[0]
        model = KernelModel(loop, A100)
        t1 = model.time_launch(1 << 10).time_seconds
        t2 = model.time_launch(1 << 14).time_seconds
        assert t2 > t1

    def test_strided_slower_than_coalesced(self):
        m1, n1, w1 = build(COALESCED)
        m2, n2, w2 = build(STRIDED)
        many = 1 << 14
        t_coal = KernelModel(block_parallels(w1)[0],
                             A100).time_launch(many).time_seconds
        t_strided = KernelModel(block_parallels(w2)[0],
                                A100).time_launch(many).time_seconds
        assert t_strided > 2 * t_coal

    def test_sub_warp_block_penalized(self):
        """The gaussian pathology: 16-thread blocks underuse lanes."""
        m1, n1, w1 = build(COALESCED, block=(16,))
        m2, n2, w2 = build(COALESCED, block=(64,))
        # same total threads: 4x blocks for the 16-wide config
        t16 = KernelModel(block_parallels(w1)[0],
                          A100).time_launch(4096).time_seconds
        t64 = KernelModel(block_parallels(w2)[0],
                          A100).time_launch(1024).time_seconds
        assert t16 > t64

    def test_block_coarsening_helps_small_blocks(self):
        """Block coarsening improves under-occupied small-block kernels
        (gaussian in §VII-C)."""
        base_m, base_n, base_w = build(COALESCED, block=(16,))
        t_base = KernelModel(block_parallels(base_w)[0],
                             A100).time_launch(8192).time_seconds

        c_m, c_n, c_w = build(COALESCED, block=(16,),
                              coarsen=lambda w: block_coarsen(w, (8,)))
        main = block_parallels(c_w, include_epilogues=False)[0]
        t_coarse = KernelModel(main, A100).time_launch(1024).time_seconds
        assert t_coarse < t_base

    def test_thread_coarsening_below_warp_penalized(self):
        """The lud Fig. 14 cliff: thread factors that break full warps."""
        def time_with_factor(factor):
            m, n, w = build(COALESCED, block=(64,),
                            coarsen=(lambda w_: thread_coarsen(w_, (factor,)))
                            if factor > 1 else None)
            main = block_parallels(w)[0]
            return KernelModel(main, A100).time_launch(2048).time_seconds

        t2 = time_with_factor(2)
        t32 = time_with_factor(32)  # 64/32 = 2 threads per block!
        assert t32 > t2

    def test_amd_lds_offload_detected(self):
        """The nw anomaly: 136 B shared per thread on AMD (§VII-D2)."""
        source = """
        __global__ void k(float *a) {
            __shared__ float big[16][34];
            int t = threadIdx.x;
            big[t][0] = a[t];
            __syncthreads();
            a[t] = big[15 - t][0];
        }
        """
        m, n, w = build(source, block=(16,))
        loop = block_parallels(w)[0]
        model_amd = KernelModel(loop, RX6800)
        model_nv = KernelModel(loop, A100)
        assert model_amd.lds_offloaded
        assert not model_nv.lds_offloaded
        t_amd = model_amd.time_launch(2048).time_seconds
        # disabled offload comparison: shared counted normally
        assert t_amd > 0

    def test_f64_favors_amd_rx6800_over_a4000(self):
        """§VII-D2: double-precision benchmarks run better on RX6800."""
        source_f64 = """
        __global__ void k(double *a, double *b) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            double x = a[i];
            double acc = 0.0;
            for (int j = 0; j < 64; j++) {
                acc = acc * x + 0.5;
                acc = acc * acc + x;
            }
            b[i] = acc;
        }
        """
        m, n, w = build(source_f64)
        loop = block_parallels(w)[0]
        t_a4000 = KernelModel(loop, A4000).time_launch(4096).time_seconds
        t_rx = KernelModel(loop, RX6800).time_launch(4096).time_seconds
        assert t_rx < t_a4000

    def test_oversized_shared_invalid(self):
        source = """
        __global__ void k(float *a) {
            __shared__ float big[70000];
            big[threadIdx.x] = a[threadIdx.x];
            a[threadIdx.x] = big[threadIdx.x];
        }
        """
        m, n, w = build(source)
        loop = block_parallels(w)[0]
        model = KernelModel(loop, A100)
        with pytest.raises(InvalidLaunch):
            model.time_launch(64)

    def test_model_wrapper_launch_with_epilogue(self):
        m, n, w = build(COALESCED,
                        coarsen=lambda w_: block_coarsen(w_, (3,)))
        env = grid_env(m, n, [100])
        timing = model_wrapper_launch(w, A100, env)
        assert timing.time_seconds > 0
        # main runs 33 fused blocks + epilogue 1 block
        assert timing.metrics.num_blocks == 34


class TestCache:
    def test_hits_on_reuse(self):
        cache = Cache(1024, line_bytes=128, ways=2)
        assert not cache.access(1, 0)
        assert cache.access(1, 64)   # same line
        assert not cache.access(1, 128)
        assert cache.access(1, 0)

    def test_eviction_lru(self):
        cache = Cache(2 * 128, line_bytes=128, ways=2)  # 1 set, 2 ways
        cache.access(1, 0)
        cache.access(1, 128)
        cache.access(1, 256)  # evicts line 0
        assert not cache.access(1, 0)

    def test_distinct_buffers_distinct_lines(self):
        cache = Cache(4096)
        cache.access(1, 0)
        assert not cache.access(2, 0)


class TestTrace:
    def test_counters_from_real_execution(self):
        module, name, wrapper = build(SHARED_HEAVY, block=(64,))
        data = MemoryBuffer((256,), F32,
                            data=np.arange(256, dtype=np.float32))
        result = trace_kernel(module, name, [4, data], A100)
        metrics = result.metrics
        # 4 blocks x 64 threads: 2 warp-requests per warp (load+store)
        assert result.global_read_requests == 4 * 2 * 1
        assert result.global_write_requests == 4 * 2
        assert metrics.shmem_to_sm_read_requests == 4 * 2 * 64
        assert metrics.sm_to_shmem_write_requests == 4 * 2

    def test_coalesced_traffic_less_than_strided(self):
        m1, n1, w1 = build(COALESCED, block=(32,))
        m2, n2, w2 = build(STRIDED, block=(32,))
        a1 = MemoryBuffer((4096,), F32)
        b1 = MemoryBuffer((4096,), F32)
        r1 = trace_kernel(m1, n1, [4, a1, b1], A100)
        a2 = MemoryBuffer((4096,), F32)
        b2 = MemoryBuffer((4096,), F32)
        r2 = trace_kernel(m2, n2, [4, a2, b2], A100)
        assert r2.metrics.l2_to_l1_read_bytes > \
            r1.metrics.l2_to_l1_read_bytes

    def test_block_coarsening_reduces_l2_traffic_on_overlap(self):
        """The lud/Table II effect: fused blocks reuse overlapping data
        in L1, reducing L2->L1 reads."""
        source = """
        __global__ void k(float *a, float *b) {
            // every block reads the same leading row: cross-block reuse
            float acc = 0.0f;
            for (int j = 0; j < 32; j++) acc += a[j];
            b[blockIdx.x * blockDim.x + threadIdx.x] = acc;
        }
        """
        m1, n1, w1 = build(source, block=(32,))
        a1 = MemoryBuffer((4096,), F32)
        b1 = MemoryBuffer((4096,), F32)
        base = trace_kernel(m1, n1, [8, a1, b1], A100)

        m2, n2, w2 = build(source, block=(32,),
                           coarsen=lambda w: block_coarsen(w, (4,)))
        a2 = MemoryBuffer((4096,), F32)
        b2 = MemoryBuffer((4096,), F32)
        fused = trace_kernel(m2, n2, [8, a2, b2], A100)
        assert fused.metrics.l2_to_l1_read_bytes < \
            base.metrics.l2_to_l1_read_bytes


class TestBankConflicts:
    def test_factor_formula(self):
        from repro.simulator.coalescing import bank_conflict_factor
        assert bank_conflict_factor(1, 4) == 1.0    # stride 1: clean
        assert bank_conflict_factor(0, 4) == 1.0    # broadcast
        assert bank_conflict_factor(2, 4) == 2.0    # 2-way
        assert bank_conflict_factor(16, 4) == 16.0  # 16-way
        assert bank_conflict_factor(32, 4) == 32.0  # fully serialized
        assert bank_conflict_factor(3, 4) == 1.0    # odd strides are clean
        assert bank_conflict_factor(1, 8) == 2.0    # f64 spans two banks

    def test_column_access_conflicts_detected(self):
        """tile[t][0]-style column accesses serialize (the lud pattern)."""
        from repro.simulator.coalescing import analyze_shared_conflicts
        source = """
        __global__ void k(float *out) {
            __shared__ float tile[32][32];
            int t = threadIdx.x;
            tile[t][0] = 1.0f;          // word stride 32: 32-way conflict
            __syncthreads();
            out[t] = tile[t][0];
        }
        """
        module, name, wrapper = build(source, block=(32,))
        threads = thread_parallel(block_parallels(wrapper)[0])
        factor = analyze_shared_conflicts(threads)
        assert factor == 32.0

    def test_row_access_clean(self):
        from repro.simulator.coalescing import analyze_shared_conflicts
        source = """
        __global__ void k(float *out) {
            __shared__ float tile[32][32];
            int t = threadIdx.x;
            tile[0][t] = 1.0f;           // stride 1: conflict free
            __syncthreads();
            out[t] = tile[0][t];
        }
        """
        module, name, wrapper = build(source, block=(32,))
        threads = thread_parallel(block_parallels(wrapper)[0])
        assert analyze_shared_conflicts(threads) == 1.0

    def test_padding_trick_removes_conflicts(self):
        """The classic [TS][TS+1] padding from hec-transpose."""
        from repro.simulator.coalescing import analyze_shared_conflicts

        def factor_for(cols):
            source = """
            __global__ void k(float *out) {
                __shared__ float tile[32][%d];
                int t = threadIdx.x;
                tile[t][0] = 1.0f;
                __syncthreads();
                out[t] = tile[t][0];
            }
            """ % cols
            module, name, wrapper = build(source, block=(32,))
            threads = thread_parallel(block_parallels(wrapper)[0])
            return analyze_shared_conflicts(threads)

        assert factor_for(32) == 32.0   # power-of-two row: worst case
        assert factor_for(33) == 1.0    # +1 padding: conflict free


class TestMetricsBugfixes:
    """Regressions for the Table II counter and history-attr fixes."""

    def test_dram_counters_report_transferred_bytes(self):
        """Uncoalesced loads: DRAM counters must carry *transferred*
        (transaction) bytes — same as L2→L1 — not the smaller useful-byte
        count the SM requested. The analytical model has no cache-hit
        modeling, so the two levels agree by construction."""
        module, name, wrapper = build(STRIDED)
        model = KernelModel(block_parallels(wrapper)[0], A100)
        features = model.features()
        timing = model.time_launch(64)
        metrics = timing.metrics
        assert metrics.dram_read_bytes == metrics.l2_to_l1_read_bytes
        assert metrics.dram_read_bytes == features.read_bytes * 64
        # stride-32 f32 loads waste most of each 32 B transaction
        assert metrics.dram_read_bytes > 4 * features.useful_read * 64

    def test_coalesced_dram_equals_useful(self):
        """Unit-stride f32: every transferred byte is useful."""
        module, name, wrapper = build(COALESCED)
        model = KernelModel(block_parallels(wrapper)[0], A100)
        features = model.features()
        assert features.read_bytes == features.useful_read

    def test_malformed_coarsen_history_is_invalid_launch(self):
        module, name, wrapper = build(COALESCED)
        loop = block_parallels(wrapper)[0]
        loop.attributes["coarsen.history"] = ["block:dim0:x2", "bogus"]
        with pytest.raises(InvalidLaunch) as excinfo:
            KernelModel(loop, A100)
        assert "malformed coarsen.history entry" in str(excinfo.value)
        assert "bogus" in str(excinfo.value)

    def test_nonpositive_coarsen_factor_is_invalid_launch(self):
        module, name, wrapper = build(COALESCED)
        loop = block_parallels(wrapper)[0]
        loop.attributes["coarsen.history"] = ["thread:dim0:x0"]
        with pytest.raises(InvalidLaunch, match="factor must be positive"):
            KernelModel(loop, A100)


class TestBlockCountsVectorized:
    def test_block_counts_matches_scalar(self):
        from repro.simulator.model import block_count, block_counts

        module, name, wrapper = build(COALESCED, grid_rank=1)
        loop = block_parallels(wrapper)[0]
        f = module.func(name)
        args = f.body_block().args
        envs = [dict(zip(args, [n] + [0] * (len(args) - 1)))
                for n in (1, 7, 64, 1024, 4096)]
        expected = [block_count(loop, env) for env in envs]
        assert block_counts(loop, envs) == expected

    def test_block_counts_ragged_envs_fall_back(self):
        from repro.simulator.model import block_count, block_counts

        module, name, wrapper = build(COALESCED, grid_rank=1)
        loop = block_parallels(wrapper)[0]
        f = module.func(name)
        args = list(f.body_block().args)
        envs = [dict(zip(args, [8] * len(args))),
                {args[0]: 16}]  # ragged: missing keys
        expected = [block_count(loop, env) for env in envs]
        assert block_counts(loop, envs) == expected
