"""Robustness: malformed inputs must fail with the right exception types,
never crash with internal errors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import (CParseError, CodegenError, LexError,
                            parse_translation_unit)
from repro.frontend.preprocessor import PreprocessorError
from repro.ir import ParseError, parse_module, print_module

_EXPECTED = (CParseError, CodegenError, LexError, PreprocessorError,
             RecursionError)


@given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126),
               max_size=200))
@settings(max_examples=150, deadline=None)
def test_random_text_never_crashes_frontend(text):
    try:
        parse_translation_unit(text)
    except _EXPECTED:
        pass


@given(st.text(alphabet="(){}[]<>;,*&%#\"'\\\n abc123_=+-", max_size=120))
@settings(max_examples=150, deadline=None)
def test_punctuation_soup(text):
    try:
        parse_translation_unit(text)
    except _EXPECTED:
        pass


CUDA_SNIPPET = """
__global__ void k(float *x, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= n) return;
    x[i] = x[i] * 2.0f;
}
"""


@given(st.integers(0, len(CUDA_SNIPPET) - 2), st.integers(1, 15))
@settings(max_examples=100, deadline=None)
def test_truncated_source_fails_cleanly(start, length):
    """Deleting a random slice of valid source must not crash."""
    mutated = CUDA_SNIPPET[:start] + CUDA_SNIPPET[start + length:]
    try:
        parse_translation_unit(mutated)
    except _EXPECTED:
        pass


def _ir_sample():
    from repro.frontend import ModuleGenerator
    unit = parse_translation_unit(CUDA_SNIPPET)
    generator = ModuleGenerator(unit)
    generator.get_launch_wrapper("k", 1, (64,))
    return print_module(generator.module)


@given(st.data())
@settings(max_examples=80, deadline=None)
def test_mutated_ir_text_fails_cleanly(data):
    text = _ir_sample()
    start = data.draw(st.integers(0, len(text) - 2))
    length = data.draw(st.integers(1, 20))
    mutated = text[:start] + text[start + length:]
    try:
        module = parse_module(mutated)
    except (ParseError, ValueError):
        return
    # if it parsed, it must also re-print without crashing
    print_module(module)


class TestSpecificMalformed:
    @pytest.mark.parametrize("source", [
        "__global__ void k( {",
        "__global__ void k() { int x = ; }",
        "#define",
        "#endif",
        "__global__ void k() { for (;;) }",
        "__global__ void k() { a[1 = 2; }",
        "void f() { return 1 + ; }",
        "__global__ void k() { __syncthreads(; }",
    ])
    def test_clean_failure(self, source):
        with pytest.raises(_EXPECTED):
            parse_translation_unit(source)

    def test_recursive_macros_terminate(self):
        """Mutually recursive macros stop re-expanding (C's "painted
        blue" rule) rather than looping forever."""
        from repro.frontend.preprocessor import preprocess
        out = preprocess("#define A(x) B(x)\n#define B(x) A(x)\n"
                         "int y = A(1);")
        compact = out.replace(" ", "")
        assert "A(" in compact and "y=" in compact
