"""Tests for the tuning engine: cache, parallel evaluation, stats, and the
correctness fixes that ride along with it (snapshot restoration in
profiling mode, filter-report index remapping, stable model-cache keys,
selector range checks, zero-time speedup guards)."""

import gc

import numpy as np
import pytest

from repro.autotune import default_configs, run_filters, tune_wrapper
from repro.autotune.tdo import (Candidate, TuneOutcome,
                                timing_driven_optimization)
from repro.dialects import polygeist
from repro.engine import (CacheEntry, EngineStats, SequentialBackend,
                          ThreadPoolBackend, TuningCache, TuningEngine,
                          make_backend, source_hash, tuning_key)
from repro.frontend import ModuleGenerator, parse_translation_unit
from repro.ir import verify_module
from repro.pipeline import Program, _fixed_selector
from repro.targets import A100, RX6800
from repro.transforms import generate_coarsening_alternatives


def _square(x):
    """Module-level so ProcessPoolBackend can pickle it."""
    return x * x


SOURCE = """
__global__ void scale(float *x, float a, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= n) return;
    x[i] = x[i] * a;
}
"""

ACCUM_SOURCE = """
__global__ void accum(float *x, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= n) return;
    x[i] = x[i] + 1.0f;
}
"""


def fresh_engine(**kwargs):
    return TuningEngine(cache=TuningCache(), **kwargs)


def build_alt(source=SOURCE, kernel="scale", block=(64,), configs=None):
    unit = parse_translation_unit(source)
    gen = ModuleGenerator(unit)
    name = gen.get_launch_wrapper(kernel, 1, block)
    wrapper = polygeist.find_gpu_wrappers(gen.module.op)[0]
    report = generate_coarsening_alternatives(
        wrapper, configs or default_configs(max_total=4))
    return gen.module, name, wrapper, report


class TestTuningCache:
    def test_same_key_hits_with_identical_outcome(self):
        engine = fresh_engine()
        p1 = Program(SOURCE, arch=A100, engine=engine)
        p1.model_launch("scale", 256, 64)
        assert engine.stats.get("cache_misses") == 1
        assert engine.stats.get("cache_hits") == 0
        gens = engine.stats.get("alternative_generations")
        assert gens == 1

        p2 = Program(SOURCE, arch=A100, engine=engine)
        p2.model_launch("scale", 256, 64)
        assert engine.stats.get("cache_hits") == 1
        # the headline guarantee: zero alternative generations on a hit
        assert engine.stats.get("alternative_generations") == gens

        o1 = p1.tuning_outcomes[next(iter(p1.tuning_outcomes))]
        o2 = p2.tuning_outcomes[next(iter(p2.tuning_outcomes))]
        assert o1.selected_desc == o2.selected_desc
        assert o1.selected_time == o2.selected_time
        assert [(c.desc, c.time_seconds, c.valid) for c in o1.candidates] \
            == [(c.desc, c.time_seconds, c.valid) for c in o2.candidates]

    def test_replay_transforms_module_equivalently(self):
        engine = fresh_engine()
        p1 = Program(SOURCE, arch=A100, engine=engine)
        t1 = p1.model_launch("scale", 4096, 64)
        p2 = Program(SOURCE, arch=A100, engine=engine)
        t2 = p2.model_launch("scale", 4096, 64)
        verify_module(p2.module)
        assert t1.time_seconds == pytest.approx(t2.time_seconds)

    def test_different_arch_misses(self):
        engine = fresh_engine()
        Program(SOURCE, arch=A100, engine=engine).model_launch(
            "scale", 256, 64)
        Program(SOURCE, arch=RX6800, engine=engine).model_launch(
            "scale", 256, 64)
        assert engine.stats.get("cache_misses") == 2
        assert engine.stats.get("cache_hits") == 0

    def test_different_configs_miss(self):
        engine = fresh_engine()
        Program(SOURCE, arch=A100, engine=engine).model_launch(
            "scale", 256, 64)
        Program(SOURCE, arch=A100, engine=engine,
                autotune_configs=default_configs(max_total=2)
                ).model_launch("scale", 256, 64)
        assert engine.stats.get("cache_misses") == 2
        assert engine.stats.get("cache_hits") == 0

    def test_different_geometry_misses(self):
        engine = fresh_engine()
        Program(SOURCE, arch=A100, engine=engine).model_launch(
            "scale", 256, 64)
        Program(SOURCE, arch=A100, engine=engine).model_launch(
            "scale", 512, 64)
        assert engine.stats.get("cache_misses") == 2

    def test_aggregate_tuning_cached(self):
        engine = fresh_engine()
        p1 = Program(SOURCE, arch=A100, engine=engine)
        p1.tune_aggregate("scale", 64, [(256,), (128,)])
        p2 = Program(SOURCE, arch=A100, engine=engine)
        p2.tune_aggregate("scale", 64, [(256,), (128,)])
        assert engine.stats.get("cache_hits") == 1
        assert p1.tuning_outcomes.keys() == p2.tuning_outcomes.keys()

    def test_disk_round_trip(self, tmp_path):
        engine = fresh_engine()
        engine.cache = TuningCache(str(tmp_path))
        p1 = Program(SOURCE, arch=A100, engine=engine)
        p1.model_launch("scale", 256, 64)
        assert engine.cache.disk_entries() == 1

        # a brand-new cache over the same directory serves the entry
        cold = TuningEngine(cache=TuningCache(str(tmp_path)))
        p2 = Program(SOURCE, arch=A100, engine=cold)
        p2.model_launch("scale", 256, 64)
        assert cold.stats.get("cache_hits") == 1
        assert cold.stats.get("alternative_generations", ) == 0
        o1 = next(iter(p1.tuning_outcomes.values()))
        o2 = next(iter(p2.tuning_outcomes.values()))
        assert o1.selected_desc == o2.selected_desc
        assert o1.selected_time == pytest.approx(o2.selected_time)

    def test_cached_entries_are_isolated_copies(self):
        cache = TuningCache()
        outcome = TuneOutcome("block=1 thread=1", 1.0,
                              [Candidate(0, "block=1 thread=1", 1.0, True)])
        cache.store("k", CacheEntry(outcome, {"block_total": 1}))
        outcome.selected_desc = "mutated-after-store"
        hit, entry = cache.lookup("k")
        assert hit
        assert entry.outcome.selected_desc == "block=1 thread=1"
        entry.outcome.selected_desc = "mutated-after-lookup"
        _, again = cache.lookup("k")
        assert again.outcome.selected_desc == "block=1 thread=1"

    def test_key_depends_on_all_inputs(self):
        base = tuning_key("h", A100, "polygeist", [{"block_total": 2}],
                          "w", [(256,)])
        assert base != tuning_key("h2", A100, "polygeist",
                                  [{"block_total": 2}], "w", [(256,)])
        assert base != tuning_key("h", RX6800, "polygeist",
                                  [{"block_total": 2}], "w", [(256,)])
        assert base != tuning_key("h", A100, "clang",
                                  [{"block_total": 2}], "w", [(256,)])
        assert base != tuning_key("h", A100, "polygeist",
                                  [{"block_total": 4}], "w", [(256,)])
        assert base != tuning_key("h", A100, "polygeist",
                                  [{"block_total": 2}], "w2", [(256,)])
        assert base != tuning_key("h", A100, "polygeist",
                                  [{"block_total": 2}], "w", [(512,)])
        # and it is deterministic
        assert base == tuning_key("h", A100, "polygeist",
                                  [{"block_total": 2}], "w", [(256,)])

    def test_source_hash_includes_defines(self):
        assert source_hash("x") != source_hash("y")
        assert source_hash("x", {"N": 1}) != source_hash("x", {"N": 2})


class TestParallelBackend:
    def test_make_backend(self, monkeypatch):
        assert isinstance(make_backend(1), SequentialBackend)
        assert isinstance(make_backend(0), SequentialBackend)
        assert isinstance(make_backend(4), ThreadPoolBackend)
        monkeypatch.setenv("REPRO_TUNE_WORKERS", "3")
        assert isinstance(make_backend(), ThreadPoolBackend)
        monkeypatch.setenv("REPRO_TUNE_WORKERS", "not-a-number")
        assert isinstance(make_backend(), SequentialBackend)

    def test_backends_preserve_order(self):
        items = list(range(40))
        fn = lambda x: x * x
        assert ThreadPoolBackend(4).map(fn, items) == \
            SequentialBackend().map(fn, items)

    def test_make_backend_process_kind(self, monkeypatch):
        from repro.engine import ProcessPoolBackend
        assert isinstance(make_backend(4, kind="process"),
                          ProcessPoolBackend)
        monkeypatch.setenv("REPRO_TUNE_BACKEND", "process")
        assert isinstance(make_backend(4), ProcessPoolBackend)
        monkeypatch.setenv("REPRO_TUNE_BACKEND", "thread")
        assert isinstance(make_backend(4), ThreadPoolBackend)
        # backend kind never overrides a sequential worker count
        assert isinstance(make_backend(1, kind="process"),
                          SequentialBackend)

    def test_process_backend_preserves_order(self):
        from repro.engine import ProcessPoolBackend
        items = list(range(12))
        assert ProcessPoolBackend(2).map(_square, items) == \
            [x * x for x in items]

    def test_process_backend_single_item_shortcut(self):
        # length <= 1 avoids pool startup AND the picklability demand
        from repro.engine import ProcessPoolBackend
        assert ProcessPoolBackend(2).map(lambda x: x + 1, [41]) == [42]

    @pytest.mark.parametrize("bench_name", ["lud", "gaussian"])
    def test_parallel_selects_same_winner(self, bench_name):
        from repro.benchsuite import gaussian, lud  # noqa: F401 (register)
        from repro.benchsuite.base import get_benchmark
        bench = get_benchmark(bench_name)
        grouped = {}
        for kernel, grid, block in bench.iter_launches(bench.verify_size):
            grouped.setdefault((kernel, tuple(block)), []).append(
                tuple(grid))
        for (kernel, block), grids in grouped.items():
            outcomes = {}
            for label, workers in (("sequential", None), ("parallel", 4)):
                engine = fresh_engine(workers=workers)
                program = Program(bench.source, arch=A100, engine=engine)
                program.tune_aggregate(kernel, block, grids)
                outcome = program.tuning_outcomes.get(
                    next(iter(program.tuning_outcomes), None))
                outcomes[label] = outcome
            seq, par = outcomes["sequential"], outcomes["parallel"]
            if seq is None:
                assert par is None
                continue
            assert seq.selected_desc == par.selected_desc, \
                "%s/%s: parallel TDO picked a different winner" % (
                    bench_name, kernel)
            assert seq.selected_time == pytest.approx(par.selected_time)

    def test_tdo_backend_matches_sequential(self):
        module_s, name_s, _, report_s = build_alt()
        module_p, name_p, _, report_p = build_alt()
        env_s = {module_s.func(name_s).body_block().arg(0): 512}
        env_p = {module_p.func(name_p).body_block().arg(0): 512}
        seq = timing_driven_optimization(report_s.op, A100, env_s,
                                         select=False)
        par = timing_driven_optimization(report_p.op, A100, env_p,
                                         select=False,
                                         backend=ThreadPoolBackend(4))
        assert [c.desc for c in seq.candidates] == \
            [c.desc for c in par.candidates]
        assert [c.time_seconds for c in seq.candidates] == \
            pytest.approx([c.time_seconds for c in par.candidates])
        assert seq.selected_desc == par.selected_desc


class TestEngineStats:
    def test_stage_accumulation(self):
        stats = EngineStats()
        with stats.stage("parse"):
            pass
        with stats.stage("parse"):
            pass
        assert stats.stage_calls["parse"] == 2
        assert stats.stage_seconds["parse"] >= 0.0
        stats.count("cache_hits")
        stats.count("cache_hits", 2)
        assert stats.get("cache_hits") == 3
        report = stats.report()
        assert "parse" in report and "cache_hits" in report
        stats.reset()
        assert stats.as_dict() == {"stage_seconds": {}, "stage_calls": {},
                                   "counters": {}}

    def test_program_stats_api(self):
        engine = fresh_engine()
        program = Program(SOURCE, arch=A100, engine=engine)
        program.model_launch("scale", 256, 64)
        stats = program.stats()
        for stage in ("parse", "cleanup", "alternatives", "filters",
                      "tdo"):
            assert stage in stats["stage_seconds"], stage
        assert stats["counters"]["cache_misses"] == 1


class TestProfileSnapshotRestore:
    def test_accumulating_kernel_profiles_correctly(self):
        """runs_per_alternative > 1 must restore device state between runs,
        or each alternative's later runs execute on mutated inputs and the
        final result double-applies the kernel."""
        engine = fresh_engine()
        program = Program(ACCUM_SOURCE, arch=A100, engine=engine,
                          autotune_configs=default_configs(max_total=2))
        x = np.zeros(128, dtype=np.float32)
        program.profile_launch("accum", 2, 64, [x, 128],
                               runs_per_alternative=3)
        # exactly one accumulation: the final (post-profiling) launch
        np.testing.assert_allclose(x, np.ones(128, dtype=np.float32))

    def test_single_run_still_correct(self):
        engine = fresh_engine()
        program = Program(ACCUM_SOURCE, arch=A100, engine=engine,
                          autotune_configs=default_configs(max_total=2))
        x = np.zeros(128, dtype=np.float32)
        program.profile_launch("accum", 2, 64, [x, 128],
                               runs_per_alternative=1)
        np.testing.assert_allclose(x, np.ones(128, dtype=np.float32))


class TestFilterReportRemap:
    def test_merged_survivors_are_original_indices(self):
        # 16 KB static shared per block: block_total >= 4 exceeds the
        # A100's 48 KB per-block limit, so stage 1 prunes a prefix of the
        # alternative list and stage 2's indices must be remapped
        source = """
        __global__ void k(float *a) {
            __shared__ float s[4096];
            s[threadIdx.x] = a[threadIdx.x];
            __syncthreads();
            a[threadIdx.x] = s[threadIdx.x];
        }
        """
        configs = [{"block_total": 4}, {"block_total": 8},
                   {"block_total": 1}, {"block_total": 2}]
        module, name, wrapper, report = build_alt(source, "k", (64,),
                                                  configs)
        descs = list(polygeist.alternative_descs(report.op))
        merged = run_filters(report.op, A100)
        # survivors index the ORIGINAL alternative list (1x and 2x live at
        # original positions 2 and 3), not the pruned op
        assert merged.survivors == [2, 3]
        assert merged.survivor_descs == [descs[2], descs[3]]
        assert len(merged.dropped_shared) == 2
        # and they remain consistent with the op's surviving descs
        assert list(polygeist.alternative_descs(report.op)) == \
            merged.survivor_descs

    def test_no_shared_pruning_keeps_identity_mapping(self):
        module, name, wrapper, report = build_alt()
        total = len(report.op.regions)
        merged = run_filters(report.op, A100)
        assert all(0 <= index < total for index in merged.survivors)
        assert merged.survivor_descs == [
            polygeist.alternative_descs(report.op)[i]
            for i in range(len(report.op.regions))]

    def test_selected_config_matches_winner_desc(self):
        # the remapped indices are what lets tune_wrapper recover the
        # winning coarsening config for cache replay
        module, name, wrapper, report = build_alt()
        del report  # tune_wrapper regenerates alternatives itself
        unit = parse_translation_unit(SOURCE)
        gen = ModuleGenerator(unit)
        wname = gen.get_launch_wrapper("scale", 1, (64,))
        wrapper = polygeist.find_gpu_wrappers(gen.module.op)[0]
        f = gen.module.func(wname)
        env = {f.body_block().arg(0): 512}
        outcome = tune_wrapper(wrapper, A100, env,
                               default_configs(max_total=4))
        assert outcome.selected_config is not None
        block = int(outcome.selected_config.get("block_total", 1))
        thread = int(outcome.selected_config.get("thread_total", 1))
        assert outcome.selected_desc.startswith("block=")
        # desc is "block=AxB thread=CxD"; totals must multiply out
        desc_block, desc_thread = outcome.selected_desc.split()
        prod = lambda text: int(np.prod(
            [int(p) for p in text.split("=")[1].split("x")]))
        assert prod(desc_block) == block
        assert prod(desc_thread) == thread


class TestStableModelKeys:
    def test_stable_uid_unique_and_sticky(self):
        module, name, wrapper, report = build_alt()
        loops = report.op.ops_matching("scf.parallel")
        uids = [op.stable_uid() for op in loops]
        assert len(set(uids)) == len(uids)
        assert [op.stable_uid() for op in loops] == uids  # sticky

    def test_clones_get_fresh_uids(self):
        module, name, wrapper, report = build_alt()
        loop = report.op.ops_matching("scf.parallel")[0]
        uid = loop.stable_uid()
        clone = loop.clone({})
        assert clone.stable_uid() != uid

    def test_uids_never_reused_after_gc(self):
        seen = set()
        for _ in range(50):
            module, name, wrapper, report = build_alt(
                configs=[{"block_total": 1}])
            loop = report.op.ops_matching("scf.parallel")[0]
            uid = loop.stable_uid()
            assert uid not in seen, "stable_uid reused a dead loop's key"
            seen.add(uid)
            del module, wrapper, report, loop
            gc.collect()


class TestSelectorAndSpeedupGuards:
    def test_fixed_selector_raises_out_of_range(self):
        module, name, wrapper, report = build_alt()
        select = _fixed_selector(len(report.op.regions))
        with pytest.raises(IndexError):
            select(report.op)
        # in-range indices pass through unclamped
        assert _fixed_selector(0)(report.op) == 0

    def test_speedup_over_zero_selected_time(self):
        outcome = TuneOutcome("fast", 0.0, [
            Candidate(0, "base", 1.0, True),
            Candidate(1, "fast", 0.0, True),
        ])
        assert outcome.speedup_over("base") == float("inf")
        assert outcome.speedup_over("fast") == 1.0

    def test_speedup_over_missing_baseline_raises(self):
        outcome = TuneOutcome("fast", 0.5, [
            Candidate(0, "base", 1.0, True),
            Candidate(1, "fast", 0.5, True),
            Candidate(2, "broken", float("inf"), False, "invalid launch"),
        ])
        # a missing or invalid baseline is a broken comparison, not 1.0x
        with pytest.raises(KeyError):
            outcome.speedup_over("missing")
        with pytest.raises(KeyError):
            outcome.speedup_over("broken")

    def test_speedup_over_normal_case(self):
        outcome = TuneOutcome("fast", 0.5, [
            Candidate(0, "base", 1.0, True),
            Candidate(1, "fast", 0.5, True),
        ])
        assert outcome.speedup_over("base") == pytest.approx(2.0)


class TestModelMemoization:
    def test_time_launch_memoized_and_isolated(self):
        from repro.simulator.model import KernelModel
        module, name, wrapper, report = build_alt(
            configs=[{"block_total": 1}])
        loop = report.op.ops_matching("scf.parallel")[0]
        model = KernelModel(loop, A100)
        first = model.time_launch(128)
        second = model.time_launch(128)
        assert first.time_seconds == second.time_seconds
        assert first.metrics is not second.metrics
        assert first.breakdown is not second.breakdown
        # mutating one caller's copy must not leak into the next
        first.metrics.time_seconds = -1.0
        first.breakdown["compute"] = -1.0
        third = model.time_launch(128)
        assert third.metrics.time_seconds == second.metrics.time_seconds
        assert third.breakdown["compute"] == second.breakdown["compute"]
        # different block counts are distinct entries
        model.time_launch(256)
        assert set(model._timing_cache) == {128, 256}
