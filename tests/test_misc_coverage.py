"""Coverage for smaller components: pass manager, metrics formatting,
device buffers, interpreter op corners, printer attributes."""

import numpy as np
import pytest

from repro.dialects import arith, func, math, memref, scf
from repro.interpreter import MemoryBuffer, run_module
from repro.ir import (Builder, F32, F64, FunctionType, I1, INDEX,
                      MemRefType, Module, Pass, PassManager, format_attr,
                      parse_op, print_op, verify_module)
from repro.runtime import DeviceBuffer, GPURuntime
from repro.simulator.metrics import KernelMetrics, _fmt_bytes, _fmt_count
from repro.targets import A100


class TestPassManager:
    class CountingPass(Pass):
        name = "counting"

        def __init__(self, changes=1):
            self.remaining = changes
            self.runs = 0

        def run(self, module):
            self.runs += 1
            if self.remaining > 0:
                self.remaining -= 1
                return True
            return False

    def test_changed_passes_recorded(self):
        module = Module()
        p1 = self.CountingPass(changes=1)
        p2 = self.CountingPass(changes=0)
        manager = PassManager([p1, p2], verify=False)
        assert manager.run(module)
        assert manager.changed_passes == ["counting"]

    def test_fixpoint_stops(self):
        module = Module()
        p = self.CountingPass(changes=3)
        manager = PassManager([p], verify=False)
        manager.run_until_fixpoint(module, max_iterations=10)
        assert p.runs == 4  # 3 changing runs + 1 clean run

    def test_verification_between_passes(self):
        class Corrupting(Pass):
            name = "corrupting"

            def run(self, module):
                builder = Builder(module.body)
                use = builder.create("test.use", [], [])
                c = arith.index_constant(builder, 1)
                use._append_operand(c)  # dominance violation
                return True

        from repro.ir import VerificationError
        manager = PassManager([Corrupting()], verify=True)
        with pytest.raises(VerificationError):
            manager.run(Module())


class TestMetricsFormatting:
    def test_byte_units(self):
        assert _fmt_bytes(512) == "512 B"
        assert _fmt_bytes(4.2e3) == "4 KB"
        assert _fmt_bytes(460e6) == "460 MB"
        assert _fmt_bytes(1.5e9) == "1.50 GB"

    def test_count_units(self):
        assert _fmt_count(17) == "17"
        assert _fmt_count(4.16e6) == "4.16 M"
        assert _fmt_count(12.5e3) == "12.50 K"

    def test_table_row_keys(self):
        row = KernelMetrics(time_seconds=0.184).table_row()
        assert row["Runtime"] == "0.1840 s"
        assert "LSU utilization" in row
        assert "ShMem -> SM Read Req." in row


class TestDeviceBuffer:
    def test_dtype_mapping(self):
        assert DeviceBuffer((4,), np.float32).buffer.element == F32
        assert DeviceBuffer((4,), np.float64).buffer.element == F64

    def test_unsupported_dtype(self):
        with pytest.raises(TypeError):
            DeviceBuffer((4,), np.complex64)

    def test_write_read_roundtrip(self):
        buf = DeviceBuffer((2, 3), np.float32)
        data = np.arange(6, dtype=np.float32).reshape(2, 3)
        buf.write(data)
        np.testing.assert_array_equal(buf.read(), data)
        buf.fill(7)
        assert (buf.read() == 7).all()

    def test_runtime_malloc_int_shape(self):
        rt = GPURuntime(A100)
        buf = rt.malloc(16)
        assert buf.shape == (16,)


class TestInterpreterCorners:
    def _run_unary(self, op_builder, value, in_type=F32):
        module = Module()
        builder = Builder(module.body)
        f = func.func(builder, "f", FunctionType(
            (MemRefType((1,), in_type),), ()), ["out"])
        body = Builder(f.body_block())
        x = arith.constant(body, value, in_type)
        result = op_builder(body, x)
        memref.store(body, result, f.body_block().arg(0),
                     [arith.index_constant(body, 0)])
        func.return_(body)
        verify_module(module)
        out = MemoryBuffer((1,), in_type)
        run_module(module, "f", [out])
        return out.array[0]

    def test_tanh(self):
        got = self._run_unary(
            lambda b, x: math.unary(b, "math.tanh", x), 0.5)
        assert got == pytest.approx(np.tanh(np.float32(0.5)))

    def test_rsqrt(self):
        got = self._run_unary(
            lambda b, x: math.unary(b, "math.rsqrt", x), 4.0)
        assert got == pytest.approx(0.5)

    def test_exp2_f64(self):
        got = self._run_unary(
            lambda b, x: math.unary(b, "math.exp2", x), 3.0, F64)
        assert got == 8.0

    def test_negf(self):
        got = self._run_unary(lambda b, x: arith.negf(b, x), 2.5)
        assert got == -2.5

    def test_remf(self):
        module = Module()
        builder = Builder(module.body)
        f = func.func(builder, "f",
                      FunctionType((MemRefType((1,), F32),), ()), ["out"])
        body = Builder(f.body_block())
        a = arith.constant(body, 7.5, F32)
        b_val = arith.constant(body, 2.0, F32)
        r = arith.binary(body, "arith.remf", a, b_val)
        memref.store(body, r, f.body_block().arg(0),
                     [arith.index_constant(body, 0)])
        func.return_(body)
        out = MemoryBuffer((1,), F32)
        run_module(module, "f", [out])
        assert out.array[0] == pytest.approx(1.5)

    def test_shift_ops(self):
        module = Module()
        builder = Builder(module.body)
        f = func.func(builder, "f",
                      FunctionType((MemRefType((2,), INDEX),), ()), ["out"])
        body = Builder(f.body_block())
        x = arith.index_constant(body, 5)
        two = arith.index_constant(body, 2)
        left = arith.binary(body, "arith.shli", x, two)
        right = arith.binary(body, "arith.shrsi", x, two)
        out_arg = f.body_block().arg(0)
        memref.store(body, left, out_arg, [arith.index_constant(body, 0)])
        memref.store(body, right, out_arg, [arith.index_constant(body, 1)])
        func.return_(body)
        out = MemoryBuffer((2,), INDEX)
        run_module(module, "f", [out])
        assert list(out.array) == [20, 1]

    def test_step_budget(self):
        from repro.interpreter import Interpreter, InterpreterError
        module = Module()
        builder = Builder(module.body)
        f = func.func(builder, "f", FunctionType((), ()))
        body = Builder(f.body_block())
        c0 = arith.index_constant(body, 0)
        c1 = arith.index_constant(body, 1)
        big = arith.index_constant(body, 10 ** 6)
        loop = scf.for_(body, c0, big, c1)
        inner = Builder(loop.body_block())
        arith.addi(inner, c1, c1)
        scf.yield_(inner)
        func.return_(body)
        interp = Interpreter(module, max_steps=1000)
        with pytest.raises(InterpreterError):
            interp.run_func("f", [])


class TestPrinterAttrs:
    def test_attr_kinds_roundtrip(self):
        op = parse_op(print_op(parse_op(
            '"t.op"() {a = [1, 2.5, "x", true, none], b = !memref<4xf32>} '
            ': () -> ()')))
        assert op.attr("a") == [1, 2.5, "x", True, None]

    def test_unprintable_attr_rejected(self):
        with pytest.raises(TypeError):
            format_attr(object())

    def test_negative_and_float_attrs(self):
        op = parse_op('"t.op"() {a = -5, b = -2.5} : () -> ()')
        assert op.attr("a") == -5
        assert op.attr("b") == -2.5


class TestBenchmarkCompare:
    def test_relative_error_scaling(self):
        from repro.benchsuite.base import Benchmark
        bench = Benchmark()
        got = {"x": np.array([100.0, 0.5])}
        want = {"x": np.array([101.0, 0.5])}
        # |100-101|/101 ~ 0.0099, second exact
        assert 0.005 < bench.compare(got, want) < 0.02

    def test_empty_arrays(self):
        from repro.benchsuite.base import Benchmark
        bench = Benchmark()
        assert bench.compare({"x": np.array([])},
                             {"x": np.array([])}) == 0.0
