"""Smoke tests: every example script must run end to end."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name, argv=()):
    saved_argv = sys.argv
    sys.argv = [str(EXAMPLES / name), *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = saved_argv


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "correctness: OK" in out
    assert "TDO for" in out


def test_coarsening_explorer(capsys):
    run_example("coarsening_explorer.py")
    out = capsys.readouterr().out
    assert "ORIGINAL parallel representation" in out
    assert "polygeist.barrier" in out
    assert "EPILOGUE" in out
    assert "barrier inside scf.if" in out  # the illegal case


def test_autotune_lud_quick(capsys):
    run_example("autotune_lud.py", ["quick"])
    out = capsys.readouterr().out
    assert "peak:" in out
    assert "b=8" in out


def test_retarget_amd(capsys):
    run_example("retarget_amd.py")
    out = capsys.readouterr().out
    assert "MANUAL FIX" in out.upper() or "manual fixes REQUIRED" in out
    assert "nw on AMD RX6800: OK" in out
    assert "PERFORMANCE PORTABILITY" in out
