"""Tests for the deterministic fault-injection framework.

The framework's contract is determinism: the same seed must always
produce the same plan, and a plan must fire exactly the configured
faults at exactly the configured call counts — otherwise a chaos
campaign's failing seed is a flake, not a bug report.
"""

import json
import os
import threading

import pytest

from repro import faults
from repro.faults import (DIE_EXIT_CODE, FAULT_PLAN_ENV, SITE_KINDS,
                          SITES, FaultError, FaultPlan, FaultSpec)


@pytest.fixture(autouse=True)
def _clean_plan():
    faults.uninstall_plan()
    yield
    faults.uninstall_plan()


class TestFaultPlan:
    def test_seeded_is_deterministic(self):
        one = FaultPlan.seeded(1234, faults=10)
        two = FaultPlan.seeded(1234, faults=10)
        assert one.to_json() == two.to_json()
        assert len(one.specs) == 10

    def test_different_seeds_differ(self):
        assert FaultPlan.seeded(1, faults=10).to_json() != \
            FaultPlan.seeded(2, faults=10).to_json()

    def test_seeded_respects_forbid(self):
        plan = FaultPlan.seeded(7, faults=20, forbid=("die",))
        assert all(spec.kind != "die" for spec in plan.specs)

    def test_seeded_all_forbidden_raises(self):
        with pytest.raises(ValueError, match="forbidden"):
            FaultPlan.seeded(7, sites=("serve.queue.submit",),
                             forbid=("raise",))

    def test_illegal_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan([FaultSpec("no.such.site", 1, "raise")])

    def test_illegal_kind_rejected(self):
        # die is only legal in scheduler workers, never the queue
        with pytest.raises(ValueError, match="not legal"):
            FaultPlan([FaultSpec("serve.queue.submit", 1, "die")])

    def test_every_site_has_kinds(self):
        assert set(SITE_KINDS) == set(SITES)
        assert all(kinds for kinds in SITE_KINDS.values())

    def test_json_roundtrip(self):
        plan = FaultPlan.seeded(42, faults=6)
        again = FaultPlan.from_json(plan.to_json())
        assert again.seed == 42
        assert again.to_json() == plan.to_json()

    def test_fires_exactly_on_configured_call(self):
        plan = FaultPlan([FaultSpec("engine.cache.load", 3, "raise")])
        assert plan.fire("engine.cache.load") is None
        assert plan.fire("engine.cache.load") is None
        spec = plan.fire("engine.cache.load")
        assert spec is not None and spec.kind == "raise"
        assert plan.fire("engine.cache.load") is None
        assert len(plan.fired) == 1

    def test_sites_count_independently(self):
        plan = FaultPlan([FaultSpec("engine.cache.load", 2, "raise"),
                          FaultSpec("engine.cache.dump", 1, "raise")])
        assert plan.fire("engine.cache.dump") is not None
        assert plan.fire("engine.cache.load") is None
        assert plan.fire("engine.cache.load") is not None

    def test_thread_safe_counting(self):
        plan = FaultPlan([FaultSpec("scheduler.worker", 500, "raise")])
        hits = []

        def hammer():
            for _ in range(100):
                if plan.fire("scheduler.worker") is not None:
                    hits.append(1)

        threads = [threading.Thread(target=hammer) for _ in range(5)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert plan.stats()["site_hits"]["scheduler.worker"] == 500
        assert len(hits) == 1  # exactly one thread saw call #500


class TestInstallation:
    def test_no_plan_is_free(self):
        assert faults.active_plan() is None
        assert faults.maybe_fault("engine.cache.load") is None

    def test_install_and_fire(self):
        plan = FaultPlan([FaultSpec("engine.cache.load", 1, "raise")])
        faults.install_plan(plan)
        with pytest.raises(FaultError):
            faults.maybe_fault("engine.cache.load")
        assert plan.fired

    def test_fault_error_is_oserror(self):
        # sites' existing OSError handling must absorb injected faults
        assert issubclass(FaultError, OSError)
        assert FaultError("x").injected

    def test_env_roundtrip(self):
        plan = FaultPlan.seeded(9, faults=4)
        faults.install_plan(plan, env=True)
        assert FAULT_PLAN_ENV in os.environ
        # simulate the worker process: no installed plan, env only
        faults.plan._active = None
        worker_plan = faults.active_plan()
        assert worker_plan is not None
        assert worker_plan.to_json() == plan.to_json()

    def test_env_plan_memoized(self):
        faults.install_plan(FaultPlan.seeded(5, faults=2), env=True)
        faults.plan._active = None
        assert faults.active_plan() is faults.active_plan()

    def test_malformed_env_ignored(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "{not json")
        assert faults.active_plan() is None

    def test_uninstall_clears_env(self):
        faults.install_plan(FaultPlan.seeded(3, faults=2), env=True)
        faults.uninstall_plan()
        assert FAULT_PLAN_ENV not in os.environ
        assert faults.active_plan() is None


class TestKinds:
    def test_sleep_blocks_then_continues(self):
        plan = FaultPlan([FaultSpec("serve.dispatch", 1, "sleep",
                                    seconds=0.05)])
        faults.install_plan(plan)
        import time
        start = time.monotonic()
        assert faults.maybe_fault("serve.dispatch") is None
        assert time.monotonic() - start >= 0.05

    def test_truncate_returned_to_caller(self):
        plan = FaultPlan([FaultSpec("engine.cache.dump", 1, "truncate")])
        faults.install_plan(plan)
        spec = faults.maybe_fault("engine.cache.dump")
        assert spec is not None and spec.kind == "truncate"

    def test_die_demoted_outside_worker_process(self):
        # in this (test-runner) process, die must raise, never _exit
        plan = FaultPlan([FaultSpec("scheduler.worker", 1, "die")])
        faults.install_plan(plan)
        with pytest.raises(FaultError, match="demoted"):
            faults.maybe_fault("scheduler.worker")

    def test_die_kills_real_worker_process(self):
        import multiprocessing

        def victim():
            faults.install_plan(
                FaultPlan([FaultSpec("scheduler.worker", 1, "die")]))
            faults.mark_worker_process()
            faults.maybe_fault("scheduler.worker")

        context = multiprocessing.get_context("fork")
        process = context.Process(target=victim)
        process.start()
        process.join(timeout=30)
        assert process.exitcode == DIE_EXIT_CODE

    def test_fired_faults_counted_in_metrics(self):
        from repro.obs import metrics as obs_metrics
        plan = FaultPlan([FaultSpec("serve.dispatch", 1, "sleep",
                                    seconds=0.0)])
        faults.install_plan(plan)
        with obs_metrics.collecting() as registry:
            faults.maybe_fault("serve.dispatch")
        counters = registry.counter_values()
        assert counters["faults.injected"] == 1
        assert counters["faults.serve.dispatch"] == 1

    def test_stats_reports_fired_specs(self):
        plan = FaultPlan([FaultSpec("serve.dispatch", 1, "sleep",
                                    seconds=0.0)])
        faults.install_plan(plan)
        faults.maybe_fault("serve.dispatch")
        stats = plan.stats()
        assert stats["specs"] == 1
        assert stats["fired"] == [{"site": "serve.dispatch", "call": 1,
                                   "kind": "sleep", "seconds": 0.0}]
        assert json.dumps(stats)  # JSON-able for /v1/faults
