"""Tests for ``repro.analysis.report`` / ``repro.analysis.check`` and the
``repro analyze`` / ``repro check`` CLI: roofline math, bottleneck
classification, the decision narrative, provenance headers on bench and
sweep records, noise-band regression gating (pass / fail / refuse), and
cross-process worker-span merging in traced sweeps."""

import json
import os

import pytest

from repro.__main__ import main
from repro.analysis.check import (CheckUsageError, PROVENANCE_SCHEMA,
                                  compare_records, extract_cells,
                                  parse_noise_band, provenance_header,
                                  record_kind)
from repro.analysis.report import (Bottleneck, REPORT_SCHEMA, Roofline,
                                   VERDICTS, analyze_benchmark,
                                   classify_bottleneck)
from repro.autotune import paper_sweep_configs
from repro.bench import BenchRecorder
from repro.obs import tracer as obs_tracer
from repro.obs.export import chrome_trace_events, summarize_events
from repro.obs.tracer import Span, Tracer, tracing
from repro.targets import A100


@pytest.fixture(scope="module")
def lud_analysis():
    return analyze_benchmark("lud", A100,
                             configs=paper_sweep_configs(max_product=4))


def _roofline(ai=1.0, ridge=10.0, pct_bw=0.5, pct_flops=0.1, dtype="f32"):
    return Roofline(flops=ai * 1e9, dram_bytes=1e9,
                    arithmetic_intensity=ai, ridge_intensity=ridge,
                    dtype=dtype, achieved_gflops=1.0, peak_gflops=10.0,
                    pct_peak_flops=pct_flops, achieved_bandwidth_gbs=1.0,
                    peak_bandwidth_gbs=2.0, pct_peak_bandwidth=pct_bw)


class TestClassifyBottleneck:
    def test_memory_dominant_is_memory_bound(self):
        verdict = classify_bottleneck(
            {"compute": 1.0, "memory": 5.0, "shared": 0.5, "latency": 0.1},
            {"occupancy": 1.0, "limiter": "none"}, _roofline(), 0)
        assert verdict.verdict == "memory-bound"
        assert "DRAM traffic" in verdict.narrative
        assert verdict.evidence["memory_seconds"] == 5.0

    def test_shared_dominant_is_memory_bound_via_shared(self):
        verdict = classify_bottleneck(
            {"compute": 1.0, "memory": 0.5, "shared": 5.0, "latency": 0.1},
            {"occupancy": 1.0, "limiter": "none"}, _roofline(), 0)
        assert verdict.verdict == "memory-bound"
        assert "shared-memory" in verdict.narrative

    def test_latency_floor_dominant(self):
        verdict = classify_bottleneck(
            {"compute": 1.0, "memory": 0.5, "shared": 0.0, "latency": 5.0},
            {"occupancy": 0.9, "limiter": "none"}, _roofline(), 0)
        assert verdict.verdict == "latency"

    def test_latency_with_low_occupancy_is_occupancy_capped(self):
        verdict = classify_bottleneck(
            {"compute": 1.0, "memory": 0.5, "shared": 0.0, "latency": 5.0},
            {"occupancy": 0.25, "limiter": "registers"}, _roofline(), 0)
        assert verdict.verdict == "occupancy-capped"
        assert "registers" in verdict.narrative

    def test_compute_dominant_clean_is_compute_bound(self):
        verdict = classify_bottleneck(
            {"compute": 5.0, "memory": 0.5, "shared": 0.0, "latency": 0.1},
            {"occupancy": 1.0, "limiter": "none"}, _roofline(), 0)
        assert verdict.verdict == "compute-bound"

    def test_compute_dominant_with_divergence(self):
        verdict = classify_bottleneck(
            {"compute": 5.0, "memory": 0.5, "shared": 0.0, "latency": 0.1},
            {"occupancy": 1.0, "limiter": "none"}, _roofline(), 3)
        assert verdict.verdict == "divergence"

    def test_compute_dominant_low_occupancy(self):
        verdict = classify_bottleneck(
            {"compute": 5.0, "memory": 0.5, "shared": 0.0, "latency": 0.1},
            {"occupancy": 0.3, "limiter": "shared"}, _roofline(), 0)
        assert verdict.verdict == "occupancy-capped"

    def test_every_verdict_is_named(self):
        assert set(VERDICTS) == {"memory-bound", "occupancy-capped",
                                 "divergence", "latency", "compute-bound"}


class TestAnalyzeBenchmark:
    def test_reports_cover_every_kernel_group(self, lud_analysis):
        assert lud_analysis.benchmark == "lud"
        assert lud_analysis.arch == A100.name
        kernels = {report.kernel for report in lud_analysis.kernels}
        assert kernels == {"lud_diagonal", "lud_perimeter", "lud_internal"}

    def test_named_bottleneck_with_roofline_numbers(self, lud_analysis):
        for report in lud_analysis.kernels:
            assert report.bottleneck.verdict in VERDICTS
            assert report.bottleneck.narrative
            roof = report.roofline
            assert roof.flops > 0
            assert roof.dram_bytes > 0
            assert roof.arithmetic_intensity == pytest.approx(
                roof.flops / roof.dram_bytes)
            assert roof.ridge_intensity == pytest.approx(
                A100.ridge_intensity(roof.dtype))
            assert 0.0 < roof.pct_peak_bandwidth <= 1.0

    def test_decision_narrative_explains_winner(self, lud_analysis):
        internal = next(r for r in lud_analysis.kernels
                        if r.kernel == "lud_internal")
        decisions = internal.decisions
        assert decisions["alternatives"] > 1
        assert decisions["winner"] is not None
        assert "TDO considered" in decisions["narrative"]
        assert "won" in decisions["narrative"]

    def test_baseline_comparison_present(self, lud_analysis):
        internal = next(r for r in lud_analysis.kernels
                        if r.kernel == "lud_internal")
        assert internal.baseline_seconds is not None
        assert internal.speedup_vs_baseline == pytest.approx(
            internal.baseline_seconds / internal.modeled_seconds)

    def test_stages_and_spans_captured(self, lud_analysis):
        assert "tdo" in lud_analysis.stages
        assert lud_analysis.spans
        assert all(self_seconds >= 0.0
                   for _, _, self_seconds in lud_analysis.spans)

    def test_composite_includes_pcie(self, lud_analysis):
        kernel_seconds = sum(r.modeled_seconds
                             for r in lud_analysis.kernels)
        assert lud_analysis.composite_seconds == pytest.approx(
            kernel_seconds + lud_analysis.pcie_seconds)

    def test_as_dict_is_json_round_trippable(self, lud_analysis):
        payload = json.loads(json.dumps(lud_analysis.as_dict()))
        assert payload["schema"] == REPORT_SCHEMA
        assert payload["provenance"]["schema"] == REPORT_SCHEMA
        assert payload["provenance"]["created"] is None  # caller's job
        verdicts = [k["bottleneck"]["verdict"] for k in payload["kernels"]]
        assert all(v in VERDICTS for v in verdicts)

    def test_markdown_names_verdict_and_winner(self, lud_analysis):
        text = lud_analysis.to_markdown()
        assert "**Verdict:" in text
        assert "Why the winner won" in text
        assert "roofline:" in text


class TestAnalyzeCLI:
    def test_json_and_markdown_output(self, tmp_path, capsys):
        out = str(tmp_path / "report.json")
        assert main(["analyze", "lud", "--arch", "a100",
                     "--max-factor", "4", "--json", out,
                     "--markdown"]) == 0
        printed = capsys.readouterr().out
        assert "**Verdict:" in printed
        with open(out) as handle:
            payload = json.load(handle)
        assert payload["benchmark"] == "lud"
        assert payload["provenance"]["created"]  # CLI stamps a timestamp
        assert payload["kernels"][0]["bottleneck"]["verdict"] in VERDICTS

    def test_unknown_benchmark_rejected(self, capsys):
        assert main(["analyze", "no-such-bench"]) == 1
        assert "unknown benchmark" in capsys.readouterr().err


# -- check: noise-band regression gating --------------------------------------


def _bench_record(batched=3.0, scalar=5.0, archs=("NVIDIA A100",),
                  **prov_overrides):
    provenance = provenance_header(list(archs), created=None)
    provenance.update(prov_overrides)
    return {
        "name": "fig16",
        "provenance": provenance,
        "config": {"archs": list(archs)},
        "measurements": [
            {"label": "scalar", "cpu_seconds": scalar, "wall_seconds": 1.0,
             "repeats": 1, "meta": {}},
            {"label": "batched", "cpu_seconds": batched,
             "wall_seconds": 1.0, "repeats": 1, "meta": {}},
        ],
        "derived": {},
    }


class TestParseNoiseBand:
    def test_percent_and_fraction(self):
        assert parse_noise_band("5%") == pytest.approx(0.05)
        assert parse_noise_band("0.05") == pytest.approx(0.05)
        assert parse_noise_band(" 12.5% ") == pytest.approx(0.125)

    def test_garbage_and_negative_rejected(self):
        with pytest.raises(CheckUsageError):
            parse_noise_band("lots")
        with pytest.raises(CheckUsageError):
            parse_noise_band("-1%")


class TestCompareRecords:
    def test_identical_records_pass(self):
        report = compare_records(_bench_record(), _bench_record())
        assert report.ok
        assert not report.regressions
        assert "PASS" in report.summary()

    def test_regression_beyond_band_fails(self):
        report = compare_records(_bench_record(batched=3.0),
                                 _bench_record(batched=3.5),
                                 noise_band=0.05)
        assert not report.ok
        (cell,) = report.regressions
        assert cell.key == "measure|batched|cpu_seconds"
        assert "REGRESSION" in report.summary()

    def test_slowdown_within_band_is_ok(self):
        report = compare_records(_bench_record(batched=3.0),
                                 _bench_record(batched=3.05),
                                 noise_band=0.05)
        assert report.ok

    def test_improvement_reported_but_passes(self):
        report = compare_records(_bench_record(batched=3.0),
                                 _bench_record(batched=2.0),
                                 noise_band=0.05)
        assert report.ok
        assert "improvement" in report.summary()

    def test_missing_cell_fails(self):
        new = _bench_record()
        del new["measurements"][1]
        report = compare_records(_bench_record(), new)
        assert not report.ok
        assert report.missing
        assert "MISSING" in report.summary()

    def test_added_cell_is_informational(self):
        new = _bench_record()
        new["measurements"].append(
            {"label": "extra", "cpu_seconds": 1.0, "wall_seconds": 1.0,
             "repeats": 1, "meta": {}})
        report = compare_records(_bench_record(), new)
        assert report.ok
        assert "added" in report.summary()

    def test_cross_arch_refused(self):
        with pytest.raises(CheckUsageError, match="cross-arch"):
            compare_records(_bench_record(),
                            _bench_record(archs=("AMD MI210",)))

    def test_cross_schema_refused(self):
        with pytest.raises(CheckUsageError, match="cross-schema"):
            compare_records(_bench_record(),
                            _bench_record(schema=PROVENANCE_SCHEMA + 1))

    def test_missing_provenance_refused(self):
        bare = _bench_record()
        del bare["provenance"]
        with pytest.raises(CheckUsageError, match="no provenance"):
            compare_records(_bench_record(), bare)

    def test_kind_mismatch_refused(self):
        sweep = {"figure": "fig16", "provenance": provenance_header(),
                 "data": {}}
        with pytest.raises(CheckUsageError, match="not comparable"):
            compare_records(_bench_record(), sweep)

    def test_version_skew_warns_but_compares(self):
        report = compare_records(_bench_record(),
                                 _bench_record(repro_version="0.9"))
        assert report.ok
        assert any("repro version differs" in w for w in report.warnings)


class TestExtractCells:
    def test_fig16_sweep_cells(self):
        payload = {
            "figure": "fig16",
            "data": {"lud": {"NVIDIA A100": {"clang": 2.0,
                                             "polygeist": 1.0}}},
        }
        assert extract_cells(payload) == {
            "lud|NVIDIA A100|clang": 2.0,
            "lud|NVIDIA A100|polygeist": 1.0,
        }

    def test_fig13_skips_invalid_results(self):
        payload = {
            "figure": "fig13",
            "data": [{"benchmark": "nn", "kernel": "k", "block": [64],
                      "results": [
                          {"desc": "block=1 thread=1", "seconds": 1.0,
                           "valid": True},
                          {"desc": "block=8 thread=8", "seconds": None,
                           "valid": False}]}],
        }
        assert extract_cells(payload) == {
            "nn|k|64|block=1 thread=1": 1.0}

    def test_incomplete_sweep_refused(self):
        with pytest.raises(CheckUsageError, match="no merged data"):
            extract_cells({"figure": "fig16", "data": None})

    def test_record_kind_rejects_garbage(self):
        with pytest.raises(CheckUsageError, match="unrecognized"):
            record_kind({"something": "else"})


class TestCheckCLI:
    def _write(self, tmp_path, name, payload):
        path = str(tmp_path / name)
        with open(path, "w") as handle:
            json.dump(payload, handle)
        return path

    def test_exit_0_on_identical(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", _bench_record())
        b = self._write(tmp_path, "b.json", _bench_record())
        assert main(["check", a, b, "--noise-band", "5%"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_exit_1_on_regression(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", _bench_record(batched=3.0))
        b = self._write(tmp_path, "b.json", _bench_record(batched=4.0))
        assert main(["check", a, b, "--noise-band", "5%"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_exit_2_on_refusal(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", _bench_record())
        b = self._write(tmp_path, "b.json",
                        _bench_record(archs=("AMD MI210",)))
        assert main(["check", a, b]) == 2
        assert "check refused" in capsys.readouterr().err

    def test_exit_2_on_unreadable_file(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", _bench_record())
        assert main(["check", a, str(tmp_path / "missing.json")]) == 2
        assert "check refused" in capsys.readouterr().err


# -- provenance headers on producers ------------------------------------------


class TestProvenanceHeaders:
    def test_header_shape(self):
        header = provenance_header(["NVIDIA A100"], created="t0")
        assert header["schema"] == PROVENANCE_SCHEMA
        assert header["arch"] == ["NVIDIA A100"]
        assert header["created"] == "t0"
        assert header["repro_version"]
        assert header["python"]

    def test_archs_sorted_for_stable_comparison(self):
        header = provenance_header(["b-arch", "a-arch"])
        assert header["arch"] == ["a-arch", "b-arch"]

    def test_bench_recorder_stamps_provenance(self):
        recorder = BenchRecorder("fig16",
                                 config={"archs": ["NVIDIA A100"]})
        payload = recorder.to_dict()
        assert payload["provenance"]["schema"] == PROVENANCE_SCHEMA
        assert payload["provenance"]["arch"] == ["NVIDIA A100"]
        assert payload["provenance"]["created"] == payload["created"]

    def test_sweep_json_stamps_provenance(self, tmp_path):
        from repro.autotune.search import default_configs
        from repro.benchsuite.sweeps import (run_figure_sweep,
                                             write_sweep_json)
        outcome = run_figure_sweep(
            "fig16", workers=1, benchmarks=["nn"], archs=[A100],
            tiers=("clang",), configs=default_configs(max_total=2),
            serial_fallback=False)
        assert outcome.archs == [A100.name]
        path = str(tmp_path / "sweep.json")
        write_sweep_json(path, outcome, created="t1")
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["provenance"]["schema"] == PROVENANCE_SCHEMA
        assert payload["provenance"]["arch"] == [A100.name]
        assert payload["provenance"]["created"] == "t1"
        # and a self-comparison of the written record passes the gate
        report = compare_records(payload, payload)
        assert report.ok


# -- cross-process span merging -----------------------------------------------


class TestWorkerSpanMerge:
    def test_absorb_rebases_epoch_and_keeps_pid(self):
        parent = Tracer()
        remote_epoch = parent.epoch - 2.0
        raw = Span(name="w", category="c", start=5.0, duration=1.0,
                   tid=7, depth=0, parent=None, pid=4242).as_dict()
        assert parent.absorb([raw], epoch=remote_epoch) == 1
        (span,) = parent.finished()
        assert span.pid == 4242
        assert span.start == pytest.approx(3.0)  # 5.0 - 2.0
        assert span.tid == 7

    def test_as_dict_fills_own_pid(self):
        span = Span(name="local", category="c", start=0.0, duration=1.0,
                    tid=1, depth=0, parent=None)
        assert span.as_dict()["pid"] == os.getpid()

    def test_equal_tids_from_different_pids_get_distinct_lanes(self):
        spans = [
            Span(name="local", category="c", start=0.0, duration=1.0,
                 tid=7, depth=0, parent=None, pid=0),
            Span(name="remote", category="c", start=0.0, duration=1.0,
                 tid=7, depth=0, parent=None, pid=999),
        ]
        events = chrome_trace_events(spans, pid=1)
        lanes = {(e["pid"], e["tid"]) for e in events}
        assert len(lanes) == 2

    def test_summarize_events_keeps_processes_apart(self):
        # same tid in two processes; merging the lanes would nest
        # "remote" under "local" and steal its self time
        events = [
            {"name": "local", "ph": "X", "ts": 0.0, "dur": 100.0,
             "pid": 1, "tid": 0},
            {"name": "remote", "ph": "X", "ts": 10.0, "dur": 40.0,
             "pid": 2, "tid": 0},
        ]
        summary = summarize_events(events)
        local_row = next(line for line in summary.splitlines()
                         if line.startswith("local"))
        assert "0.000100s" in local_row  # full 100us kept as self time

    def test_traced_process_pool_sweep_merges_nested_spans(self):
        from repro.autotune.search import default_configs
        from repro.benchsuite.sweeps import run_figure_sweep
        with tracing() as tracer:
            outcome = run_figure_sweep(
                "fig16", workers=2, benchmarks=["gaussian", "nn"],
                archs=[A100], tiers=("clang",),
                configs=default_configs(max_total=2),
                serial_fallback=False)
        assert outcome.data is not None
        spans = tracer.finished()
        worker_pids = {s.pid for s in spans if s.pid != 0}
        assert worker_pids  # worker spans came home
        assert os.getpid() not in worker_pids
        # nesting survived the round trip
        nested = [s for s in spans if s.pid != 0 and s.depth > 0]
        assert nested
        assert all(s.parent is not None for s in nested)
        # lanes stay per-process in the export
        events = chrome_trace_events(spans)
        by_lane = {}
        for event in events:
            by_lane.setdefault((event["pid"], event["tid"]),
                               set()).add(event["pid"])
        assert all(len(pids) == 1 for pids in by_lane.values())

    def test_untraced_sweep_ships_no_spans(self):
        from repro.autotune.search import default_configs
        from repro.benchsuite.sweeps import run_figure_sweep
        assert obs_tracer.current() is None
        outcome = run_figure_sweep(
            "fig16", workers=1, benchmarks=["nn"], archs=[A100],
            tiers=("clang",), configs=default_configs(max_total=2),
            serial_fallback=False)
        assert outcome.data is not None


# -- histogram percentiles ----------------------------------------------------


class TestHistogramPercentiles:
    def test_exact_small_sample(self):
        from repro.obs.metrics import Histogram
        h = Histogram("h")
        for value in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0):
            h.observe(value)
        assert h.percentile(0.5) == 5.0
        assert h.percentile(0.9) == 9.0
        summary = h.summary()
        assert summary["p50"] == 5.0
        assert summary["p90"] == 9.0
        assert summary["count"] == 10

    def test_reservoir_stays_bounded_and_representative(self):
        from repro.obs.metrics import Histogram
        h = Histogram("h")
        n = 3 * Histogram.SAMPLE_CAP
        for i in range(n):
            h.observe(float(i))
        assert len(h._samples) <= Histogram.SAMPLE_CAP
        assert h.count == n
        # decimation keeps an evenly-strided subsequence, so the
        # percentile estimate stays near the true quantile
        assert h.percentile(0.5) == pytest.approx(n / 2, rel=0.01)
        assert h.percentile(0.9) == pytest.approx(0.9 * n, rel=0.01)

    def test_empty_histogram_summary(self):
        from repro.obs.metrics import Histogram
        summary = Histogram("h").summary()
        assert summary["p50"] == 0.0
        assert summary["p90"] == 0.0

    def test_histogram_table_renders_percentiles(self):
        from repro.obs.export import histogram_table
        table = histogram_table({"stage.tdo": {
            "count": 3, "mean": 2.0, "p50": 2.0, "p90": 3.0, "max": 3.0}})
        header = table.splitlines()[0].split()
        assert header == ["histogram", "count", "mean", "p50", "p90",
                          "max"]
        assert "stage.tdo" in table
