"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main

SOURCE = """
__global__ void scale(float *x, float a, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= n) return;
    x[i] = x[i] * a;
}
"""

CUDA_HOST = """
#include <cuda_runtime.h>
__global__ void k(float *x) { x[threadIdx.x] = 1.0f; }
void run(float *x) { cudaDeviceSynchronize(); }
"""


@pytest.fixture
def cu_file(tmp_path):
    path = tmp_path / "demo.cu"
    path.write_text(SOURCE)
    return str(path)


class TestEmitIR:
    def test_prints_parallel_ir(self, cu_file, capsys):
        assert main(["emit-ir", cu_file, "--block", "128"]) == 0
        out = capsys.readouterr().out
        assert "polygeist.gpu_wrapper" in out
        assert '"scf.parallel"' in out
        assert "gpu.kind" in out

    def test_coarsening_applied(self, cu_file, capsys):
        assert main(["emit-ir", cu_file, "--block", "128",
                     "--thread-factor", "2"]) == 0
        out = capsys.readouterr().out
        assert "coarsened: block=1 thread=2" in out
        assert "coarsen.history" in out

    def test_missing_kernel_errors(self, tmp_path, capsys):
        path = tmp_path / "empty.cu"
        path.write_text("void host_only() {}")
        assert main(["emit-ir", str(path)]) == 1


class TestTune:
    def test_table_printed(self, cu_file, capsys):
        assert main(["tune", cu_file, "scale", "--grid", "4096",
                     "--block", "256", "--max-factor", "4"]) == 0
        out = capsys.readouterr().out
        assert "block=1 thread=1" in out
        assert "best:" in out
        assert "A100" in out

    def test_arch_selection(self, cu_file, capsys):
        assert main(["tune", cu_file, "scale", "--arch", "rx6800",
                     "--grid", "1024", "--block", "256",
                     "--max-factor", "2"]) == 0
        assert "RX6800" in capsys.readouterr().out


class TestHipify:
    def test_translation_and_exit_code(self, tmp_path, capsys):
        path = tmp_path / "host.cu"
        path.write_text(CUDA_HOST)
        code = main(["hipify", str(path)])
        captured = capsys.readouterr()
        assert "hipDeviceSynchronize" in captured.out
        assert "hip/hip_runtime.h" in captured.out
        assert code == 0  # header mapped automatically -> clean

    def test_manual_fixes_nonzero_exit(self, tmp_path, capsys):
        path = tmp_path / "bad.cu"
        path.write_text('#include "helper_cuda.h"\n'
                        "__global__ void k(float* p) { p[0] = 1.0f; }")
        code = main(["hipify", str(path)])
        captured = capsys.readouterr()
        assert code == 2
        assert "MANUAL FIX NEEDED" in captured.err

    def test_output_file(self, tmp_path):
        path = tmp_path / "host.cu"
        path.write_text(CUDA_HOST)
        out = tmp_path / "host.hip.cpp"
        main(["hipify", str(path), "-o", str(out)])
        assert "hipDeviceSynchronize" in out.read_text()


class TestTargets:
    def test_all_four_listed(self, capsys):
        assert main(["targets"]) == 0
        out = capsys.readouterr().out
        for name in ("A4000", "A100", "RX6800", "MI210"):
            assert name in out


class TestSweep:
    def test_fig16_json_and_resume(self, tmp_path, capsys):
        import json
        out = tmp_path / "sweep.json"
        argv = ["sweep", "fig16", "--benchmarks", "nn", "--arch", "a100",
                "--max-factor", "2", "--workers", "1",
                "--json", str(out)]
        assert main(argv) == 0
        captured = capsys.readouterr().out
        assert "3 job(s) run" in captured  # nn x a100 x 3 tiers
        payload = json.loads(out.read_text())
        assert payload["figure"] == "fig16"
        assert len(payload["jobs"]) == 3
        assert payload["failed"] == {}
        assert payload["data"]["nn"]["NVIDIA A100"]["clang"] > 0
        # second run resumes every job from the file
        assert main(argv + ["--resume"]) == 0
        captured = capsys.readouterr().out
        assert "0 job(s) run, 3 resumed" in captured

    def test_table2(self, tmp_path, capsys):
        out = tmp_path / "t2.json"
        assert main(["sweep", "table2", "--workers", "1",
                     "--json", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "3 job(s) run" in captured
        assert out.exists()

    def test_resume_requires_json(self, capsys):
        assert main(["sweep", "fig16", "--resume"]) == 1
        assert "--resume needs --json" in capsys.readouterr().err

    def test_resume_rejects_other_figure(self, tmp_path, capsys):
        import json
        out = tmp_path / "sweep.json"
        out.write_text(json.dumps({"figure": "fig13", "jobs": {}}))
        assert main(["sweep", "fig16", "--resume",
                     "--json", str(out)]) == 1
        assert "cannot resume" in capsys.readouterr().err
