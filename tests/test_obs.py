"""Tests for the ``repro.obs`` observability layer: tracer spans (incl.
nesting under the parallel tuning backend), Chrome trace-event export,
metrics registry and the EngineStats facade, the TDO decision log, the
``tune --trace`` / ``--explain`` / ``trace summarize`` CLI, pass-failure
records, logging flags, and the disabled-path overhead guard."""

import json
import logging
import threading
import time

import pytest

from repro.__main__ import main
from repro.autotune import paper_sweep_configs
from repro.benchsuite import get_benchmark
from repro.engine import EngineStats, TuningEngine
from repro.ir import Builder, Module, Pass, PassManager, count_ops
from repro.obs import decisions as obs_decisions
from repro.obs import metrics as obs_metrics
from repro.obs import tracer as obs_tracer
from repro.obs.decisions import (DecisionLog, GENERATION, REGISTERS,
                                 SHARED_MEMORY, TIMING, TuneDecision)
from repro.obs.export import (chrome_trace_events, flame_summary,
                              summarize_events, summarize_trace_file,
                              trace_payload, write_chrome_trace)
from repro.obs.log import configure_logging, get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_SPAN, Tracer, tracing
from repro.targets import A100

SOURCE = """
__global__ void scale(float *x, float a, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= n) return;
    x[i] = x[i] * a;
}
"""

EPS = 1e-9


class TestTracer:
    def test_disabled_path_is_shared_noop(self):
        assert obs_tracer.current() is None
        probe = obs_tracer.span("anything", category="x", detail=1)
        assert probe is NULL_SPAN
        assert probe.set(more=2) is NULL_SPAN
        with probe:
            pass  # must be usable as a context manager

    def test_nesting_depth_parent_and_self_time(self):
        with tracing() as tracer:
            with obs_tracer.span("outer"):
                with obs_tracer.span("inner"):
                    time.sleep(0.001)
        spans = {s.name: s for s in tracer.finished()}
        assert spans["inner"].depth == 1
        assert spans["inner"].parent == "outer"
        assert spans["outer"].depth == 0
        assert spans["outer"].parent is None
        assert spans["outer"].child_seconds >= spans["inner"].duration - EPS
        assert spans["outer"].self_seconds <= spans["outer"].duration
        assert spans["inner"].end <= spans["outer"].end + EPS

    def test_span_args_and_set(self):
        with tracing() as tracer:
            with obs_tracer.span("work", category="test", size=4) as live:
                live.set(result=8)
        (recorded,) = tracer.finished()
        assert recorded.category == "test"
        assert recorded.args == {"size": 4, "result": 8}

    def test_exception_is_annotated_and_propagates(self):
        with tracing() as tracer:
            with pytest.raises(ValueError):
                with obs_tracer.span("doomed"):
                    raise ValueError("boom")
        (recorded,) = tracer.finished()
        assert recorded.args["error"] == "ValueError"

    def test_tracing_restores_previous_tracer(self):
        outer = obs_tracer.install(Tracer())
        try:
            with tracing() as inner:
                assert obs_tracer.current() is inner
            assert obs_tracer.current() is outer
        finally:
            obs_tracer.uninstall()

    def test_threads_keep_independent_stacks(self):
        tracer = Tracer()

        def worker(label):
            with tracer.span("outer-%s" % label):
                with tracer.span("inner-%s" % label):
                    time.sleep(0.001)

        with tracing(tracer):
            threads = [threading.Thread(target=worker, args=(str(i),))
                       for i in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        for span in tracer.finished():
            if span.name.startswith("inner-"):
                label = span.name.split("-", 1)[1]
                assert span.parent == "outer-%s" % label
                assert span.depth == 1


def _assert_well_nested(spans):
    """Spans on one thread must nest or be disjoint, never interleave."""
    by_tid = {}
    for span in spans:
        by_tid.setdefault(span.tid, []).append(span)
    for tid_spans in by_tid.values():
        tid_spans.sort(key=lambda s: (s.start, -s.duration))
        stack = []
        for span in tid_spans:
            while stack and stack[-1].end <= span.start + EPS:
                stack.pop()
            if stack:
                assert span.end <= stack[-1].end + EPS, \
                    "span %r interleaves with %r" % (span.name,
                                                     stack[-1].name)
                assert span.depth > stack[-1].depth
            stack.append(span)


class TestParallelBackendNesting:
    def test_spans_nest_under_thread_pool(self):
        from repro.__main__ import _run_full_tune
        engine = TuningEngine(workers=2)
        configs = paper_sweep_configs(max_product=4)
        with tracing() as tracer:
            _run_full_tune(SOURCE, "scale", (256,), [(64,)], A100,
                           configs, engine)
        spans = tracer.finished()
        names = {s.name for s in spans}
        assert "tdo" in names
        assert "tdo.alternative" in names
        assert "filters" in names
        # the pool evaluated alternatives off the main thread
        eval_tids = {s.tid for s in spans if s.name == "tdo.alternative"}
        assert threading.get_ident() not in eval_tids
        for span in spans:
            if span.depth > 0:
                assert span.parent is not None
        _assert_well_nested(spans)

    def test_model_spans_carry_worker_tids(self):
        from repro.__main__ import _run_full_tune
        engine = TuningEngine(workers=2)
        configs = paper_sweep_configs(max_product=8)
        with tracing() as tracer:
            _run_full_tune(SOURCE, "scale", (256,), [(64,)], A100,
                           configs, engine)
        compute = [s for s in tracer.finished()
                   if s.name == "model.compute"]
        assert compute
        for span in compute:
            assert span.parent is not None


class TestChromeExport:
    def _traced(self):
        with tracing() as tracer:
            with obs_tracer.span("a", category="cat-a", k=1):
                with obs_tracer.span("b", category="cat-b"):
                    time.sleep(0.001)
        return tracer

    def test_events_follow_trace_event_schema(self):
        tracer = self._traced()
        events = chrome_trace_events(tracer.finished())
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert isinstance(event["name"], str)
            assert isinstance(event["cat"], str)
            assert isinstance(event["ts"], float)
            assert isinstance(event["dur"], float)
            assert event["dur"] >= 0
            assert isinstance(event["pid"], int)
            assert event["tid"] == 0  # compacted, single thread
        named = {e["name"]: e for e in events}
        assert named["a"]["args"] == {"k": 1}

    def test_payload_carries_metrics_and_decisions(self):
        tracer = self._traced()
        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        log = DecisionLog()
        log.begin("w", "A100").add("block=1 thread=1")
        payload = trace_payload(tracer, metrics=registry, decisions=log)
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"]["metrics"]["counters"]["hits"] == 3
        assert payload["otherData"]["decisions"][0]["wrapper"] == "w"

    def test_write_roundtrip_and_summary(self, tmp_path):
        tracer = self._traced()
        path = str(tmp_path / "trace.json")
        write_chrome_trace(path, tracer)
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["traceEvents"]
        summary = summarize_trace_file(path)
        assert "a" in summary and "b" in summary
        assert "self%" in summary

    def test_summarize_accepts_bare_event_array(self, tmp_path):
        events = chrome_trace_events(self._traced().finished())
        path = tmp_path / "array.json"
        path.write_text(json.dumps(events))
        assert "a" in summarize_trace_file(str(path))

    def test_flame_summary_self_time_and_top(self):
        spans = self._traced().finished()
        summary = flame_summary(spans)
        assert summary.splitlines()[0].split()[0] == "span"
        # top truncation keeps percentages relative to the grand total
        truncated = flame_summary(spans, top=1)
        assert len(truncated.splitlines()) == 3
        assert "100.0%" not in truncated or len(spans) == 1

    def test_summarize_events_reconstructs_nesting(self):
        events = [
            {"name": "parent", "ph": "X", "ts": 0.0, "dur": 100.0,
             "pid": 1, "tid": 0},
            {"name": "child", "ph": "X", "ts": 10.0, "dur": 40.0,
             "pid": 1, "tid": 0},
        ]
        summary = summarize_events(events)
        parent_row = next(line for line in summary.splitlines()
                          if line.startswith("parent"))
        # parent self time is 60us of its 100us total
        assert "0.000100s" in parent_row
        assert "0.000060s" in parent_row


class TestMetrics:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        registry.gauge("g").set(2.5)
        for value in (1.0, 3.0):
            registry.histogram("h").observe(value)
        assert registry.counter_value("c") == 5
        assert registry.gauge_values() == {"g": 2.5}
        summary = registry.histogram_summaries()["h"]
        assert summary["count"] == 2
        assert summary["total"] == 4.0
        assert summary["mean"] == 2.0
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("x") is registry.histogram("x")

    def test_reading_absent_counter_does_not_create_it(self):
        registry = MetricsRegistry()
        assert registry.counter_value("absent") == 0
        assert registry.counter_values() == {}

    def test_module_helpers_are_noop_when_uninstalled(self):
        assert obs_metrics.current() is None
        obs_metrics.inc("nothing")
        obs_metrics.observe("nothing", 1.0)
        obs_metrics.set_gauge("nothing", 1.0)

    def test_collecting_installs_and_restores(self):
        with obs_metrics.collecting() as registry:
            obs_metrics.inc("seen", 2)
            assert obs_metrics.current() is registry
        assert obs_metrics.current() is None
        assert registry.counter_value("seen") == 2

    def test_snapshot_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        snapshot = registry.snapshot()
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        registry.reset()
        assert registry.snapshot()["counters"] == {}


class TestEngineStatsFacade:
    def test_stage_records_into_shared_registry(self):
        registry = MetricsRegistry()
        stats = EngineStats(registry=registry)
        with stats.stage("parse"):
            pass
        with stats.stage("parse"):
            pass
        assert registry.histogram_summaries()["stage.parse"]["count"] == 2
        assert stats.stage_calls == {"parse": 2}
        assert stats.stage_seconds["parse"] >= 0.0
        stats.count("cache_hits", 2)
        assert registry.counter_value("cache_hits") == 2
        assert stats.get("cache_hits") == 2

    def test_as_dict_shape_is_stable(self):
        stats = EngineStats()
        assert set(stats.as_dict()) == {"stage_seconds", "stage_calls",
                                        "counters"}

    def test_stage_opens_tracer_span(self):
        stats = EngineStats()
        with tracing() as tracer:
            with stats.stage("filters"):
                pass
        assert [s.name for s in tracer.finished()] == ["stage:filters"]


class TestDecisionLog:
    def test_first_elimination_wins(self):
        decision = TuneDecision(wrapper="w", arch="A100")
        decision.add("alt", config={"thread_total": 2})
        decision.eliminate("alt", SHARED_MEMORY, "too much smem")
        decision.eliminate("alt", TIMING, "slow")
        record = decision.find("alt")
        assert record.eliminated_by == SHARED_MEMORY
        assert record.reason == "too much smem"
        assert "eliminated by shared-memory" in record.outcome()

    def test_select_clears_elimination(self):
        decision = TuneDecision()
        decision.eliminate("alt", REGISTERS, "spills")
        decision.select("alt", time_seconds=1e-6)
        record = decision.find("alt")
        assert record.selected and record.eliminated_by is None
        assert decision.winner is record
        assert "selected" in record.outcome()

    def test_explain_lists_every_alternative(self):
        log = DecisionLog()
        decision = log.begin("kernel__g2b16x16", "A100")
        decision.add("block=1 thread=1")
        decision.select("block=1 thread=1", 2e-6)
        decision.eliminate("block=2 thread=1", GENERATION, "illegal")
        text = log.explain()
        assert "tuning decision for kernel__g2b16x16 on A100" in text
        assert "winner: block=1 thread=1" in text
        assert "eliminated by generation: illegal" in text

    def test_active_decision_requires_installed_log(self):
        assert obs_decisions.active_decision() is None
        with obs_decisions.logging_decisions() as log:
            decision = log.begin("w")
            assert obs_decisions.active_decision() is decision
        assert obs_decisions.active_decision() is None


class TestFilterStageDecisions:
    def test_filters_record_eliminations(self):
        from repro.__main__ import _run_full_tune
        source = get_benchmark("lud").source
        engine = TuningEngine()
        configs = paper_sweep_configs(max_product=32)
        with obs_decisions.logging_decisions() as log:
            _run_full_tune(source, "lud_internal", (16, 16), [(31, 31)],
                           A100, configs, engine)
        (decision,) = log.decisions
        stages = {d.eliminated_by for d in decision.alternatives}
        assert SHARED_MEMORY in stages
        assert decision.winner is not None
        # every non-winning alternative names its eliminating stage
        for alt in decision.alternatives:
            if not alt.selected:
                assert alt.eliminated_by in (GENERATION, SHARED_MEMORY,
                                             REGISTERS, TIMING)


class TestPassObservability:
    class AddOp(Pass):
        name = "add-op"

        def run(self, module):
            Builder(module.body).create("test.added", [], [])
            return True

    class Failing(Pass):
        name = "failing"

        def run(self, module):
            time.sleep(0.001)
            raise RuntimeError("pass exploded")

    def test_op_delta_collected_while_observing(self):
        manager = PassManager([self.AddOp()], verify=False)
        with obs_metrics.collecting() as registry:
            manager.run(Module())
        (record,) = manager.records
        assert record.op_delta == 1
        assert record.ops_after == record.ops_before + 1
        delta = registry.histogram_summaries()["pass.add-op.op_delta"]
        assert delta["count"] == 1 and delta["total"] == 1.0
        assert "pass.add-op.seconds" in registry.histogram_summaries()

    def test_op_counts_skipped_when_unobserved(self):
        manager = PassManager([self.AddOp()], verify=False)
        manager.run(Module())
        (record,) = manager.records
        assert record.ops_before is None
        assert record.op_delta is None
        assert record.seconds >= 0.0

    def test_failure_keeps_record_and_names_pass(self):
        manager = PassManager([self.AddOp(), self.Failing()], verify=False)
        with pytest.raises(RuntimeError) as info:
            manager.run(Module())
        assert info.value.failing_pass == "failing"
        assert [r.name for r in manager.records] == ["add-op", "failing"]
        failed = manager.records[-1]
        assert failed.failed
        assert failed.seconds >= 0.001
        assert manager.pass_seconds["failing"] >= 0.001

    def test_pass_spans_emitted_under_tracer(self):
        manager = PassManager([self.AddOp()], verify=False)
        with tracing() as tracer:
            manager.run(Module())
        (span,) = tracer.finished()
        assert span.name == "pass:add-op"
        assert span.args["op_delta"] == 1

    def test_count_ops_walks_nested_regions(self):
        module = Module()
        baseline = count_ops(module)
        Builder(module.body).create("test.one", [], [])
        assert count_ops(module) == baseline + 1


@pytest.fixture
def lud_file(tmp_path):
    path = tmp_path / "lud.cu"
    path.write_text(get_benchmark("lud").source)
    return str(path)


@pytest.fixture
def gaussian_file(tmp_path):
    path = tmp_path / "gaussian.cu"
    path.write_text(get_benchmark("gaussian").source)
    return str(path)


class TestCLI:
    def test_tune_trace_writes_chrome_json(self, lud_file, tmp_path,
                                           capsys):
        out = str(tmp_path / "trace.json")
        assert main(["tune", lud_file, "lud_internal", "--grid", "31,31",
                     "--block", "16,16", "--max-factor", "32",
                     "--trace", out]) == 0
        assert "wrote" in capsys.readouterr().err
        with open(out) as handle:
            payload = json.load(handle)
        events = payload["traceEvents"]
        assert events
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0
        names = {e["name"] for e in events}
        assert "frontend.parse" in names
        assert any(name.startswith("pass:") for name in names)
        assert "filters.shared_memory" in names
        assert "filters.registers" in names
        assert "tdo.alternative" in names
        assert "model.compute" in names
        # metrics and the decision log ride along in the same file
        other = payload["otherData"]
        assert other["metrics"]["counters"]["filters.runs"] >= 1
        decisions = other["decisions"]
        assert decisions and decisions[0]["alternatives"]
        # the global tracer/registry are uninstalled afterwards
        assert obs_tracer.current() is None
        assert obs_metrics.current() is None

    def test_tune_explain_names_stage_on_lud(self, lud_file, capsys):
        assert main(["tune", lud_file, "lud_internal", "--grid", "31,31",
                     "--block", "16,16", "--max-factor", "32",
                     "--explain"]) == 0
        out = capsys.readouterr().out
        assert "tuning decision for lud_internal" in out
        assert "winner:" in out
        assert "eliminated by shared-memory" in out
        assert "static shared memory exceeds" in out

    def test_tune_explain_names_stage_on_gaussian(self, gaussian_file,
                                                  capsys):
        assert main(["tune", gaussian_file, "Fan2", "--grid", "32,32",
                     "--block", "4,4", "--max-factor", "8",
                     "--explain"]) == 0
        out = capsys.readouterr().out
        assert "tuning decision for Fan2" in out
        assert "winner:" in out
        assert "eliminated by timing" in out
        assert "slower than the winner" in out

    def test_trace_summarize(self, lud_file, tmp_path, capsys):
        out = str(tmp_path / "trace.json")
        assert main(["tune", lud_file, "lud_internal", "--grid", "31,31",
                     "--block", "16,16", "--max-factor", "4",
                     "--trace", out]) == 0
        capsys.readouterr()
        assert main(["trace", "summarize", out, "--top", "5"]) == 0
        summary = capsys.readouterr().out
        sections = summary.strip().split("\n\n")
        lines = sections[0].splitlines()
        assert lines[0].split()[0] == "span"
        assert len(lines) <= 2 + 5
        # tune --trace records a metrics snapshot, so the summary gains a
        # histogram table with percentile columns
        assert len(sections) == 2
        header = sections[1].splitlines()[0].split()
        assert header[0] == "histogram"
        assert "p50" in header and "p90" in header

    def test_trace_summarize_missing_file(self, tmp_path, capsys):
        assert main(["trace", "summarize",
                     str(tmp_path / "nope.json")]) == 1
        assert "cannot summarize" in capsys.readouterr().err

    def test_verbosity_flags_configure_repro_logger(self, capsys):
        try:
            assert main(["-v", "targets"]) == 0
            assert logging.getLogger("repro").level == logging.INFO
            assert main(["-q", "targets"]) == 0
            assert logging.getLogger("repro").level == logging.ERROR
            assert main(["-vv", "targets"]) == 0
            assert logging.getLogger("repro").level == logging.DEBUG
        finally:
            configure_logging(0)

    def test_single_cli_handler_installed(self):
        configure_logging(1)
        configure_logging(2)
        handlers = [h for h in logging.getLogger("repro").handlers
                    if h.get_name() == "repro-cli"]
        assert len(handlers) == 1
        configure_logging(0)

    def test_get_logger_hierarchy(self):
        assert get_logger().name == "repro"
        assert get_logger("engine.cache").name == "repro.engine.cache"
        child = get_logger("engine.cache")
        parents = set()
        while child is not None:
            parents.add(child)
            child = child.parent
        assert logging.getLogger("repro") in parents


class TestOverheadGuard:
    def test_disabled_tracing_costs_under_two_percent(self):
        from repro.benchsuite.experiments import fig13_data
        assert obs_tracer.current() is None
        configs = paper_sweep_configs(max_product=4)

        def run():
            return fig13_data(benchmarks=["lud"], configs=configs,
                              engine=TuningEngine())

        run()  # warm caches (imports, parse tables)
        start = time.perf_counter()
        run()
        untraced = time.perf_counter() - start

        # how many instrumentation sites does that workload actually hit?
        with tracing() as tracer:
            run()
        site_hits = len(tracer)
        assert site_hits > 0

        # per-call cost of the disabled fast path
        calls = 100_000
        start = time.perf_counter()
        for _ in range(calls):
            obs_tracer.span("overhead-probe")
        per_call = (time.perf_counter() - start) / calls

        overhead = site_hits * per_call
        assert overhead < 0.02 * untraced, \
            "disabled tracing costs %.6fs on a %.6fs workload" % (
                overhead, untraced)
