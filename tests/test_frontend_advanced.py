"""Advanced frontend behaviours: pointer merging, device-function chains,
comma expressions, preprocessor interplay, host/device globals."""

import numpy as np
import pytest

from repro.frontend import CodegenError, ModuleGenerator, \
    parse_translation_unit
from repro.interpreter import Interpreter, MemoryBuffer, run_module
from repro.ir import F32, F64, INDEX, verify_module


def compile_kernel(source, kernel="k", grid_rank=1, block=(8,),
                   defines=None):
    unit = parse_translation_unit(source, defines)
    generator = ModuleGenerator(unit)
    wrapper = generator.get_launch_wrapper(kernel, grid_rank, block)
    verify_module(generator.module)
    return generator.module, wrapper


class TestPointers:
    def test_pointer_advanced_in_loop(self):
        module, wrapper = compile_kernel("""
        __global__ void k(float *data, int rows) {
            float *p = data + threadIdx.x;
            float acc = 0.0f;
            for (int r = 0; r < rows; r++) {
                acc += p[0];
                p = p + 8;
            }
            data[threadIdx.x] = acc;
        }
        """)
        data = np.arange(32, dtype=np.float32)
        buf = MemoryBuffer((32,), F32, data=data)
        run_module(module, wrapper, [1, buf, 4])
        expected = data.reshape(4, 8).sum(axis=0).astype(np.float32)
        np.testing.assert_array_equal(buf.array[:8], expected)

    def test_pointer_selected_by_branch(self):
        module, wrapper = compile_kernel("""
        __global__ void k(float *data, int flip) {
            float *p = data;
            if (flip == 1) {
                p = p + 8;
            }
            p[threadIdx.x] = 1.0f;
        }
        """)
        buf = MemoryBuffer((16,), F32)
        run_module(module, wrapper, [1, buf, 1])
        assert buf.array[8:].sum() == 8
        assert buf.array[:8].sum() == 0

    def test_pointer_rebase_in_branch_rejected(self):
        with pytest.raises(CodegenError):
            compile_kernel("""
            __global__ void k(float *a, float *b) {
                float *p = a;
                if (threadIdx.x > 2) {
                    p = b;   // different base buffer: unsupported merge
                }
                p[0] = 1.0f;
            }
            """)

    def test_pointer_difference(self):
        module, wrapper = compile_kernel("""
        __global__ void k(int *out, float *data) {
            float *p = data + 10;
            float *q = data + 3;
            out[threadIdx.x] = p - q;
        }
        """, block=(2,))
        out = MemoryBuffer((2,), INDEX)
        data = MemoryBuffer((16,), F32)
        run_module(module, wrapper, [1, out, data])
        assert list(out.array) == [7, 7]


class TestDeviceFunctions:
    def test_chained_inlining(self):
        module, wrapper = compile_kernel("""
        __device__ float twice(float v) { return v * 2.0f; }
        __device__ float quad(float v) { return twice(twice(v)); }
        __global__ void k(float *out) {
            out[threadIdx.x] = quad(threadIdx.x + 1.0f);
        }
        """, block=(4,))
        out = MemoryBuffer((4,), F32)
        run_module(module, wrapper, [1, out])
        np.testing.assert_array_equal(out.array, [4, 8, 12, 16])

    def test_device_function_with_pointer_arg(self):
        module, wrapper = compile_kernel("""
        __device__ float first(float *p) { return p[0]; }
        __global__ void k(float *out, float *data) {
            out[threadIdx.x] = first(data + threadIdx.x);
        }
        """, block=(4,))
        out = MemoryBuffer((4,), F32)
        data = MemoryBuffer((8,), F32, data=np.arange(8, dtype=np.float32))
        run_module(module, wrapper, [1, out, data])
        np.testing.assert_array_equal(out.array, [0, 1, 2, 3])

    def test_recursion_rejected(self):
        with pytest.raises(CodegenError):
            compile_kernel("""
            __device__ float f(float v) { return f(v); }
            __global__ void k(float *out) { out[0] = f(1.0f); }
            """)

    def test_device_function_with_barrier(self):
        """Barriers inside inlined device functions keep working."""
        module, wrapper = compile_kernel("""
        __device__ void sync_store(float *tile, int t, float v) {
            tile[t] = v;
            __syncthreads();
        }
        __global__ void k(float *out) {
            __shared__ float tile[8];
            sync_store(tile, threadIdx.x, (float)threadIdx.x);
            out[threadIdx.x] = tile[7 - threadIdx.x];
        }
        """)
        out = MemoryBuffer((8,), F32)
        run_module(module, wrapper, [1, out])
        np.testing.assert_array_equal(out.array,
                                      np.arange(7, -1, -1,
                                                dtype=np.float32))


class TestExpressions:
    def test_comma_in_for_increment(self):
        module, wrapper = compile_kernel("""
        __global__ void k(int *out) {
            int a = 0;
            int b = 0;
            for (int i = 0; i < 4; i++) {
                a = a + 1, b = b + 2;
            }
            out[0] = a;
            out[1] = b;
        }
        """, block=(1,))
        out = MemoryBuffer((2,), INDEX)
        run_module(module, wrapper, [1, out])
        assert list(out.array) == [4, 8]

    def test_assignment_as_expression(self):
        module, wrapper = compile_kernel("""
        __global__ void k(int *out) {
            int a;
            int b = (a = 5) + 2;
            out[0] = a;
            out[1] = b;
        }
        """, block=(1,))
        out = MemoryBuffer((2,), INDEX)
        run_module(module, wrapper, [1, out])
        assert list(out.array) == [5, 7]

    def test_hex_and_char_literals(self):
        module, wrapper = compile_kernel("""
        __global__ void k(int *out) {
            out[0] = 0xFF;
            out[1] = 'A';
        }
        """, block=(1,))
        out = MemoryBuffer((2,), INDEX)
        run_module(module, wrapper, [1, out])
        assert list(out.array) == [255, 65]

    def test_float_int_mixed_promotion(self):
        module, wrapper = compile_kernel("""
        __global__ void k(float *out) {
            int i = 3;
            out[0] = i / 2;          // integer division first: 1
            out[1] = i / 2.0f;       // float division: 1.5
        }
        """, block=(1,))
        out = MemoryBuffer((2,), F32)
        run_module(module, wrapper, [1, out])
        assert list(out.array) == [1.0, 1.5]

    def test_double_promotion(self):
        module, wrapper = compile_kernel("""
        __global__ void k(double *out) {
            float f = 0.5f;
            out[0] = f + 0.25;   // float + double literal -> double
        }
        """, block=(1,))
        out = MemoryBuffer((1,), F64)
        run_module(module, wrapper, [1, out])
        assert out.array[0] == 0.75


class TestGlobalsAndDefines:
    def test_constant_global_readable(self):
        source = """
        __constant__ float coeffs[4];
        __global__ void fill(int d) { coeffs[threadIdx.x] = 2.0f; }
        __global__ void k(float *out) {
            out[threadIdx.x] = coeffs[threadIdx.x] * 3.0f;
        }
        """
        unit = parse_translation_unit(source)
        generator = ModuleGenerator(unit)
        w_fill = generator.get_launch_wrapper("fill", 1, (4,))
        w_use = generator.get_launch_wrapper("k", 1, (4,))
        interp = Interpreter(generator.module)
        interp.run_func(w_fill, [1, 0])
        out = MemoryBuffer((4,), F32)
        interp.run_func(w_use, [1, out])
        assert (out.array == 6.0).all()

    def test_defines_parameterize_source(self):
        module, wrapper = compile_kernel("""
        __global__ void k(float *out) {
            out[threadIdx.x] = SCALE * 1.0f;
        }
        """, defines={"SCALE": 4})
        out = MemoryBuffer((8,), F32)
        run_module(module, wrapper, [1, out])
        assert (out.array == 4.0).all()

    def test_macro_with_args_in_kernel(self):
        module, wrapper = compile_kernel("""
        #define IDX(b, t) ((b) * blockDim.x + (t))
        __global__ void k(float *out) {
            out[IDX(blockIdx.x, threadIdx.x)] = 1.0f;
        }
        """, block=(4,))
        out = MemoryBuffer((8,), F32)
        run_module(module, wrapper, [2, out])
        assert out.array.sum() == 8
