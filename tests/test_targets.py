"""Tests for architecture models, register estimation, and occupancy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dialects import polygeist
from repro.frontend import ModuleGenerator, parse_translation_unit
from repro.ir import verify_module
from repro.targets import (A100, A4000, ALL_ARCHS, MI210, RX6800,
                           arch_by_name, compute_occupancy,
                           estimate_registers, linearize_thread_body)
from repro.transforms import thread_coarsen, block_coarsen
from repro.transforms.coarsen import block_parallels, thread_parallel


def kernel_threads(source, block=(64,), coarsen=None):
    unit = parse_translation_unit(source)
    gen = ModuleGenerator(unit)
    gen.get_launch_wrapper("k", 1, block)
    verify_module(gen.module)
    wrapper = polygeist.find_gpu_wrappers(gen.module.op)[0]
    if coarsen:
        coarsen(wrapper)
    blocks = block_parallels(wrapper, include_epilogues=False)[0]
    return thread_parallel(blocks)


COMPUTE_KERNEL = """
__global__ void k(float *a, float *b) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    float x = a[i];
    float y = x * 2.0f + 1.0f;
    float z = y * y - x;
    b[i] = z / (x + 1.0f);
}
"""


class TestArch:
    def test_table1_values(self):
        assert A100.num_sms == 108
        assert A4000.num_sms == 48
        assert RX6800.num_sms == 60
        assert MI210.num_sms == 104
        assert A100.memory_bandwidth_gbs == 1555.0
        assert MI210.fp64_tflops == MI210.fp32_tflops  # 1:1 on CDNA2

    def test_warp_sizes(self):
        assert A100.warp_size == 32
        assert A4000.warp_size == 32
        assert RX6800.warp_size == 64
        assert MI210.warp_size == 64

    def test_amd_quirks(self):
        assert RX6800.lds_offload_bytes_per_thread is not None
        assert A100.lds_offload_bytes_per_thread is None

    def test_lookup(self):
        assert arch_by_name("a100") is A100
        assert arch_by_name("RX6800") is RX6800
        with pytest.raises(KeyError):
            arch_by_name("H100")

    def test_fp32_lanes_reasonable(self):
        # ~64 FP32 FMA lanes per SM on Ampere
        assert 32 <= A100.fp32_lanes_per_sm <= 128

    def test_describe_row_shape(self):
        row = A100.describe_row()
        assert row["SMs"] == 108
        assert "GB/s" in row["Memory Bandwidth"]


class TestLinearize:
    def test_linearization_covers_body(self):
        threads = kernel_threads(COMPUTE_KERNEL)
        lin = linearize_thread_body(threads)
        kinds = [i.kind for i in lin.instrs]
        assert "load" in kinds
        assert "store" in kinds
        assert "fpu32" in kinds

    def test_loop_spans_recorded(self):
        source = """
        __global__ void k(float *a) {
            float acc = 0.0f;
            for (int j = 0; j < 8; j++) acc += a[j];
            a[threadIdx.x] = acc;
        }
        """
        threads = kernel_threads(source)
        lin = linearize_thread_body(threads)
        assert len(lin.loop_spans) == 1
        start, end = lin.loop_spans[0]
        assert end > start


class TestRegisters:
    def test_more_values_more_registers(self):
        few = kernel_threads("""
        __global__ void k(float *a) {
            a[threadIdx.x] = a[threadIdx.x] + 1.0f;
        }
        """)
        many = kernel_threads(COMPUTE_KERNEL)
        est_few = estimate_registers(few, A100)
        est_many = estimate_registers(many, A100)
        assert est_many.registers_per_thread >= est_few.registers_per_thread

    def test_coarsening_increases_registers(self):
        base = kernel_threads(COMPUTE_KERNEL)
        coarse = kernel_threads(
            COMPUTE_KERNEL,
            coarsen=lambda w: thread_coarsen(w, (8,)))
        est_base = estimate_registers(base, A100)
        est_coarse = estimate_registers(coarse, A100)
        assert est_coarse.registers_per_thread > \
            est_base.registers_per_thread

    def test_f64_counts_double(self):
        f32 = kernel_threads(COMPUTE_KERNEL)
        f64 = kernel_threads(COMPUTE_KERNEL.replace("float", "double"))
        est32 = estimate_registers(f32, A100)
        est64 = estimate_registers(f64, A100)
        assert est64.registers_per_thread > est32.registers_per_thread

    def test_extreme_coarsening_spills(self):
        source = """
        __global__ void k(float *a, float *b) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            float x0 = a[i], x1 = a[i+1], x2 = a[i+2], x3 = a[i+3];
            float x4 = a[i+4], x5 = a[i+5], x6 = a[i+6], x7 = a[i+7];
            float y = x0*x1 + x2*x3 + x4*x5 + x6*x7;
            b[i] = y + x0 + x1 + x2 + x3 + x4 + x5 + x6 + x7;
        }
        """
        threads = kernel_threads(
            source, coarsen=lambda w: thread_coarsen(w, (16,)))
        est = estimate_registers(threads, A100)
        # 16 copies x ~17 live floats each approaches/exceeds 255
        assert est.registers_per_thread > 100


class TestOccupancy:
    def test_full_occupancy(self):
        occ = compute_occupancy(A100, 256, 32, 0)
        assert occ.occupancy == 1.0
        assert occ.blocks_per_sm == 8

    def test_register_limited(self):
        occ = compute_occupancy(A100, 256, 128, 0)
        # 256*128 = 32768 regs/block; 65536/32768 = 2 blocks = 512 threads
        assert occ.blocks_per_sm == 2
        assert occ.limiter == "registers"
        assert occ.occupancy == 512 / 2048

    def test_shared_limited(self):
        occ = compute_occupancy(A100, 128, 32, 40 * 1024)
        assert occ.limiter == "shared"
        assert occ.blocks_per_sm == (164 * 1024) // (40 * 1024)

    def test_shared_exceeds_block_limit(self):
        occ = compute_occupancy(A100, 128, 32, 60 * 1024)  # > 48 KB
        assert occ.blocks_per_sm == 0
        assert occ.occupancy == 0.0

    def test_small_blocks_limited_by_block_slots(self):
        # gaussian's pathology: block size 16
        occ = compute_occupancy(A100, 16, 32, 0)
        assert occ.blocks_per_sm == A100.max_blocks_per_sm
        # 32 blocks x 32 allocated threads = 1024 of 2048
        assert occ.occupancy == 0.5

    def test_sub_warp_allocation(self):
        occ16 = compute_occupancy(A100, 16, 32, 0)
        occ32 = compute_occupancy(A100, 32, 32, 0)
        assert occ16.active_threads == occ32.active_threads

    def test_oversized_block_rejected(self):
        occ = compute_occupancy(A100, 2048, 32, 0)
        assert occ.occupancy == 0.0

    @given(st.integers(32, 1024), st.integers(16, 200),
           st.integers(0, 48 * 1024))
    @settings(max_examples=60, deadline=None)
    def test_property_occupancy_bounds(self, threads, regs, shared):
        for arch in ALL_ARCHS:
            occ = compute_occupancy(arch, threads, regs, shared)
            assert 0.0 <= occ.occupancy <= 1.0
            if occ.blocks_per_sm:
                # resource constraints hold
                warp = arch.warp_size
                alloc = -(-threads // warp) * warp
                assert occ.blocks_per_sm * alloc <= arch.max_threads_per_sm
                assert occ.blocks_per_sm * alloc * regs <= \
                    arch.registers_per_sm
                if shared:
                    assert occ.blocks_per_sm * shared <= \
                        arch.shared_mem_per_sm

    def test_monotone_in_registers(self):
        previous = None
        for regs in [32, 64, 96, 128, 160, 200]:
            occ = compute_occupancy(A100, 256, regs, 0)
            if previous is not None:
                assert occ.blocks_per_sm <= previous
            previous = occ.blocks_per_sm

    def test_active_warps_in_warp_units(self):
        # regression: active_warps used to return thread units
        occ = compute_occupancy(A100, 256, 128, 0)
        assert occ.blocks_per_sm == 2
        assert occ.active_threads == 512
        assert occ.active_warps == 512 // A100.warp_size

    def test_active_warps_uses_arch_warp_size(self):
        mi210 = next(a for a in ALL_ARCHS if a.warp_size == 64)
        occ = compute_occupancy(mi210, 256, 128, 0)
        assert occ.warp_size == 64
        assert occ.active_warps == occ.active_threads // 64

    def test_limiter_not_blamed_on_unused_resource(self):
        # regression: blocks == max_blocks_per_sm used to tie with the
        # fallback "shared" entry even with zero shared memory requested
        occ = compute_occupancy(A100, 16, 0, 0)
        assert occ.blocks_per_sm == A100.max_blocks_per_sm
        assert occ.limiter == "blocks"

    def test_limiter_tie_prefers_actionable_resource(self):
        # registers tie with the block-slot cap at 32 blocks; the old
        # tie-break override relabeled this "blocks", hiding the register
        # pressure a tuner could actually act on
        occ = compute_occupancy(A100, 16, 64, 0)
        assert occ.blocks_per_sm == 32
        assert occ.limiter == "registers"

    @staticmethod
    def _reference_occupancy(arch, threads, regs, shared):
        """Brute-force: largest block count satisfying every constraint."""
        if threads > arch.max_threads_per_block or \
                shared > arch.shared_mem_per_block:
            return 0
        alloc = -(-threads // arch.warp_size) * arch.warp_size
        best = 0
        for b in range(arch.max_blocks_per_sm, 0, -1):
            if b * alloc > arch.max_threads_per_sm:
                continue
            if b * regs * alloc > arch.registers_per_sm:
                continue
            if b * shared > arch.shared_mem_per_sm:
                continue
            best = b
            break
        return best

    @given(st.integers(1, 1024), st.integers(0, 300),
           st.integers(0, 64 * 1024))
    @settings(max_examples=120, deadline=None)
    def test_property_matches_brute_force(self, threads, regs, shared):
        for arch in ALL_ARCHS:
            occ = compute_occupancy(arch, threads, regs, shared)
            expect = self._reference_occupancy(arch, threads, regs, shared)
            assert occ.blocks_per_sm == expect
            alloc = -(-threads // arch.warp_size) * arch.warp_size
            assert occ.active_threads == expect * alloc
            assert occ.active_warps == expect * (alloc // arch.warp_size)

    @given(st.integers(1, 1024), st.integers(0, 300),
           st.integers(0, 48 * 1024))
    @settings(max_examples=120, deadline=None)
    def test_property_limiter_is_binding(self, threads, regs, shared):
        for arch in ALL_ARCHS:
            occ = compute_occupancy(arch, threads, regs, shared)
            if occ.limiter == "none" or not occ.blocks_per_sm:
                continue
            alloc = -(-threads // arch.warp_size) * arch.warp_size
            caps = {
                "threads": arch.max_threads_per_sm // alloc,
                "blocks": arch.max_blocks_per_sm,
            }
            if regs:
                caps["registers"] = arch.registers_per_sm // (regs * alloc)
            if shared:
                caps["shared"] = arch.shared_mem_per_sm // shared
            # the named limiter's own cap is the binding one, and the
            # kernel actually consumes that resource
            assert occ.limiter in caps
            assert caps[occ.limiter] == occ.blocks_per_sm
