"""Tests for the ``repro serve`` daemon: request schema, queue admission,
single-flight coalescing, the HTTP API end to end, drain semantics, and
the shared-cache regression paths (LRU eviction budgets, dump-error
accounting)."""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request

import pytest

from repro.engine import TuningCache
from repro.engine.cache import CACHE_MAX_ENV, CacheEntry, \
    parse_cache_budget
from repro.obs import metrics as obs_metrics
from repro.serve import (JobQueue, QueueClosed, QueueFull, RequestError,
                         ServeClient, ServeError, ServerConfig,
                         TuneRequest, TuneServer, run_tune_job)
from repro.serve.jobs import JobRecord

SOURCE = """
__global__ void scale(float *x, float a, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) x[i] = x[i] * a;
}
"""

SOURCE_REQUEST = {"source": SOURCE, "kernel": "scale", "arch": "a100",
                  "grid": [64], "block": [64], "max_factor": 4}


# -- request schema ----------------------------------------------------------


class TestTuneRequest:
    def test_benchmark_request_roundtrip(self):
        request = TuneRequest.from_payload(
            {"benchmark": "lud", "arch": "a100", "tier": "clang"})
        assert request.benchmark == "lud"
        assert request.arch == "NVIDIA A100"
        assert request.tier == "clang"
        again = TuneRequest.from_payload(request.as_payload())
        assert again.signature() == request.signature()

    def test_source_request_defaults(self):
        request = TuneRequest.from_payload({"source": SOURCE})
        assert request.arch == "NVIDIA A100"
        assert request.grid == (1024,) and request.block == (256,)

    @pytest.mark.parametrize("payload,fragment", [
        ({}, "exactly one"),
        ({"benchmark": "lud", "source": SOURCE}, "exactly one"),
        ({"benchmark": "nope"}, "unknown benchmark"),
        ({"benchmark": "lud", "arch": "gtx9000"}, "no architecture"),
        ({"benchmark": "lud", "tier": "llvm"}, "tier"),
        ({"source": SOURCE, "grid": [0]}, "grid"),
        ({"source": SOURCE, "block": "x,y"}, "block"),
        ({"benchmark": "lud", "max_factor": 0}, "max_factor"),
        ({"benchmark": "lud", "size": "big"}, "size"),
        ("not a dict", "JSON object"),
    ])
    def test_invalid_payloads(self, payload, fragment):
        with pytest.raises(RequestError, match=fragment):
            TuneRequest.from_payload(payload)

    def test_signature_separates_problems(self):
        base = TuneRequest.from_payload({"benchmark": "lud"})
        other_arch = TuneRequest.from_payload(
            {"benchmark": "lud", "arch": "mi210"})
        other_tier = TuneRequest.from_payload(
            {"benchmark": "lud", "tier": "clang"})
        signatures = {base.signature(), other_arch.signature(),
                      other_tier.signature()}
        assert len(signatures) == 3

    def test_signature_uses_source_digest(self):
        one = TuneRequest.from_payload({"source": SOURCE})
        two = TuneRequest.from_payload({"source": SOURCE})
        assert one.signature() == two.signature()
        changed = TuneRequest.from_payload({"source": SOURCE + "// x\n"})
        assert changed.signature() != one.signature()


# -- queue admission ---------------------------------------------------------


def _record(job_id="j1", signature="sig"):
    request = TuneRequest.from_payload({"benchmark": "lud"})
    return JobRecord(id=job_id, request=request, signature=signature,
                     payload=request.as_payload())


class TestJobQueue:
    def test_depth_bound_counts_running_jobs(self):
        queue = JobQueue(depth=2)
        queue.submit(_record("a"))
        queue.submit(_record("b"))
        with pytest.raises(QueueFull):
            queue.submit(_record("c"))
        # pulling a job keeps it counted (running), so still full
        assert queue.next_job().id == "a"
        with pytest.raises(QueueFull):
            queue.submit(_record("c"))
        queue.task_done()
        queue.submit(_record("c"))

    def test_close_rejects_then_drains(self):
        queue = JobQueue(depth=4)
        queue.submit(_record("a"))
        queue.close()
        with pytest.raises(QueueClosed):
            queue.submit(_record("b"))
        assert queue.next_job().id == "a"  # backlog still served
        queue.task_done()
        assert queue.next_job() is None    # then dispatchers retire

    def test_close_wakes_blocked_dispatcher(self):
        queue = JobQueue(depth=4)
        seen = []
        thread = threading.Thread(
            target=lambda: seen.append(queue.next_job()), daemon=True)
        thread.start()
        time.sleep(0.05)
        queue.close()
        thread.join(timeout=5)
        assert not thread.is_alive() and seen == [None]

    def test_signature_locks_are_shared_and_bounded(self):
        queue = JobQueue()
        assert queue.signature_lock("s1") is queue.signature_lock("s1")
        assert queue.signature_lock("s1") is not queue.signature_lock("s2")
        for index in range(queue.LOCK_TABLE_CAP + 10):
            queue.signature_lock("bulk-%d" % index)
        assert len(queue._signature_locks) <= queue.LOCK_TABLE_CAP + 1

    def test_counts_tracks_lifecycle(self):
        queue = JobQueue()
        record = _record("a")
        queue.submit(record)
        assert queue.counts()["queued"] == 1
        queue.next_job()
        assert queue.counts()["running"] == 1
        assert not queue.idle()
        queue.task_done()
        assert queue.idle()


# -- cache budgets and failure accounting (the bugfix sweep) -----------------


class TestCacheBudgets:
    @pytest.mark.parametrize("text,expect", [
        (None, (None, None)),
        ("", (None, None)),
        ("4096", (4096, None)),
        ("64k", (64 * 1024, None)),
        ("1.5m", (int(1.5 * 1024 ** 2), None)),
        ("2g", (2 * 1024 ** 3, None)),
        ("12e", (None, 12)),
        ("banana", (None, None)),   # warned about, never fatal
    ])
    def test_parse_cache_budget(self, text, expect):
        assert parse_cache_budget(text) == expect

    def test_env_budget_applies(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_MAX_ENV, "3e")
        cache = TuningCache(str(tmp_path))
        assert cache.max_entries == 3 and cache.max_bytes is None

    def test_entry_budget_evicts_lru_on_disk(self, tmp_path):
        cache = TuningCache(str(tmp_path), max_entries=2)
        for index in range(4):
            cache.store("key%d" % index, CacheEntry(None, {"i": index}))
            time.sleep(0.01)  # distinct mtimes on coarse filesystems
        assert cache.disk_entries() == 2
        # the newest stores survive; the oldest were evicted
        assert cache.lookup("key3")[0] and cache.lookup("key2")[0]
        assert cache.stats()["evictions"] == 2

    def test_byte_budget_never_evicts_fresh_store(self, tmp_path):
        cache = TuningCache(str(tmp_path), max_bytes=1)
        cache.store("only", CacheEntry(None, {"cfg": 1}))
        # over budget, but the entry just written is never the victim
        assert cache.lookup("only")[0]

    def test_disk_hit_refreshes_lru_position(self, tmp_path):
        cache = TuningCache(str(tmp_path), max_entries=2)
        cache.store("old", CacheEntry(None, {"i": 0}))
        time.sleep(0.01)
        cache.store("mid", CacheEntry(None, {"i": 1}))
        time.sleep(0.01)
        # a fresh reader hits "old" from disk, touching its mtime
        reader = TuningCache(str(tmp_path), max_entries=2)
        assert reader.lookup("old")[0]
        time.sleep(0.01)
        cache.store("new", CacheEntry(None, {"i": 2}))
        assert cache.lookup("old")[0]      # refreshed, survived
        assert not cache.lookup("mid")[0]  # became the LRU victim

    def test_eviction_stable_under_concurrent_writers(self, tmp_path):
        caches = [TuningCache(str(tmp_path), max_entries=4)
                  for _ in range(4)]
        errors = []

        def writer(cache, base):
            try:
                for index in range(12):
                    cache.store("k%d-%d" % (base, index),
                                CacheEntry(None, {"i": index}))
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=writer, args=(cache, base))
                   for base, cache in enumerate(caches)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # budget respected (small slack for in-flight racing stores)
        assert caches[0].disk_entries() <= 6
        total_evictions = sum(c.stats()["evictions"] for c in caches)
        assert total_evictions >= 48 - 6

    def test_dump_error_counted_and_warned_once(self, tmp_path, caplog):
        cache = TuningCache(str(tmp_path))
        # a regular file where the cache dir should be makes every dump
        # fail with NotADirectoryError (an OSError) even when running
        # as root, unlike permission bits
        blocker = tmp_path / "blocked"
        blocker.write_text("not a directory")
        cache.path = str(blocker)
        with obs_metrics.collecting() as registry:
            with caplog.at_level("WARNING", logger="repro.engine.cache"):
                cache.store("k1", CacheEntry(None, {"a": 1}))
                cache.store("k2", CacheEntry(None, {"a": 2}))
        assert cache.dump_errors == 2
        assert cache.stats()["dump_errors"] == 2
        assert registry.counter_value("engine.cache.dump_errors") == 2
        warnings = [r for r in caplog.records
                    if "cannot persist tuning cache" in r.message]
        assert len(warnings) == 1  # loud once, quiet after

    def test_metrics_counters_on_installed_registry(self, tmp_path):
        with obs_metrics.collecting() as registry:
            cache = TuningCache(str(tmp_path), max_entries=1)
            cache.store("a", CacheEntry(None, {}))
            time.sleep(0.01)
            cache.store("b", CacheEntry(None, {}))   # evicts "a"
            cache.lookup("b")
            cache.lookup("missing")
        counters = registry.counter_values()
        assert counters["engine.cache.store"] == 2
        assert counters["engine.cache.hit"] == 1
        assert counters["engine.cache.miss"] == 1
        assert counters["engine.cache.evict"] == 1


# -- the job runner ----------------------------------------------------------


class TestRunTuneJob:
    def test_source_job_cold_then_warm(self, tmp_path):
        payload = dict(
            TuneRequest.from_payload(SOURCE_REQUEST).as_payload(),
            cache_dir=str(tmp_path))
        cold = run_tune_job(payload)
        assert cold["seconds"] > 0
        assert not cold["cache_hit"]
        assert cold["cache"]["misses"] >= 1
        assert cold["winners"], "TDO decision log should name a winner"
        warm = run_tune_job(payload)
        assert warm["cache_hit"]
        assert warm["cache"]["misses"] == 0
        assert warm["seconds"] == pytest.approx(cold["seconds"])

    def test_source_without_kernels_fails(self, tmp_path):
        payload = dict(TuneRequest.from_payload(
            {"source": "int main() { return 0; }"}).as_payload(),
            cache_dir=str(tmp_path))
        with pytest.raises(RequestError, match="__global__"):
            run_tune_job(payload)


# -- the daemon over HTTP ----------------------------------------------------


def _start_server(**overrides):
    config = dict(port=0, workers=2, isolation="thread",
                  queue_depth=8, drain_grace=20.0)
    config.update(overrides)
    server = TuneServer(ServerConfig(**config))
    server.start()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServeClient(server.url, timeout=10.0)
    deadline = time.monotonic() + 10
    while not client.alive():
        assert time.monotonic() < deadline, "daemon never came up"
        time.sleep(0.05)
    return server, client


@pytest.fixture
def daemon(tmp_path):
    server, client = _start_server(cache_dir=str(tmp_path / "cache"))
    yield server, client
    server.drain(grace=20.0)


class TestDaemonHTTP:
    def test_submit_status_result_roundtrip(self, daemon):
        server, client = daemon
        submitted = client.submit(SOURCE_REQUEST)
        assert submitted["state"] == "queued"
        assert not submitted["single_flight"]
        result = client.wait(submitted["job"], timeout=60)
        assert result["state"] == "done"
        assert result["seconds"] > 0
        assert result["decisions"], "result must carry the decision log"
        status = client.job(submitted["job"])
        assert status["state"] == "done"
        assert status["cache_hit"] is False

    def test_second_identical_request_is_warm(self, daemon):
        server, client = daemon
        first = client.wait(client.submit(SOURCE_REQUEST)["job"],
                            timeout=60)
        second = client.wait(client.submit(SOURCE_REQUEST)["job"],
                             timeout=60)
        assert not first["cache_hit"]
        assert second["cache_hit"]
        assert second["cache"]["misses"] == 0
        stats = client.cache_stats()
        assert stats["hits"] >= 1 and stats["misses"] >= 1
        assert stats["jobs"]["completed"] == 2
        assert stats["jobs"]["warm"] == 1
        assert stats["disk_entries"] >= 1

    def test_concurrent_identical_requests_single_flight(self, tmp_path):
        server, client = _start_server(
            cache_dir=str(tmp_path / "cache"), workers=4, queue_depth=16)
        try:
            results, errors = [], []

            def one_client():
                try:
                    local = ServeClient(server.url, timeout=10.0)
                    job = local.submit(SOURCE_REQUEST)["job"]
                    results.append(local.wait(job, timeout=120))
                except Exception as error:  # pragma: no cover
                    errors.append(error)

            threads = [threading.Thread(target=one_client)
                       for _ in range(5)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not errors
            assert len(results) == 5
            # one tuning run, N-1 replayed from the shared cache
            cold = [r for r in results if not r["cache_hit"]]
            warm = [r for r in results if r["cache_hit"]]
            assert len(cold) == 1 and len(warm) == 4
            assert all(r["seconds"] ==
                       pytest.approx(cold[0]["seconds"])
                       for r in warm)
            stats = server.cache_stats()
            assert stats["jobs"]["completed"] == 5
            assert stats["jobs"]["warm"] == 4
        finally:
            server.drain(grace=20.0)

    def test_bad_request_is_400(self, daemon):
        server, client = daemon
        with pytest.raises(ServeError) as excinfo:
            client.submit({"benchmark": "nope"})
        assert excinfo.value.status == 400
        with pytest.raises(ServeError) as excinfo:
            client.submit({})
        assert excinfo.value.status == 400

    def test_unknown_routes_and_jobs_are_404(self, daemon):
        server, client = daemon
        for path in ("/v1/jobs/j999999", "/v1/nope"):
            with pytest.raises(ServeError) as excinfo:
                client._call(path)
            assert excinfo.value.status == 404

    def test_malformed_json_is_400(self, daemon):
        server, client = daemon
        request = urllib.request.Request(
            server.url + "/v1/tune", data=b"{not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_healthz(self, daemon):
        server, client = daemon
        health = client.health()
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert health["isolation"] == "thread"


class TestAdmissionControl:
    def test_queue_full_maps_to_429(self, tmp_path, monkeypatch):
        import repro.serve.server as server_module
        release = threading.Event()

        def stalled_job(payload, engine=None):
            release.wait(30)
            return run_tune_job(payload, engine=engine)

        monkeypatch.setattr(server_module, "run_tune_job", stalled_job)
        server, client = _start_server(
            cache_dir=str(tmp_path / "cache"), workers=1, queue_depth=1)
        try:
            first = client.submit(SOURCE_REQUEST)
            # depth 1: the stalled job saturates queued+running
            with pytest.raises(ServeError) as excinfo:
                client.submit(SOURCE_REQUEST)
            assert excinfo.value.status == 429
            assert server.cache_stats()["jobs"]["rejected_full"] == 1
            release.set()
            assert client.wait(first["job"], timeout=60)["state"] == "done"
        finally:
            release.set()
            server.drain(grace=20.0)

    def test_draining_maps_to_503(self, tmp_path):
        server, client = _start_server(cache_dir=str(tmp_path / "cache"))
        try:
            job = client.submit(SOURCE_REQUEST)["job"]
            drainer = threading.Thread(target=server.drain, daemon=True)
            drainer.start()
            deadline = time.monotonic() + 10
            while not server.draining:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            # admissions closed while the backlog still completes
            with pytest.raises((ServeError, OSError)) as excinfo:
                ServeClient(server.url, timeout=5.0).submit(SOURCE_REQUEST)
            if isinstance(excinfo.value, ServeError) \
                    and excinfo.value.status:
                assert excinfo.value.status == 503
            drainer.join(timeout=30)
            assert not drainer.is_alive()
            record = server.queue.get(job)
            assert record is not None and record.finished
        finally:
            if not server._stopped.is_set():
                server.drain(grace=20.0)

    def test_drain_reaps_scheduler_pools(self, tmp_path):
        server, client = _start_server(cache_dir=str(tmp_path / "cache"))
        client.wait(client.submit(SOURCE_REQUEST)["job"], timeout=60)
        assert server.drain(grace=20.0)
        assert all(s.pool_size == 0 for s in server._schedulers)
        assert server.queue.closed


# -- real process: SIGTERM drain, CLI round trip -----------------------------


@pytest.mark.slow
class TestServeProcess:
    def test_sigterm_drains_cleanly(self, tmp_path):
        ready = tmp_path / "ready"
        env = dict(os.environ,
                   PYTHONPATH=os.path.join(os.path.dirname(__file__),
                                           os.pardir, "src"))
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "1", "--isolation", "thread",
             "--cache", str(tmp_path / "cache"),
             "--ready-file", str(ready)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        try:
            deadline = time.monotonic() + 30
            while not ready.exists() or not ready.read_text().strip():
                assert daemon.poll() is None, daemon.stdout.read()
                assert time.monotonic() < deadline, "daemon never ready"
                time.sleep(0.1)
            url = ready.read_text().strip()
            submit = subprocess.run(
                [sys.executable, "-m", "repro", "submit", "--url", url,
                 "--benchmark", "lud", "--arch", "a100",
                 "--max-factor", "4", "--wait", "120"],
                env=env, capture_output=True, text=True, timeout=150)
            assert submit.returncode == 0, submit.stderr
            assert "warm=no" in submit.stdout
            daemon.send_signal(signal.SIGTERM)
            output, _ = daemon.communicate(timeout=60)
            assert daemon.returncode == 0, output
            assert "drained" in output
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.communicate(timeout=30)
