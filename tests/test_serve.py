"""Tests for the ``repro serve`` daemon: request schema, queue admission,
single-flight coalescing, the HTTP API end to end, drain semantics, and
the shared-cache regression paths (LRU eviction budgets, dump-error
accounting)."""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request

import pytest

from repro.engine import TuningCache
from repro.engine.cache import CACHE_MAX_ENV, CacheEntry, \
    parse_cache_budget
from repro.obs import metrics as obs_metrics
from repro.serve import (JobQueue, QueueClosed, QueueFull, RequestError,
                         ServeClient, ServeError, ServerConfig,
                         TuneRequest, TuneServer, run_tune_job)
from repro.serve.jobs import JobRecord

SOURCE = """
__global__ void scale(float *x, float a, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) x[i] = x[i] * a;
}
"""

SOURCE_REQUEST = {"source": SOURCE, "kernel": "scale", "arch": "a100",
                  "grid": [64], "block": [64], "max_factor": 4}


# -- request schema ----------------------------------------------------------


class TestTuneRequest:
    def test_benchmark_request_roundtrip(self):
        request = TuneRequest.from_payload(
            {"benchmark": "lud", "arch": "a100", "tier": "clang"})
        assert request.benchmark == "lud"
        assert request.arch == "NVIDIA A100"
        assert request.tier == "clang"
        again = TuneRequest.from_payload(request.as_payload())
        assert again.signature() == request.signature()

    def test_source_request_defaults(self):
        request = TuneRequest.from_payload({"source": SOURCE})
        assert request.arch == "NVIDIA A100"
        assert request.grid == (1024,) and request.block == (256,)

    @pytest.mark.parametrize("payload,fragment", [
        ({}, "exactly one"),
        ({"benchmark": "lud", "source": SOURCE}, "exactly one"),
        ({"benchmark": "nope"}, "unknown benchmark"),
        ({"benchmark": "lud", "arch": "gtx9000"}, "no architecture"),
        ({"benchmark": "lud", "tier": "llvm"}, "tier"),
        ({"source": SOURCE, "grid": [0]}, "grid"),
        ({"source": SOURCE, "block": "x,y"}, "block"),
        ({"benchmark": "lud", "max_factor": 0}, "max_factor"),
        ({"benchmark": "lud", "size": "big"}, "size"),
        ("not a dict", "JSON object"),
    ])
    def test_invalid_payloads(self, payload, fragment):
        with pytest.raises(RequestError, match=fragment):
            TuneRequest.from_payload(payload)

    def test_signature_separates_problems(self):
        base = TuneRequest.from_payload({"benchmark": "lud"})
        other_arch = TuneRequest.from_payload(
            {"benchmark": "lud", "arch": "mi210"})
        other_tier = TuneRequest.from_payload(
            {"benchmark": "lud", "tier": "clang"})
        signatures = {base.signature(), other_arch.signature(),
                      other_tier.signature()}
        assert len(signatures) == 3

    def test_signature_uses_source_digest(self):
        one = TuneRequest.from_payload({"source": SOURCE})
        two = TuneRequest.from_payload({"source": SOURCE})
        assert one.signature() == two.signature()
        changed = TuneRequest.from_payload({"source": SOURCE + "// x\n"})
        assert changed.signature() != one.signature()


# -- queue admission ---------------------------------------------------------


def _record(job_id="j1", signature="sig"):
    request = TuneRequest.from_payload({"benchmark": "lud"})
    return JobRecord(id=job_id, request=request, signature=signature,
                     payload=request.as_payload())


class TestJobQueue:
    def test_depth_bound_counts_running_jobs(self):
        queue = JobQueue(depth=2)
        queue.submit(_record("a"))
        queue.submit(_record("b"))
        with pytest.raises(QueueFull):
            queue.submit(_record("c"))
        # pulling a job keeps it counted (running), so still full
        assert queue.next_job().id == "a"
        with pytest.raises(QueueFull):
            queue.submit(_record("c"))
        queue.task_done()
        queue.submit(_record("c"))

    def test_close_rejects_then_drains(self):
        queue = JobQueue(depth=4)
        queue.submit(_record("a"))
        queue.close()
        with pytest.raises(QueueClosed):
            queue.submit(_record("b"))
        assert queue.next_job().id == "a"  # backlog still served
        queue.task_done()
        assert queue.next_job() is None    # then dispatchers retire

    def test_close_wakes_blocked_dispatcher(self):
        queue = JobQueue(depth=4)
        seen = []
        thread = threading.Thread(
            target=lambda: seen.append(queue.next_job()), daemon=True)
        thread.start()
        time.sleep(0.05)
        queue.close()
        thread.join(timeout=5)
        assert not thread.is_alive() and seen == [None]

    def test_signature_locks_are_shared_and_bounded(self):
        queue = JobQueue()
        assert queue.signature_lock("s1") is queue.signature_lock("s1")
        assert queue.signature_lock("s1") is not queue.signature_lock("s2")
        for index in range(queue.LOCK_TABLE_CAP + 10):
            queue.signature_lock("bulk-%d" % index)
        assert len(queue._signature_locks) <= queue.LOCK_TABLE_CAP + 1

    def test_counts_tracks_lifecycle(self):
        queue = JobQueue()
        record = _record("a")
        queue.submit(record)
        assert queue.counts()["queued"] == 1
        queue.next_job()
        assert queue.counts()["running"] == 1
        assert not queue.idle()
        queue.task_done()
        assert queue.idle()


# -- cache budgets and failure accounting (the bugfix sweep) -----------------


class TestCacheBudgets:
    @pytest.mark.parametrize("text,expect", [
        (None, (None, None)),
        ("", (None, None)),
        ("4096", (4096, None)),
        ("64k", (64 * 1024, None)),
        ("1.5m", (int(1.5 * 1024 ** 2), None)),
        ("2g", (2 * 1024 ** 3, None)),
        ("12e", (None, 12)),
        ("banana", (None, None)),   # warned about, never fatal
    ])
    def test_parse_cache_budget(self, text, expect):
        assert parse_cache_budget(text) == expect

    def test_env_budget_applies(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_MAX_ENV, "3e")
        cache = TuningCache(str(tmp_path))
        assert cache.max_entries == 3 and cache.max_bytes is None

    def test_entry_budget_evicts_lru_on_disk(self, tmp_path):
        cache = TuningCache(str(tmp_path), max_entries=2)
        for index in range(4):
            cache.store("key%d" % index, CacheEntry(None, {"i": index}))
            time.sleep(0.01)  # distinct mtimes on coarse filesystems
        assert cache.disk_entries() == 2
        # the newest stores survive; the oldest were evicted
        assert cache.lookup("key3")[0] and cache.lookup("key2")[0]
        assert cache.stats()["evictions"] == 2

    def test_byte_budget_never_evicts_fresh_store(self, tmp_path):
        cache = TuningCache(str(tmp_path), max_bytes=1)
        cache.store("only", CacheEntry(None, {"cfg": 1}))
        # over budget, but the entry just written is never the victim
        assert cache.lookup("only")[0]

    def test_disk_hit_refreshes_lru_position(self, tmp_path):
        cache = TuningCache(str(tmp_path), max_entries=2)
        cache.store("old", CacheEntry(None, {"i": 0}))
        time.sleep(0.01)
        cache.store("mid", CacheEntry(None, {"i": 1}))
        time.sleep(0.01)
        # a fresh reader hits "old" from disk, touching its mtime
        reader = TuningCache(str(tmp_path), max_entries=2)
        assert reader.lookup("old")[0]
        time.sleep(0.01)
        cache.store("new", CacheEntry(None, {"i": 2}))
        assert cache.lookup("old")[0]      # refreshed, survived
        assert not cache.lookup("mid")[0]  # became the LRU victim

    def test_eviction_stable_under_concurrent_writers(self, tmp_path):
        caches = [TuningCache(str(tmp_path), max_entries=4)
                  for _ in range(4)]
        errors = []

        def writer(cache, base):
            try:
                for index in range(12):
                    cache.store("k%d-%d" % (base, index),
                                CacheEntry(None, {"i": index}))
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=writer, args=(cache, base))
                   for base, cache in enumerate(caches)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # budget respected (small slack for in-flight racing stores)
        assert caches[0].disk_entries() <= 6
        total_evictions = sum(c.stats()["evictions"] for c in caches)
        assert total_evictions >= 48 - 6

    def test_dump_error_counted_and_warned_once(self, tmp_path, caplog):
        cache = TuningCache(str(tmp_path))
        # a regular file where the cache dir should be makes every dump
        # fail with NotADirectoryError (an OSError) even when running
        # as root, unlike permission bits
        blocker = tmp_path / "blocked"
        blocker.write_text("not a directory")
        cache.path = str(blocker)
        with obs_metrics.collecting() as registry:
            with caplog.at_level("WARNING", logger="repro.engine.cache"):
                cache.store("k1", CacheEntry(None, {"a": 1}))
                cache.store("k2", CacheEntry(None, {"a": 2}))
        assert cache.dump_errors == 2
        assert cache.stats()["dump_errors"] == 2
        assert registry.counter_value("engine.cache.dump_errors") == 2
        warnings = [r for r in caplog.records
                    if "cannot persist tuning cache" in r.message]
        assert len(warnings) == 1  # loud once, quiet after

    def test_metrics_counters_on_installed_registry(self, tmp_path):
        with obs_metrics.collecting() as registry:
            cache = TuningCache(str(tmp_path), max_entries=1)
            cache.store("a", CacheEntry(None, {}))
            time.sleep(0.01)
            cache.store("b", CacheEntry(None, {}))   # evicts "a"
            cache.lookup("b")
            cache.lookup("missing")
        counters = registry.counter_values()
        assert counters["engine.cache.store"] == 2
        assert counters["engine.cache.hit"] == 1
        assert counters["engine.cache.miss"] == 1
        assert counters["engine.cache.evict"] == 1


# -- the job runner ----------------------------------------------------------


class TestRunTuneJob:
    def test_source_job_cold_then_warm(self, tmp_path):
        payload = dict(
            TuneRequest.from_payload(SOURCE_REQUEST).as_payload(),
            cache_dir=str(tmp_path))
        cold = run_tune_job(payload)
        assert cold["seconds"] > 0
        assert not cold["cache_hit"]
        assert cold["cache"]["misses"] >= 1
        assert cold["winners"], "TDO decision log should name a winner"
        warm = run_tune_job(payload)
        assert warm["cache_hit"]
        assert warm["cache"]["misses"] == 0
        assert warm["seconds"] == pytest.approx(cold["seconds"])

    def test_source_without_kernels_fails(self, tmp_path):
        payload = dict(TuneRequest.from_payload(
            {"source": "int main() { return 0; }"}).as_payload(),
            cache_dir=str(tmp_path))
        with pytest.raises(RequestError, match="__global__"):
            run_tune_job(payload)


# -- the daemon over HTTP ----------------------------------------------------


def _start_server(**overrides):
    config = dict(port=0, workers=2, isolation="thread",
                  queue_depth=8, drain_grace=20.0)
    config.update(overrides)
    server = TuneServer(ServerConfig(**config))
    server.start()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    # retries=0: admission tests want the raw 429/503, not the backoff
    client = ServeClient(server.url, timeout=10.0, retries=0)
    deadline = time.monotonic() + 10
    while not client.alive():
        assert time.monotonic() < deadline, "daemon never came up"
        time.sleep(0.05)
    return server, client


@pytest.fixture
def daemon(tmp_path):
    server, client = _start_server(cache_dir=str(tmp_path / "cache"))
    yield server, client
    server.drain(grace=20.0)


class TestDaemonHTTP:
    def test_submit_status_result_roundtrip(self, daemon):
        server, client = daemon
        submitted = client.submit(SOURCE_REQUEST)
        assert submitted["state"] == "queued"
        assert not submitted["single_flight"]
        result = client.wait(submitted["job"], timeout=60)
        assert result["state"] == "done"
        assert result["seconds"] > 0
        assert result["decisions"], "result must carry the decision log"
        status = client.job(submitted["job"])
        assert status["state"] == "done"
        assert status["cache_hit"] is False

    def test_second_identical_request_is_warm(self, daemon):
        server, client = daemon
        first = client.wait(client.submit(SOURCE_REQUEST)["job"],
                            timeout=60)
        second = client.wait(client.submit(SOURCE_REQUEST)["job"],
                             timeout=60)
        assert not first["cache_hit"]
        assert second["cache_hit"]
        assert second["cache"]["misses"] == 0
        stats = client.cache_stats()
        assert stats["hits"] >= 1 and stats["misses"] >= 1
        assert stats["jobs"]["completed"] == 2
        assert stats["jobs"]["warm"] == 1
        assert stats["disk_entries"] >= 1

    def test_concurrent_identical_requests_single_flight(self, tmp_path):
        server, client = _start_server(
            cache_dir=str(tmp_path / "cache"), workers=4, queue_depth=16)
        try:
            results, errors = [], []

            def one_client():
                try:
                    local = ServeClient(server.url, timeout=10.0)
                    job = local.submit(SOURCE_REQUEST)["job"]
                    results.append(local.wait(job, timeout=120))
                except Exception as error:  # pragma: no cover
                    errors.append(error)

            threads = [threading.Thread(target=one_client)
                       for _ in range(5)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not errors
            assert len(results) == 5
            # one tuning run, N-1 replayed from the shared cache
            cold = [r for r in results if not r["cache_hit"]]
            warm = [r for r in results if r["cache_hit"]]
            assert len(cold) == 1 and len(warm) == 4
            assert all(r["seconds"] ==
                       pytest.approx(cold[0]["seconds"])
                       for r in warm)
            stats = server.cache_stats()
            assert stats["jobs"]["completed"] == 5
            assert stats["jobs"]["warm"] == 4
        finally:
            server.drain(grace=20.0)

    def test_bad_request_is_400(self, daemon):
        server, client = daemon
        with pytest.raises(ServeError) as excinfo:
            client.submit({"benchmark": "nope"})
        assert excinfo.value.status == 400
        with pytest.raises(ServeError) as excinfo:
            client.submit({})
        assert excinfo.value.status == 400

    def test_unknown_routes_and_jobs_are_404(self, daemon):
        server, client = daemon
        for path in ("/v1/jobs/j999999", "/v1/nope"):
            with pytest.raises(ServeError) as excinfo:
                client._call(path)
            assert excinfo.value.status == 404

    def test_malformed_json_is_400(self, daemon):
        server, client = daemon
        request = urllib.request.Request(
            server.url + "/v1/tune", data=b"{not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_healthz(self, daemon):
        server, client = daemon
        health = client.health()
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert health["isolation"] == "thread"


class TestAdmissionControl:
    def test_queue_full_maps_to_429(self, tmp_path, monkeypatch):
        import repro.serve.server as server_module
        release = threading.Event()

        def stalled_job(payload, engine=None):
            release.wait(30)
            return run_tune_job(payload, engine=engine)

        monkeypatch.setattr(server_module, "run_tune_job", stalled_job)
        server, client = _start_server(
            cache_dir=str(tmp_path / "cache"), workers=1, queue_depth=1)
        try:
            first = client.submit(SOURCE_REQUEST)
            # depth 1: the stalled job saturates queued+running
            with pytest.raises(ServeError) as excinfo:
                client.submit(SOURCE_REQUEST)
            assert excinfo.value.status == 429
            assert server.cache_stats()["jobs"]["rejected_full"] == 1
            release.set()
            assert client.wait(first["job"], timeout=60)["state"] == "done"
        finally:
            release.set()
            server.drain(grace=20.0)

    def test_draining_maps_to_503(self, tmp_path):
        server, client = _start_server(cache_dir=str(tmp_path / "cache"))
        try:
            job = client.submit(SOURCE_REQUEST)["job"]
            drainer = threading.Thread(target=server.drain, daemon=True)
            drainer.start()
            deadline = time.monotonic() + 10
            while not server.draining:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            # admissions closed while the backlog still completes
            with pytest.raises((ServeError, OSError)) as excinfo:
                ServeClient(server.url, timeout=5.0,
                            retries=0).submit(SOURCE_REQUEST)
            if isinstance(excinfo.value, ServeError) \
                    and excinfo.value.status:
                assert excinfo.value.status == 503
            drainer.join(timeout=30)
            assert not drainer.is_alive()
            record = server.queue.get(job)
            assert record is not None and record.finished
        finally:
            if not server._stopped.is_set():
                server.drain(grace=20.0)

    def test_drain_reaps_scheduler_pools(self, tmp_path):
        server, client = _start_server(cache_dir=str(tmp_path / "cache"))
        client.wait(client.submit(SOURCE_REQUEST)["job"], timeout=60)
        assert server.drain(grace=20.0)
        assert all(s.pool_size == 0 for s in server._schedulers)
        assert server.queue.closed


# -- client resilience: retry/backoff, daemon-death fail-fast ----------------


class _ScriptedServer:
    """An HTTP stub replaying a scripted list of (status, headers, body)
    responses, for exercising the client's retry loop without a daemon."""

    def __init__(self, script):
        from http.server import BaseHTTPRequestHandler, \
            ThreadingHTTPServer
        self.script = list(script)
        self.requests = []
        stub = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, *args):
                pass

            def _reply(self):
                stub.requests.append(self.path)
                status, headers, body = stub.script.pop(0) \
                    if stub.script else (500, {}, {"error": "script over"})
                payload = json.dumps(body).encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(payload)))
                for name, value in headers.items():
                    self.send_header(name, value)
                self.end_headers()
                self.wfile.write(payload)

            def do_GET(self):  # noqa: N802
                self._reply()

            def do_POST(self):  # noqa: N802
                self.rfile.read(
                    int(self.headers.get("Content-Length") or 0))
                self._reply()

        self.httpd = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        self.url = "http://127.0.0.1:%d" % self.httpd.server_address[1]
        threading.Thread(target=self.httpd.serve_forever,
                         daemon=True).start()

    def close(self):
        self.httpd.shutdown()
        self.httpd.server_close()


class TestClientRetry:
    def test_429_retried_until_success(self):
        stub = _ScriptedServer([
            (429, {"Retry-After": "0"}, {"error": "full"}),
            (429, {"Retry-After": "0"}, {"error": "full"}),
            (200, {}, {"job": "j000001", "state": "queued"}),
        ])
        try:
            client = ServeClient(stub.url, retries=2, backoff=0.01)
            assert client.submit(SOURCE_REQUEST)["job"] == "j000001"
            assert len(stub.requests) == 3
        finally:
            stub.close()

    def test_retry_honors_retry_after(self):
        stub = _ScriptedServer([
            (503, {"Retry-After": "0.4"}, {"error": "draining"}),
            (200, {}, {"job": "j000002", "state": "queued"}),
        ])
        try:
            client = ServeClient(stub.url, retries=1, backoff=0.01)
            start = time.monotonic()
            client.submit(SOURCE_REQUEST)
            # the server asked for 0.4s; exponential backoff alone would
            # have retried after ~0.01s
            assert time.monotonic() - start >= 0.4
        finally:
            stub.close()

    def test_retries_exhausted_raises_last_status(self):
        stub = _ScriptedServer(
            [(429, {"Retry-After": "0"}, {"error": "full"})] * 3)
        try:
            client = ServeClient(stub.url, retries=2, backoff=0.01)
            with pytest.raises(ServeError) as excinfo:
                client.submit(SOURCE_REQUEST)
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after == 0.0
            assert len(stub.requests) == 3  # initial + 2 retries
        finally:
            stub.close()

    def test_400_never_retried(self):
        stub = _ScriptedServer([(400, {}, {"error": "bad body"})])
        try:
            client = ServeClient(stub.url, retries=3, backoff=0.01)
            with pytest.raises(ServeError) as excinfo:
                client.submit({})
            assert excinfo.value.status == 400
            assert len(stub.requests) == 1
        finally:
            stub.close()

    def test_retries_zero_fails_fast(self):
        stub = _ScriptedServer([(429, {}, {"error": "full"})])
        try:
            client = ServeClient(stub.url, retries=0)
            with pytest.raises(ServeError):
                client.submit(SOURCE_REQUEST)
            assert len(stub.requests) == 1
        finally:
            stub.close()


class TestWaitFailFast:
    def test_wait_fails_fast_on_dead_daemon(self):
        # nothing listens on port 9: connection refused, not a timeout
        client = ServeClient("http://127.0.0.1:9", timeout=2.0,
                             retries=0)
        start = time.monotonic()
        with pytest.raises(ServeError, match="unreachable"):
            client.wait("j000001", timeout=120.0)
        # fail-fast: nowhere near the 120s wait budget
        assert time.monotonic() - start < 30

    def test_wait_fails_fast_when_daemon_dies_mid_poll(
            self, tmp_path, monkeypatch):
        import repro.serve.server as server_module
        release = threading.Event()

        def stalled_job(payload, engine=None):
            release.wait(30)
            return run_tune_job(payload, engine=engine)

        monkeypatch.setattr(server_module, "run_tune_job", stalled_job)
        server, client = _start_server(
            cache_dir=str(tmp_path / "cache"), workers=1)
        try:
            job = client.submit(SOURCE_REQUEST)["job"]
            # the listener dies out from under the polling client
            server._httpd.shutdown()
            server._httpd.server_close()
            start = time.monotonic()
            with pytest.raises(ServeError, match="unreachable"):
                client.wait(job, timeout=120.0)
            assert time.monotonic() - start < 30
        finally:
            release.set()
            server.drain(grace=20.0)


# -- thread-isolation deadline ----------------------------------------------


class TestThreadDeadline:
    def test_thread_isolation_enforces_job_timeout(
            self, tmp_path, monkeypatch):
        import repro.serve.server as server_module

        def stalled_job(payload, engine=None):
            time.sleep(30)
            return run_tune_job(payload, engine=engine)

        monkeypatch.setattr(server_module, "run_tune_job", stalled_job)
        server, client = _start_server(
            cache_dir=str(tmp_path / "cache"), workers=1,
            job_timeout=0.5, retries=0)
        try:
            job = client.submit(SOURCE_REQUEST)["job"]
            start = time.monotonic()
            with pytest.raises(ServeError, match="timeout"):
                client.wait(job, timeout=60.0)
            assert time.monotonic() - start < 20  # not the full stall
            status = client.job(job)
            assert status["state"] == "failed"
            assert status["timeouts"] == 1
            assert "abandoned" in status["error"]
            stats = client.cache_stats()
            assert stats["jobs"]["failed"] == 1
            assert stats["jobs"]["timeouts"] == 1
        finally:
            server.drain(grace=20.0)


# -- restart recovery (in-process) -------------------------------------------


class TestRestartRecovery:
    def test_accepted_job_recovered_and_completes(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        config = ServerConfig(port=0, isolation="thread",
                              cache_dir=cache_dir)
        first = TuneServer(config)
        submitted = first.submit_request(SOURCE_REQUEST)
        # the daemon "dies" before any dispatcher ran: only the WAL's
        # durable "accepted" record survives
        first.ledger.close()
        del first
        server, client = _start_server(cache_dir=cache_dir)
        try:
            status = client.job(submitted["job"])
            assert status["recovered"] is True
            assert status["signature"] == submitted["signature"]
            result = client.wait(submitted["job"], timeout=60.0)
            assert result["state"] == "done"
            assert client.cache_stats()["jobs"]["recovered"] == 1
            ledger = client.ledger_stats()
            assert ledger["enabled"] and ledger["recovered_jobs"] == 1
        finally:
            server.drain(grace=20.0)

    def test_finished_job_answers_after_restart_with_same_result(
            self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        server, client = _start_server(cache_dir=cache_dir)
        try:
            result = client.wait(client.submit(SOURCE_REQUEST)["job"],
                                 timeout=60.0)
        finally:
            server.drain(grace=20.0)
        again, client2 = _start_server(cache_dir=cache_dir)
        try:
            replay = client2.result(result["job"])
            assert replay["_status"] == 200
            assert replay["seconds"] == result["seconds"]
            assert client2.ledger_stats()["replayed_finished"] == 1
            # the job-id counter resumed past the replayed job, and the
            # re-submitted problem replays the shared cache exactly
            fresh = client2.submit(SOURCE_REQUEST)
            assert fresh["job"] != result["job"]
            final = client2.wait(fresh["job"], timeout=60.0)
            assert final["cache_hit"] is True
            assert final["seconds"] == pytest.approx(result["seconds"])
        finally:
            again.drain(grace=20.0)

    def test_double_restart_is_idempotent(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        seed = TuneServer(ServerConfig(port=0, isolation="thread",
                                       cache_dir=cache_dir))
        job = seed.submit_request(SOURCE_REQUEST)["job"]
        seed.ledger.close()
        del seed
        # two successive recoveries must re-admit the job exactly once
        # each, never duplicate it
        middle = TuneServer(ServerConfig(port=0, isolation="thread",
                                         cache_dir=cache_dir))
        assert middle.recovered_jobs == 1
        assert [r.id for r in middle.queue.jobs()] == [job]
        middle.ledger.close()
        del middle
        last = TuneServer(ServerConfig(port=0, isolation="thread",
                                       cache_dir=cache_dir))
        assert last.recovered_jobs == 1
        assert [r.id for r in last.queue.jobs()] == [job]
        last.ledger.close()

    def test_rejected_jobs_are_not_resurrected(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        config = ServerConfig(port=0, isolation="thread",
                              cache_dir=cache_dir, queue_depth=1)
        first = TuneServer(config)
        kept = first.submit_request(SOURCE_REQUEST)["job"]
        with pytest.raises(QueueFull):
            first.submit_request(dict(SOURCE_REQUEST, max_factor=2))
        first.ledger.close()
        del first
        second = TuneServer(ServerConfig(port=0, isolation="thread",
                                         cache_dir=cache_dir))
        assert [r.id for r in second.queue.jobs()
                if not r.finished] == [kept]
        second.ledger.close()

    def test_no_ledger_mode_opts_out(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        server, client = _start_server(cache_dir=cache_dir, ledger=False)
        try:
            client.wait(client.submit(SOURCE_REQUEST)["job"],
                        timeout=60.0)
            assert client.ledger_stats()["enabled"] is False
            assert not os.path.isdir(os.path.join(cache_dir, "ledger"))
        finally:
            server.drain(grace=20.0)

    def test_fault_endpoint_reports_plan(self, tmp_path):
        from repro import faults
        from repro.faults import FaultPlan
        server, client = _start_server(cache_dir=str(tmp_path / "cache"))
        try:
            clean = client.fault_stats()
            assert clean["installed"] is False
            faults.install_plan(FaultPlan.seeded(11, faults=3))
            stats = client.fault_stats()
            assert stats["installed"] is True and stats["seed"] == 11
        finally:
            faults.uninstall_plan()
            server.drain(grace=20.0)


# -- real process: SIGTERM drain, CLI round trip -----------------------------


@pytest.mark.slow
class TestServeProcess:
    def test_sigterm_drains_cleanly(self, tmp_path):
        ready = tmp_path / "ready"
        env = dict(os.environ,
                   PYTHONPATH=os.path.join(os.path.dirname(__file__),
                                           os.pardir, "src"))
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "1", "--isolation", "thread",
             "--cache", str(tmp_path / "cache"),
             "--ready-file", str(ready)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        try:
            deadline = time.monotonic() + 30
            while not ready.exists() or not ready.read_text().strip():
                assert daemon.poll() is None, daemon.stdout.read()
                assert time.monotonic() < deadline, "daemon never ready"
                time.sleep(0.1)
            url = ready.read_text().strip()
            submit = subprocess.run(
                [sys.executable, "-m", "repro", "submit", "--url", url,
                 "--benchmark", "lud", "--arch", "a100",
                 "--max-factor", "4", "--wait", "120"],
                env=env, capture_output=True, text=True, timeout=150)
            assert submit.returncode == 0, submit.stderr
            assert "warm=no" in submit.stdout
            daemon.send_signal(signal.SIGTERM)
            output, _ = daemon.communicate(timeout=60)
            assert daemon.returncode == 0, output
            assert "drained" in output
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.communicate(timeout=30)

    def test_sigkill_recovery_completes_with_same_signature(
            self, tmp_path):
        from repro.faults import FAULT_PLAN_ENV, FaultPlan, FaultSpec
        request = {"benchmark": "lud", "arch": "a100", "max_factor": 4}
        cache = str(tmp_path / "cache")
        env = dict(os.environ,
                   PYTHONPATH=os.path.join(os.path.dirname(__file__),
                                           os.pardir, "src"))

        def start_daemon(tag, extra_env=None):
            ready = tmp_path / ("ready-%s" % tag)
            daemon = subprocess.Popen(
                [sys.executable, "-m", "repro", "serve", "--port", "0",
                 "--workers", "1", "--isolation", "thread",
                 "--cache", cache, "--ready-file", str(ready)],
                env=dict(env, **(extra_env or {})),
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                text=True)
            deadline = time.monotonic() + 30
            while not ready.exists() or not ready.read_text().strip():
                assert daemon.poll() is None, daemon.stdout.read()
                assert time.monotonic() < deadline, "daemon never ready"
                time.sleep(0.1)
            return daemon, ready.read_text().strip()

        # the victim stalls 30s inside the scheduler worker on its first
        # job, guaranteeing the SIGKILL lands mid-run
        stall = FaultPlan([FaultSpec("scheduler.worker", 1, "sleep",
                                     seconds=30.0)])
        victim, url = start_daemon("victim",
                                   {FAULT_PLAN_ENV: stall.to_json()})
        survivor = None
        try:
            client = ServeClient(url, timeout=10.0, retries=0)
            submitted = client.submit(request)
            job = submitted["job"]
            deadline = time.monotonic() + 30
            while client.job(job)["state"] != "running":
                assert time.monotonic() < deadline, "job never ran"
                time.sleep(0.1)
            victim.kill()  # SIGKILL: no drain, no goodbye
            victim.communicate(timeout=30)
            survivor, url2 = start_daemon("survivor")
            client2 = ServeClient(url2, timeout=10.0, retries=0)
            status = client2.job(job)
            assert status["recovered"] is True
            assert status["signature"] == submitted["signature"]
            result = client2.wait(job, timeout=120.0)
            assert result["state"] == "done"
            # the recovered run is indistinguishable from an
            # uninterrupted one: an identical fresh submit replays warm
            confirm = client2.wait(client2.submit(request)["job"],
                                   timeout=120.0)
            assert confirm["cache_hit"] is True
            assert confirm["seconds"] == pytest.approx(result["seconds"])
            assert client2.ledger_stats()["recovered_jobs"] == 1
        finally:
            for process in (victim, survivor):
                if process is not None and process.poll() is None:
                    process.kill()
                    process.communicate(timeout=30)


class TestMonotonicDurations:
    """Job durations must come from monotonic anchors: a wall-clock step
    (NTP, DST) between lifecycle events must never corrupt them."""

    def _step_wall_clock_back(self, monkeypatch, seconds=3600.0):
        import repro.serve.jobs as jobs_mod
        real = time.time
        monkeypatch.setattr(jobs_mod.time, "time",
                            lambda: real() - seconds)

    def test_queued_waiting_seconds_survive_wall_step(self, monkeypatch):
        record = _record()
        self._step_wall_clock_back(monkeypatch)
        status = record.status_dict()
        assert 0.0 <= status["waiting_seconds"] < 60.0

    def test_running_and_wall_seconds_survive_wall_step(self, monkeypatch):
        from types import SimpleNamespace
        record = _record()
        record.mark_running()
        self._step_wall_clock_back(monkeypatch)
        status = record.status_dict()
        assert 0.0 <= status["running_seconds"] < 60.0
        record.finish(SimpleNamespace(ok=False, attempts=1, timeouts=0,
                                      error="boom", value=None))
        status = record.status_dict()
        assert 0.0 <= status["wall_seconds"] < 60.0
        # wall-clock fields still reflect the (stepped) wall clock: they
        # are display-only and never subtracted from each other
        assert status["finished_at"] < status["started_at"]
