"""Seeded chaos campaigns over the serving path and the tuning cache.

Each campaign installs a :class:`FaultPlan.seeded` plan — deterministic
per seed, so a failing seed number IS the reproduction recipe — and then
drives normal traffic while faults fire at the named injection points.
The invariants, from the crash-safety contract:

* **no hang** — every poll loop is deadline-bounded and every daemon
  ``drain()`` returns ``True`` within its grace period;
* **no lost accepted job** — every job id a client received reaches a
  terminal state (``done`` or ``failed`` with a recorded error);
* **no corrupt result served** — every ``done`` result matches the
  fault-free baseline for that request signature, and every cache entry
  that survives a post-campaign sweep parses self-consistently;
* **volume** — the campaigns inject at least 50 faults in total (each
  asserts its own floor, summing comfortably past the bar).
"""

import json
import os
import threading
import time

import pytest

from repro import faults
from repro.autotune.tdo import TuneOutcome
from repro.engine.cache import ENTRY_SCHEMA, CacheEntry, TuningCache
from repro.faults import FaultPlan
from repro.serve import (ServeClient, ServeError, ServerConfig,
                         TuneServer)


@pytest.fixture(autouse=True)
def _clean_plan():
    faults.uninstall_plan()
    yield
    faults.uninstall_plan()


#: three distinct problems so single-flight, warm hits, and cold runs
#: all occur within one seed's traffic
REQUESTS = (
    {"benchmark": "lud", "arch": "a100", "max_factor": 4},
    {"benchmark": "lud", "arch": "a100", "max_factor": 2},
    {"benchmark": "lud", "arch": "a100", "max_factor": 8},
)

SERVE_SEEDS = range(10)
CACHE_SEEDS = range(6)


def _start_server(cache_dir):
    server = TuneServer(ServerConfig(port=0, workers=2,
                                     isolation="thread", queue_depth=16,
                                     drain_grace=30.0,
                                     cache_dir=cache_dir))
    server.start()
    threading.Thread(target=server.serve_forever, daemon=True).start()
    # generous retries: injected 429/503s must not fail the campaign
    client = ServeClient(server.url, timeout=10.0, retries=3,
                         backoff=0.05)
    deadline = time.monotonic() + 10
    while not client.alive():
        assert time.monotonic() < deadline, "daemon never came up"
        time.sleep(0.05)
    return server, client


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """Fault-free ground truth: signature -> seconds, per request."""
    cache_dir = str(tmp_path_factory.mktemp("baseline") / "cache")
    server, client = _start_server(cache_dir)
    truth = {}
    try:
        for request in REQUESTS:
            submitted = client.submit(request)
            result = client.wait(submitted["job"], timeout=120.0)
            truth[submitted["signature"]] = result["seconds"]
    finally:
        assert server.drain(grace=30.0)
    return truth


def _sweep_cache_dir(cache_dir):
    """Post-campaign consistency sweep: visit every surviving entry;
    anything still readable afterwards must parse with the current
    schema (corrupt entries get quarantined by the visit, not served)."""
    sweeper = TuningCache(cache_dir)
    for name in sorted(os.listdir(cache_dir)):
        if name.endswith(".json"):
            sweeper.lookup(name[: -len(".json")])
    for name in sorted(os.listdir(cache_dir)):
        if not name.endswith(".json"):
            continue
        with open(os.path.join(cache_dir, name)) as handle:
            data = json.load(handle)  # survivors parse...
        assert data["schema"] == ENTRY_SCHEMA  # ...at current schema


def _run_serve_seed(seed, cache_dir, truth):
    plan = faults.install_plan(
        FaultPlan.seeded(seed, faults=10, forbid=("die",)))
    server, client = _start_server(cache_dir)
    accepted = []
    try:
        for request in REQUESTS * 2:
            try:
                accepted.append(client.submit(request))
            except ServeError as error:
                # an injected admission fault surfaces as a clean HTTP
                # error, never a wedged client
                assert error.status in (429, 500, 503)
        for submitted in accepted:
            deadline = time.monotonic() + 60
            while True:  # no lost job: terminal within the deadline
                status = client.job(submitted["job"])
                if status["state"] in ("done", "failed"):
                    break
                assert time.monotonic() < deadline, \
                    "seed %d: job %s hung" % (seed, submitted["job"])
                time.sleep(0.05)
            if status["state"] == "done":
                result = client.result(submitted["job"])
                assert result["_status"] == 200
                assert result["seconds"] == pytest.approx(
                    truth[submitted["signature"]]), \
                    "seed %d: corrupt result served" % seed
            else:
                assert status["error"], \
                    "seed %d: failed without a recorded error" % seed
    finally:
        drained = server.drain(grace=30.0)
        faults.uninstall_plan()
    assert drained, "seed %d: daemon failed to drain" % seed
    assert len(accepted) >= 1, "seed %d: nothing was ever accepted" % seed
    _sweep_cache_dir(cache_dir)
    return len(plan.fired)


class TestServeChaos:
    def test_seeded_campaign_holds_invariants(self, tmp_path, baseline):
        fired = 0
        for seed in SERVE_SEEDS:
            fired += _run_serve_seed(
                seed, str(tmp_path / ("seed-%d" % seed)), baseline)
        assert fired >= 35, "campaign too tame: %d faults fired" % fired


def _chaos_entry():
    return CacheEntry(
        TuneOutcome(selected_desc="chaos-winner", selected_time=2.5,
                    candidates=[], filters=None, selected_index=0,
                    selected_config={"block_total": 256}),
        {"block_total": 256})


class TestCacheChaos:
    def test_seeded_campaign_never_serves_corrupt_entries(self, tmp_path):
        entry = _chaos_entry()
        fired = 0
        for seed in CACHE_SEEDS:
            cache_dir = str(tmp_path / ("seed-%d" % seed))
            plan = faults.install_plan(FaultPlan.seeded(
                seed, sites=("engine.cache.dump", "engine.cache.load"),
                faults=12, max_call=30, forbid=("sleep",)))
            try:
                cache = TuningCache(cache_dir)
                for round_index in range(30):
                    key = "k%02d" % (round_index % 8)
                    cache.store(key, entry)  # dump faults absorbed
                    hit, got = cache.lookup(key)
                    if hit:  # a hit is either pristine or nothing
                        assert got.selected_config == \
                            entry.selected_config
                        assert got.outcome.selected_time == \
                            entry.outcome.selected_time
            finally:
                faults.uninstall_plan()
            fired += len(plan.fired)
            _sweep_cache_dir(cache_dir)
            stats = TuningCache(cache_dir).stats()
            assert json.dumps(stats)  # quarantine counters stay JSON-able
        assert fired >= 30, "campaign too tame: %d faults fired" % fired

    def test_combined_campaign_volume(self):
        """The two campaigns above are sized so their plans alone carry
        the >=50-fault acceptance floor even before counting retries."""
        serve_specs = sum(
            len(FaultPlan.seeded(seed, faults=10, forbid=("die",)).specs)
            for seed in SERVE_SEEDS)
        cache_specs = sum(
            len(FaultPlan.seeded(
                seed, sites=("engine.cache.dump", "engine.cache.load"),
                faults=12, max_call=30, forbid=("sleep",)).specs)
            for seed in CACHE_SEEDS)
        assert serve_specs + cache_specs >= 50
