"""Printer/parser tests, including a hypothesis round-trip property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import (Builder, F32, F64, FunctionType, I1, I32, INDEX,
                      MemRefType, Module, ParseError, parse_module, parse_op,
                      parse_type, print_module, verify_module)
from repro.ir.parser import _Cursor
from repro.dialects import arith, func, memref, polygeist, scf


def roundtrip(module):
    text = print_module(module)
    module2 = parse_module(text)
    verify_module(module2)
    assert print_module(module2) == text
    return module2


class TestTypes:
    @pytest.mark.parametrize("text", [
        "i1", "i32", "i64", "f32", "f64", "index",
        "memref<4xf32>", "memref<16x16xf64, shared>", "memref<?xi32>",
        "memref<f32>", "memref<2x?x8xf32, local>",
    ])
    def test_type_roundtrip(self, text):
        type_ = parse_type(_Cursor(text))
        assert str(type_) == text

    def test_function_type_roundtrip(self):
        type_ = parse_type(_Cursor("(i32, f32) -> (index)"))
        assert str(type_) == "(i32, f32) -> (index)"

    def test_unknown_type_rejected(self):
        with pytest.raises(ParseError):
            parse_type(_Cursor("q32"))


class TestOpText:
    def test_simple_op(self):
        op = parse_op('%x = "arith.constant"() {value = 5} : () -> (i32)')
        assert op.name == "arith.constant"
        assert op.attr("value") == 5
        assert op.result().type == I32

    def test_attribute_kinds(self):
        op = parse_op(
            '"test.op"() {a = 1, b = 2.5, c = "s", d = true, e = false, '
            'f = none, g = [1, 2], h = !f32} : () -> ()')
        assert op.attr("a") == 1
        assert op.attr("b") == 2.5
        assert op.attr("c") == "s"
        assert op.attr("d") is True
        assert op.attr("e") is False
        assert op.attr("f") is None
        assert op.attr("g") == [1, 2]
        assert op.attr("h") == F32

    def test_string_escapes(self):
        op = parse_op('"test.op"() {s = "a\\"b\\\\c"} : () -> ()')
        assert op.attr("s") == 'a"b\\c'

    def test_undefined_value_rejected(self):
        with pytest.raises(ParseError):
            parse_op('"test.op"(%nope) : (i32) -> ()')

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_op('"test.op"() : () -> () extra')

    def test_comments_skipped(self):
        op = parse_op('// a comment\n"test.op"() : () -> ()')
        assert op.name == "test.op"


class TestModuleRoundTrip:
    def test_kernel_module(self):
        module = Module()
        builder = Builder(module.body)
        f = func.func(builder, "main", FunctionType((INDEX,), ()), ["n"])
        body = Builder(f.body_block())
        c0 = arith.index_constant(body, 0)
        c1 = arith.index_constant(body, 1)
        c32 = arith.index_constant(body, 32)
        wrapper = polygeist.gpu_wrapper(body, "k")
        wb = Builder(wrapper.body_block())
        blocks = scf.parallel(wb, [c0], [f.body_block().arg(0)], [c1],
                              gpu_kind="blocks", iv_names=["b"])
        bb = Builder(blocks.body_block())
        shared = memref.alloca(bb, MemRefType((32,), F32, "shared"))
        threads = scf.parallel(bb, [c0], [c32], [c1],
                               gpu_kind="threads", iv_names=["t"])
        tb = Builder(threads.body_block())
        t = threads.body_block().arg(0)
        v = memref.load(tb, shared, [t])
        polygeist.barrier(tb, [t])
        memref.store(tb, v, shared, [t])
        scf.yield_(tb)
        scf.yield_(bb)
        func.return_(body)
        verify_module(module)
        module2 = roundtrip(module)
        # structure is preserved
        wrappers = polygeist.find_gpu_wrappers(module2.op)
        assert len(wrappers) == 1
        assert len(polygeist.find_barriers(module2.op)) == 1

    def test_name_hint_collisions_uniqued(self):
        module = Module()
        builder = Builder(module.body)
        f = func.func(builder, "f", FunctionType((), ()))
        body = Builder(f.body_block())
        a = arith.index_constant(body, 7)
        b = arith.index_constant(body, 7)  # same hint "c7"
        builder2 = Builder(f.body_block())
        func.return_(body)
        text = print_module(module)
        assert "%c7" in text and "%c7_1" in text
        roundtrip(module)


_INT_OPS = sorted(arith.INT_BINARY)
_FLOAT_OPS = sorted(arith.FLOAT_BINARY)


@st.composite
def random_arith_module(draw):
    """A random straight-line arith function over two index args."""
    module = Module()
    builder = Builder(module.body)
    f = func.func(builder, "f", FunctionType((INDEX, INDEX), ()), ["a", "b"])
    body = Builder(f.body_block())
    pool = list(f.body_block().args)
    n_ops = draw(st.integers(min_value=1, max_value=12))
    for _ in range(n_ops):
        choice = draw(st.integers(min_value=0, max_value=2))
        if choice == 0:
            value = draw(st.integers(min_value=-100, max_value=100))
            pool.append(arith.index_constant(body, value))
        elif choice == 1 and len(pool) >= 2:
            name = draw(st.sampled_from(_INT_OPS))
            lhs = draw(st.sampled_from(pool))
            rhs = draw(st.sampled_from(pool))
            pool.append(arith.binary(body, name, lhs, rhs))
        else:
            lhs = draw(st.sampled_from(pool))
            rhs = draw(st.sampled_from(pool))
            pred = draw(st.sampled_from(arith.PREDICATES))
            arith.cmpi(body, pred, lhs, rhs)
    func.return_(body)
    return module


@given(random_arith_module())
@settings(max_examples=60, deadline=None)
def test_property_roundtrip(module):
    verify_module(module)
    roundtrip(module)
