"""Integration tests: every Rodinia-style benchmark, at every tier.

This is the paper's §VII-A methodology: outputs must match the reference
for every compiler configuration.
"""

import numpy as np
import pytest

from repro.autotune import default_configs
from repro.benchsuite import (BENCHMARKS, get_benchmark, simulate_composite,
                              verify_benchmark)
from repro.targets import A100, A4000, RX6800

ALL_NAMES = sorted(BENCHMARKS)


class TestRegistry:
    def test_fifteen_benchmarks(self):
        # the paper evaluates 15 of Rodinia's 24 (9 excluded, SVII-A)
        assert len(BENCHMARKS) == 15

    def test_double_benchmarks_marked(self):
        # the §VII-D2 f64 set
        for name in ("lavaMD", "hotspot3D", "particlefilter"):
            assert get_benchmark(name).uses_double

    def test_sources_are_cuda(self):
        for name in ALL_NAMES:
            assert "__global__" in get_benchmark(name).source


@pytest.mark.parametrize("name", ALL_NAMES)
def test_clang_tier_correct(name):
    result = verify_benchmark(name, A100, tier="clang")
    assert result.passed, "%s error %.3e" % (name, result.max_error)
    assert result.composite_seconds > 0
    assert result.kernel_seconds > 0


@pytest.mark.parametrize("name", ALL_NAMES)
def test_polygeist_tier_correct(name):
    """Coarsening + TDO must preserve every benchmark's output."""
    result = verify_benchmark(name, A100, tier="polygeist",
                              autotune_configs=default_configs(4))
    assert result.passed, "%s error %.3e" % (name, result.max_error)


@pytest.mark.parametrize("name", ["lud", "gaussian", "nw"])
def test_amd_target_correct(name):
    """Retargeted execution on the AMD model stays correct (§VII-D)."""
    result = verify_benchmark(name, RX6800, tier="polygeist",
                              autotune_configs=default_configs(4))
    assert result.passed, "%s error %.3e" % (name, result.max_error)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_composite_modeling(name):
    """Analytic composite time exists and optimization doesn't hurt."""
    base = simulate_composite(name, A100, tier="polygeist-noopt")
    opt = simulate_composite(name, A100, tier="polygeist",
                             autotune_configs=default_configs(8))
    assert base > 0 and opt > 0
    assert opt <= base * 1.05  # TDO keeps the baseline as a candidate


class TestShapes:
    def test_nw_extreme_shared_ratio(self):
        """nw allocates ~136 B of shared memory per thread (§VII-D2)."""
        from repro.analysis import shared_bytes_per_block
        from repro.dialects import polygeist as pg
        from repro.frontend import ModuleGenerator, parse_translation_unit
        from repro.transforms.coarsen import block_parallels
        bench = get_benchmark("nw")
        unit = parse_translation_unit(bench.source)
        gen = ModuleGenerator(unit)
        gen.get_launch_wrapper("needle_1", 1, (16,))
        wrapper = pg.find_gpu_wrappers(gen.module.op)[0]
        shared = shared_bytes_per_block(block_parallels(wrapper)[0])
        per_thread = shared / 16
        assert per_thread > 100  # extreme, triggers AMD LDS offload

    def test_nw_slower_on_amd_than_comparable_nvidia(self):
        """The LDS offload should make nw relatively bad on RX6800."""
        nv = simulate_composite("nw", A4000, tier="polygeist-noopt",
                                size=512)
        amd = simulate_composite("nw", RX6800, tier="polygeist-noopt",
                                 size=512)
        assert amd > nv

    def test_f64_benchmark_faster_on_rx6800(self):
        """lavaMD (double) should favor RX6800 over A4000 (§VII-D2)."""
        nv = simulate_composite("lavaMD", A4000, tier="polygeist-noopt",
                                size=400)
        amd = simulate_composite("lavaMD", RX6800, tier="polygeist-noopt",
                                 size=400)
        assert amd < nv

    def test_gaussian_improved_by_optimization(self):
        """gaussian's 16-thread blocks leave headroom for coarsening."""
        base = simulate_composite("gaussian", A100, tier="polygeist-noopt",
                                  size=512)
        opt = simulate_composite("gaussian", A100, tier="polygeist",
                                 autotune_configs=default_configs(8),
                                 size=512)
        assert opt < base
