"""Tests for the HeCBench-style micro-benchmark extras."""

import numpy as np
import pytest

from repro.autotune import default_configs
from repro.benchsuite.hecbench import HECBENCH
from repro.pipeline import Program
from repro.runtime import GPURuntime
from repro.targets import A100, RX6800

ALL = sorted(HECBENCH)


def run_verify(name, arch, tier, configs=None):
    bench = HECBENCH[name]
    inputs = bench.build_inputs(bench.verify_size)
    program = Program(bench.source, arch=arch, tier=tier,
                      autotune_configs=configs)
    runtime = GPURuntime(arch)
    got = bench.run_gpu(program, runtime,
                        {k: np.array(v) for k, v in inputs.items()},
                        bench.verify_size)
    want = bench.run_cpu(inputs, bench.verify_size)
    return bench.compare(got, want), bench.rtol, runtime


def test_six_extras_registered():
    assert len(HECBENCH) == 6
    for name in ("hec-atax", "hec-gemm", "hec-stencil1d", "hec-softmax",
                 "hec-reduction", "hec-transpose"):
        assert name in HECBENCH


@pytest.mark.parametrize("name", ALL)
def test_baseline_correct(name):
    error, rtol, runtime = run_verify(name, A100, "clang")
    assert error <= rtol, "%s error %.3e" % (name, error)
    assert runtime.kernel_seconds > 0


@pytest.mark.parametrize("name", ALL)
def test_coarsened_correct(name):
    error, rtol, _ = run_verify(name, A100, "polygeist",
                                default_configs(4))
    assert error <= rtol, "%s error %.3e" % (name, error)


@pytest.mark.parametrize("name", ["hec-gemm", "hec-transpose"])
def test_amd_correct(name):
    error, rtol, _ = run_verify(name, RX6800, "polygeist",
                                default_configs(4))
    assert error <= rtol


def test_gemm_sweepable():
    """The canonical tiled gemm participates in factor sweeps."""
    from repro.benchsuite.experiments import sweep_kernel_configs
    bench = HECBENCH["hec-gemm"]
    configs = [{"block_total": 1, "thread_total": 1},
               {"block_total": 4, "thread_total": 1},
               {"block_total": 1, "thread_total": 4},
               {"block_total": 4, "thread_total": 2}]
    sweep = sweep_kernel_configs(bench.source, "gemm_tiled", (16, 16),
                                 [(128, 128)], A100, configs, "hec-gemm")
    assert sweep.baseline() is not None
    assert all(r.valid for r in sweep.results)
    # shared tiles + reuse: coarsening must help the tiled gemm
    assert sweep.speedup() > 1.0
