"""Additional translation-path tests: hipified output must still compile
and run through the frontend (the full hipify+clang route, simulated)."""

import numpy as np
import pytest

from repro.benchsuite import BENCHMARKS, get_benchmark
from repro.frontend import ModuleGenerator, parse_translation_unit
from repro.interpreter import MemoryBuffer, run_module
from repro.ir import F32, verify_module
from repro.translate import hipify
from repro.translate.hipify import API_RENAMES, HEADER_RENAMES


class TestHipifyRoundTrip:
    def test_hipified_kernel_still_compiles(self):
        """Kernel-side syntax is identical in HIP: the hipified source must
        go through our frontend unchanged (modeling clang's HIP mode)."""
        bench = get_benchmark("lud")
        result = hipify(bench.source)
        unit = parse_translation_unit(result.source)
        generator = ModuleGenerator(unit)
        generator.get_launch_wrapper("lud_internal", 2, (16, 16))
        verify_module(generator.module)

    def test_hipified_execution_matches(self):
        source = """
        __global__ void scale(float *x, float a) {
            x[blockIdx.x * blockDim.x + threadIdx.x] *= a;
        }
        """
        translated = hipify(source).source
        for text in (source, translated):
            unit = parse_translation_unit(text)
            generator = ModuleGenerator(unit)
            name = generator.get_launch_wrapper("scale", 1, (8,))
            buf = MemoryBuffer((16,), F32,
                               data=np.ones(16, dtype=np.float32))
            run_module(generator.module, name,
                       [2, buf, np.float32(3.0)])
            assert (buf.array == 3.0).all()

    def test_all_rodinia_kernels_hipify_cleanly(self):
        """Bare kernel sources (no host prelude) translate automatically."""
        for name in sorted(BENCHMARKS):
            result = hipify(get_benchmark(name).source)
            # kernels alone need only the missing-include note
            other = [fix for fix in result.manual_fixes
                     if "hip_runtime.h" not in fix]
            assert not other, "%s: %s" % (name, other)

    def test_rename_table_consistency(self):
        for cuda_name, hip_name in API_RENAMES.items():
            assert cuda_name.startswith("cuda")
            assert hip_name.startswith("hip")
        for header, target in HEADER_RENAMES.items():
            assert "cuda" in header
            assert target.startswith("hip/")

    def test_idempotent(self):
        source = "cudaMalloc((void**)&p, n);"
        once = hipify(source).source
        twice = hipify(once).source
        assert once == twice
