"""Tests for unroll-and-interleave and thread/block coarsening.

The key property (the paper's §VII-A methodology): a coarsened kernel must
produce *bit-identical* output to the original.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dialects import polygeist, scf
from repro.frontend import ModuleGenerator, parse_translation_unit
from repro.interpreter import MemoryBuffer, run_module
from repro.ir import F32, INDEX, verify_module
from repro.transforms import (CoarsenError, IllegalUnroll, balance_factors,
                              block_coarsen, coarsen_wrapper,
                              check_unroll_legality, thread_coarsen,
                              unroll_and_interleave)
from repro.transforms.coarsen import block_parallels, thread_parallel


def compile_wrapper(source, kernel, grid_rank=1, block=(8,)):
    unit = parse_translation_unit(source)
    gen = ModuleGenerator(unit)
    wrapper_name = gen.get_launch_wrapper(kernel, grid_rank, block)
    verify_module(gen.module)
    wrappers = polygeist.find_gpu_wrappers(gen.module.op)
    return gen.module, wrapper_name, wrappers[0]


SHARED_KERNEL = """
__global__ void k(float *in, float *out) {
    __shared__ float tile[8];
    int t = threadIdx.x;
    int g = blockIdx.x * blockDim.x + t;
    tile[t] = in[g] * 2.0f;
    __syncthreads();
    out[g] = tile[7 - t] + 1.0f;
}
"""

LOOP_BARRIER_KERNEL = """
__global__ void k(float *data) {
    __shared__ float s[8];
    int t = threadIdx.x;
    int g = blockIdx.x * blockDim.x + t;
    s[t] = data[g];
    for (int it = 0; it < 3; it++) {
        int step = 1 << it;
        __syncthreads();
        float v = 0.0f;
        if (t >= step) {
            v = s[t - step];
        }
        __syncthreads();
        s[t] = s[t] + v;
    }
    data[g] = s[t];
}
"""

BLOCK_DIVERGENT_KERNEL = """
__global__ void k(float *data) {
    __shared__ float s[8];
    int t = threadIdx.x;
    if (blockIdx.x > 0) {
        s[t] = data[t];
        __syncthreads();
        data[blockIdx.x * 8 + t] = s[7 - t];
    }
}
"""


def run_both(source, kernel, grid, block, make_args, coarsen):
    """Run original and coarsened kernels; return (original, coarsened)."""
    module1, name1, _ = compile_wrapper(source, kernel, len(grid), block)
    args1 = make_args()
    run_module(module1, name1, list(grid) + args1)

    module2, name2, wrapper2 = compile_wrapper(source, kernel, len(grid),
                                               block)
    coarsen(wrapper2)
    verify_module(module2)
    args2 = make_args()
    run_module(module2, name2, list(grid) + args2)
    return args1, args2


class TestThreadCoarsening:
    @pytest.mark.parametrize("factor", [2, 4, 8])
    def test_shared_kernel_equivalence(self, factor):
        def make_args():
            rng = np.random.default_rng(42)
            data = rng.random(32, dtype=np.float32)
            return [MemoryBuffer((32,), F32, data=data),
                    MemoryBuffer((32,), F32)]

        args1, args2 = run_both(
            SHARED_KERNEL, "k", (4,), (8,), make_args,
            lambda w: thread_coarsen(w, (factor,)))
        np.testing.assert_array_equal(args1[1].array, args2[1].array)

    @pytest.mark.parametrize("factor", [2, 4])
    def test_loop_barrier_equivalence(self, factor):
        """Barriers inside an scf.for must be jam-merged correctly."""
        def make_args():
            rng = np.random.default_rng(7)
            return [MemoryBuffer((16,), F32,
                                 data=rng.random(16, dtype=np.float32))]

        args1, args2 = run_both(
            LOOP_BARRIER_KERNEL, "k", (2,), (8,), make_args,
            lambda w: thread_coarsen(w, (factor,)))
        np.testing.assert_array_equal(args1[0].array, args2[0].array)

    def test_barrier_count_reduced_not_duplicated(self):
        module, name, wrapper = compile_wrapper(SHARED_KERNEL, "k")
        before = len(module.op.ops_matching("polygeist.barrier"))
        thread_coarsen(wrapper, (4,))
        after = len(module.op.ops_matching("polygeist.barrier"))
        assert before == after == 1  # merged, never duplicated

    def test_block_extent_shrinks(self):
        module, name, wrapper = compile_wrapper(SHARED_KERNEL, "k")
        thread_coarsen(wrapper, (2,))
        threads = thread_parallel(block_parallels(wrapper)[0])
        from repro.dialects import arith
        ub = scf.parallel_upper_bounds(threads)[0]
        assert arith.constant_value(ub) == 4

    def test_non_divisor_factor_rejected(self):
        module, name, wrapper = compile_wrapper(SHARED_KERNEL, "k")
        with pytest.raises(CoarsenError):
            thread_coarsen(wrapper, (3,))

    def test_factor_exceeding_block_rejected(self):
        module, name, wrapper = compile_wrapper(SHARED_KERNEL, "k")
        with pytest.raises(CoarsenError):
            thread_coarsen(wrapper, (16,))

    def test_2d_thread_coarsening(self):
        source = """
        __global__ void k(float *out) {
            int x = threadIdx.x, y = threadIdx.y;
            out[(blockIdx.x * 4 + y) * 4 + x] = x * 10.0f + y;
        }
        """
        def coarsen(w):
            thread_coarsen(w, (2, 2))

        def make_args():
            return [MemoryBuffer((32,), F32)]

        args1, args2 = run_both(source, "k", (2,), (4, 4), make_args,
                                coarsen)
        np.testing.assert_array_equal(args1[0].array, args2[0].array)


class TestBlockCoarsening:
    @pytest.mark.parametrize("factor", [2, 4])
    def test_divisor_factor_equivalence(self, factor):
        def make_args():
            rng = np.random.default_rng(1)
            data = rng.random(32, dtype=np.float32)
            return [MemoryBuffer((32,), F32, data=data),
                    MemoryBuffer((32,), F32)]

        args1, args2 = run_both(
            SHARED_KERNEL, "k", (4,), (8,), make_args,
            lambda w: block_coarsen(w, (factor,)))
        np.testing.assert_array_equal(args1[1].array, args2[1].array)

    @pytest.mark.parametrize("factor", [3, 5, 7])
    def test_non_divisor_factor_with_epilogue(self, factor):
        """Block coarsening accepts ANY factor via epilogue kernels (§V-C)."""
        def make_args():
            rng = np.random.default_rng(3)
            data = rng.random(64, dtype=np.float32)
            return [MemoryBuffer((64,), F32, data=data),
                    MemoryBuffer((64,), F32)]

        args1, args2 = run_both(
            SHARED_KERNEL, "k", (8,), (8,), make_args,
            lambda w: block_coarsen(w, (factor,)))
        np.testing.assert_array_equal(args1[1].array, args2[1].array)

    def test_epilogue_created_for_non_divisor(self):
        module, name, wrapper = compile_wrapper(SHARED_KERNEL, "k")
        result = block_coarsen(wrapper, (3,))
        assert result.epilogues == 1
        loops = block_parallels(wrapper)
        assert len(loops) == 2
        assert loops[1].attr("coarsen.epilogue")

    def test_dynamic_grid_epilogue_is_empty_for_divisor(self):
        """Grid sizes are runtime values, so an epilogue is always emitted;
        for divisor factors it must execute zero blocks (§V-C)."""
        def make_args():
            data = np.arange(32, dtype=np.float32)
            return [MemoryBuffer((32,), F32, data=data),
                    MemoryBuffer((32,), F32)]

        args1, args2 = run_both(
            SHARED_KERNEL, "k", (4,), (8,), make_args,
            lambda w: block_coarsen(w, (2,)))
        np.testing.assert_array_equal(args1[1].array, args2[1].array)

    def test_shared_memory_duplicated(self):
        """Block coarsening combines shared allocations (§V-C)."""
        module, name, wrapper = compile_wrapper(SHARED_KERNEL, "k")
        block_coarsen(wrapper, (2,))
        from repro.analysis import shared_bytes_per_block
        main = block_parallels(wrapper)[0]
        assert shared_bytes_per_block(main) == 2 * 8 * 4

    def test_barrier_merged_across_blocks(self):
        module, name, wrapper = compile_wrapper(SHARED_KERNEL, "k")
        block_coarsen(wrapper, (2,))
        main = block_parallels(wrapper)[0]
        assert len(main.ops_matching("polygeist.barrier")) == 1

    def test_block_divergent_barrier_rejected(self):
        """Fig. 10 right: duplicating a barrier is illegal."""
        module, name, wrapper = compile_wrapper(BLOCK_DIVERGENT_KERNEL, "k")
        with pytest.raises(CoarsenError):
            block_coarsen(wrapper, (2,))

    def test_thread_coarsening_of_divergent_blocks_ok(self):
        """The same kernel CAN be thread coarsened (convergence)."""
        module, name, wrapper = compile_wrapper(BLOCK_DIVERGENT_KERNEL, "k")
        thread_coarsen(wrapper, (2,))  # must not raise

    def test_loop_barrier_block_coarsening(self):
        def make_args():
            rng = np.random.default_rng(9)
            return [MemoryBuffer((32,), F32,
                                 data=rng.random(32, dtype=np.float32))]

        args1, args2 = run_both(
            LOOP_BARRIER_KERNEL, "k", (4,), (8,), make_args,
            lambda w: block_coarsen(w, (2,)))
        np.testing.assert_array_equal(args1[0].array, args2[0].array)


class TestCombinedCoarsening:
    @pytest.mark.parametrize("block_f,thread_f", [(2, 2), (3, 4), (2, 8)])
    def test_combined_equivalence(self, block_f, thread_f):
        def make_args():
            rng = np.random.default_rng(11)
            data = rng.random(64, dtype=np.float32)
            return [MemoryBuffer((64,), F32, data=data),
                    MemoryBuffer((64,), F32)]

        args1, args2 = run_both(
            SHARED_KERNEL, "k", (8,), (8,), make_args,
            lambda w: coarsen_wrapper(w, block_factors=(block_f,),
                                      thread_factors=(thread_f,)))
        np.testing.assert_array_equal(args1[1].array, args2[1].array)

    def test_totals_balanced(self):
        module, name, wrapper = compile_wrapper(SHARED_KERNEL, "k")
        result = coarsen_wrapper(wrapper, block_total=2, thread_total=4)
        assert result.total_block == 2
        assert result.total_thread == 4

    def test_epilogue_also_thread_coarsened(self):
        module, name, wrapper = compile_wrapper(SHARED_KERNEL, "k")
        coarsen_wrapper(wrapper, block_factors=(3,), thread_factors=(2,))
        for block_loop in block_parallels(wrapper):
            threads = thread_parallel(block_loop)
            from repro.dialects import arith
            ub = scf.parallel_upper_bounds(threads)[0]
            assert arith.constant_value(ub) == 4


class TestBalanceFactors:
    def test_paper_footnote_examples(self):
        # "for a total factor of 16, we will coarsen the 3 dimensions with
        #  4, 2, and 2 respectively, whereas for 6 we will coarsen with
        #  3, 2, and 1"
        assert balance_factors(16, [64, 64, 64]) == [4, 2, 2]
        assert balance_factors(6, [64, 64, 64]) == [3, 2, 1]

    def test_size_one_dims_skipped(self):
        assert balance_factors(4, [64, 1, 1]) == [4, 1, 1]
        assert balance_factors(4, [1, 64, 1]) == [1, 4, 1]

    def test_divisibility_respected(self):
        # extent 8 and 6: factor 4 can't go on the 6 side twice
        factors = balance_factors(4, [8, 6], require_divisors=True)
        assert factors[0] * factors[1] == 4
        assert 8 % factors[0] == 0 and 6 % factors[1] == 0

    def test_unplaceable_primes_dropped(self):
        factors = balance_factors(5, [8, 8], require_divisors=True)
        assert factors == [1, 1]  # 5 divides neither extent

    def test_product_preserved_without_divisor_constraint(self):
        for total in [2, 3, 4, 6, 8, 12, 16, 32]:
            factors = balance_factors(total, [None, None, None])
            product = factors[0] * factors[1] * factors[2]
            assert product == total


class TestLegalityAnalysis:
    def test_block_divergent_detected(self):
        module, name, wrapper = compile_wrapper(BLOCK_DIVERGENT_KERNEL, "k")
        blocks = block_parallels(wrapper)[0]
        reason = check_unroll_legality(blocks)
        assert reason is not None
        assert "scf.if" in reason

    def test_uniform_control_flow_legal(self):
        module, name, wrapper = compile_wrapper(LOOP_BARRIER_KERNEL, "k")
        blocks = block_parallels(wrapper)[0]
        assert check_unroll_legality(blocks) is None

    def test_trust_convergence_bypasses_uniformity(self):
        module, name, wrapper = compile_wrapper(BLOCK_DIVERGENT_KERNEL, "k")
        threads = thread_parallel(block_parallels(wrapper)[0])
        assert check_unroll_legality(threads, trust_convergence=True) is None


@st.composite
def coarsening_config(draw):
    block_f = draw(st.sampled_from([1, 2, 3, 4, 5, 8]))
    thread_f = draw(st.sampled_from([1, 2, 4, 8]))
    return block_f, thread_f


@given(coarsening_config())
@settings(max_examples=12, deadline=None)
def test_property_combined_coarsening_equivalence(config):
    """Any (block, thread) coarsening pair preserves kernel output."""
    block_f, thread_f = config

    def make_args():
        rng = np.random.default_rng(123)
        data = rng.random(64, dtype=np.float32)
        return [MemoryBuffer((64,), F32, data=data),
                MemoryBuffer((64,), F32)]

    args1, args2 = run_both(
        SHARED_KERNEL, "k", (8,), (8,), make_args,
        lambda w: coarsen_wrapper(w, block_factors=(block_f,),
                                  thread_factors=(thread_f,)))
    np.testing.assert_array_equal(args1[1].array, args2[1].array)
