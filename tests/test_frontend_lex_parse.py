"""Tests for the lexer, preprocessor, and C parser."""

import pytest

from repro.frontend import c_ast as ast
from repro.frontend.lexer import LexError, tokenize
from repro.frontend.preprocessor import PreprocessorError, preprocess
from repro.frontend.cparser import CParseError, parse_translation_unit


class TestLexer:
    def test_numbers(self):
        tokens = tokenize("42 0x1F 3.14 1.5f 2e3 1.f")
        kinds = [(t.kind, t.value) for t in tokens[:-1]]
        assert kinds[0] == ("int", 42)
        assert kinds[1] == ("int", 31)
        assert kinds[2] == ("float", 3.14)
        assert kinds[3] == ("float", 1.5)
        assert tokens[3].is_f32
        assert kinds[4] == ("float", 2000.0)
        assert kinds[5] == ("float", 1.0)

    def test_operators_longest_match(self):
        tokens = tokenize("a <<= b >>= c <<< d >>> e == f !=")
        ops = [t.text for t in tokens if t.kind == "op"]
        assert ops == ["<<=", ">>=", "<<<", ">>>", "==", "!="]

    def test_comments_stripped(self):
        tokens = tokenize("a // line\n b /* block\nstill */ c")
        names = [t.text for t in tokens if t.kind == "id"]
        assert names == ["a", "b", "c"]

    def test_keywords_recognized(self):
        tokens = tokenize("__global__ void f() { __shared__ float x; }")
        assert tokens[0].kind == "keyword"
        assert tokens[0].text == "__global__"

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n\nc")
        lines = [t.line for t in tokens if t.kind == "id"]
        assert lines == [1, 2, 4]

    def test_unterminated_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never closed")

    def test_string_and_char(self):
        tokens = tokenize('"hi" \'x\'')
        assert tokens[0].kind == "string"
        assert tokens[0].value == "hi"
        assert tokens[1].kind == "char"
        assert tokens[1].value == ord("x")


class TestPreprocessor:
    def test_object_macro(self):
        assert "16" in preprocess("#define N 16\nint x = N;")

    def test_function_macro(self):
        out = preprocess("#define SQ(x) ((x)*(x))\nint y = SQ(a+1);")
        assert "(((a+1))*((a+1)))" in out.replace(" ", "")

    def test_nested_macros(self):
        out = preprocess("#define A 4\n#define B (A+1)\nint x = B;")
        assert "(4 +1)" in out or "(4+1)" in out.replace(" ", "")

    def test_ifdef(self):
        src = "#define GPU\n#ifdef GPU\nint a;\n#else\nint b;\n#endif"
        out = preprocess(src)
        assert "int a" in out and "int b" not in out

    def test_ifndef(self):
        out = preprocess("#ifndef MISSING\nint a;\n#endif")
        assert "int a" in out

    def test_predefines(self):
        out = preprocess("int x = WIDTH;", defines={"WIDTH": 128})
        assert "128" in out

    def test_include_ignored(self):
        out = preprocess('#include <cuda.h>\nint x;')
        assert "int x" in out
        assert "include" not in out

    def test_line_continuation(self):
        out = preprocess("#define M(a) \\\n  (a+a)\nint x = M(2);")
        assert "((2)+(2))" in out.replace(" ", "")

    def test_undef(self):
        out = preprocess("#define N 4\n#undef N\nint x = N;")
        assert "x = N" in out

    def test_self_referential_macro_terminates(self):
        out = preprocess("#define x x+1\nint y = x;")
        assert "x+1" in out

    def test_hash_if(self):
        out = preprocess("#define V 2\n#if V > 1\nint a;\n#endif")
        assert "int a" in out

    def test_hash_if_unparseable_condition_is_false(self):
        # C-only syntax (unexpanded identifier, suffixed literal) must
        # deactivate the region, not crash the preprocessor
        out = preprocess(
            "#if UNDEFINED_MACRO + 1\nint skipped;\n#endif\nint kept;")
        assert "skipped" not in out
        assert "int kept" in out
        out = preprocess("#if 1UL\nint a;\n#endif\nint b;")
        assert "int a" not in out
        assert "int b" in out

    def test_hash_if_fatal_errors_propagate(self):
        # only evaluation errors are treated as "condition is false";
        # interpreter-level failures must escape the narrowed handler
        import repro.frontend.preprocessor as pp

        def boom(*args, **kwargs):
            raise KeyboardInterrupt

        saved = pp._expand
        pp._expand = boom
        try:
            with pytest.raises(KeyboardInterrupt):
                preprocess("#if 1\nint a;\n#endif")
        finally:
            pp._expand = saved


class TestParser:
    def test_kernel_signature(self):
        unit = parse_translation_unit(
            "__global__ void k(float *x, int n, double d) {}")
        kernel = unit.functions["k"]
        assert kernel.is_kernel
        assert kernel.params[0][1].is_pointer
        assert kernel.params[0][1].base == "float"
        assert kernel.params[1][1].is_integer
        assert kernel.params[2][1].base == "double"

    def test_device_function(self):
        unit = parse_translation_unit(
            "__device__ float f(float a) { return a * 2.0f; }")
        assert unit.functions["f"].is_device

    def test_forward_declaration_skipped(self):
        unit = parse_translation_unit(
            "__global__ void k(int n);\n__global__ void k(int n) {}")
        assert unit.functions["k"].body is not None

    def test_shared_array_decl(self):
        unit = parse_translation_unit(
            "__global__ void k() { __shared__ float t[16][16]; }")
        decl = unit.functions["k"].body.stmts[0].decls[0]
        assert decl.shared
        assert len(decl.type.array_dims) == 2

    def test_precedence(self):
        unit = parse_translation_unit("void f() { int x = 1 + 2 * 3; }")
        init = unit.functions["f"].body.stmts[0].decls[0].init
        assert isinstance(init, ast.BinOp) and init.op == "+"
        assert isinstance(init.rhs, ast.BinOp) and init.rhs.op == "*"

    def test_ternary_and_assign(self):
        unit = parse_translation_unit("void f(int a) { int b = a ? 1 : 2; }")
        init = unit.functions["f"].body.stmts[0].decls[0].init
        assert isinstance(init, ast.Ternary)

    def test_launch_statement(self):
        unit = parse_translation_unit(
            "__global__ void k(float* p) {}\n"
            "void host(float* p, int n) { k<<<n / 256, 256>>>(p); }")
        launch = unit.functions["host"].body.stmts[0]
        assert isinstance(launch, ast.KernelLaunch)
        assert launch.name == "k"
        assert isinstance(launch.grid, ast.BinOp)
        assert isinstance(launch.block, ast.IntLit)

    def test_launch_with_dim3(self):
        unit = parse_translation_unit(
            "__global__ void k() {}\n"
            "void host(int gx) { dim3 g(gx, gx); dim3 b(16, 16);"
            " k<<<g, b>>>(); }")
        stmts = unit.functions["host"].body.stmts
        assert isinstance(stmts[-1], ast.KernelLaunch)

    def test_for_loop_forms(self):
        unit = parse_translation_unit(
            "void f(int n) { for (int i = 0; i < n; i++) {}"
            " for (int j = n; j > 0; j--) {} }")
        loops = unit.functions["f"].body.stmts
        assert isinstance(loops[0], ast.For)
        assert isinstance(loops[1], ast.For)

    def test_cast_expression(self):
        unit = parse_translation_unit("void f(int a) { float x = (float)a; }")
        init = unit.functions["f"].body.stmts[0].decls[0].init
        assert isinstance(init, ast.Cast)
        assert init.type.base == "float"

    def test_member_access(self):
        unit = parse_translation_unit(
            "__global__ void k(int* o) { o[0] = threadIdx.x; }")
        stmt = unit.functions["k"].body.stmts[0]
        assert isinstance(stmt.expr.value, ast.Member)

    def test_global_device_array(self):
        unit = parse_translation_unit("__device__ float lut[256];")
        assert unit.globals[0].decl.name == "lut"
        assert unit.globals[0].device

    def test_constant_qualifier(self):
        unit = parse_translation_unit("__constant__ float coeffs[8];")
        assert unit.globals[0].decl.constant

    def test_sizeof(self):
        unit = parse_translation_unit("void f() { int s = sizeof(float); }")
        init = unit.functions["f"].body.stmts[0].decls[0].init
        assert isinstance(init, ast.IntLit) and init.value == 4

    def test_do_while(self):
        unit = parse_translation_unit(
            "void f(int n) { int i = 0; do { i++; } while (i < n); }")
        assert isinstance(unit.functions["f"].body.stmts[1], ast.DoWhile)

    def test_error_position_reported(self):
        with pytest.raises(CParseError) as info:
            parse_translation_unit("void f() { int = 3; }")
        assert "line" in str(info.value)

    def test_multi_declarator(self):
        unit = parse_translation_unit("void f() { int a = 1, b = 2; }")
        decls = unit.functions["f"].body.stmts[0].decls
        assert [d.name for d in decls] == ["a", "b"]

    def test_unsigned_normalized(self):
        unit = parse_translation_unit("void f(unsigned int a, size_t b) {}")
        params = unit.functions["f"].params
        assert params[0][1].base == "uint"
        assert params[1][1].base == "long"
