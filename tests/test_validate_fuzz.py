"""Fuzzing the merge-vs-duplicate decisions against interpreter semantics.

Hypothesis generates kernels with adversarial barrier placements (see
:mod:`repro.validate.fuzz`) and asserts that whenever
``unroll_and_interleave`` *accepts* a coarsening, the result is
bit-identical to the baseline — and that rejections only ever happen via
the legality check, never as silent miscompiles.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.validate.fuzz import (FUZZ_CONFIGS, HAVE_HYPOTHESIS,
                                 check_transform_agreement, run_fuzz_kernel)

if not HAVE_HYPOTHESIS:  # pragma: no cover - hypothesis ships with the repo
    pytest.skip("hypothesis unavailable", allow_module_level=True)

from repro.validate.fuzz import fuzz_kernels


@given(fuzz_kernels())
@settings(max_examples=20, deadline=None)
def test_fuzz_transform_agreement(source):
    outcomes = check_transform_agreement(source)
    assert all(o.status in ("equal", "rejected", "ub")
               for o in outcomes.values())


def test_block_dependent_barrier_rejected_for_block_coarsening():
    """The §V-C shape: a barrier under a blockIdx-dependent guard. Block
    coarsening must refuse (duplicating the barrier would deadlock real
    GPUs); thread coarsening merges it and must stay exact."""
    source = """
__global__ void k(float *in, float *out, int n) {
    __shared__ float tile[8];
    int t = threadIdx.x;
    int b = blockIdx.x;
    int g = b * blockDim.x + t;
    float v = in[g];
    if (b < 2) {
        tile[t] = v * 2.0f;
        __syncthreads();
        v = v + tile[(t + 3) % 8];
    }
    out[g] = v;
}
"""
    outcomes = check_transform_agreement(source)
    assert outcomes["thread_total=2"].status == "equal"
    assert outcomes["block_total=2"].status == "rejected"
    assert outcomes["block_total=2, thread_total=2"].status == "rejected"


def test_barrier_in_uniform_loop_jams_exactly():
    """The Fig. 8 path: a barrier inside a uniform-bound for must be
    merged (not duplicated) and stay bit-exact under every config."""
    source = """
__global__ void k(float *in, float *out, int n) {
    __shared__ float tile[8];
    int t = threadIdx.x;
    int g = blockIdx.x * blockDim.x + t;
    float v = in[g];
    for (int j = 0; j < 3; j++) {
        __syncthreads();
        tile[t] = v + (float)j;
        __syncthreads();
        v = v + tile[(t + 1) % 8];
    }
    out[g] = v;
}
"""
    outcomes = check_transform_agreement(source)
    assert all(o.status in ("equal", "rejected")
               for o in outcomes.values())
    assert outcomes["thread_total=2"].status == "equal"


def test_run_fuzz_kernel_baseline_deterministic():
    source = """
__global__ void k(float *in, float *out, int n) {
    int t = threadIdx.x;
    int g = blockIdx.x * blockDim.x + t;
    out[g] = in[g] * 2.0f + (float)t;
}
"""
    data = np.random.default_rng(3).random(32, dtype=np.float32)
    first = run_fuzz_kernel(source, None, data)
    second = run_fuzz_kernel(source, None, data)
    np.testing.assert_array_equal(first, second)
    coarsened = run_fuzz_kernel(source, {"thread_total": 2}, data)
    np.testing.assert_array_equal(first, coarsened)


def test_fuzz_configs_cover_both_styles():
    kinds = set()
    for config in FUZZ_CONFIGS:
        kinds.update(config)
    assert kinds == {"thread_total", "block_total"}
