"""Cross-validation of the two simulator fidelities.

The analytical model predicts memory traffic statically (affine coalescing);
the trace mode measures it on real addresses through the cache model. For
kernels the affine analysis fully understands, the two must agree.
"""

import numpy as np
import pytest

from repro.dialects import polygeist
from repro.frontend import ModuleGenerator, parse_translation_unit
from repro.interpreter import MemoryBuffer
from repro.ir import F32, verify_module
from repro.simulator import trace_kernel
from repro.simulator.model import KernelModel
from repro.targets import A100
from repro.transforms import run_cleanup
from repro.transforms.coarsen import block_parallels


def build(source, kernel="k", block=(32,)):
    unit = parse_translation_unit(source)
    generator = ModuleGenerator(unit)
    name = generator.get_launch_wrapper(kernel, 1, block)
    run_cleanup(generator.module)
    verify_module(generator.module)
    wrapper = polygeist.find_gpu_wrappers(generator.module.op)[0]
    return generator.module, name, wrapper


COALESCED = """
__global__ void k(float *a, float *b) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    b[i] = a[i] + 1.0f;
}
"""


class TestFidelityAgreement:
    def test_read_transactions_match(self):
        """Cold-cache read traffic: static prediction == traced reality."""
        blocks = 8
        module, name, wrapper = build(COALESCED)
        model = KernelModel(block_parallels(wrapper)[0], A100)
        timing = model.time_launch(blocks)
        analytic_read = timing.metrics.l2_to_l1_read_bytes

        n = blocks * 32
        a = MemoryBuffer((n,), F32, data=np.arange(n, dtype=np.float32))
        b = MemoryBuffer((n,), F32)
        trace = trace_kernel(module, name, [blocks, a, b], A100)
        traced_read = trace.metrics.l2_to_l1_read_bytes
        # one f32 per thread, fully coalesced, no reuse: byte-exact match
        assert traced_read == n * 4
        assert analytic_read == traced_read

    def test_write_transactions_match(self):
        blocks = 8
        module, name, wrapper = build(COALESCED)
        model = KernelModel(block_parallels(wrapper)[0], A100)
        analytic_write = model.time_launch(blocks).metrics \
            .l1_to_l2_write_bytes
        n = blocks * 32
        a = MemoryBuffer((n,), F32)
        b = MemoryBuffer((n,), F32)
        trace = trace_kernel(module, name, [blocks, a, b], A100)
        assert trace.metrics.l1_to_l2_write_bytes == n * 4
        assert analytic_write == trace.metrics.l1_to_l2_write_bytes

    def test_request_counts_match(self):
        """Warp request counts: one load + one store per warp."""
        blocks = 4
        module, name, wrapper = build(COALESCED)
        model = KernelModel(block_parallels(wrapper)[0], A100)
        analytic = model.time_launch(blocks).metrics
        n = blocks * 32
        a = MemoryBuffer((n,), F32)
        b = MemoryBuffer((n,), F32)
        trace = trace_kernel(module, name, [blocks, a, b], A100)
        assert trace.global_read_requests == blocks  # 1 warp/block
        assert trace.global_write_requests == blocks
        assert analytic.l1_to_sm_read_requests == \
            trace.global_read_requests
        assert analytic.sm_to_l1_write_requests == \
            trace.global_write_requests

    def test_strided_overestimate_is_bounded(self):
        """For strided kernels the static model may be conservative, but
        never UNDER-estimates traced traffic (cold caches)."""
        source = """
        __global__ void k(float *a, float *b) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            b[i] = a[i * 8];
        }
        """
        blocks = 4
        module, name, wrapper = build(source)
        model = KernelModel(block_parallels(wrapper)[0], A100)
        analytic_read = model.time_launch(blocks).metrics \
            .l2_to_l1_read_bytes
        n = blocks * 32
        a = MemoryBuffer((n * 8,), F32)
        b = MemoryBuffer((n,), F32)
        trace = trace_kernel(module, name, [blocks, a, b], A100)
        assert analytic_read >= trace.metrics.l2_to_l1_read_bytes

    def test_shared_request_counts_match(self):
        source = """
        __global__ void k(float *a) {
            __shared__ float tile[32];
            int t = threadIdx.x;
            tile[t] = a[blockIdx.x * 32 + t];
            __syncthreads();
            a[blockIdx.x * 32 + t] = tile[31 - t];
        }
        """
        blocks = 4
        module, name, wrapper = build(source)
        model = KernelModel(block_parallels(wrapper)[0], A100)
        analytic = model.time_launch(blocks).metrics
        a = MemoryBuffer((blocks * 32,), F32)
        trace = trace_kernel(module, name, [blocks, a], A100)
        # per block: 1 warp-request write, 1 warp-request read
        assert trace.metrics.sm_to_shmem_write_requests == blocks
        assert trace.metrics.shmem_to_sm_read_requests == blocks
        # analytic counts per-thread accesses (32 lanes per request)
        assert analytic.shmem_to_sm_read_requests == blocks * 32
