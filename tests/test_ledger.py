"""Tests for the durable job ledger (WAL append, replay, compaction).

The ledger's promise: every appended transition survives ``kill -9``
except possibly the one mid-write (the torn tail), replay collapses any
segment history into one state per job, and compaction bounds the disk
footprint without losing incomplete jobs.
"""

import json
import os

import pytest

from repro import faults
from repro.faults import FaultPlan, FaultSpec
from repro.serve.ledger import LEDGER_SCHEMA, JobLedger


@pytest.fixture(autouse=True)
def _clean_plan():
    faults.uninstall_plan()
    yield
    faults.uninstall_plan()


def _ledger(tmp_path, **kwargs) -> JobLedger:
    return JobLedger(str(tmp_path / "ledger"), **kwargs)


PAYLOAD = {"benchmark": "lud", "arch": "a100", "tier": "polygeist"}


class TestAppendReplay:
    def test_lifecycle_collapses_to_last_event(self, tmp_path):
        ledger = _ledger(tmp_path)
        assert ledger.append("accepted", "j000001", signature="sig-a",
                             payload=PAYLOAD)
        assert ledger.append("running", "j000001")
        assert ledger.append("done", "j000001", result={"seconds": 1.5})
        states = ledger.replay()
        state = states["j000001"]
        assert state.event == "done" and state.finished
        assert state.signature == "sig-a"
        assert state.payload == PAYLOAD  # absorbed from "accepted"
        assert state.result == {"seconds": 1.5}

    def test_incomplete_job_not_finished(self, tmp_path):
        ledger = _ledger(tmp_path)
        ledger.append("accepted", "j000002", signature="s",
                      payload=PAYLOAD)
        ledger.append("running", "j000002")
        state = ledger.replay()["j000002"]
        assert state.event == "running" and not state.finished

    def test_recovered_event_is_informational(self, tmp_path):
        ledger = _ledger(tmp_path)
        ledger.append("accepted", "j1", payload=PAYLOAD)
        ledger.append("recovered", "j1")
        assert ledger.replay()["j1"].event == "accepted"

    def test_unknown_event_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown ledger event"):
            _ledger(tmp_path).append("exploded", "j1")

    def test_replay_preserves_insertion_order(self, tmp_path):
        ledger = _ledger(tmp_path)
        for index in (3, 1, 2):
            ledger.append("accepted", "j%06d" % index, payload=PAYLOAD)
        assert list(ledger.replay()) == ["j000003", "j000001", "j000002"]

    def test_fsync_every_append(self, tmp_path):
        # the record must be on disk BEFORE append returns — read the
        # segment through a different handle immediately after
        ledger = _ledger(tmp_path)
        ledger.append("accepted", "j1", payload=PAYLOAD)
        [segment] = ledger.segments()
        with open(segment) as handle:
            record = json.loads(handle.readline())
        assert record["job"] == "j1" and record["v"] == LEDGER_SCHEMA


class TestCrashTolerance:
    def test_torn_tail_skipped_and_counted(self, tmp_path):
        ledger = _ledger(tmp_path)
        ledger.append("accepted", "j1", signature="s", payload=PAYLOAD)
        ledger.append("done", "j1", result={"seconds": 2.0})
        ledger.close()
        [segment] = ledger.segments()
        with open(segment, "a") as handle:  # the kill -9 shape
            handle.write('{"v": 1, "event": "acce')
        fresh = _ledger(tmp_path)
        states = fresh.replay()
        assert fresh.torn_records == 1
        assert states["j1"].finished

    def test_unknown_schema_skipped(self, tmp_path):
        ledger = _ledger(tmp_path)
        ledger.append("accepted", "j1", payload=PAYLOAD)
        ledger.close()
        [segment] = ledger.segments()
        with open(segment, "a") as handle:
            handle.write(json.dumps({"v": 99, "event": "done",
                                     "job": "j1"}) + "\n")
        fresh = _ledger(tmp_path)
        states = fresh.replay()
        assert fresh.skipped_records == 1
        assert not states["j1"].finished  # the v99 record did not apply

    def test_append_failure_degrades_not_raises(self, tmp_path):
        import shutil
        ledger = _ledger(tmp_path)
        ledger.append("accepted", "j1", payload=PAYLOAD)
        ledger.close()
        # the ledger directory vanishes out from under the daemon
        # (chmod tricks don't work under root, so remove it outright)
        shutil.rmtree(ledger.path)
        open(ledger.path, "w").close()  # and a file squats on the path
        assert ledger.append("running", "j1") is False
        assert ledger.append_errors == 1
        # and it self-heals once the directory is back
        os.remove(ledger.path)
        os.makedirs(ledger.path)
        assert ledger.append("running", "j1") is True

    def test_injected_append_fault_counted(self, tmp_path):
        faults.install_plan(FaultPlan(
            [FaultSpec("serve.ledger.append", 2, "raise")]))
        ledger = _ledger(tmp_path)
        assert ledger.append("accepted", "j1", payload=PAYLOAD)
        assert ledger.append("running", "j1") is False  # injected
        assert ledger.append_errors == 1
        assert ledger.append("done", "j1", result={})


class TestRotationCompaction:
    def test_rotation_bounds_segment_size(self, tmp_path):
        ledger = _ledger(tmp_path, max_segment_bytes=4096)
        for index in range(60):
            ledger.append("accepted", "j%06d" % index, payload=PAYLOAD)
        assert len(ledger.segments()) > 1
        assert ledger.rotations >= 1
        for segment in ledger.segments()[:-1]:
            assert os.path.getsize(segment) <= 4096

    def test_recover_compacts_to_one_segment(self, tmp_path):
        ledger = _ledger(tmp_path, max_segment_bytes=4096)
        for index in range(40):
            job = "j%06d" % index
            ledger.append("accepted", job, signature="s%d" % index,
                          payload=PAYLOAD)
            ledger.append("done", job, result={"seconds": float(index)})
        assert len(ledger.segments()) > 1
        fresh = _ledger(tmp_path, max_segment_bytes=4096)
        states = fresh.recover()
        assert len(states) == 40
        assert len(fresh.segments()) == 1
        # the snapshot replays identically
        again = _ledger(tmp_path).replay()
        assert set(again) == set(states)
        assert all(again[j].finished for j in again)
        assert again["j000039"].result == {"seconds": 39.0}

    def test_keep_finished_caps_history(self, tmp_path):
        ledger = _ledger(tmp_path)
        for index in range(30):
            job = "j%06d" % index
            ledger.append("accepted", job, payload=PAYLOAD)
            ledger.append("done", job, result={})
        ledger.append("accepted", "j999999", payload=PAYLOAD)  # live
        fresh = _ledger(tmp_path, keep_finished=10)
        states = fresh.recover()
        finished = [s for s in states.values() if s.finished]
        assert len(finished) == 10
        assert fresh.compacted_away == 20
        assert "j999999" in states  # incomplete jobs are never dropped
        assert not states["j999999"].finished

    def test_append_resumes_after_recover(self, tmp_path):
        ledger = _ledger(tmp_path)
        ledger.append("accepted", "j1", payload=PAYLOAD)
        fresh = _ledger(tmp_path)
        fresh.recover()
        fresh.append("running", "j1")
        assert _ledger(tmp_path).replay()["j1"].event == "running"

    def test_stats_shape(self, tmp_path):
        ledger = _ledger(tmp_path)
        ledger.append("accepted", "j1", payload=PAYLOAD)
        stats = ledger.stats()
        assert stats["appends"] == 1
        assert stats["segments"] == 1
        assert stats["bytes"] > 0
        assert stats["schema"] == LEDGER_SCHEMA
        assert json.dumps(stats)  # JSON-able for /v1/ledger
