"""Meta-tests keeping the documentation honest.

These assert that what README/DESIGN/EXPERIMENTS claim actually exists:
the README quickstart runs verbatim, every experiment has its harness
file, and the benchmark inventory matches the docs.
"""

import re
from pathlib import Path

import numpy as np
import pytest

ROOT = Path(__file__).parent.parent


class TestReadme:
    def test_quickstart_code_runs(self):
        """Execute the README's python block verbatim."""
        text = (ROOT / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", text, re.DOTALL)
        assert blocks, "README must contain a python quickstart"
        namespace = {}
        exec(blocks[0], namespace)  # noqa: S102 - our own documentation

    def test_cli_commands_exist(self):
        from repro.__main__ import build_parser
        text = (ROOT / "README.md").read_text()
        parser = build_parser()
        sub = next(a for a in parser._actions
                   if hasattr(a, "choices") and a.choices)
        for command in ("emit-ir", "tune", "hipify", "targets"):
            assert command in sub.choices
            assert command in text

    def test_documented_files_exist(self):
        text = (ROOT / "README.md").read_text()
        for link in re.findall(r"\]\(([^)#]+\.md)\)", text):
            assert (ROOT / link).exists(), "broken doc link: %s" % link


class TestDesign:
    def test_all_rodinia_benchmarks_listed_and_registered(self):
        from repro.benchsuite import BENCHMARKS
        text = (ROOT / "DESIGN.md").read_text()
        for name in BENCHMARKS:
            assert name in text, "DESIGN.md must list benchmark %s" % name

    def test_experiment_index_maps_to_bench_files(self):
        text = (ROOT / "DESIGN.md").read_text()
        for bench_file in re.findall(r"benchmarks/(bench_\w+\.py)", text):
            assert (ROOT / "benchmarks" / bench_file).exists(), \
                "DESIGN.md references missing %s" % bench_file

    def test_every_bench_file_in_experiments_doc(self):
        experiments = (ROOT / "EXPERIMENTS.md").read_text()
        for path in sorted((ROOT / "benchmarks").glob("bench_*.py")):
            assert path.name in experiments, \
                "EXPERIMENTS.md must describe %s" % path.name


class TestExamples:
    def test_examples_exist_and_have_mains(self):
        examples = sorted((ROOT / "examples").glob("*.py"))
        assert len(examples) >= 4
        for path in examples:
            text = path.read_text()
            assert "__main__" in text, "%s must be runnable" % path.name
            assert '"""' in text, "%s must have a docstring" % path.name

    def test_examples_listed_in_readme(self):
        readme = (ROOT / "README.md").read_text()
        for path in (ROOT / "examples").glob("*.py"):
            assert path.name in readme


class TestPaperConstants:
    """Numbers quoted from the paper must match the code."""

    def test_table1_bandwidths(self):
        from repro.targets import A100, A4000, MI210, RX6800
        assert A4000.memory_bandwidth_gbs == 445.0
        assert RX6800.memory_bandwidth_gbs == 512.0
        assert A100.memory_bandwidth_gbs == 1555.0
        assert MI210.memory_bandwidth_gbs == 1638.0

    def test_nw_shared_bytes_match_paper(self):
        """The paper: nw kernels allocate 2180 bytes per 16-thread block."""
        from repro.analysis import shared_bytes_per_block
        from repro.dialects import polygeist
        from repro.benchsuite import get_benchmark
        from repro.frontend import ModuleGenerator, parse_translation_unit
        from repro.transforms.coarsen import block_parallels
        bench = get_benchmark("nw")
        unit = parse_translation_unit(bench.source)
        generator = ModuleGenerator(unit)
        generator.get_launch_wrapper("needle_1", 1, (16,))
        wrapper = polygeist.find_gpu_wrappers(generator.module.op)[0]
        shared = shared_bytes_per_block(block_parallels(wrapper)[0])
        # temp[17][17] + ref[16][16], 4-byte ints
        assert shared == 17 * 17 * 4 + 16 * 16 * 4 == 2180

    def test_footnote4_balancing(self):
        from repro.transforms import balance_factors
        assert balance_factors(16, [64, 64, 64]) == [4, 2, 2]
        assert balance_factors(6, [64, 64, 64]) == [3, 2, 1]
