"""Unit tests for the IR core: values, operations, blocks, cloning."""

import pytest

from repro.ir import (Block, Builder, F32, INDEX, I32, Module, Operation,
                      Region, VerificationError, single_block_region,
                      verify_module, verify_op)
from repro.dialects import arith, func, scf


def make_func(name="f", inputs=(INDEX,), arg_names=("n",)):
    from repro.ir import FunctionType
    module = Module()
    builder = Builder(module.body)
    f = func.func(builder, name, FunctionType(tuple(inputs), ()), arg_names)
    return module, f, Builder(f.body_block())


class TestValues:
    def test_result_links_to_owner(self):
        op = Operation("test.op", [], [I32, F32])
        assert op.result(0).owner is op
        assert op.result(1).index == 1

    def test_use_list_tracks_operands(self):
        producer = Operation("test.producer", [], [I32])
        value = producer.result()
        consumer = Operation("test.consumer", [value, value], [])
        assert len(value.uses) == 2
        assert value.users == [consumer]

    def test_replace_all_uses(self):
        p1 = Operation("test.p1", [], [I32])
        p2 = Operation("test.p2", [], [I32])
        consumer = Operation("test.c", [p1.result()], [])
        p1.result().replace_all_uses_with(p2.result())
        assert consumer.operand(0) is p2.result()
        assert not p1.result().has_uses()
        assert len(p2.result().uses) == 1

    def test_replace_uses_if(self):
        p1 = Operation("test.p1", [], [I32])
        p2 = Operation("test.p2", [], [I32])
        c1 = Operation("test.keep", [p1.result()], [])
        c2 = Operation("test.swap", [p1.result()], [])
        p1.result().replace_uses_if(p2.result(),
                                    lambda op: op.name == "test.swap")
        assert c1.operand(0) is p1.result()
        assert c2.operand(0) is p2.result()

    def test_set_operand_updates_uses(self):
        p1 = Operation("test.p1", [], [I32])
        p2 = Operation("test.p2", [], [I32])
        c = Operation("test.c", [p1.result()], [])
        c.set_operand(0, p2.result())
        assert not p1.result().has_uses()
        assert p2.result().users == [c]


class TestStructure:
    def test_parent_links(self):
        module, f, builder = make_func()
        c = arith.index_constant(builder, 4)
        func.return_(builder)
        assert c.owner.parent is f.body_block()
        assert c.owner.parent_op is f
        assert f.parent_op is module.op

    def test_ancestors(self):
        module, f, builder = make_func()
        c0 = arith.index_constant(builder, 0)
        c4 = arith.index_constant(builder, 4)
        c1 = arith.index_constant(builder, 1)
        loop = scf.for_(builder, c0, c4, c1)
        inner = Builder(loop.body_block())
        inner_const = arith.index_constant(inner, 7)
        scf.yield_(inner)
        func.return_(builder)
        chain = list(inner_const.owner.ancestors())
        assert chain[0] is loop
        assert chain[1] is f
        assert chain[2] is module.op
        assert loop.is_ancestor_of(inner_const.owner)
        assert not inner_const.owner.is_ancestor_of(loop)

    def test_erase_detaches_and_drops_uses(self):
        module, f, builder = make_func()
        c = arith.index_constant(builder, 3)
        use = builder.create("test.use", [c], [])
        func.return_(builder)
        use.erase()
        assert not c.has_uses()
        assert use not in f.body_block().ops

    def test_erase_with_live_uses_raises(self):
        _, _, builder = make_func()
        c = arith.index_constant(builder, 3)
        builder.create("test.use", [c], [])
        with pytest.raises(ValueError):
            c.owner.erase()

    def test_walk_order(self):
        module, f, builder = make_func()
        c0 = arith.index_constant(builder, 0)
        c4 = arith.index_constant(builder, 4)
        c1 = arith.index_constant(builder, 1)
        loop = scf.for_(builder, c0, c4, c1)
        inner = Builder(loop.body_block())
        arith.index_constant(inner, 9)
        scf.yield_(inner)
        func.return_(builder)
        pre, post = [], []
        module.op.walk_preorder(lambda op: pre.append(op.name))
        module.op.walk(lambda op: post.append(op.name))
        assert pre[0] == "builtin.module"
        assert post[-1] == "builtin.module"
        assert pre.index("scf.for") < pre.index("scf.yield")


class TestClone:
    def test_clone_remaps_nested_values(self):
        module, f, builder = make_func()
        c0 = arith.index_constant(builder, 0)
        c8 = arith.index_constant(builder, 8)
        c1 = arith.index_constant(builder, 1)
        loop = scf.for_(builder, c0, c8, c1)
        inner = Builder(loop.body_block())
        iv = loop.body_block().arg(0)
        doubled = arith.addi(inner, iv, iv)
        scf.yield_(inner)
        func.return_(builder)

        clone = loop.clone()
        # The clone's nested add must reference the clone's own iv.
        cloned_add = clone.body_block().ops[0]
        assert cloned_add.operand(0) is clone.body_block().arg(0)
        assert cloned_add.operand(0) is not iv
        # External operands (bounds) are shared when not in the map.
        assert clone.operand(0) is c0

    def test_clone_with_value_map(self):
        _, _, builder = make_func()
        a = arith.index_constant(builder, 1)
        b = arith.index_constant(builder, 2)
        add = arith.addi(builder, a, b).owner
        clone = add.clone({a: b})
        assert clone.operand(0) is b
        assert clone.operand(1) is b

    def test_clone_preserves_attributes_deeply(self):
        _, _, builder = make_func()
        c0 = arith.index_constant(builder, 0)
        c1 = arith.index_constant(builder, 1)
        par = scf.parallel(builder, [c0], [c1], [c1], gpu_kind="threads")
        inner = Builder(par.body_block())
        scf.yield_(inner)
        clone = par.clone()
        assert clone.attr("gpu.kind") == "threads"
        clone.attributes["gpu.kind"] = "blocks"
        assert par.attr("gpu.kind") == "threads"


class TestVerifier:
    def test_valid_module_verifies(self):
        module, f, builder = make_func()
        func.return_(builder)
        verify_module(module)

    def test_dominance_violation_detected(self):
        module, f, builder = make_func()
        use = builder.create("test.use", [], [])
        c = arith.index_constant(builder, 1)
        # Manually append an operand defined *after* the user.
        use._append_operand(c)
        func.return_(builder)
        with pytest.raises(VerificationError):
            verify_module(module)

    def test_region_value_not_visible_outside(self):
        module, f, builder = make_func()
        c0 = arith.index_constant(builder, 0)
        c1 = arith.index_constant(builder, 1)
        loop = scf.for_(builder, c0, c1, c1)
        inner = Builder(loop.body_block())
        hidden = arith.index_constant(inner, 42)
        scf.yield_(inner)
        builder.create("test.use", [hidden], [])
        func.return_(builder)
        with pytest.raises(VerificationError):
            verify_module(module)

    def test_broken_use_list_detected(self):
        module, f, builder = make_func()
        c = arith.index_constant(builder, 1)
        use = builder.create("test.use", [c], [])
        func.return_(builder)
        c.uses.clear()  # corrupt
        with pytest.raises(VerificationError):
            verify_module(module)

    def test_func_missing_trailing_return_rejected(self):
        # regression: a truncated func body used to verify clean
        module, f, builder = make_func()
        arith.index_constant(builder, 1)
        with pytest.raises(VerificationError, match="func.return"):
            verify_module(module)

    def test_parallel_missing_trailing_yield_rejected(self):
        module, f, builder = make_func()
        c0 = arith.index_constant(builder, 0)
        c1 = arith.index_constant(builder, 1)
        loop = scf.parallel(builder, [c0], [c1], [c1])
        # body left without its scf.yield
        func.return_(builder)
        with pytest.raises(VerificationError, match="scf.yield"):
            verify_module(module)

    def test_for_truncated_body_rejected(self):
        module, f, builder = make_func()
        c0 = arith.index_constant(builder, 0)
        c1 = arith.index_constant(builder, 1)
        loop = scf.for_(builder, c0, c1, c1)
        inner = Builder(loop.body_block())
        scf.yield_(inner)
        func.return_(builder)
        verify_module(module)
        loop.body_block().ops[-1].erase()  # truncate the region
        with pytest.raises(VerificationError):
            verify_module(module)

    def test_terminator_mid_block_still_rejected(self):
        module, f, builder = make_func()
        func.return_(builder)
        arith.index_constant(builder, 1)
        func.return_(builder)
        with pytest.raises(VerificationError, match="middle"):
            verify_module(module)

    def test_gpu_wrapper_needs_no_terminator(self):
        from repro.dialects import polygeist
        module, f, builder = make_func()
        wrapper = polygeist.gpu_wrapper(builder)
        Builder(wrapper.body_block()).create("test.op", [], [])
        func.return_(builder)
        verify_module(module)


class TestVerifierPerformance:
    def test_largest_benchsuite_module_verifies_subsecond(self):
        # guards the incremental dominance walk: the old per-op visible-set
        # rebuild made whole-module verification quadratic
        import time

        from repro.benchsuite import BENCHMARKS
        from repro.frontend import ModuleGenerator, parse_translation_unit

        largest, largest_ops = None, 0
        for bench in BENCHMARKS.values():
            generator = ModuleGenerator(parse_translation_unit(bench.source))
            seen = set()
            for kernel, grid, block in bench.iter_launches(
                    bench.verify_size):
                key = (kernel, len(grid), tuple(block))
                if key not in seen:
                    seen.add(key)
                    generator.get_launch_wrapper(kernel, len(grid),
                                                 tuple(block))
            counter = []
            generator.module.op.walk_preorder(
                lambda _op: counter.append(None))
            count = len(counter)
            if count > largest_ops:
                largest, largest_ops = generator.module, count
        assert largest_ops > 100
        start = time.monotonic()
        verify_module(largest)
        assert time.monotonic() - start < 1.0


class TestBuilder:
    def test_sequential_insert_order(self):
        _, f, builder = make_func()
        arith.index_constant(builder, 1)
        arith.index_constant(builder, 2)
        names = [op.attr("value") for op in f.body_block().ops]
        assert names == [1, 2]

    def test_insert_before_and_after(self):
        _, f, builder = make_func()
        first = arith.index_constant(builder, 1).owner
        last = arith.index_constant(builder, 3).owner
        builder.set_insertion_point_after(first)
        arith.index_constant(builder, 2)
        values = [op.attr("value") for op in f.body_block().ops]
        assert values == [1, 2, 3]

    def test_at_end_context_restores(self):
        _, f, builder = make_func()
        c0 = arith.index_constant(builder, 0)
        c1 = arith.index_constant(builder, 1)
        loop = scf.for_(builder, c0, c1, c1)
        with builder.at_end(loop.body_block()):
            scf.yield_(builder)
        # restored: inserts back into the function block
        arith.index_constant(builder, 5)
        assert f.body_block().ops[-1].attr("value") == 5


class TestModule:
    def test_func_lookup(self):
        module, f, builder = make_func("kernel_a")
        func.return_(builder)
        assert module.func("kernel_a") is f
        assert module.has_func("kernel_a")
        assert not module.has_func("missing")
        with pytest.raises(KeyError):
            module.func("missing")

    def test_module_clone_is_independent(self):
        module, f, builder = make_func()
        func.return_(builder)
        clone = module.clone()
        clone.func("f").attributes["sym_name"] = "renamed"
        assert module.func("f").attr("sym_name") == "f"


class TestBlockOwnership:
    def test_append_rejects_op_owned_by_another_block(self):
        _, f_a, builder_a = make_func("a")
        _, f_b, _ = make_func("b")
        op = arith.index_constant(builder_a, 1).owner
        with pytest.raises(ValueError, match="another block"):
            f_b.body_block().append(op)
        # the op must not have been stolen from its original block
        assert op.parent is f_a.body_block()
        assert op in f_a.body_block().ops
        assert op not in f_b.body_block().ops

    def test_insert_rejects_op_owned_by_another_block(self):
        _, f_a, builder_a = make_func("a")
        _, f_b, _ = make_func("b")
        op = arith.index_constant(builder_a, 1).owner
        with pytest.raises(ValueError, match="another block"):
            f_b.body_block().insert(0, op)
        assert op.parent is f_a.body_block()

    def test_detach_then_append_moves_the_op(self):
        _, f_a, builder_a = make_func("a")
        _, f_b, _ = make_func("b")
        op = arith.index_constant(builder_a, 1).owner
        op.detach()
        f_b.body_block().append(op)
        assert op.parent is f_b.body_block()
        assert op not in f_a.body_block().ops
