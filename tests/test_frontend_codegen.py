"""Codegen tests: compiled CUDA kernels must execute correctly."""

import numpy as np
import pytest

from repro.frontend import CodegenError, ModuleGenerator, \
    parse_translation_unit
from repro.interpreter import MemoryBuffer, run_module
from repro.ir import F32, F64, INDEX, verify_module


def compile_kernel(source, kernel, grid_rank=1, block=(8,), defines=None):
    unit = parse_translation_unit(source, defines)
    gen = ModuleGenerator(unit)
    wrapper = gen.get_launch_wrapper(kernel, grid_rank, block)
    verify_module(gen.module)
    return gen.module, wrapper


def compile_host(source, name, defines=None):
    unit = parse_translation_unit(source, defines)
    gen = ModuleGenerator(unit)
    gen.emit_host_function(name)
    verify_module(gen.module)
    return gen.module


class TestKernels:
    def test_global_id_store(self):
        module, wrapper = compile_kernel(
            "__global__ void k(int *out) {"
            " out[blockIdx.x * blockDim.x + threadIdx.x] ="
            "   blockIdx.x * blockDim.x + threadIdx.x; }", "k")
        out = MemoryBuffer((16,), INDEX)
        run_module(module, wrapper, [2, out])
        np.testing.assert_array_equal(out.array, np.arange(16))

    def test_guard_return(self):
        module, wrapper = compile_kernel(
            "__global__ void k(float *out, int n) {"
            " int i = blockIdx.x * blockDim.x + threadIdx.x;"
            " if (i >= n) return;"
            " out[i] = 1.0f; }", "k")
        out = MemoryBuffer((16,), F32)
        run_module(module, wrapper, [2, out, 10])
        assert out.array[:10].sum() == 10
        assert (out.array[10:] == 0).all()

    def test_for_loop_accumulation(self):
        module, wrapper = compile_kernel(
            "__global__ void k(float *out, int n) {"
            " int i = threadIdx.x;"
            " float acc = 0.0f;"
            " for (int j = 0; j < n; j++) acc += j * i;"
            " out[i] = acc; }", "k", block=(4,))
        out = MemoryBuffer((4,), F32)
        run_module(module, wrapper, [1, out, 5])
        expected = np.array([0, 10, 20, 30], dtype=np.float32)
        np.testing.assert_array_equal(out.array, expected)

    def test_while_loop(self):
        module, wrapper = compile_kernel(
            "__global__ void k(int *out) {"
            " int x = threadIdx.x + 1; int steps = 0;"
            " while (x != 1) {"
            "   if (x % 2 == 0) x = x / 2; else x = 3 * x + 1;"
            "   steps++; }"
            " out[threadIdx.x] = steps; }", "k", block=(6,))
        out = MemoryBuffer((6,), INDEX)
        run_module(module, wrapper, [1, out])
        # Collatz steps for 1..6
        np.testing.assert_array_equal(out.array, [0, 1, 7, 2, 5, 8])

    def test_shared_memory_tile(self):
        source = """
        #define TS 8
        __global__ void rev(float *in, float *out) {
            __shared__ float tile[TS];
            int t = threadIdx.x;
            tile[t] = in[blockIdx.x * TS + t];
            __syncthreads();
            out[blockIdx.x * TS + t] = tile[TS - 1 - t];
        }
        """
        module, wrapper = compile_kernel(source, "rev")
        inp = MemoryBuffer((16,), F32, data=np.arange(16, dtype=np.float32))
        out = MemoryBuffer((16,), F32)
        run_module(module, wrapper, [2, inp, out])
        expected = np.concatenate(
            [np.arange(7, -1, -1), np.arange(15, 7, -1)]).astype(np.float32)
        np.testing.assert_array_equal(out.array, expected)

    def test_2d_block_and_shared(self):
        source = """
        __global__ void transpose(float *in, float *out, int n) {
            __shared__ float tile[4][4];
            int x = threadIdx.x, y = threadIdx.y;
            tile[y][x] = in[(blockIdx.y * 4 + y) * n + blockIdx.x * 4 + x];
            __syncthreads();
            out[(blockIdx.x * 4 + x) * n + blockIdx.y * 4 + y] = tile[y][x];
        }
        """
        module, wrapper = compile_kernel(source, "transpose",
                                         grid_rank=2, block=(4, 4))
        n = 8
        data = np.arange(n * n, dtype=np.float32)
        inp = MemoryBuffer((n * n,), F32, data=data)
        out = MemoryBuffer((n * n,), F32)
        run_module(module, wrapper, [2, 2, inp, out, n])
        np.testing.assert_array_equal(
            out.array.reshape(n, n), data.reshape(n, n).T)

    def test_device_function_inlined(self):
        source = """
        __device__ float square(float v) { return v * v; }
        __global__ void k(float *out) {
            int i = threadIdx.x;
            out[i] = square(i + 1.0f);
        }
        """
        module, wrapper = compile_kernel(source, "k", block=(4,))
        out = MemoryBuffer((4,), F32)
        run_module(module, wrapper, [1, out])
        np.testing.assert_array_equal(out.array, [1, 4, 9, 16])

    def test_math_builtins(self):
        module, wrapper = compile_kernel(
            "__global__ void k(float *out) {"
            " out[threadIdx.x] = sqrtf(out[threadIdx.x]) +"
            "   fmaxf(0.5f, 0.25f); }", "k", block=(4,))
        out = MemoryBuffer((4,), F32, data=np.array([1, 4, 9, 16],
                                                    dtype=np.float32))
        run_module(module, wrapper, [1, out])
        np.testing.assert_allclose(out.array, [1.5, 2.5, 3.5, 4.5])

    def test_double_precision(self):
        module, wrapper = compile_kernel(
            "__global__ void k(double *out) {"
            " out[threadIdx.x] = 1.0 / 3.0; }", "k", block=(2,))
        out = MemoryBuffer((2,), F64)
        run_module(module, wrapper, [1, out])
        assert out.array.dtype == np.float64
        np.testing.assert_allclose(out.array, 1.0 / 3.0, rtol=1e-15)

    def test_pointer_arithmetic(self):
        module, wrapper = compile_kernel(
            "__global__ void k(float *data, int off) {"
            " float *p = data + off;"
            " p[threadIdx.x] = 7.0f; }", "k", block=(4,))
        buf = MemoryBuffer((12,), F32)
        run_module(module, wrapper, [1, buf, 4])
        assert (buf.array[4:8] == 7).all()
        assert buf.array[:4].sum() == 0 and buf.array[8:].sum() == 0

    def test_ternary_and_short_circuit(self):
        module, wrapper = compile_kernel(
            "__global__ void k(int *out, int n) {"
            " int i = threadIdx.x;"
            " out[i] = (i > 1 && i < n) ? i * 10 : -1; }", "k", block=(5,))
        out = MemoryBuffer((5,), INDEX)
        run_module(module, wrapper, [1, out, 4])
        np.testing.assert_array_equal(out.array, [-1, -1, 20, 30, -1])

    def test_atomic_add(self):
        module, wrapper = compile_kernel(
            "__global__ void k(float *sum, float *vals) {"
            " atomicAdd(&sum[0], vals[threadIdx.x]); }", "k", block=(8,))
        total = MemoryBuffer((1,), F32)
        vals = MemoryBuffer((8,), F32,
                            data=np.arange(8, dtype=np.float32))
        run_module(module, wrapper, [1, total, vals])
        assert total.array[0] == 28.0

    def test_local_array(self):
        module, wrapper = compile_kernel(
            "__global__ void k(float *out) {"
            " float tmp[4];"
            " for (int i = 0; i < 4; i++) tmp[i] = i * 2.0f;"
            " float s = 0.0f;"
            " for (int i = 0; i < 4; i++) s += tmp[i];"
            " out[threadIdx.x] = s; }", "k", block=(2,))
        out = MemoryBuffer((2,), F32)
        run_module(module, wrapper, [1, out])
        np.testing.assert_array_equal(out.array, [12, 12])

    def test_device_global_array(self):
        source = """
        __device__ float lut[4];
        __global__ void fill(int dummy) {
            lut[threadIdx.x] = threadIdx.x + 10.0f;
        }
        __global__ void use(float *out) {
            out[threadIdx.x] = lut[threadIdx.x] * 2.0f;
        }
        """
        unit = parse_translation_unit(source)
        gen = ModuleGenerator(unit)
        w_fill = gen.get_launch_wrapper("fill", 1, (4,))
        w_use = gen.get_launch_wrapper("use", 1, (4,))
        verify_module(gen.module)
        from repro.interpreter import Interpreter
        interp = Interpreter(gen.module)
        interp.run_func(w_fill, [1, 0])
        out = MemoryBuffer((4,), F32)
        interp.run_func(w_use, [1, out])
        np.testing.assert_array_equal(out.array, [20, 22, 24, 26])

    def test_nested_if_else_merging(self):
        module, wrapper = compile_kernel(
            "__global__ void k(int *out, int n) {"
            " int i = threadIdx.x; int v = 0;"
            " if (i < n) { if (i % 2 == 0) v = 1; else v = 2; }"
            " else v = 3;"
            " out[i] = v; }", "k", block=(6,))
        out = MemoryBuffer((6,), INDEX)
        run_module(module, wrapper, [1, out, 4])
        np.testing.assert_array_equal(out.array, [1, 2, 1, 2, 3, 3])

    def test_decrementing_for_via_while(self):
        module, wrapper = compile_kernel(
            "__global__ void k(int *out) {"
            " int s = 0;"
            " for (int i = 10; i > 0; i--) s += i;"
            " out[threadIdx.x] = s; }", "k", block=(2,))
        out = MemoryBuffer((2,), INDEX)
        run_module(module, wrapper, [1, out])
        np.testing.assert_array_equal(out.array, [55, 55])

    def test_compound_assignments(self):
        module, wrapper = compile_kernel(
            "__global__ void k(int *out) {"
            " int x = 10;"
            " x += 5; x -= 2; x *= 3; x /= 2; x %= 10;"
            " out[threadIdx.x] = x; }", "k", block=(1,))
        out = MemoryBuffer((1,), INDEX)
        run_module(module, wrapper, [1, out])
        assert out.array[0] == ((10 + 5 - 2) * 3 // 2) % 10

    def test_postfix_prefix_incdec(self):
        module, wrapper = compile_kernel(
            "__global__ void k(int *out) {"
            " int x = 5;"
            " out[0] = x++; out[1] = x; out[2] = ++x; out[3] = x--;"
            " out[4] = --x; }", "k", block=(1,))
        out = MemoryBuffer((5,), INDEX)
        run_module(module, wrapper, [1, out])
        np.testing.assert_array_equal(out.array, [5, 6, 7, 7, 5])


class TestHostCode:
    def test_host_launch_inlined(self):
        source = """
        __global__ void scale(float *x, float a, int n) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) x[i] = x[i] * a;
        }
        void run(float *x, int n) {
            scale<<<(n + 7) / 8, 8>>>(x, 2.0f, n);
        }
        """
        module = compile_host(source, "run")
        buf = MemoryBuffer((10,), F32, data=np.ones(10, dtype=np.float32))
        run_module(module, "run", [buf, 10])
        np.testing.assert_array_equal(buf.array, 2.0)

    def test_host_launch_with_dim3(self):
        source = """
        __global__ void fill(float *x, int n) {
            int i = (blockIdx.y * gridDim.x + blockIdx.x) * blockDim.x
                    + threadIdx.x;
            x[i] = 3.0f;
        }
        void run(float *x, int n) {
            dim3 grid(2, 2);
            dim3 block(4);
            fill<<<grid, block>>>(x, n);
        }
        """
        module = compile_host(source, "run")
        buf = MemoryBuffer((16,), F32)
        run_module(module, "run", [buf, 16])
        np.testing.assert_array_equal(buf.array, 3.0)

    def test_host_loop_of_launches(self):
        source = """
        __global__ void inc(float *x) {
            x[blockIdx.x * blockDim.x + threadIdx.x] += 1.0f;
        }
        void run(float *x, int iters) {
            for (int i = 0; i < iters; i++) {
                inc<<<2, 4>>>(x);
            }
        }
        """
        module = compile_host(source, "run")
        buf = MemoryBuffer((8,), F32)
        run_module(module, "run", [buf, 5])
        np.testing.assert_array_equal(buf.array, 5.0)

    def test_host_function_with_return_value(self):
        source = "int add(int a, int b) { return a + b; }"
        module = compile_host(source, "add")
        result = run_module(module, "add", [3, 4])
        assert result == [7]


class TestCodegenErrors:
    def test_dynamic_block_size_rejected(self):
        source = """
        __global__ void k(float *x) { x[0] = 1.0f; }
        void run(float *x, int b) { k<<<1, b>>>(x); }
        """
        with pytest.raises(CodegenError):
            compile_host(source, "run")

    def test_early_return_mid_loop_rejected(self):
        source = """
        __global__ void k(float *x) {
            for (int i = 0; i < 4; i++) { if (i == 2) return; x[i] = 1.0f; }
        }
        """
        with pytest.raises(CodegenError):
            compile_kernel(source, "k")

    def test_break_rejected(self):
        source = """
        __global__ void k(float *x) {
            for (int i = 0; i < 4; i++) { if (i == 2) break; }
        }
        """
        with pytest.raises(CodegenError):
            compile_kernel(source, "k")

    def test_undeclared_identifier(self):
        with pytest.raises(CodegenError):
            compile_kernel("__global__ void k(float *x) { x[0] = bogus; }",
                           "k")

    def test_shared_outside_kernel(self):
        source = "void f() { __shared__ float t[4]; }"
        with pytest.raises(CodegenError):
            compile_host(source, "f")

    def test_unknown_kernel_launch(self):
        source = "void run() { ghost<<<1, 8>>>(); }"
        with pytest.raises(CodegenError):
            compile_host(source, "run")
