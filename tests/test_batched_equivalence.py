"""Scalar vs batched model equivalence, benchsuite-wide.

The batched numpy scoring path (``repro.simulator.batch``) claims bit-
identical results to the scalar reference (``REPRO_SCALAR_MODEL=1``).
These tests hold it to that claim with ``==`` comparisons — no
tolerances — across every benchsuite kernel on both a 32-wide (A100) and
a 64-wide (MI210) target, plus a hypothesis property sweep over random
feature vectors.
"""

import os

import pytest

from repro.autotune import paper_sweep_configs
from repro.engine import TuningEngine, default_engine, set_default_engine
from repro.targets import A100, MI210

#: a small factor grid keeps the sweep fast while still exercising the
#: multi-alternative scoring the batched path exists for
SMALL_CONFIGS = paper_sweep_configs((1, 2, 4), (1, 2, 4))


def _run_mode(scalar, fn):
    """Run ``fn`` with a cold tuning engine, forcing the scalar model."""
    saved = os.environ.get("REPRO_SCALAR_MODEL")
    os.environ["REPRO_SCALAR_MODEL"] = "1" if scalar else "0"
    set_default_engine(TuningEngine())
    try:
        result = fn()
        selections = {
            key: entry.selected_config
            for key, entry in default_engine().cache._memory.items()
        }
        return result, selections
    finally:
        set_default_engine(None)
        if saved is None:
            os.environ.pop("REPRO_SCALAR_MODEL", None)
        else:
            os.environ["REPRO_SCALAR_MODEL"] = saved


@pytest.mark.parametrize("arch", [A100, MI210], ids=lambda a: a.name)
def test_benchsuite_composites_identical(arch):
    """Every benchmark's tuned composite time matches == across paths."""
    from repro.benchsuite.experiments import fig16_data

    def run():
        return fig16_data(archs=[arch],
                          tiers=("clang", "polygeist-noopt", "polygeist"),
                          configs=SMALL_CONFIGS)

    scalar, scalar_selected = _run_mode(True, run)
    batched, batched_selected = _run_mode(False, run)
    assert scalar == batched
    # the tuner must also have picked the same winning coarsening config
    # for every (benchmark, wrapper, grids) tuning decision
    assert scalar_selected == batched_selected
    assert scalar_selected  # the sweep actually tuned something


@pytest.mark.parametrize("arch", [A100, MI210], ids=lambda a: a.name)
def test_per_config_seconds_identical(arch):
    """Every candidate config's modeled seconds match ==, not just winners."""
    from repro.benchsuite.experiments import fig13_data

    def run():
        out = []
        for sweep in fig13_data(arch=arch,
                                benchmarks=["gaussian", "lud", "nw"],
                                configs=SMALL_CONFIGS):
            out.append((sweep.benchmark, sweep.kernel, tuple(sweep.block),
                        tuple((r.desc, r.seconds, r.valid, r.reason)
                              for r in sweep.results)))
        return out

    scalar, _ = _run_mode(True, run)
    batched, _ = _run_mode(False, run)
    assert scalar == batched


def test_scalar_env_forces_reference_path(monkeypatch):
    from repro.simulator.model import use_scalar_model

    monkeypatch.setenv("REPRO_SCALAR_MODEL", "1")
    assert use_scalar_model()
    monkeypatch.setenv("REPRO_SCALAR_MODEL", "0")
    assert not use_scalar_model()
    monkeypatch.delenv("REPRO_SCALAR_MODEL")
    assert not use_scalar_model()


# -- property test over random feature vectors --------------------------------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

_pos_float = st.floats(min_value=1e-12, max_value=1e12,
                       allow_nan=False, allow_infinity=False)
_frac = st.floats(min_value=1e-3, max_value=1.0,
                  allow_nan=False, allow_infinity=False)


class _StubModel:
    """Quacks like KernelModel for BatchedKernelModel: features + check."""

    def __init__(self, features):
        self._features = features

    def features(self):
        return self._features

    def ensure_launchable(self):
        raise AssertionError("stub models are always launchable")


@st.composite
def _features(draw):
    from repro.simulator.model import LaunchFeatures

    num_sms = draw(st.integers(min_value=1, max_value=256))
    blocks_per_sm = draw(st.integers(min_value=1, max_value=32))
    return LaunchFeatures(
        compute_cycles_per_thread=draw(_pos_float),
        compute_cycles_per_block=draw(_pos_float),
        compute_util=draw(_frac),
        active_warps=draw(_pos_float),
        read_bytes=draw(_pos_float),
        write_bytes=draw(_pos_float),
        useful_read=draw(_pos_float),
        useful_write=draw(_pos_float),
        read_requests=draw(_pos_float),
        write_requests=draw(_pos_float),
        rw_bytes=draw(st.one_of(st.just(0.0), _pos_float)),
        inflight_bytes_per_sm=draw(_pos_float),
        dram_latency_seconds=draw(_pos_float),
        peak_bandwidth=draw(_pos_float),
        shared_bytes=draw(st.one_of(st.just(0.0), _pos_float)),
        shared_bw_per_sm=draw(_pos_float),
        bank_conflicts=draw(st.floats(min_value=1.0, max_value=32.0,
                                      allow_nan=False)),
        lds_offloaded=draw(st.booleans()),
        lds_offload_penalty=draw(st.floats(min_value=1.0, max_value=8.0,
                                           allow_nan=False)),
        block_latency_cycles=draw(_pos_float),
        wave_divisor=max(1, blocks_per_sm * num_sms),
        clock=draw(_pos_float),
        num_sms=num_sms,
        blocks_per_sm=blocks_per_sm,
    )


@settings(max_examples=200, deadline=None)
@given(st.lists(st.tuples(_features(),
                          st.integers(min_value=0, max_value=10**7)),
                min_size=1, max_size=16))
def test_batched_matches_scalar_on_random_features(cases):
    pytest.importorskip("numpy")
    from repro.simulator.batch import BatchedKernelModel
    from repro.simulator.model import evaluate_launch

    batch = BatchedKernelModel()
    rows = []
    counts = []
    expected = []
    for features, num_blocks in cases:
        rows.append(batch.add_model(_StubModel(features)))
        counts.append(num_blocks)
        if num_blocks <= 0:
            expected.append(0.0)
        else:
            terms = evaluate_launch(features, num_blocks)
            expected.append(terms.time_seconds)
    got = batch.times(rows, counts).tolist()
    assert got == expected
