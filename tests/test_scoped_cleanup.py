"""Scoped cleanup and lazy materialization equivalence.

The autotuning flow cleans only the ``polygeist.alternatives`` regions
(:func:`repro.transforms.cleanup_regions`) instead of re-walking the whole
module, and materializes IR clones only for the configurations that
survive the metadata-level shared-memory filter. Both are pure
performance moves: this file proves, benchsuite-wide, that they change
nothing observable — the printed IR after scoped cleanup equals the
whole-module result, the TDO selection is identical, and the number of
wrapper clones built equals the post-filter survivor count.
"""

import pytest

from repro.autotune import paper_sweep_configs
from repro.autotune.tdo import timing_driven_optimization, tune_wrapper
from repro.benchsuite.base import BENCHMARKS, get_benchmark
from repro.dialects import polygeist
from repro.frontend import ModuleGenerator, parse_translation_unit
from repro.ir import print_module
from repro.targets import arch_by_name
from repro.transforms import cleanup_regions, run_cleanup
from repro.transforms.alternatives import (generate_coarsening_alternatives,
                                           plan_coarsening_alternatives)

A100 = arch_by_name("a100")


def _launch_groups(bench):
    """(kernel, block) -> grids, at the cheap verification size."""
    groups = {}
    for kernel, grid, block in bench.iter_launches(bench.verify_size):
        groups.setdefault((kernel, tuple(block)), []).append(tuple(grid))
    return groups


def _generate(bench, kernel, block, grid_rank, configs):
    """Parse, pre-clean, and eagerly generate every legal alternative."""
    generator = ModuleGenerator(parse_translation_unit(bench.source))
    name = generator.get_launch_wrapper(kernel, grid_rank, block)
    run_cleanup(generator.module)
    func_op = generator.module.func(name)
    wrapper = polygeist.find_gpu_wrappers(func_op)[0]
    report = generate_coarsening_alternatives(wrapper, configs)
    return generator.module, func_op, report


def _candidate_rows(outcome):
    return [(c.desc, c.time_seconds, c.valid, c.reason)
            for c in outcome.candidates]


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_scoped_cleanup_matches_whole_module(name):
    """For every kernel of every benchmark: cleaning just the alternatives
    regions produces byte-identical module IR to re-cleaning the whole
    module, and TDO picks the same winner with the same modeled times."""
    bench = get_benchmark(name)
    configs = paper_sweep_configs()
    compared = 0
    for (kernel, block), grids in _launch_groups(bench).items():
        grid_rank = len(grids[0])
        scoped_mod, scoped_func, scoped = _generate(
            bench, kernel, block, grid_rank, configs)
        full_mod, full_func, full = _generate(
            bench, kernel, block, grid_rank, configs)
        if scoped.op is None:
            assert full.op is None
            continue
        cleanup_regions(list(scoped.op.regions))
        run_cleanup(full_mod)
        assert print_module(scoped_mod) == print_module(full_mod)

        def envs_for(func_op):
            grid_args = func_op.body_block().args[:grid_rank]
            return [dict(zip(grid_args, grid)) for grid in grids]

        chose_scoped = timing_driven_optimization(
            scoped.op, A100, envs_for(scoped_func), select=False)
        chose_full = timing_driven_optimization(
            full.op, A100, envs_for(full_func), select=False)
        assert chose_scoped.selected_desc == chose_full.selected_desc
        assert chose_scoped.selected_time == chose_full.selected_time
        assert _candidate_rows(chose_scoped) == _candidate_rows(chose_full)
        compared += 1
    assert compared > 0, "no kernel of %s produced alternatives" % name


BIG_SHARED_KERNEL = """
__global__ void k(float *in, float *out, int n) {
    __shared__ float tile[4096];
    int t = threadIdx.x;
    int g = blockIdx.x * blockDim.x + t;
    tile[t] = in[g] * 2.0f;
    __syncthreads();
    out[g] = tile[(t + 1) % 8] + 1.5f;
}
"""


def _build_wrapper(source, kernel="k", block=(8,)):
    generator = ModuleGenerator(parse_translation_unit(source))
    name = generator.get_launch_wrapper(kernel, 1, block)
    run_cleanup(generator.module)
    func_op = generator.module.func(name)
    return func_op, polygeist.find_gpu_wrappers(func_op)[0]


def _capturing_plan(monkeypatch):
    import repro.transforms.alternatives as alternatives_mod
    captured = []

    def capture(wrapper, configs):
        planned = plan_coarsening_alternatives(wrapper, configs)
        captured.append(planned)
        return planned

    monkeypatch.setattr(alternatives_mod, "plan_coarsening_alternatives",
                        capture)
    return captured


def test_clones_built_only_for_filter_survivors(monkeypatch):
    """The 16 KiB tile makes block coarsening overshoot the shared-memory
    limit: those plans must never be cloned at all."""
    captured = _capturing_plan(monkeypatch)
    func_op, wrapper = _build_wrapper(BIG_SHARED_KERNEL)
    env = {func_op.body_block().args[0]: 4}
    configs = [{"thread_total": 1}, {"thread_total": 2},
               {"block_total": 2}, {"block_total": 4}]
    outcome = tune_wrapper(wrapper, A100, env, configs)
    planned = captured[0]
    total = len(planned.alternatives)
    dropped = len(outcome.filters.dropped_shared)
    assert dropped > 0, "expected the shared-memory filter to drop plans"
    assert planned.clones_materialized == total - dropped < total
    # the winner is still one of the shared-memory survivors
    assert outcome.selected_desc in outcome.filters.survivor_descs


def test_clones_built_for_all_when_nothing_filtered(monkeypatch):
    """With no shared-memory pressure every plan is materialized — the
    lazy path degenerates to the eager one."""
    captured = _capturing_plan(monkeypatch)
    source = BIG_SHARED_KERNEL.replace("tile[4096]", "tile[8]")
    func_op, wrapper = _build_wrapper(source)
    env = {func_op.body_block().args[0]: 4}
    configs = [{"thread_total": 1}, {"thread_total": 2},
               {"block_total": 2}]
    outcome = tune_wrapper(wrapper, A100, env, configs)
    planned = captured[0]
    assert not outcome.filters.dropped_shared
    assert planned.clones_materialized == len(planned.alternatives)


def test_materialize_is_one_shot():
    func_op, wrapper = _build_wrapper(
        BIG_SHARED_KERNEL.replace("tile[4096]", "tile[8]"))
    planned = plan_coarsening_alternatives(
        wrapper, [{"thread_total": 1}, {"thread_total": 2}])
    planned.materialize(range(len(planned.alternatives)))
    with pytest.raises(ValueError, match="already materialized"):
        planned.materialize([0])
