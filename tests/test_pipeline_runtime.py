"""Tests for autotuning (TDO), the runtime, and the end-to-end pipeline."""

import numpy as np
import pytest

from repro.autotune import (default_configs, paper_sweep_configs,
                            per_dimension_configs, run_filters,
                            timing_driven_optimization, tune_wrapper)
from repro.dialects import polygeist
from repro.frontend import ModuleGenerator, parse_translation_unit
from repro.ir import verify_module
from repro.pipeline import Program, compile_cuda
from repro.runtime import GPURuntime
from repro.targets import A100, RX6800
from repro.transforms import generate_coarsening_alternatives
from repro.translate import hipify, retarget_ease_report

SOURCE = """
__global__ void scale(float *x, float a, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= n) return;
    x[i] = x[i] * a;
}

__global__ void tile_rev(float *in, float *out) {
    __shared__ float tile[64];
    int t = threadIdx.x;
    int g = blockIdx.x * blockDim.x + t;
    tile[t] = in[g];
    __syncthreads();
    out[g] = tile[63 - t];
}
"""


class TestSearch:
    def test_paper_sweep_size(self):
        configs = paper_sweep_configs()
        # 6x6 grid minus pairs whose product exceeds 32
        assert len(configs) == 21
        assert {"block_total": 1, "thread_total": 1} in configs
        assert {"block_total": 32, "thread_total": 1} in configs
        assert {"block_total": 32, "thread_total": 32} not in configs
        unbounded = paper_sweep_configs(max_product=None)
        assert len(unbounded) == 36

    def test_default_configs_bounded(self):
        for config in default_configs(max_total=8):
            assert config["block_total"] <= 8
            assert config["thread_total"] <= 8

    def test_per_dimension(self):
        configs = per_dimension_configs(block_x=(1, 2), thread_x=(1, 4))
        assert {"block_factors": (2, 1)} in configs
        assert {"thread_factors": (4, 1)} in configs
        assert {} in configs  # the (1,1,1,1) baseline


def build_alt(source=SOURCE, kernel="tile_rev", block=(64,), configs=None):
    unit = parse_translation_unit(source)
    gen = ModuleGenerator(unit)
    name = gen.get_launch_wrapper(kernel, 1, block)
    wrapper = polygeist.find_gpu_wrappers(gen.module.op)[0]
    report = generate_coarsening_alternatives(
        wrapper, configs or default_configs(max_total=4))
    return gen.module, name, wrapper, report


class TestFilters:
    def test_shared_memory_pruning(self):
        # block factor 32 on a 16 KB-shared kernel exceeds 48 KB
        source = """
        __global__ void k(float *a) {
            __shared__ float s[4096];
            s[threadIdx.x] = a[threadIdx.x];
            __syncthreads();
            a[threadIdx.x] = s[threadIdx.x];
        }
        """
        module, name, wrapper, report = build_alt(
            source, "k",
            configs=[{"block_total": 1}, {"block_total": 2},
                     {"block_total": 4}])
        from repro.autotune import prune_by_shared_memory
        result = prune_by_shared_memory(report.op, A100)
        # 4 x 16 KB = 64 KB > 48 KB: dropped
        assert len(result.dropped_shared) == 1
        assert len(report.op.regions) == 2

    def test_register_pruning_keeps_least_bad(self):
        module, name, wrapper, report = build_alt()
        result = run_filters(report.op, A100)
        assert result.survivors
        verify_module(module)


class TestTDO:
    def test_selects_and_splices(self):
        module, name, wrapper, report = build_alt()
        f = module.func(name)
        env = {f.body_block().arg(0): 512}
        outcome = timing_driven_optimization(report.op, A100, env)
        verify_module(module)
        assert outcome.selected_time > 0
        assert outcome.selected_desc
        assert len(outcome.candidates) >= 1
        # alternatives op is gone
        assert not module.op.ops_matching("polygeist.alternatives")

    def test_tune_wrapper_end_to_end(self):
        unit = parse_translation_unit(SOURCE)
        gen = ModuleGenerator(unit)
        name = gen.get_launch_wrapper("tile_rev", 1, (64,))
        wrapper = polygeist.find_gpu_wrappers(gen.module.op)[0]
        f = gen.module.func(name)
        env = {f.body_block().arg(0): 1024}
        outcome = tune_wrapper(wrapper, A100, env,
                               default_configs(max_total=4))
        verify_module(gen.module)
        assert outcome.filters is not None
        baseline = [c for c in outcome.candidates
                    if c.desc == "block=1 thread=1"]
        assert baseline, "the factor-1 baseline must be a candidate"
        assert outcome.selected_time <= baseline[0].time_seconds


class TestRuntime:
    def test_transfer_accounting(self):
        rt = GPURuntime(A100)
        data = np.ones(1 << 20, dtype=np.float32)
        buf = rt.to_device(data)
        rt.to_host(buf)
        assert rt.transfer_seconds > 2 * (data.nbytes / 12e9)
        assert rt.allocated_bytes == data.nbytes

    def test_reset(self):
        rt = GPURuntime(A100)
        rt.to_device(np.zeros(1024, dtype=np.float32))
        rt.reset()
        assert rt.composite_seconds == 0.0


class TestProgram:
    def test_launch_correct_and_timed(self):
        program = compile_cuda(SOURCE, arch=A100, tier="polygeist",
                               autotune_configs=default_configs(4))
        rt = GPURuntime(A100)
        data = rt.to_device(np.arange(128, dtype=np.float32))
        result = program.launch("scale", grid=2, block=64,
                                args=[data, 2.0, 128], runtime=rt)
        np.testing.assert_array_equal(
            rt.to_host(data), np.arange(128, dtype=np.float32) * 2)
        assert result.kernel_seconds > 0
        assert rt.composite_seconds > rt.kernel_seconds

    def test_tuned_kernel_stays_correct(self):
        rng = np.random.default_rng(2)
        data = rng.random(512, dtype=np.float32)
        expected = data.reshape(8, 64)[:, ::-1].ravel()

        program = compile_cuda(SOURCE, arch=A100,
                               autotune_configs=default_configs(8))
        rt = GPURuntime(A100)
        src = rt.to_device(data)
        dst = rt.malloc(512, np.float32)
        program.launch("tile_rev", grid=8, block=64, args=[src, dst],
                       runtime=rt)
        np.testing.assert_array_equal(rt.to_host(dst), expected)
        # TDO ran and recorded an outcome
        assert program.tuning_outcomes

    def test_tiers_differ_in_time_not_results(self):
        rng = np.random.default_rng(3)
        data = rng.random(1 << 14, dtype=np.float32)
        times = {}
        outputs = {}
        for tier in ("clang", "polygeist-noopt", "polygeist"):
            program = compile_cuda(SOURCE, arch=A100, tier=tier,
                                   autotune_configs=default_configs(8))
            rt = GPURuntime(A100)
            src = rt.to_device(data)
            dst = rt.malloc(data.size, np.float32)
            program.launch("tile_rev", grid=data.size // 64, block=64,
                           args=[src, dst], runtime=rt)
            times[tier] = rt.kernel_seconds
            outputs[tier] = rt.to_host(dst)
        np.testing.assert_array_equal(outputs["clang"],
                                      outputs["polygeist"])
        assert times["polygeist"] <= times["clang"]

    def test_numpy_args_written_back(self):
        program = compile_cuda(SOURCE, arch=A100, tier="clang")
        data = np.ones(64, dtype=np.float32)
        program.launch("scale", grid=1, block=64, args=[data, 3.0, 64])
        np.testing.assert_array_equal(data, 3.0)

    def test_host_driven_flow(self):
        source = """
        __global__ void inc(float *x) {
            x[blockIdx.x * blockDim.x + threadIdx.x] += 1.0f;
        }
        void run(float *x, int iters) {
            for (int i = 0; i < iters; i++) inc<<<4, 32>>>(x);
        }
        """
        program = compile_cuda(source, arch=A100)
        rt = GPURuntime(A100)
        data = np.zeros(128, dtype=np.float32)
        program.run_host("run", [data, 3], runtime=rt)
        np.testing.assert_array_equal(data, 3.0)
        assert len(rt.launches) == 3
        assert rt.kernel_seconds > 0

    def test_wrong_arg_count(self):
        program = compile_cuda(SOURCE, tier="clang")
        with pytest.raises(TypeError):
            program.launch("scale", 1, 64, args=[np.zeros(4,
                                                          np.float32)])

    def test_amd_target(self):
        program = compile_cuda(SOURCE, arch=RX6800,
                               autotune_configs=default_configs(4))
        rt = GPURuntime(RX6800)
        data = rt.to_device(np.arange(128, dtype=np.float32))
        program.launch("scale", 2, 64, [data, 2.0, 128], runtime=rt)
        np.testing.assert_array_equal(
            rt.to_host(data), np.arange(128, dtype=np.float32) * 2)


class TestHipify:
    def test_api_renames(self):
        result = hipify("cudaMalloc((void**)&p, n);\ncudaFree(p);")
        assert "hipMalloc" in result.source
        assert "hipFree" in result.source
        assert len(result.changes) == 2

    def test_header_mapping(self):
        result = hipify('#include <cuda_runtime.h>\n__global__ void k(){}')
        assert "hip/hip_runtime.h" in result.source

    def test_external_header_needs_manual_fix(self):
        result = hipify('#include "helper_cuda.h"\n__global__ void k(){}\n'
                        '#include <hip/hip_runtime.h>')
        assert any("helper_cuda.h" in fix for fix in result.manual_fixes)

    def test_cuda_guard_flagged(self):
        result = hipify("#ifdef __CUDACC__\nint x;\n#endif\n"
                        "#include <cuda_runtime.h>")
        assert any("__CUDACC__" in fix for fix in result.manual_fixes)

    def test_missing_hip_header_flagged(self):
        result = hipify("__global__ void k(float* p) { p[0] = 1.0f; }")
        assert any("hip_runtime.h" in fix for fix in result.manual_fixes)

    def test_ease_report_favors_ir_route(self):
        source = ('#include "helper_cuda.h"\n#ifdef __CUDACC__\n#endif\n'
                  "__global__ void k(){}")
        report = retarget_ease_report("bench", source)
        assert report.hipify_fix_count >= 2
        assert report.polygeist_fix_count == 0


class TestProfileMode:
    """The paper's Fig. 12 profiling mode: execute-and-time alternatives."""

    def test_profile_launch_selects_and_stays_correct(self):
        rng = np.random.default_rng(4)
        data = rng.random(512, dtype=np.float32)
        expected = data.reshape(8, 64)[:, ::-1].ravel()
        program = compile_cuda(SOURCE, arch=A100,
                               autotune_configs=default_configs(4))
        rt = GPURuntime(A100)
        src = rt.to_device(data)
        dst = rt.malloc(512, np.float32)
        result = program.launch  # silence linters
        program.profile_launch("tile_rev", 8, 64, [src, dst], runtime=rt)
        np.testing.assert_array_equal(rt.to_host(dst), expected)
        outcome = program.tuning_outcomes["tile_rev__g1b64"]
        assert outcome.candidates
        assert outcome.selected_desc
        # the alternatives op is gone after final selection
        assert not program.module.op.ops_matching("polygeist.alternatives")

    def test_profiling_does_not_leak_side_effects(self):
        """Probe executions must not corrupt device buffers."""
        source = """
        __global__ void inc(float *x) {
            x[blockIdx.x * blockDim.x + threadIdx.x] += 1.0f;
        }
        """
        program = compile_cuda(source, arch=A100,
                               autotune_configs=default_configs(4))
        rt = GPURuntime(A100)
        data = rt.to_device(np.zeros(256, dtype=np.float32))
        program.profile_launch("inc", 4, 64, [data], runtime=rt)
        # exactly ONE increment despite many probe runs
        np.testing.assert_array_equal(rt.to_host(data), 1.0)

    def test_profile_and_model_agree_on_ranking(self):
        """Simulated-execution TDO and analytic TDO pick compatible
        winners (both run the same model under the hood)."""
        program_a = compile_cuda(SOURCE, arch=A100,
                                 autotune_configs=default_configs(4))
        rt = GPURuntime(A100)
        src = rt.to_device(np.zeros(512, dtype=np.float32))
        dst = rt.malloc(512, np.float32)
        program_a.profile_launch("tile_rev", 8, 64, [src, dst], runtime=rt)
        profiled = program_a.tuning_outcomes["tile_rev__g1b64"]

        program_b = compile_cuda(SOURCE, arch=A100,
                                 autotune_configs=default_configs(4))
        program_b.launch("tile_rev", 8, 64, [src, dst])
        modeled = program_b.tuning_outcomes["tile_rev__g1b64"]
        profiled_order = [c.desc for c in sorted(profiled.candidates,
                                                 key=lambda c:
                                                 c.time_seconds)]
        assert modeled.selected_desc in profiled_order[:3]
