"""Interpreter tests: arithmetic, control flow, and GPU barrier semantics."""

import numpy as np
import pytest

from repro.dialects import arith, func, math, memref, polygeist, scf
from repro.interpreter import (ConvergenceError, Interpreter,
                               InterpreterError, MemoryBuffer, run_module)
from repro.ir import (Builder, F32, F64, FunctionType, I1, I32, INDEX,
                      MemRefType, Module, verify_module)


def new_func(module, name, inputs, arg_names=()):
    builder = Builder(module.body)
    f = func.func(builder, name, FunctionType(tuple(inputs), ()), arg_names)
    return f, Builder(f.body_block())


class TestScalars:
    def test_integer_arithmetic(self):
        module = Module()
        f, b = new_func(module, "main", (INDEX,), ["out"])
        # compute ((7*3) - 5) / 2 == 8 into nothing; check via buffer
        buf_type = MemRefType((1,), INDEX)
        builder = b
        c7 = arith.index_constant(builder, 7)
        c3 = arith.index_constant(builder, 3)
        c5 = arith.index_constant(builder, 5)
        c2 = arith.index_constant(builder, 2)
        c0 = arith.index_constant(builder, 0)
        v = arith.divsi(builder, arith.subi(
            builder, arith.muli(builder, c7, c3), c5), c2)
        buf = memref.alloc(builder, buf_type)
        memref.store(builder, v, buf, [c0])
        func.return_(builder)
        verify_module(module)
        # host arg is unused; pass 0
        interp = Interpreter(module)
        interp.run_func("main", [0])

    def test_c_style_division(self):
        # -7 / 2 must be -3 (truncation), not -4 (floor)
        from repro.interpreter.interp import _trunc_div, _trunc_rem
        assert _trunc_div(-7, 2) == -3
        assert _trunc_rem(-7, 2) == -1
        assert _trunc_div(7, -2) == -3
        assert _trunc_div(7, 2) == 3
        with pytest.raises(InterpreterError):
            _trunc_div(1, 0)

    def test_float32_precision(self):
        """f32 arithmetic must round like numpy float32 (for correctness
        comparisons against CPU references)."""
        module = Module()
        f, b = new_func(module, "main", (MemRefType((1,), F32),), ["out"])
        x = arith.constant(b, 0.1, F32)
        y = arith.constant(b, 0.2, F32)
        z = arith.addf(b, x, y)
        c0 = arith.index_constant(b, 0)
        memref.store(b, z, f.body_block().arg(0), [c0])
        func.return_(b)
        out = MemoryBuffer((1,), F32)
        run_module(module, "main", [out])
        expected = np.float32(0.1) + np.float32(0.2)
        assert out.array[0] == expected

    def test_math_ops(self):
        module = Module()
        f, b = new_func(module, "main", (MemRefType((2,), F32),), ["out"])
        c0 = arith.index_constant(b, 0)
        c1 = arith.index_constant(b, 1)
        x = arith.constant(b, 4.0, F32)
        memref.store(b, math.sqrt(b, x), f.body_block().arg(0), [c0])
        memref.store(b, math.exp(b, arith.constant(b, 0.0, F32)),
                     f.body_block().arg(0), [c1])
        func.return_(b)
        out = MemoryBuffer((2,), F32)
        run_module(module, "main", [out])
        assert out.array[0] == 2.0
        assert out.array[1] == 1.0


class TestControlFlow:
    def _sum_loop_module(self):
        """for i in [0, n): acc += i; out[0] = acc"""
        module = Module()
        f, b = new_func(module, "main",
                        (INDEX, MemRefType((1,), INDEX)), ["n", "out"])
        n, out = f.body_block().args
        c0 = arith.index_constant(b, 0)
        c1 = arith.index_constant(b, 1)
        loop = scf.build_for(
            b, c0, n, c1, [c0],
            lambda bb, iv, iters: [arith.addi(bb, iters[0], iv)])
        memref.store(b, loop.result(), out, [c0])
        func.return_(b)
        verify_module(module)
        return module

    def test_for_with_iter_args(self):
        module = self._sum_loop_module()
        out = MemoryBuffer((1,), INDEX)
        run_module(module, "main", [10, out])
        assert out.array[0] == 45

    def test_for_zero_trip(self):
        module = self._sum_loop_module()
        out = MemoryBuffer((1,), INDEX)
        run_module(module, "main", [0, out])
        assert out.array[0] == 0

    def test_if_results(self):
        module = Module()
        f, b = new_func(module, "main",
                        (INDEX, MemRefType((1,), INDEX)), ["n", "out"])
        n, out = f.body_block().args
        c5 = arith.index_constant(b, 5)
        c0 = arith.index_constant(b, 0)
        cond = arith.cmpi(b, "lt", n, c5)
        if_op = scf.if_(b, cond, [INDEX])
        tb = Builder(scf.if_then_block(if_op))
        scf.yield_(tb, [arith.index_constant(tb, 100)])
        eb = Builder(scf.if_else_block(if_op))
        scf.yield_(eb, [arith.index_constant(eb, 200)])
        memref.store(b, if_op.result(), out, [c0])
        func.return_(b)
        verify_module(module)
        out_buf = MemoryBuffer((1,), INDEX)
        run_module(module, "main", [3, out_buf])
        assert out_buf.array[0] == 100
        run_module(module, "main", [7, out_buf])
        assert out_buf.array[0] == 200

    def test_while_loop(self):
        # while (x < 100) x *= 2   with x starting at n
        module = Module()
        f, b = new_func(module, "main",
                        (INDEX, MemRefType((1,), INDEX)), ["n", "out"])
        n, out = f.body_block().args
        c0 = arith.index_constant(b, 0)
        c100 = arith.index_constant(b, 100)
        c2 = arith.index_constant(b, 2)
        w = scf.while_(b, [n], [INDEX])
        before = Builder(w.body_block(0))
        x = w.body_block(0).arg(0)
        cond = arith.cmpi(before, "lt", x, c100)
        scf.condition(before, cond, [x])
        after = Builder(w.body_block(1))
        x2 = w.body_block(1).arg(0)
        scf.yield_(after, [arith.muli(after, x2, c2)])
        memref.store(b, w.result(), out, [c0])
        func.return_(b)
        verify_module(module)
        out_buf = MemoryBuffer((1,), INDEX)
        run_module(module, "main", [3, out_buf])
        assert out_buf.array[0] == 192  # 3,6,12,24,48,96,192

    def test_call(self):
        module = Module()
        g, gb = new_func(module, "store42", (MemRefType((1,), INDEX),),
                         ["out"])
        c0 = arith.index_constant(gb, 0)
        memref.store(gb, arith.index_constant(gb, 42),
                     g.body_block().arg(0), [c0])
        func.return_(gb)
        f, fb = new_func(module, "main", (MemRefType((1,), INDEX),), ["out"])
        func.call(fb, "store42", [f.body_block().arg(0)], [])
        func.return_(fb)
        verify_module(module)
        out = MemoryBuffer((1,), INDEX)
        run_module(module, "main", [out])
        assert out.array[0] == 42


def build_gpu_kernel(body_fn, num_threads=8, num_blocks=2,
                     out_shape=(16,), out_elem=F32):
    """Scaffold: main(out) { wrapper { parallel blocks { parallel threads
    { body_fn } } } }."""
    module = Module()
    f, b = new_func(Module() if False else module, "main",
                    (MemRefType(out_shape, out_elem),), ["out"])
    out = f.body_block().arg(0)
    c0 = arith.index_constant(b, 0)
    c1 = arith.index_constant(b, 1)
    nb = arith.index_constant(b, num_blocks)
    nt = arith.index_constant(b, num_threads)
    wrapper = polygeist.gpu_wrapper(b, "k")
    wb = Builder(wrapper.body_block())
    blocks = scf.parallel(wb, [c0], [nb], [c1], gpu_kind="blocks",
                          iv_names=["bx"])
    bb = Builder(blocks.body_block())
    threads = scf.parallel(bb, [c0], [nt], [c1], gpu_kind="threads",
                           iv_names=["tx"])
    tb = Builder(threads.body_block())
    # builder positioned *before* the thread loop, for shared allocas
    block_builder = Builder(blocks.body_block(), 0)
    body_fn(module, block_builder, tb, blocks.body_block().arg(0),
            threads.body_block().arg(0), out,
            {"c0": c0, "c1": c1, "nt": nt, "nb": nb})
    # fresh builders: block_builder insertions invalidated bb's index
    scf.yield_(Builder(threads.body_block()))
    scf.yield_(Builder(blocks.body_block()))
    func.return_(b)
    verify_module(module)
    return module


class TestGpuExecution:
    def test_parallel_writes_all_threads(self):
        def body(module, bb, tb, bx, tx, out, consts):
            nt = consts["nt"]
            gid = arith.addi(tb, arith.muli(tb, bx, nt), tx)
            value = arith.sitofp(tb, arith.index_cast(tb, gid, I32), F32)
            memref.store(tb, value, out, [gid])

        module = build_gpu_kernel(body)
        out = MemoryBuffer((16,), F32)
        run_module(module, "main", [out])
        np.testing.assert_array_equal(out.array, np.arange(16,
                                                           dtype=np.float32))

    def test_barrier_orders_shared_memory(self):
        """Classic reverse-through-shared-memory: requires the barrier."""
        def body(module, bb, tb, bx, tx, out, consts):
            shared = memref.alloca(bb, MemRefType((8,), F32, "shared"))
            # move alloca before the thread loop: builder bb inserts at end,
            # so reposition is needed; simply create in bb before threads is
            # not possible after the fact — instead allocate via tb's parent.
            nt = consts["nt"]
            c7 = arith.index_constant(tb, 7)
            value = arith.sitofp(tb, arith.index_cast(tb, tx, I32), F32)
            memref.store(tb, value, shared, [tx])
            polygeist.barrier(tb, [tx])
            rev = arith.subi(tb, c7, tx)
            loaded = memref.load(tb, shared, [rev])
            gid = arith.addi(tb, arith.muli(tb, bx, nt), tx)
            memref.store(tb, loaded, out, [gid])

        module = build_gpu_kernel(body)
        out = MemoryBuffer((16,), F32)
        run_module(module, "main", [out])
        expected = np.concatenate([np.arange(7, -1, -1), np.arange(7, -1, -1)]
                                  ).astype(np.float32)
        np.testing.assert_array_equal(out.array, expected)

    def test_shared_memory_is_per_block(self):
        """Block 0 writes shared memory; block 1 must not see it."""
        def body(module, bb, tb, bx, tx, out, consts):
            shared = memref.alloca(bb, MemRefType((8,), F32, "shared"))
            c0 = arith.index_constant(tb, 0)
            is_block0 = arith.cmpi(tb, "eq", bx, c0)
            if_op = scf.if_(tb, is_block0, [])
            then_b = Builder(scf.if_then_block(if_op))
            memref.store(then_b, arith.constant(then_b, 5.0, F32),
                         shared, [tx])
            scf.yield_(then_b)
            scf.yield_(Builder(scf.if_else_block(if_op)))
            polygeist.barrier(tb, [tx])
            nt = consts["nt"]
            gid = arith.addi(tb, arith.muli(tb, bx, nt), tx)
            memref.store(tb, memref.load(tb, shared, [tx]), out, [gid])

        module = build_gpu_kernel(body)
        out = MemoryBuffer((16,), F32)
        run_module(module, "main", [out])
        assert (out.array[:8] == 5.0).all()
        assert (out.array[8:] == 0.0).all()

    def test_divergent_barrier_detected(self):
        """A barrier under thread-dependent control flow must raise."""
        def body(module, bb, tb, bx, tx, out, consts):
            c4 = arith.index_constant(tb, 4)
            cond = arith.cmpi(tb, "lt", tx, c4)
            if_op = scf.if_(tb, cond, [])
            then_b = Builder(scf.if_then_block(if_op))
            polygeist.barrier(then_b, [tx])
            scf.yield_(then_b)
            scf.yield_(Builder(scf.if_else_block(if_op)))

        module = build_gpu_kernel(body)
        out = MemoryBuffer((16,), F32)
        with pytest.raises(ConvergenceError):
            run_module(module, "main", [out])

    def test_two_dimensional_threads_linearized_x_fastest(self):
        """Thread (x, y) has linear id x + y * Dx, like CUDA."""
        module = Module()
        f, b = new_func(module, "main", (MemRefType((12,), INDEX),), ["out"])
        out = f.body_block().arg(0)
        c0 = arith.index_constant(b, 0)
        c1 = arith.index_constant(b, 1)
        c4 = arith.index_constant(b, 4)
        c3 = arith.index_constant(b, 3)
        wrapper = polygeist.gpu_wrapper(b, "k")
        wb = Builder(wrapper.body_block())
        blocks = scf.parallel(wb, [c0], [c1], [c1], gpu_kind="blocks")
        bb = Builder(blocks.body_block())
        threads = scf.parallel(bb, [c0, c0], [c4, c3], [c1, c1],
                               gpu_kind="threads", iv_names=["tx", "ty"])
        tb = Builder(threads.body_block())
        tx, ty = threads.body_block().args
        gid = arith.addi(tb, tx, arith.muli(tb, ty, c4))
        memref.store(tb, gid, out, [gid])
        scf.yield_(tb)
        scf.yield_(bb)
        func.return_(b)
        verify_module(module)
        out_buf = MemoryBuffer((12,), INDEX)
        run_module(module, "main", [out_buf])
        np.testing.assert_array_equal(out_buf.array, np.arange(12))

    def test_atomic_rmw(self):
        """All 16 threads atomically add into one cell."""
        def body(module, bb, tb, bx, tx, out, consts):
            c0 = arith.index_constant(tb, 0)
            one = arith.constant(tb, 1.0, F32)
            memref.atomic_rmw(tb, "addf", one, out, [c0])

        module = build_gpu_kernel(body)
        out = MemoryBuffer((16,), F32)
        run_module(module, "main", [out])
        assert out.array[0] == 16.0


class TestTracer:
    def test_tracer_sees_accesses_and_barriers(self):
        from repro.interpreter import Tracer

        class Recorder(Tracer):
            def __init__(self):
                self.loads, self.stores, self.barriers = [], [], []

            def on_load(self, buffer, linear, nbytes, block, thread,
                        op=None):
                self.loads.append((buffer.space, linear, block, thread))

            def on_store(self, buffer, linear, nbytes, block, thread,
                         op=None):
                self.stores.append((buffer.space, linear, block, thread))

            def on_barrier(self, block):
                self.barriers.append(block)

        def body(module, bb, tb, bx, tx, out, consts):
            shared = memref.alloca(bb, MemRefType((8,), F32, "shared"))
            value = arith.constant(tb, 1.0, F32)
            memref.store(tb, value, shared, [tx])
            polygeist.barrier(tb, [tx])
            nt = consts["nt"]
            gid = arith.addi(tb, arith.muli(tb, bx, nt), tx)
            memref.store(tb, memref.load(tb, shared, [tx]), out, [gid])

        module = build_gpu_kernel(body)
        out = MemoryBuffer((16,), F32)
        recorder = Recorder()
        run_module(module, "main", [out], tracer=recorder)
        # 2 blocks x 8 threads: 8 shared + 8 global stores per block
        shared_stores = [s for s in recorder.stores if s[0] == "shared"]
        global_stores = [s for s in recorder.stores if s[0] == "global"]
        assert len(shared_stores) == 16
        assert len(global_stores) == 16
        assert len(recorder.loads) == 16
        assert len(recorder.barriers) == 16  # one event per thread
        # thread ids are present during GPU execution
        assert all(t is not None for (_, _, _, t) in recorder.stores)


class TestMemoryBuffer:
    def test_bounds_checked(self):
        buf = MemoryBuffer((4, 4), F32)
        with pytest.raises(IndexError):
            buf.load([4, 0])
        with pytest.raises(IndexError):
            buf.load([0, -1])
        with pytest.raises(IndexError):
            buf.load([0])

    def test_row_major_linearization(self):
        buf = MemoryBuffer((2, 3), F32)
        assert buf.linear_index([0, 0]) == 0
        assert buf.linear_index([0, 2]) == 2
        assert buf.linear_index([1, 0]) == 3
        assert buf.linear_index([1, 2]) == 5

    def test_for_type_with_dynamic_dims(self):
        from repro.ir import DYNAMIC
        type_ = MemRefType((DYNAMIC, 4), F32)
        buf = MemoryBuffer.for_type(type_, [3])
        assert buf.shape == (3, 4)

    def test_data_initialization_copies(self):
        data = np.ones(4, dtype=np.float32)
        buf = MemoryBuffer((4,), F32, data=data)
        data[0] = 99
        assert buf.array[0] == 1.0


class TestUnsignedOps:
    """Unsigned arithmetic must use width-masked bit patterns, not
    Python's ideal signed integers. Found by the differential validation
    harness while building the equivalence gate (the signed fallback made
    shrui/divui on negative values diverge from GPU semantics)."""

    def run_int_op(self, name, lhs, rhs, type_=I32):
        module = Module()
        f, b = new_func(module, "main", (MemRefType((1,), type_),), ["out"])
        x = arith.constant(b, lhs, type_)
        y = arith.constant(b, rhs, type_)
        v = arith.binary(b, name, x, y)
        c0 = arith.index_constant(b, 0)
        memref.store(b, v, f.body_block().arg(0), [c0])
        func.return_(b)
        verify_module(module)
        out = MemoryBuffer((1,), type_)
        Interpreter(module).run_func("main", [out])
        return int(out.array[0])

    def test_shrui_is_logical_shift(self):
        # -8 as u32 is 0xFFFFFFF8; a logical shift brings in zeros
        assert self.run_int_op("arith.shrui", -8, 1) == 0x7FFFFFFC
        # the signed interpretation would keep the sign: make sure not
        assert self.run_int_op("arith.shrsi", -8, 1) == -4

    def test_divui_remui_use_unsigned_operands(self):
        assert self.run_int_op("arith.divui", -8, 3) == (2 ** 32 - 8) // 3
        assert self.run_int_op("arith.remui", -8, 3) == (2 ** 32 - 8) % 3
        assert self.run_int_op("arith.divsi", -8, 3) == -2

    def test_minui_maxui_compare_unsigned(self):
        # 0xFFFFFFFF (=-1 signed) is the *largest* u32, not the smallest
        assert self.run_int_op("arith.minui", -1, 1) == 1
        assert self.run_int_op("arith.maxui", -1, 1) == -1

    def test_unsigned_division_by_zero_raises(self):
        with pytest.raises(InterpreterError):
            self.run_int_op("arith.divui", 5, 0)
        with pytest.raises(InterpreterError):
            self.run_int_op("arith.remui", 5, 0)


class TestDivergenceDiagnostics:
    """ConvergenceError messages must name the offending threads so the
    validation harness can report actionable barrier-legality failures."""

    def test_thread_divergent_barrier_names_threads(self):
        def body(module, bb, tb, bx, tx, out, consts):
            c4 = arith.index_constant(tb, 4)
            cond = arith.cmpi(tb, "lt", tx, c4)
            if_op = scf.if_(tb, cond, [])
            then_b = Builder(scf.if_then_block(if_op))
            polygeist.barrier(then_b, [tx])
            scf.yield_(then_b)
            scf.yield_(Builder(scf.if_else_block(if_op)))

        module = build_gpu_kernel(body)
        out = MemoryBuffer((16,), F32)
        with pytest.raises(ConvergenceError,
                           match="thread-divergent control flow"):
            run_module(module, "main", [out])

    def test_different_barriers_reported(self):
        """Half the threads reach one barrier, half another: the wave
        check must flag the mismatched identity, not hang."""
        def body(module, bb, tb, bx, tx, out, consts):
            c4 = arith.index_constant(tb, 4)
            cond = arith.cmpi(tb, "lt", tx, c4)
            if_op = scf.if_(tb, cond, [])
            then_b = Builder(scf.if_then_block(if_op))
            polygeist.barrier(then_b, [tx])
            scf.yield_(then_b)
            else_b = Builder(scf.if_else_block(if_op))
            polygeist.barrier(else_b, [tx])
            scf.yield_(else_b)

        module = build_gpu_kernel(body)
        out = MemoryBuffer((16,), F32)
        with pytest.raises(ConvergenceError, match="different barrier"):
            run_module(module, "main", [out])


class TestReverseParallel:
    """reverse_parallel reorders blocks and thread waves; race-free
    kernels must be insensitive, racy ones visibly differ (the order
    probe behind the differential harness's race detection)."""

    def test_race_free_kernel_is_order_insensitive(self):
        def body(module, bb, tb, bx, tx, out, consts):
            nt = consts["nt"]
            gid = arith.addi(tb, arith.muli(tb, bx, nt), tx)
            value = arith.sitofp(tb, arith.index_cast(tb, gid, I32), F32)
            memref.store(tb, value, out, [gid])

        module = build_gpu_kernel(body)
        forward = MemoryBuffer((16,), F32)
        Interpreter(module).run_func("main", [forward])
        reverse = MemoryBuffer((16,), F32)
        Interpreter(module, reverse_parallel=True).run_func(
            "main", [reverse])
        np.testing.assert_array_equal(forward.array, reverse.array)

    def test_write_write_race_differs_across_orders(self):
        def body(module, bb, tb, bx, tx, out, consts):
            c0 = arith.index_constant(tb, 0)
            value = arith.sitofp(tb, arith.index_cast(tb, tx, I32), F32)
            memref.store(tb, value, out, [c0])

        module = build_gpu_kernel(body)
        forward = MemoryBuffer((16,), F32)
        Interpreter(module).run_func("main", [forward])
        reverse = MemoryBuffer((16,), F32)
        Interpreter(module, reverse_parallel=True).run_func(
            "main", [reverse])
        assert forward.array[0] != reverse.array[0]


class TestBlockPlanFastPath:
    """The interpreter compiles blocks into straight-line runs plus
    control entries (see ``_compile_block``); the fast path must keep
    results and step-budget semantics identical to per-op dispatch."""

    def _arith_module(self, num_adds):
        module = Module()
        f, b = new_func(module, "main", (MemRefType((1,), INDEX),), ["out"])
        c0 = arith.index_constant(b, 0)
        c1 = arith.index_constant(b, 1)
        v = c0
        for _ in range(num_adds):
            v = arith.addi(b, v, c1)
        memref.store(b, v, f.body_block().arg(0), [c0])
        func.return_(b)
        verify_module(module)
        return module

    def test_straight_line_run_executes_correctly(self):
        module = self._arith_module(10)
        out = MemoryBuffer.for_type(MemRefType((1,), INDEX))
        interp = Interpreter(module)
        interp.run_func("main", [out])
        assert out.array[0] == 10
        # the whole body (constants, adds, store, return) is one plan;
        # the straight-line ops collapse into a single run entry
        from repro.interpreter.interp import _KIND_RUN
        plans = list(interp._plans.values())
        assert plans, "exec_block must have compiled a plan"
        kinds = [entry[0] for entry in plans[0]]
        assert kinds.count(_KIND_RUN) == 1

    def test_step_budget_counts_each_op_in_a_run(self):
        module = self._arith_module(10)
        # body has 2 constants + 10 adds + 1 store + 1 return = 14 steps
        out = MemoryBuffer.for_type(MemRefType((1,), INDEX))
        Interpreter(module, max_steps=14).run_func("main", [out])
        assert out.array[0] == 10
        for budget in (1, 5, 13):
            out = MemoryBuffer.for_type(MemRefType((1,), INDEX))
            with pytest.raises(InterpreterError, match="step budget"):
                Interpreter(module, max_steps=budget).run_func(
                    "main", [out])

    def test_budget_trips_before_over_limit_op_executes(self):
        # with budget 12 the store (step 13) must never run: the output
        # buffer stays at its initial value
        module = self._arith_module(10)
        out = MemoryBuffer.for_type(MemRefType((1,), INDEX))
        out.array[0] = -99
        with pytest.raises(InterpreterError, match="step budget"):
            Interpreter(module, max_steps=12).run_func("main", [out])
        assert out.array[0] == -99

    def test_plan_reused_across_loop_iterations(self):
        # an scf.for body block is executed per iteration but compiled once
        module = Module()
        f, b = new_func(module, "main", (MemRefType((1,), INDEX),), ["out"])
        c0 = arith.index_constant(b, 0)
        c1 = arith.index_constant(b, 1)
        c8 = arith.index_constant(b, 8)
        loop = scf.for_(b, c0, c8, c1, iter_inits=[c0])
        lb = Builder(loop.body_block())
        acc = arith.addi(lb, loop.body_block().arg(1), c1)
        scf.yield_(lb, [acc])
        memref.store(b, loop.result(0), f.body_block().arg(0), [c0])
        func.return_(b)
        verify_module(module)
        out = MemoryBuffer.for_type(MemRefType((1,), INDEX))
        interp = Interpreter(module)
        interp.run_func("main", [out])
        assert out.array[0] == 8
        # one plan for the function body, one for the loop body — not one
        # per iteration
        assert len(interp._plans) == 2
