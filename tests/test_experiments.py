"""Tests for the experiment drivers behind the paper's figures."""

import pytest

from repro.benchsuite.experiments import (fig13_summary, fig14_heatmap,
                                          geomean, hipify_ease_data,
                                          sweep_kernel_configs,
                                          table2_profile)
from repro.benchsuite import get_benchmark
from repro.targets import A100


class TestGeomean:
    def test_basic(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([1.0]) == 1.0
        assert geomean([]) == 1.0

    def test_ignores_nonpositive(self):
        assert geomean([4.0, 0.0, -1.0]) == pytest.approx(4.0)


class TestFig16Geomeans:
    """fig16_geomeans must distinguish missing, zero, and valid cells."""

    @staticmethod
    def _data(**cells):
        # two benchmarks, one arch, tiers clang + polygeist
        data = {
            "a": {("GPU", "clang"): 2.0, ("GPU", "polygeist"): 1.0},
            "b": {("GPU", "clang"): 4.0, ("GPU", "polygeist"): 2.0},
        }
        for spec, value in cells.items():
            name, tier = spec.split("_", 1)
            data[name][("GPU", tier)] = value
        return data

    def test_basic_speedups(self):
        from repro.benchsuite.experiments import fig16_geomeans
        means = fig16_geomeans(self._data(), "GPU")
        assert means["polygeist"] == pytest.approx(2.0)
        assert means["clang"] == pytest.approx(1.0)

    def test_none_cells_skipped_not_dropped_as_zero(self):
        from repro.benchsuite.experiments import fig16_geomeans
        means = fig16_geomeans(self._data(b_polygeist=None), "GPU")
        assert means["polygeist"] == pytest.approx(2.0)  # only 'a' counts

    def test_zero_time_warns_instead_of_silent_drop(self):
        from repro.benchsuite.experiments import fig16_geomeans
        with pytest.warns(RuntimeWarning, match="0.0 modeled time"):
            means = fig16_geomeans(self._data(b_polygeist=0.0), "GPU")
        assert means["polygeist"] == pytest.approx(2.0)

    def test_all_ratios_discarded_raises(self):
        from repro.benchsuite.experiments import fig16_geomeans
        with pytest.warns(RuntimeWarning):
            with pytest.raises(ValueError, match="all-invalid"):
                fig16_geomeans(
                    self._data(a_polygeist=0.0, b_polygeist=0.0), "GPU")


class TestKernelSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        bench = get_benchmark("lud")
        configs = [
            {"block_total": 1, "thread_total": 1},
            {"block_total": 2, "thread_total": 1},
            {"block_total": 1, "thread_total": 2},
            {"block_total": 2, "thread_total": 2},
        ]
        return sweep_kernel_configs(
            bench.source, "lud_internal", (16, 16),
            [(120, 120)], A100, configs, "lud")

    def test_all_configs_present(self, sweep):
        assert len(sweep.results) == 4
        assert sweep.baseline() is not None

    def test_strategy_filters(self, sweep):
        block_best = sweep.best(block_only=True)
        thread_best = sweep.best(thread_only=True)
        assert block_best.thread_total == 1
        assert thread_best.block_total == 1

    def test_block_beats_thread_on_lud(self, sweep):
        """The paper's lud observation: block-only > thread-only."""
        assert sweep.speedup(block_only=True) >= \
            sweep.speedup(thread_only=True) - 1e-9

    def test_combined_dominates(self, sweep):
        assert sweep.speedup() >= sweep.speedup(block_only=True) - 1e-9
        assert sweep.speedup() >= sweep.speedup(thread_only=True) - 1e-9


class TestFig14Shapes:
    @pytest.fixture(scope="class")
    def heatmap(self):
        return fig14_heatmap(arch=A100, totals=(1, 2, 4, 32))

    def test_block_coarsening_helps_lud(self, heatmap):
        assert heatmap[(2, 1)] > 1.0
        assert heatmap[(4, 1)] > heatmap[(2, 1)]

    def test_subwarp_thread_cliff(self, heatmap):
        # factor 32 on 256 threads -> 8-thread blocks, far below a warp
        assert heatmap[(1, 32)] < 1.0

    def test_shared_limit_invalidates_block32(self, heatmap):
        assert heatmap[(32, 1)] is None

    def test_summary_ordering(self, heatmap):
        # reconstruct a sweep-like summary from the heatmap
        block_best = max(heatmap[(b, 1)] for b in (1, 2, 4)
                         if heatmap.get((b, 1)))
        thread_best = max(heatmap[(1, t)] for t in (1, 2, 4)
                          if heatmap.get((1, t)))
        assert block_best >= thread_best


class TestTable2Shapes:
    @pytest.fixture(scope="class")
    def rows(self):
        return table2_profile(arch=A100, size=48)

    def _bytes(self, text):
        value, unit = text.split()
        return float(value) * {"B": 1, "KB": 1e3, "MB": 1e6,
                               "GB": 1e9}[unit]

    def _count(self, text):
        if text.endswith("M"):
            return float(text[:-2]) * 1e6
        if text.endswith("K"):
            return float(text[:-2]) * 1e3
        return float(text)

    def test_block_coarsening_reduces_l2_traffic(self, rows):
        base = self._bytes(rows["(1, 1)"]["L2 -> L1 Read"])
        block = self._bytes(rows["(4, 1)"]["L2 -> L1 Read"])
        assert block < base

    def test_thread_coarsening_reduces_shared_requests(self, rows):
        base = self._count(rows["(1, 1)"]["ShMem -> SM Read Req."])
        thread = self._count(rows["(1, 4)"]["ShMem -> SM Read Req."])
        assert thread < base

    def test_runtime_populated(self, rows):
        for label in ("(1, 1)", "(4, 1)", "(1, 4)"):
            assert rows[label]["Runtime"].endswith("s")


class TestHipifyEase:
    def test_zero_fixes_for_ir_route(self):
        reports = hipify_ease_data(benchmarks=["lud", "nw"])
        assert all(r.polygeist_fix_count == 0 for r in reports)
        assert all(r.hipify_fix_count >= 1 for r in reports)
        assert all(r.hipify_automatic_changes >= 1 for r in reports)
