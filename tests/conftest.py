"""Shared fixtures for the test suite."""

import logging

import pytest

from repro.obs.log import ROOT_LOGGER


@pytest.fixture(autouse=True)
def _isolate_repro_logger():
    """Restore the ``repro`` logger after every test.

    CLI entry points call ``configure_logging``, which attaches a
    stderr handler (bound to pytest's captured — and later closed —
    stream) and sets ``propagate=False`` on the ``repro`` logger. Left
    in place, that state breaks ``caplog`` assertions and spews
    "I/O operation on closed file" in every later test that logs.
    """
    logger = logging.getLogger(ROOT_LOGGER)
    handlers = list(logger.handlers)
    level = logger.level
    propagate = logger.propagate
    yield
    for handler in logger.handlers:
        if handler not in handlers:
            handler.close()
    logger.handlers = handlers
    logger.setLevel(level)
    logger.propagate = propagate
