"""Tests for the process-sharded sweep engine.

Covers the three layers added for sharded figure sweeps:

* :class:`repro.engine.scheduler.SweepScheduler` — crash isolation,
  per-job timeout, bounded retry, degrade-to-in-process;
* the on-disk :class:`~repro.engine.cache.TuningCache` under concurrent
  multi-process writers (the unique-temp-file fix);
* :mod:`repro.benchsuite.sweeps` — plans, deterministic merge
  (sharded == serial), resume files.
"""

import json
import multiprocessing
import os
import time

import pytest

from repro.engine.cache import (CacheEntry, TuningCache, entry_from_dict)
from repro.engine.scheduler import (Job, SweepScheduler, sweep_workers)
from repro.targets import A100, MI210

# -- picklable job runners (module-level for any start method) ---------------


def _dispatch(payload):
    """Multi-behavior runner keyed on payload['kind']."""
    kind = payload["kind"]
    if kind == "double":
        return payload["x"] * 2
    if kind == "boom":
        raise ValueError("boom %s" % payload["x"])
    if kind == "exit":
        os._exit(7)
    if kind == "sleep":
        time.sleep(payload["seconds"])
        return "slept"
    if kind == "flaky":
        # fails until enough attempts have appended to the counter file
        with open(payload["path"], "a") as handle:
            handle.write("x")
        if os.path.getsize(payload["path"]) < payload["succeed_at"]:
            raise RuntimeError("flaky")
        return "finally"
    if kind == "parent-only":
        # dies in any worker process; succeeds only in the parent — the
        # shape of a job that can ONLY complete via the degrade path
        if os.getpid() != payload["pid"]:
            os._exit(7)
        return "in-parent"
    if kind == "pid":
        return os.getpid()
    raise KeyError(kind)


def _double_jobs(count):
    return [Job("job-%d" % i, {"kind": "double", "x": i})
            for i in range(count)]


class TestSweepWorkers:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "7")
        assert sweep_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "5")
        assert sweep_workers() == 5

    def test_cpu_count_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_WORKERS", raising=False)
        assert sweep_workers() == (os.cpu_count() or 1)

    def test_floor_of_one(self):
        assert sweep_workers(0) == 1
        assert sweep_workers(-4) == 1


class TestSchedulerBasics:
    def test_results_in_input_order(self):
        scheduler = SweepScheduler(workers=2, backoff=0.01)
        results = scheduler.run(_dispatch, _double_jobs(6))
        assert list(results) == ["job-%d" % i for i in range(6)]
        for i in range(6):
            result = results["job-%d" % i]
            assert result.ok and result.value == i * 2
            assert result.attempts == 1 and result.retries == 0

    def test_sequential_fallback_same_results(self):
        scheduler = SweepScheduler(workers=1)
        results = scheduler.run(_dispatch, _double_jobs(4))
        assert [r.value for r in results.values()] == [0, 2, 4, 6]

    def test_duplicate_keys_rejected(self):
        scheduler = SweepScheduler(workers=1)
        with pytest.raises(ValueError, match="unique"):
            scheduler.run(_dispatch, [Job("same", {}), Job("same", {})])

    def test_empty_job_list(self):
        assert SweepScheduler(workers=2).run(_dispatch, []) == {}


class TestSchedulerFailures:
    def test_exception_isolated_from_other_jobs(self):
        jobs = _double_jobs(3) + [Job("bad", {"kind": "boom", "x": 9})]
        scheduler = SweepScheduler(workers=2, retries=0, degrade=False,
                                   backoff=0.01)
        results = scheduler.run(_dispatch, jobs)
        assert all(results["job-%d" % i].ok for i in range(3))
        assert not results["bad"].ok
        assert "boom 9" in results["bad"].error

    def test_worker_crash_isolated(self):
        # os._exit skips all exception machinery: the worker just dies.
        # The scheduler must respawn a worker and finish the other jobs.
        jobs = [Job("crash", {"kind": "exit"})] + _double_jobs(3)
        scheduler = SweepScheduler(workers=2, retries=0, degrade=False,
                                   backoff=0.01)
        results = scheduler.run(_dispatch, jobs)
        assert not results["crash"].ok
        assert "worker died" in results["crash"].error
        assert all(results["job-%d" % i].ok for i in range(3))

    def test_retry_until_success(self, tmp_path):
        counter = tmp_path / "attempts"
        job = Job("flaky", {"kind": "flaky", "path": str(counter),
                            "succeed_at": 2})
        scheduler = SweepScheduler(workers=2, retries=2, backoff=0.01)
        # force the pool path despite the single job
        results = scheduler.run(_dispatch, [job] + _double_jobs(1))
        result = results["flaky"]
        assert result.ok and result.value == "finally"
        assert result.attempts == 2 and result.retries == 1

    def test_timeout_kills_and_reports(self):
        jobs = [Job("slow", {"kind": "sleep", "seconds": 30})] + \
            _double_jobs(2)
        scheduler = SweepScheduler(workers=2, timeout=0.3, retries=0,
                                   degrade=False, backoff=0.01)
        start = time.monotonic()
        results = scheduler.run(_dispatch, jobs)
        assert time.monotonic() - start < 20  # never waits the full sleep
        assert not results["slow"].ok
        assert results["slow"].timeouts == 1
        assert "timeout" in results["slow"].error
        assert all(results["job-%d" % i].ok for i in range(2))

    def test_degrade_runs_in_process(self):
        # the job dies in every worker but succeeds in the parent, so a
        # passing run PROVES the degrade path executed in-process
        jobs = [Job("picky", {"kind": "parent-only", "pid": os.getpid()}),
                Job("ok", {"kind": "double", "x": 1})]
        scheduler = SweepScheduler(workers=2, retries=1, degrade=True,
                                   backoff=0.01)
        results = scheduler.run(_dispatch, jobs)
        result = results["picky"]
        assert result.ok and result.value == "in-parent"
        assert result.degraded
        assert result.retries == 1
        assert results["ok"].ok and not results["ok"].degraded

    def test_sequential_timeout_enforced(self):
        # workers=1 without isolate takes the in-process path, which
        # used to ignore the deadline entirely (and would hang here)
        jobs = [Job("slow", {"kind": "sleep", "seconds": 30})] + \
            _double_jobs(2)
        scheduler = SweepScheduler(workers=1, timeout=0.3, retries=0,
                                   degrade=False)
        start = time.monotonic()
        results = scheduler.run(_dispatch, jobs)
        assert time.monotonic() - start < 20
        assert not results["slow"].ok
        assert results["slow"].timeouts == 1
        assert "abandoned" in results["slow"].error
        assert all(results["job-%d" % i].ok for i in range(2))

    def test_sequential_timeout_counts_metric(self):
        from repro.obs import metrics as obs_metrics
        with obs_metrics.collecting() as registry:
            scheduler = SweepScheduler(workers=1, timeout=0.2,
                                       retries=0, degrade=False)
            scheduler.run(_dispatch,
                          [Job("slow", {"kind": "sleep", "seconds": 30})])
        assert registry.counter_values().get("sweep.timeouts") == 1

    def test_exhausted_retries_fail_without_degrade(self):
        jobs = [Job("bad", {"kind": "boom", "x": 1})] + _double_jobs(1)
        scheduler = SweepScheduler(workers=2, retries=1, degrade=False,
                                   backoff=0.01)
        results = scheduler.run(_dispatch, jobs)
        assert not results["bad"].ok
        assert results["bad"].attempts == 2


class TestSchedulerLifecycle:
    def test_context_manager_reuses_warm_pool(self):
        jobs = [Job("p", {"kind": "pid"})]
        with SweepScheduler(workers=1, isolate=True) as scheduler:
            first = scheduler.run(_dispatch, jobs)["p"].value
            second = scheduler.run(_dispatch, jobs)["p"].value
            assert scheduler.pool_size == 1
        # same worker process served both runs — the pool persisted
        assert first == second
        assert first != os.getpid()
        assert scheduler.pool_size == 0  # __exit__ reaped it

    def test_isolate_forces_worker_process_for_single_job(self):
        scheduler = SweepScheduler(workers=1, isolate=True)
        pid = scheduler.run(_dispatch, [Job("p", {"kind": "pid"})])
        assert pid["p"].value != os.getpid()
        assert scheduler.pool_size == 0  # non-persistent run cleans up

    def test_without_isolate_single_job_runs_in_process(self):
        scheduler = SweepScheduler(workers=1)
        pid = scheduler.run(_dispatch, [Job("p", {"kind": "pid"})])
        assert pid["p"].value == os.getpid()

    def test_crash_recovery_respawns_pooled_worker(self):
        with SweepScheduler(workers=1, isolate=True, retries=0,
                            degrade=False) as scheduler:
            crashed = scheduler.run(_dispatch,
                                    [Job("x", {"kind": "exit"})])
            assert not crashed["x"].ok
            # the replacement worker serves the next run
            again = scheduler.run(_dispatch, [Job("p", {"kind": "pid"})])
            assert again["p"].ok

    def test_shutdown_is_idempotent_and_unregisters(self):
        from repro.engine.scheduler import _live_pools
        scheduler = SweepScheduler(workers=1, isolate=True)
        with scheduler:
            scheduler.run(_dispatch, [Job("p", {"kind": "pid"})])
            assert scheduler in _live_pools
        assert scheduler not in _live_pools
        scheduler.shutdown()  # second shutdown must be a no-op
        assert scheduler.pool_size == 0


# -- concurrent on-disk cache stress -----------------------------------------

_SHARED_KEYS = 4


def _stress_entry(worker_index):
    from repro.autotune.tdo import TuneOutcome
    # desc and time encode the SAME writer: a torn/interleaved write
    # would decouple them (or fail to parse at all)
    return CacheEntry(
        TuneOutcome(selected_desc="winner-%d" % worker_index,
                    selected_time=float(worker_index),
                    candidates=[], filters=None, selected_index=0,
                    selected_config={"block_total": worker_index}),
        {"block_total": worker_index})


def _cache_stress_worker(cache_dir, worker_index, rounds, barrier):
    barrier.wait()  # maximize overlap between writers
    entry = _stress_entry(worker_index)
    for round_index in range(rounds):
        cache = TuningCache(cache_dir)
        for k in range(_SHARED_KEYS):
            cache.store("shared-%d" % k, entry)
        cache.store("own-%d-%d" % (worker_index, round_index), entry)
        for k in range(_SHARED_KEYS):
            # a fresh cache instance forces a disk read
            hit, got = TuningCache(cache_dir).lookup("shared-%d" % k)
            if hit and got is not None and got.outcome is not None:
                desc = got.outcome.selected_desc
                stamp = int(got.outcome.selected_time)
                assert desc == "winner-%d" % stamp, \
                    "torn read: %s vs %s" % (desc, stamp)


def _quarantine_stress_worker(cache_dir, worker_index, workers, rounds,
                              barrier):
    """Store valid entries, plant torn/stale ones, and read everything
    back while every other process does the same (plus LRU eviction)."""
    barrier.wait()
    entry = _stress_entry(worker_index)
    for round_index in range(rounds):
        cache = TuningCache(cache_dir, max_entries=64)
        cache.store("shared-%d" % (round_index % _SHARED_KEYS), entry)
        torn = "torn-%d-%d" % (worker_index, round_index)
        stale = "stale-%d-%d" % (worker_index, round_index)
        with open(os.path.join(cache_dir, torn + ".json"), "w") as handle:
            handle.write('{"outcome": {"sel')  # torn mid-write
        with open(os.path.join(cache_dir, stale + ".json"), "w") as handle:
            handle.write('{"schema": 1, "outcome": null, '
                         '"selected_config": null}')
        reader = TuningCache(cache_dir, max_entries=64)
        for other in range(workers):
            for prefix in ("torn", "stale"):
                hit, _ = reader.lookup("%s-%d-%d" %
                                       (prefix, other, round_index))
                assert not hit, "served a %s entry" % prefix
        hit, got = reader.lookup("shared-%d" %
                                 (round_index % _SHARED_KEYS))
        if hit and got is not None and got.outcome is not None:
            stamp = int(got.outcome.selected_time)
            assert got.outcome.selected_desc == "winner-%d" % stamp


class TestCacheConcurrency:
    def test_multiprocess_writers_never_corrupt(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        os.makedirs(cache_dir)
        context = multiprocessing.get_context("fork")
        workers, rounds = 4, 6
        barrier = context.Barrier(workers)
        procs = [context.Process(
            target=_cache_stress_worker,
            args=(cache_dir, index, rounds, barrier))
            for index in range(workers)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0, \
                "stress worker failed (exitcode %s)" % proc.exitcode
        # every surviving file parses as a complete entry
        names = sorted(os.listdir(cache_dir))
        assert not [n for n in names if n.endswith(".tmp")], \
            "leftover temp files: %s" % names
        parsed = 0
        for name in names:
            assert name.endswith(".json")
            with open(os.path.join(cache_dir, name)) as handle:
                entry = entry_from_dict(json.load(handle))
            assert entry.outcome is not None
            stamp = int(entry.outcome.selected_time)
            assert entry.outcome.selected_desc == "winner-%d" % stamp
            parsed += 1
        # all shared keys plus every worker's private keys made it
        assert parsed == _SHARED_KEYS + workers * rounds

    def test_corrupt_entry_quarantined_on_load(self, tmp_path):
        cache_dir = str(tmp_path)
        cache = TuningCache(cache_dir)
        cache.store("good", _stress_entry(1))
        bad_path = os.path.join(cache_dir, "bad.json")
        with open(bad_path, "w") as handle:
            handle.write('{"outcome": {"selected_')  # torn write
        fresh = TuningCache(cache_dir)
        hit, _ = fresh.lookup("bad")
        assert not hit
        # quarantined, not deleted: the key re-tunes, the evidence stays
        assert not os.path.exists(bad_path)
        assert os.path.exists(bad_path + ".quarantine")
        assert fresh.quarantined == 1
        assert fresh.stats()["quarantined"] == 1
        hit, entry = fresh.lookup("good")
        assert hit and entry.outcome.selected_desc == "winner-1"

    def test_truncated_valid_json_quarantined(self, tmp_path):
        from repro.engine.cache import ENTRY_SCHEMA, entry_to_dict
        cache = TuningCache(str(tmp_path))
        path = os.path.join(str(tmp_path), "half.json")
        payload = json.dumps(entry_to_dict(_stress_entry(3)))
        with open(path, "w") as handle:
            handle.write(payload[:len(payload) // 2])  # torn mid-write
        hit, _ = cache.lookup("half")
        assert not hit
        assert not os.path.exists(path)
        assert os.path.exists(path + ".quarantine")
        assert cache.quarantined == 1
        assert ENTRY_SCHEMA in json.loads(payload).values()

    def test_stale_schema_quarantined(self, tmp_path):
        from repro.engine.cache import entry_to_dict
        cache = TuningCache(str(tmp_path))
        stale = dict(entry_to_dict(_stress_entry(2)), schema=1)
        path = os.path.join(str(tmp_path), "old.json")
        with open(path, "w") as handle:
            json.dump(stale, handle)
        hit, _ = cache.lookup("old")
        assert not hit, "a stale-schema entry must re-tune, not misread"
        assert os.path.exists(path + ".quarantine")
        assert cache.quarantined == 1
        # quarantined files never count as cache occupancy
        assert cache.disk_entries() == 0

    def test_quarantine_survives_clear(self, tmp_path):
        cache = TuningCache(str(tmp_path))
        with open(os.path.join(str(tmp_path), "bad.json"), "w") as handle:
            handle.write("not json")
        cache.lookup("bad")
        assert os.path.exists(
            os.path.join(str(tmp_path), "bad.json.quarantine"))
        cache.clear()  # clear() wipes quarantine files along with entries
        assert os.listdir(str(tmp_path)) == []

    def test_concurrent_quarantine_under_store_evict(self, tmp_path):
        """4 processes store/evict/plant-corruption concurrently; no bad
        entry is ever served and every bad entry ends up quarantined."""
        cache_dir = str(tmp_path / "cache")
        os.makedirs(cache_dir)
        context = multiprocessing.get_context("fork")
        workers, rounds = 4, 5
        barrier = context.Barrier(workers)
        procs = [context.Process(
            target=_quarantine_stress_worker,
            args=(cache_dir, index, workers, rounds, barrier))
            for index in range(workers)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0, \
                "stress worker failed (exitcode %s)" % proc.exitcode
        # sweep the leftovers: any planted entry not yet tripped over
        # must quarantine (never serve) on a fresh lookup
        sweeper = TuningCache(cache_dir)
        for name in sorted(os.listdir(cache_dir)):
            if name.endswith(".json") and \
                    name.startswith(("torn-", "stale-")):
                hit, _ = sweeper.lookup(name[:-len(".json")])
                assert not hit
        names = sorted(os.listdir(cache_dir))
        quarantined = [n for n in names if n.endswith(".quarantine")]
        assert quarantined, "the planted corruption must leave evidence"
        # every surviving live entry parses and is self-consistent
        for name in names:
            if not name.endswith(".json"):
                continue
            with open(os.path.join(cache_dir, name)) as handle:
                entry = entry_from_dict(json.load(handle))
            stamp = int(entry.outcome.selected_time)
            assert entry.outcome.selected_desc == "winner-%d" % stamp


# -- sweep plans and determinism ---------------------------------------------


class TestPlans:
    def test_unknown_figure(self):
        from repro.benchsuite.sweeps import plan_figure
        with pytest.raises(ValueError, match="unknown figure"):
            plan_figure("fig99")

    def test_fig16_plan_matches_serial_iteration(self):
        from repro.benchsuite.sweeps import plan_figure
        plan = plan_figure("fig16", benchmarks=["nn", "gaussian"],
                           archs=[A100], tiers=("clang", "polygeist"))
        assert plan.keys == [
            "fig16|gaussian|NVIDIA A100|clang",
            "fig16|gaussian|NVIDIA A100|polygeist",
            "fig16|nn|NVIDIA A100|clang",
            "fig16|nn|NVIDIA A100|polygeist",
        ]

    def test_payloads_are_picklable(self):
        import pickle
        from repro.benchsuite.sweeps import plan_figure
        for figure in ("fig13", "fig16", "fig17", "table2"):
            plan = plan_figure(figure, benchmarks=["nn"])
            for job in plan.jobs:
                pickle.dumps(job)

    def test_arch_names_accepted(self):
        from repro.benchsuite.sweeps import plan_figure
        plan = plan_figure("table2", arch="mi210")
        assert plan.jobs[0].payload["arch"] == MI210.name


class TestShardedDeterminism:
    def test_fig16_sharded_equals_serial(self):
        from repro.autotune.search import default_configs
        from repro.benchsuite.experiments import fig16_data
        from repro.benchsuite.sweeps import sharded_fig16_data
        kwargs = dict(benchmarks=["gaussian", "nn"], archs=[A100, MI210],
                      tiers=("clang", "polygeist"),
                      configs=default_configs(max_total=2))
        serial = fig16_data(**kwargs)
        sharded = sharded_fig16_data(workers=2, **kwargs)
        assert sharded == serial
        assert repr(sharded) == repr(serial)

    def test_table2_sharded_equals_serial(self):
        from repro.benchsuite.experiments import table2_profile
        from repro.benchsuite.sweeps import sharded_table2_profile
        assert sharded_table2_profile(workers=2) == table2_profile()

    def test_failure_surfaces_instead_of_partial_data(self, monkeypatch):
        from repro.benchsuite import sweeps
        outcome = sweeps.run_figure_sweep(
            "fig16", workers=2, benchmarks=["no-such-benchmark"],
            archs=[A100], tiers=("clang",), retries=0, degrade=False,
            serial_fallback=False)
        assert outcome.data is None
        assert len(outcome.failed) == 1


class TestResume:
    def test_round_trip_and_skip(self, tmp_path):
        from repro.autotune.search import default_configs
        from repro.benchsuite.sweeps import (load_resume_values,
                                             run_figure_sweep,
                                             write_sweep_json)
        kwargs = dict(benchmarks=["nn"], archs=[A100], tiers=("clang",),
                      configs=default_configs(max_total=2))
        first = run_figure_sweep("fig16", workers=2,
                                 serial_fallback=False, **kwargs)
        assert first.data is not None and len(first.results) == 1
        path = str(tmp_path / "sweep.json")
        write_sweep_json(path, first, {"workers": 2})
        values = load_resume_values(path, "fig16")
        second = run_figure_sweep("fig16", workers=2,
                                  serial_fallback=False,
                                  resume_values=values, **kwargs)
        assert second.results == {}  # nothing re-run
        assert second.resumed == sorted(first.values)
        assert second.data == first.data

    def test_figure_mismatch_rejected(self, tmp_path):
        from repro.benchsuite.sweeps import load_resume_values
        path = str(tmp_path / "other.json")
        with open(path, "w") as handle:
            json.dump({"figure": "fig13", "jobs": {}}, handle)
        with pytest.raises(ValueError, match="fig13"):
            load_resume_values(path, "fig16")

    def test_fig13_values_survive_json(self, tmp_path):
        from repro.autotune.search import default_configs
        from repro.benchsuite.sweeps import (decode_value, encode_value,
                                             run_figure_sweep)
        outcome = run_figure_sweep(
            "fig13", workers=2, benchmarks=["nn"],
            configs=default_configs(max_total=2), serial_fallback=False)
        (key, value), = outcome.values.items()
        restored = decode_value("fig13", json.loads(
            json.dumps(encode_value("fig13", value))))
        assert restored == value  # dataclasses, tuples and all
