"""Property-based semantic equivalence of the coarsening transformations.

Hypothesis generates random CUDA kernels — arithmetic expression trees,
shared-memory tiles with barriers, constant-bound accumulation loops,
thread-dependent guards — and checks that every legal coarsening
configuration produces bit-identical results to the original (§VII-A's
methodology, generalized to a random program population).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dialects import polygeist
from repro.frontend import ModuleGenerator, parse_translation_unit
from repro.interpreter import MemoryBuffer, run_module
from repro.ir import F32, verify_module
from repro.transforms import (CoarsenError, coarsen_wrapper, run_cleanup)

BLOCK = 8
GRID = 6
N = BLOCK * GRID


@st.composite
def random_expression(draw, depth=0):
    """A random float expression over t (thread), g (global id), x."""
    if depth >= 2 or draw(st.booleans()):
        return draw(st.sampled_from([
            "x", "(float)t", "(float)g", "1.5f", "0.25f", "v",
        ]))
    op = draw(st.sampled_from(["+", "-", "*"]))
    lhs = draw(random_expression(depth=depth + 1))
    rhs = draw(random_expression(depth=depth + 1))
    return "(%s %s %s)" % (lhs, op, rhs)


@st.composite
def random_kernel(draw):
    """A random but race-free kernel over in/out buffers of size N."""
    lines = [
        "int t = threadIdx.x;",
        "int g = blockIdx.x * blockDim.x + t;",
        "float x = in[g];",
        "float v = 0.0f;",
    ]
    use_shared = draw(st.booleans())
    if use_shared:
        lines.insert(0, "__shared__ float tile[%d];" % BLOCK)
        lines.append("tile[t] = %s;" % draw(random_expression()))
        lines.append("__syncthreads();")
        # read a rotated neighbor: exercises the barrier ordering
        shift = draw(st.integers(1, BLOCK - 1))
        lines.append("v = v + tile[(t + %d) %% %d];" % (shift, BLOCK))
    n_statements = draw(st.integers(1, 3))
    for _ in range(n_statements):
        kind = draw(st.sampled_from(["assign", "loop", "guard"]))
        if kind == "assign":
            lines.append("v = v + %s;" % draw(random_expression()))
        elif kind == "loop":
            trips = draw(st.integers(2, 5))
            lines.append("for (int j = 0; j < %d; j++) { v = v + x * j; }"
                         % trips)
        else:
            threshold = draw(st.integers(1, BLOCK - 1))
            lines.append("if (t < %d) { v = v + %s; }" %
                         (threshold, draw(random_expression())))
    if use_shared and draw(st.booleans()):
        # a second barrier phase
        lines.append("__syncthreads();")
        lines.append("tile[t] = v;")
        lines.append("__syncthreads();")
        lines.append("v = tile[%d] + v;" % draw(st.integers(0, BLOCK - 1)))
    lines.append("out[g] = v;")
    body = "\n    ".join(lines)
    return "__global__ void k(float *in, float *out) {\n    %s\n}" % body


def run_kernel(source, coarsen_config, data):
    unit = parse_translation_unit(source)
    generator = ModuleGenerator(unit)
    name = generator.get_launch_wrapper("k", 1, (BLOCK,))
    run_cleanup(generator.module)
    if coarsen_config:
        wrapper = polygeist.find_gpu_wrappers(generator.module.op)[0]
        coarsen_wrapper(wrapper, **coarsen_config)
        run_cleanup(generator.module)
    verify_module(generator.module)
    src_buf = MemoryBuffer((N,), F32, data=data)
    out = MemoryBuffer((N,), F32)
    run_module(generator.module, name, [GRID, src_buf, out])
    return out.array


CONFIGS = [
    {"thread_total": 2},
    {"thread_total": 4},
    {"block_total": 2},
    {"block_total": 3},           # non-divisor: exercises the epilogue
    {"block_total": 2, "thread_total": 2},
]


@given(random_kernel(), st.integers(0, 2 ** 16))
@settings(max_examples=25, deadline=None)
def test_property_coarsening_equivalence(source, seed):
    rng = np.random.default_rng(seed)
    data = rng.random(N, dtype=np.float32)
    reference = run_kernel(source, None, data)
    for config in CONFIGS:
        try:
            result = run_kernel(source, config, data)
        except CoarsenError:
            continue  # illegal for this kernel: fine, skip
        np.testing.assert_array_equal(
            result, reference,
            err_msg="config %r broke kernel:\n%s" % (config, source))


@given(random_kernel())
@settings(max_examples=15, deadline=None)
def test_property_cleanup_equivalence(source):
    """The cleanup pipeline alone must also preserve semantics."""
    rng = np.random.default_rng(7)
    data = rng.random(N, dtype=np.float32)

    unit = parse_translation_unit(source)
    generator = ModuleGenerator(unit)
    name = generator.get_launch_wrapper("k", 1, (BLOCK,))
    src1 = MemoryBuffer((N,), F32, data=data)
    out1 = MemoryBuffer((N,), F32)
    run_module(generator.module, name, [GRID, src1, out1])

    run_cleanup(generator.module)
    verify_module(generator.module)
    src2 = MemoryBuffer((N,), F32, data=data)
    out2 = MemoryBuffer((N,), F32)
    run_module(generator.module, name, [GRID, src2, out2])
    np.testing.assert_array_equal(out1.array, out2.array)


# -- benchsuite-wide differential validation ----------------------------------

from repro.benchsuite import BENCHMARKS, get_benchmark
from repro.validate import validate_source
from repro.validate.differential import BENCH_CONFIGS

#: kernels whose baseline is known to execute and be order-insensitive
#: under seeded inputs; a regression that knocks one back to "skipped"
#: (e.g. a broken scalar ladder or race probe) must fail loudly
CONCLUSIVE_KERNELS = {
    "bfs": {"bfs_kernel2"},
    "cfd": {"cuda_compute_flux", "cuda_time_step"},
    "gaussian": {"Fan1", "Fan2"},
    "hotspot": {"calculate_temp"},
    "hotspot3D": {"hotspotOpt1"},
    "myocyte": {"solver_kernel"},
    "nn": {"euclid"},
    "particlefilter": {"likelihood_kernel", "sum_kernel",
                       "normalize_kernel", "find_index_kernel"},
    "srad_v1": {"extract", "reduce", "srad", "srad2"},
    "streamcluster": {"compute_cost"},
}


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_benchsuite_differential_equivalence(name):
    """Every coarsening alternative of every benchsuite kernel must match
    the untransformed baseline under {thread, block} x {2, 4} (exact for
    ints, tolerant for floats); inconclusive baselines are skipped but
    the kernels in CONCLUSIVE_KERNELS must stay conclusive."""
    bench = get_benchmark(name)
    seen = set()
    conclusive = set()
    for kernel, grid, block in bench.iter_launches(bench.verify_size):
        key = (kernel, len(grid), tuple(block))
        if key in seen:
            continue
        seen.add(key)
        report = validate_source(bench.source, kernel, list(grid),
                                 tuple(block),
                                 configs=list(BENCH_CONFIGS))
        assert report.ok, "%s/%s:\n%s" % (name, kernel, report.summary())
        if not report.baseline_note:
            conclusive.add(kernel)
    missing = CONCLUSIVE_KERNELS.get(name, set()) - conclusive
    assert not missing, \
        "kernels regressed to inconclusive validation: %s" % sorted(missing)
