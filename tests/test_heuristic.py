"""Tests for the heuristic factor selector (§VIII-A future work)."""

import numpy as np
import pytest

from repro.autotune import choose_factors, heuristic_tune
from repro.dialects import polygeist
from repro.frontend import ModuleGenerator, parse_translation_unit
from repro.interpreter import MemoryBuffer, run_module
from repro.ir import F32, verify_module
from repro.targets import A100, MI210, compute_occupancy
from repro.transforms import run_cleanup
from repro.transforms.coarsen import block_parallels


def build(source, kernel="k", block=(256,), grid_rank=1):
    unit = parse_translation_unit(source)
    generator = ModuleGenerator(unit)
    name = generator.get_launch_wrapper(kernel, grid_rank, block)
    run_cleanup(generator.module)
    wrapper = polygeist.find_gpu_wrappers(generator.module.op)[0]
    return generator.module, name, wrapper


SMALL_BLOCK = """
__global__ void k(float *a, float *b) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    b[i] = a[i] * 2.0f;
}
"""

FULL_OCCUPANCY = """
__global__ void k(float *a) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    a[i] = a[i] + 1.0f;
}
"""

SHARED_HEAVY = """
__global__ void k(float *a) {
    __shared__ float tile[8192];
    int t = threadIdx.x;
    tile[t] = a[blockIdx.x * blockDim.x + t];
    __syncthreads();
    a[blockIdx.x * blockDim.x + t] = tile[t] + tile[(t + 1) % 8192];
}
"""


class TestChooseFactors:
    def test_underoccupied_small_blocks_get_block_coarsening(self):
        module, name, wrapper = build(SMALL_BLOCK, block=(16,))
        choice = choose_factors(block_parallels(wrapper)[0], A100)
        assert choice.block_total > 1
        assert choice.reasons

    def test_full_occupancy_left_alone_or_mild(self):
        module, name, wrapper = build(FULL_OCCUPANCY, block=(256,))
        choice = choose_factors(block_parallels(wrapper)[0], A100)
        assert choice.block_total * choice.thread_total <= 4

    def test_shared_capacity_caps_block_factor(self):
        module, name, wrapper = build(SHARED_HEAVY, block=(256,))
        choice = choose_factors(block_parallels(wrapper)[0], A100)
        # 32 KB/block: only one doubling fits under the 48 KB limit
        assert choice.block_total <= 1 or \
            choice.block_total * 32 * 1024 <= A100.shared_mem_per_block

    def test_thread_factor_keeps_full_warps(self):
        module, name, wrapper = build(SMALL_BLOCK, block=(32,))
        choice = choose_factors(block_parallels(wrapper)[0], A100)
        assert choice.thread_total == 1  # 32 threads: halving breaks warps


class TestWavefront64:
    """Lock the lane-normalization convention on warp_size=64 targets.

    Latency-hiding parallelism is counted in 32-thread warp EQUIVALENTS
    everywhere (LANE_WARP_WIDTH), so a 64-wide MI210 wavefront counts as
    two units — dividing by ``arch.warp_size`` would undercount AMD
    parallelism by 2x and over-coarsen. The warp-granularity check in
    step 3, by contrast, MUST use the real ``warp_size``.
    """

    def test_lane_warps_ignores_wavefront_width(self):
        from repro.autotune.heuristic import LANE_WARP_WIDTH, lane_warps
        occupancy = compute_occupancy(MI210, 256, 32, 0)
        assert occupancy.warp_size == 64
        assert occupancy.active_threads == 2048
        assert LANE_WARP_WIDTH == 32.0
        # 2048 threads hide as much latency as 64 32-wide warps, not 32
        assert lane_warps(occupancy) == 64.0

    def test_mi210_occupancy_not_undercounted(self):
        # 64-thread blocks on MI210: 1024 active threads = 32 lane-warps,
        # short of the 48 wanted -> exactly one doubling. A /warp_size
        # deficit (16 "warps") would demand x4 instead.
        module, name, wrapper = build(SMALL_BLOCK, block=(64,))
        choice = choose_factors(block_parallels(wrapper)[0], MI210)
        assert choice.block_total == 2
        assert choice.thread_total == 1
        assert any("active warps 32" in r for r in choice.reasons)

    def test_thread_factor_respects_wavefront_width(self):
        # 64 threads is two full warps on A100 (thread factor 2 legal)
        # but exactly ONE wavefront on MI210 (halving breaks it)
        module, name, wrapper = build(SHARED_HEAVY, block=(64,))
        nvidia = choose_factors(block_parallels(wrapper)[0], A100)
        assert nvidia.thread_total == 2
        module, name, wrapper = build(SHARED_HEAVY, block=(64,))
        amd = choose_factors(block_parallels(wrapper)[0], MI210)
        assert amd.thread_total == 1
        assert any("keep full warps" in r for r in amd.reasons)


class TestHeuristicTune:
    def test_applies_in_place(self):
        module, name, wrapper = build(SMALL_BLOCK, block=(16,))
        choice = heuristic_tune(wrapper, A100)
        verify_module(module)
        assert choice is not None
        main = block_parallels(wrapper, include_epilogues=False)[0]
        if choice.block_total > 1:
            assert main.attr("coarsen.history")

    def test_correctness_preserved(self):
        module, name, wrapper = build(SMALL_BLOCK, block=(16,))
        heuristic_tune(wrapper, A100)
        run_cleanup(module)
        verify_module(module)
        a = MemoryBuffer((256,), F32,
                         data=np.arange(256, dtype=np.float32))
        b = MemoryBuffer((256,), F32)
        run_module(module, name, [16, a, b])
        np.testing.assert_array_equal(
            b.array, np.arange(256, dtype=np.float32) * 2)

    def test_illegal_choice_degrades_gracefully(self):
        source = """
        __global__ void k(float *out, float *in) {
            __shared__ float s[16];
            float v = in[blockIdx.x * 16 + threadIdx.x];
            out[blockIdx.x * 16 + threadIdx.x] = v;
            if (blockIdx.x > 0) {
                s[threadIdx.x] = v;
                __syncthreads();
                out[blockIdx.x * 16 + threadIdx.x] = s[threadIdx.x];
            }
        }
        """
        module, name, wrapper = build(source, block=(16,))
        choice = heuristic_tune(wrapper, A100)
        verify_module(module)
        # block coarsening is illegal here (barrier under block-dependent
        # control flow); the heuristic wanted it but must degrade
        assert choice.block_total == 1
        assert any("illegal" in reason for reason in choice.reasons)


class TestHeuristicTier:
    def test_program_tier(self):
        from repro.pipeline import Program
        from repro.runtime import GPURuntime
        program = Program(SMALL_BLOCK, arch=A100,
                          tier="polygeist-heuristic")
        runtime = GPURuntime(A100)
        data = runtime.to_device(np.ones(256, dtype=np.float32))
        out = runtime.malloc(256, np.float32)
        program.launch("k", 16, 16, [data, out], runtime=runtime)
        np.testing.assert_array_equal(runtime.to_host(out), 2.0)
        assert program.heuristic_choices


class TestLaneNormalization:
    """LANE_WARP_WIDTH is hoisted to repro.targets: the timing model and
    the heuristic must normalize active parallelism by the same 32-lane
    unit, including on wavefront-64 hardware (MI210)."""

    def test_model_and_heuristic_agree_on_mi210(self):
        from repro.autotune.heuristic import lane_warps
        from repro.simulator.model import KernelModel
        from repro.targets import LANE_WARP_WIDTH

        assert MI210.warp_size == 64
        module, name, wrapper = build(SMALL_BLOCK, block=(256,))
        loop = block_parallels(wrapper)[0]
        model = KernelModel(loop, MI210)
        features = model.features()
        # the model's lane-normalized warp count...
        assert features.active_warps == \
            model.occupancy.active_threads / LANE_WARP_WIDTH
        # ...is the same quantity the heuristic's deficit reasoning uses
        assert features.active_warps == lane_warps(model.occupancy)
        # and the divisor is the 32-lane unit, NOT the 64-wide wavefront
        assert LANE_WARP_WIDTH == 32.0
        assert features.active_warps == model.occupancy.active_threads / 32.0

    def test_lane_constant_single_sourced(self):
        import repro.autotune.heuristic as heuristic_mod
        import repro.simulator.model as model_mod
        import repro.targets as targets_mod

        assert heuristic_mod.LANE_WARP_WIDTH is targets_mod.LANE_WARP_WIDTH
        assert model_mod.LANE_WARP_WIDTH is targets_mod.LANE_WARP_WIDTH
