"""Memory buffers and access tracing for the interpreter."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..ir import FloatType, IndexType, IntegerType, MemRefType, Type


def dtype_for(type_: Type):
    """The numpy dtype used to store a scalar IR type."""
    if isinstance(type_, FloatType):
        return np.float32 if type_.width == 32 else np.float64
    if isinstance(type_, IndexType):
        return np.int64
    if isinstance(type_, IntegerType):
        if type_.width == 1:
            return np.bool_
        return {8: np.int8, 16: np.int16, 32: np.int32,
                64: np.int64}[type_.width]
    raise TypeError("no dtype for %s" % type_)


class MemoryBuffer:
    """A shaped buffer with row-major layout and bounds checking.

    ``space`` is the GPU address space ("global", "shared", or "local"); the
    tracer uses it to route accesses to the right part of the memory model.
    """

    _next_id = 0

    def __init__(self, shape: Sequence[int], element: Type,
                 space: str = "global",
                 data: Optional[np.ndarray] = None, name: str = ""):
        self.shape = tuple(int(d) for d in shape)
        self.element = element
        self.space = space
        self.name = name
        self.buffer_id = MemoryBuffer._next_id
        MemoryBuffer._next_id += 1
        dtype = dtype_for(element)
        if data is None:
            self.array = np.zeros(self.shape, dtype=dtype)
        else:
            data = np.asarray(data, dtype=dtype)
            if data.shape != self.shape:
                data = data.reshape(self.shape)
            self.array = np.array(data)  # defensive copy
        # row-major strides in elements
        self.strides = []
        stride = 1
        for extent in reversed(self.shape):
            self.strides.append(stride)
            stride *= extent
        self.strides.reverse()
        self.num_elements = int(stride)

    @classmethod
    def for_type(cls, type_: MemRefType,
                 dynamic_sizes: Sequence[int] = (), name: str = ""
                 ) -> "MemoryBuffer":
        shape = []
        dyn = list(dynamic_sizes)
        for extent in type_.shape:
            shape.append(dyn.pop(0) if extent < 0 else extent)
        return cls(shape, type_.element, type_.memory_space, name=name)

    def linear_index(self, indices: Sequence[int]) -> int:
        if len(indices) != len(self.shape):
            raise IndexError("rank mismatch accessing %s" % self)
        linear = 0
        for i, (index, extent, stride) in enumerate(
                zip(indices, self.shape, self.strides)):
            if not 0 <= index < extent:
                raise IndexError(
                    "out-of-bounds access to %s: index %d = %d not in "
                    "[0, %d)" % (self, i, index, extent))
            linear += int(index) * stride
        return linear

    def load(self, indices: Sequence[int]):
        return self.array.flat[self.linear_index(indices)]

    def store(self, indices: Sequence[int], value) -> None:
        self.array.flat[self.linear_index(indices)] = value

    @property
    def element_bytes(self) -> int:
        return self.array.dtype.itemsize

    def __repr__(self) -> str:
        label = self.name or ("buf%d" % self.buffer_id)
        return "<MemoryBuffer %s %sx%s, %s>" % (
            label, "x".join(map(str, self.shape)), self.element, self.space)


class Tracer:
    """Observer interface for memory traffic and synchronization.

    The default implementation does nothing; the simulator subclasses it.
    ``thread`` is the linear thread id within the block; ``block`` the linear
    block id — or None outside of GPU parallel loops.
    """

    def on_load(self, buffer: MemoryBuffer, linear: int, nbytes: int,
                block: Optional[int], thread: Optional[int],
                op=None) -> None:
        pass

    def on_store(self, buffer: MemoryBuffer, linear: int, nbytes: int,
                 block: Optional[int], thread: Optional[int],
                 op=None) -> None:
        pass

    def on_barrier(self, block: Optional[int]) -> None:
        pass

    def on_kernel_block_loop(self, op, num_blocks: int) -> None:
        """Called once per executed GPU block-level parallel loop, with the
        actual number of blocks. The runtime's timing tracer hooks this to
        charge simulated kernel time."""
        pass

    def on_op(self, op_name: str, block: Optional[int],
              thread: Optional[int]) -> None:
        pass
