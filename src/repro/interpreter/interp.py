"""The IR interpreter.

Execution is generator-based: every region executor is a generator that
yields at ``polygeist.barrier`` ops. A GPU thread loop creates one generator
per thread and runs them round-robin in *waves* — all threads run until they
hit the next barrier (or finish), the barrier's convergence is checked, and
the wave repeats. This realizes exactly the CUDA synchronization semantics
the paper's transformations must preserve, so transformed kernels can be
checked for bit-identical results against the original.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..dialects import arith as arith_d
from ..dialects import func as func_d
from ..dialects import gpu as gpu_d
from ..dialects import polygeist as polygeist_d
from ..dialects import scf as scf_d
from ..ir import (Block, FloatType, IndexType, IntegerType, MemRefType,
                  Module, Operation, Value)
from .memory import MemoryBuffer, Tracer, dtype_for


class InterpreterError(RuntimeError):
    pass


class ConvergenceError(InterpreterError):
    """Threads diverged around a barrier (undefined behaviour on a GPU)."""


def _trunc_div(a: int, b: int) -> int:
    """C-style integer division (truncation toward zero)."""
    if b == 0:
        raise InterpreterError("integer division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _trunc_rem(a: int, b: int) -> int:
    return a - _trunc_div(a, b) * b


def _unsigned_div(a: int, b: int) -> int:
    if b == 0:
        raise InterpreterError("integer division by zero")
    return a // b


def _unsigned_rem(a: int, b: int) -> int:
    if b == 0:
        raise InterpreterError("integer division by zero")
    return a % b


_INT_BINOPS = {
    "arith.addi": lambda a, b: a + b,
    "arith.subi": lambda a, b: a - b,
    "arith.muli": lambda a, b: a * b,
    "arith.divsi": _trunc_div,
    "arith.remsi": _trunc_rem,
    "arith.andi": lambda a, b: a & b,
    "arith.ori": lambda a, b: a | b,
    "arith.xori": lambda a, b: a ^ b,
    "arith.shli": lambda a, b: a << b,
    "arith.shrsi": lambda a, b: a >> b,
    "arith.minsi": min,
    "arith.maxsi": max,
}

#: ops that reinterpret their operands' bit pattern as unsigned; applying
#: them to the signed Python value is wrong as soon as an operand is
#: negative (shrui used to arithmetic-shift, divui/remui to floor-divide
#: the signed value)
_UINT_BINOPS = {
    "arith.divui": _unsigned_div,
    "arith.remui": _unsigned_rem,
    "arith.shrui": lambda a, b: a >> b,
    "arith.minui": min,
    "arith.maxui": max,
}

_FLOAT_BINOPS = {
    "arith.addf": lambda a, b: a + b,
    "arith.subf": lambda a, b: a - b,
    "arith.mulf": lambda a, b: a * b,
    "arith.divf": lambda a, b: a / b,
    "arith.remf": lambda a, b: np.fmod(a, b),
    "arith.minf": lambda a, b: min(a, b),
    "arith.maxf": lambda a, b: max(a, b),
}

_CMP = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}

_MATH_UNARY = {
    "math.sqrt": np.sqrt,
    "math.rsqrt": lambda x: 1.0 / np.sqrt(x),
    "math.exp": np.exp,
    "math.log": np.log,
    "math.sin": np.sin,
    "math.cos": np.cos,
    "math.tan": np.tan,
    "math.atan": np.arctan,
    "math.tanh": np.tanh,
    "math.absf": np.abs,
    "math.floor": np.floor,
    "math.ceil": np.ceil,
    "math.exp2": np.exp2,
    "math.log2": np.log2,
    "math.log10": np.log10,
}

_MATH_BINARY = {
    "math.powf": np.power,
    "math.atan2": np.arctan2,
    "math.fmod": np.fmod,
}


class _ExecContext:
    """Current GPU position, threaded through the executors."""

    __slots__ = ("block", "thread")

    def __init__(self):
        self.block: Optional[int] = None
        self.thread: Optional[int] = None


def _id_sample(ids: Sequence[int], limit: int = 4) -> str:
    """A compact, bounded rendering of a thread-id list for diagnostics."""
    shown = ", ".join(str(i) for i in ids[:limit])
    if len(ids) > limit:
        shown += ", ... (%d total)" % len(ids)
    return "[%s]" % shown


def _linearize(coords: Sequence[int], extents: Sequence[int]) -> int:
    """Linear id with dimension 0 fastest-varying (CUDA's x dimension)."""
    linear = 0
    stride = 1
    for coord, extent in zip(coords, extents):
        linear += coord * stride
        stride *= max(extent, 1)
    return linear


class Interpreter:
    """Executes functions of a module over numpy-backed buffers."""

    def __init__(self, module: Module, tracer: Optional[Tracer] = None,
                 alternative_selector: Optional[
                     Callable[[Operation], int]] = None,
                 max_steps: Optional[int] = None,
                 reverse_parallel: bool = False):
        self.module = module
        self.tracer = tracer or Tracer()
        self.alternative_selector = alternative_selector
        self.globals: Dict[str, MemoryBuffer] = {}
        self.max_steps = max_steps
        #: run block iterations and thread waves in reversed id order; a
        #: race-free kernel is insensitive to this, so differing results
        #: between the two orders expose an order dependence (data race)
        self.reverse_parallel = reverse_parallel
        self._steps = 0
        #: per-block execution plans (see :func:`_compile_block`); keyed by
        #: block identity, so the cache assumes the IR is not mutated while
        #: this interpreter is alive — true for every harness here, which
        #: builds a fresh Interpreter per (transformed) module
        self._plans: Dict[Block, list] = {}

    # -- public entry points ---------------------------------------------------

    def run_func(self, name: str, args: Sequence[object]) -> List[object]:
        """Run a ``func.func`` to completion; returns its results."""
        f = self.module.func(name)
        block = f.body_block()
        if len(args) != len(block.args):
            raise InterpreterError(
                "%s expects %d arguments, got %d" %
                (name, len(block.args), len(args)))
        env: Dict[Value, object] = dict(zip(block.args, args))
        return self._drain(self.exec_block(block, env, _ExecContext()))

    def run_block(self, block: Block, args: Sequence[object]
                  ) -> List[object]:
        """Run a block to completion, binding ``args`` to its arguments.

        Unlike :meth:`run_func`, the block need not belong to a function
        registered in the module — the validation harness uses this to
        execute detached clones of a launch wrapper.
        """
        if len(args) != len(block.args):
            raise InterpreterError(
                "block expects %d arguments, got %d" %
                (len(block.args), len(args)))
        env: Dict[Value, object] = dict(zip(block.args, args))
        return self._drain(self.exec_block(block, env, _ExecContext()))

    def global_buffer(self, name: str) -> MemoryBuffer:
        """The backing buffer of a ``memref.global`` (created on demand)."""
        if name not in self.globals:
            decl = self.module.global_(name)
            type_ = decl.attr("type")
            self.globals[name] = MemoryBuffer.for_type(type_, name=name)
        return self.globals[name]

    def _drain(self, gen) -> List[object]:
        try:
            token = next(gen)
        except StopIteration as stop:
            return list(stop.value or [])
        raise InterpreterError(
            "barrier %r reached outside a GPU thread loop" % token)

    # -- block / op execution ----------------------------------------------------

    def exec_block(self, block: Block, env: Dict[Value, object],
                   ctx: _ExecContext):
        """Generator executing a block; returns terminator operand values.

        Blocks are compiled once into a plan of maximal straight-line
        *runs* of regionless ops (each pre-resolved to its handler) plus
        individual control-flow entries. Thread loops and ``scf.for``
        bodies re-execute the same block many times, so the plan pays the
        name-dispatch cost once per block instead of once per dynamic op —
        this is what keeps ``tune --validate`` from spending its time in
        dictionary lookups per interpreted scalar.
        """
        plan = self._plans.get(block)
        if plan is None:
            plan = self._plans[block] = _compile_block(block)
        budget = self.max_steps
        for kind, op, payload in plan:
            if kind == _KIND_RUN:
                if budget is None:
                    for handler, run_op in payload:
                        handler(self, run_op, env, ctx)
                    self._steps += len(payload)
                else:
                    # exact per-op accounting: the budget must trip before
                    # the op past the limit executes, as in the slow path
                    for handler, run_op in payload:
                        self._steps += 1
                        if self._steps > budget:
                            raise InterpreterError(
                                "interpreter step budget exceeded")
                        handler(self, run_op, env, ctx)
                continue
            self._steps += 1
            if budget is not None and self._steps > budget:
                raise InterpreterError("interpreter step budget exceeded")
            if kind == _KIND_TERMINATOR:
                return [env[v] for v in op.operands]
            name = op.name
            if name == scf_d.FOR:
                yield from self._exec_for(op, env, ctx)
            elif name == scf_d.IF:
                yield from self._exec_if(op, env, ctx)
            elif name == scf_d.WHILE:
                yield from self._exec_while(op, env, ctx)
            elif name == scf_d.PARALLEL:
                yield from self._exec_parallel(op, env, ctx)
            elif name == polygeist_d.GPU_WRAPPER:
                yield from self.exec_block(op.body_block(), env, ctx)
            elif name == polygeist_d.BARRIER:
                self.tracer.on_barrier(ctx.block)
                yield op
            elif name == polygeist_d.ALTERNATIVES:
                index = 0
                if self.alternative_selector is not None:
                    index = self.alternative_selector(op)
                yield from self.exec_block(op.body_block(index), env, ctx)
            elif name == func_d.CALL:
                yield from self._exec_call(op, env, ctx)
            elif name == gpu_d.LAUNCH_FUNC:
                yield from self._exec_launch(op, env, ctx)
            else:
                raise InterpreterError("cannot interpret op %r" % name)
        return []

    # -- control flow ------------------------------------------------------------

    def _exec_for(self, op: Operation, env: Dict[Value, object],
                  ctx: _ExecContext):
        lb = int(env[op.operand(0)])
        ub = int(env[op.operand(1)])
        step = int(env[op.operand(2)])
        if step <= 0:
            raise InterpreterError("scf.for needs a positive step")
        iters = [env[v] for v in op.operands[3:]]
        block = op.body_block()
        for i in range(lb, ub, step):
            env[block.arg(0)] = i
            for arg, value in zip(block.args[1:], iters):
                env[arg] = value
            iters = yield from self.exec_block(block, env, ctx)
        for result, value in zip(op.results, iters):
            env[result] = value

    def _exec_if(self, op: Operation, env: Dict[Value, object],
                 ctx: _ExecContext):
        cond = bool(env[op.operand(0)])
        block = op.body_block(0) if cond else op.body_block(1)
        values = yield from self.exec_block(block, env, ctx)
        for result, value in zip(op.results, values):
            env[result] = value

    def _exec_while(self, op: Operation, env: Dict[Value, object],
                    ctx: _ExecContext):
        inits = [env[v] for v in op.operands]
        before, after = op.body_block(0), op.body_block(1)
        while True:
            for arg, value in zip(before.args, inits):
                env[arg] = value
            cond_values = yield from self.exec_block(before, env, ctx)
            cond, forwarded = cond_values[0], cond_values[1:]
            if not cond:
                for result, value in zip(op.results, forwarded):
                    env[result] = value
                return
            for arg, value in zip(after.args, forwarded):
                env[arg] = value
            inits = yield from self.exec_block(after, env, ctx)

    # -- parallel execution ----------------------------------------------------

    def _parallel_space(self, op: Operation, env: Dict[Value, object]):
        n = scf_d.parallel_num_dims(op)
        lbs = [int(env[v]) for v in scf_d.parallel_lower_bounds(op)]
        ubs = [int(env[v]) for v in scf_d.parallel_upper_bounds(op)]
        steps = [int(env[v]) for v in scf_d.parallel_steps(op)]
        ranges = [range(lbs[d], ubs[d], steps[d]) for d in range(n)]
        extents = [len(r) for r in ranges]
        # dimension 0 is x (fastest varying): make it innermost in product
        positions = [tuple(reversed(p)) for p in
                     itertools.product(*[range(e) for e in reversed(extents)])]
        coords = [tuple(ranges[d][p[d]] for d in range(n))
                  for p in positions]
        space = list(zip(coords, positions))
        if self.reverse_parallel:
            space.reverse()
        return space, extents

    def _exec_parallel(self, op: Operation, env: Dict[Value, object],
                       ctx: _ExecContext):
        kind = scf_d.parallel_kind(op)
        if kind == scf_d.KIND_THREADS:
            yield from ()  # make this a generator even on the no-yield path
            self._exec_threads(op, env, ctx)
        else:
            yield from self._exec_sequential_parallel(op, env, ctx, kind)

    def _exec_sequential_parallel(self, op: Operation,
                                  env: Dict[Value, object],
                                  ctx: _ExecContext, kind: Optional[str]):
        space, extents = self._parallel_space(op, env)
        block = op.body_block()
        is_blocks = kind == scf_d.KIND_BLOCKS
        if is_blocks:
            self.tracer.on_kernel_block_loop(op, len(space))
        for coord, position in space:
            iter_env = dict(env)
            for arg, value in zip(block.args, coord):
                iter_env[arg] = value
            if is_blocks:
                saved = ctx.block
                ctx.block = _linearize(position, extents)
                yield from self.exec_block(block, iter_env, ctx)
                ctx.block = saved
            else:
                yield from self.exec_block(block, iter_env, ctx)

    def _exec_threads(self, op: Operation, env: Dict[Value, object],
                      ctx: _ExecContext) -> None:
        """Run all thread iterations concurrently with barrier waves."""
        space, extents = self._parallel_space(op, env)
        block = op.body_block()

        def thread_gen(coord, linear):
            thread_env = dict(env)
            for arg, value in zip(block.args, coord):
                thread_env[arg] = value
            thread_ctx = _ExecContext()
            thread_ctx.block = ctx.block
            thread_ctx.thread = linear
            return self.exec_block(block, thread_env, thread_ctx)

        active = [(linear, thread_gen(coord, linear))
                  for coord, position in space
                  for linear in (_linearize(position, extents),)]
        while active:
            suspended = []
            barriers = []
            finished = []
            for linear, gen in active:
                try:
                    token = next(gen)
                except StopIteration:
                    finished.append(linear)
                    continue
                suspended.append((linear, gen))
                barriers.append(token)
            if suspended and finished:
                raise ConvergenceError(
                    "threads %s exited while %d (e.g. thread %d) are "
                    "waiting at a barrier — barrier under thread-divergent "
                    "control flow" %
                    (_id_sample(finished), len(suspended), suspended[0][0]))
            if suspended:
                first = barriers[0]
                for (linear, _), token in zip(suspended[1:], barriers[1:]):
                    if token is not first:
                        raise ConvergenceError(
                            "thread %d reached a different barrier than "
                            "thread %d" % (linear, suspended[0][0]))
            active = suspended

    # -- calls and launches --------------------------------------------------------

    def _exec_call(self, op: Operation, env: Dict[Value, object],
                   ctx: _ExecContext):
        callee = self.module.func(op.attr("callee"))
        block = callee.body_block()
        call_env: Dict[Value, object] = dict(
            zip(block.args, (env[v] for v in op.operands)))
        results = yield from self.exec_block(block, call_env, ctx)
        for result, value in zip(op.results, results):
            env[result] = value

    def _exec_launch(self, op: Operation, env: Dict[Value, object],
                     ctx: _ExecContext):
        """Execute an outlined kernel referenced by gpu.launch_func."""
        kernel_name = op.attr(gpu_d.KERNEL_ATTR)
        kernel = self.module.func(kernel_name)
        block = kernel.body_block()
        values = [env[v] for v in op.operands]
        call_env: Dict[Value, object] = dict(zip(block.args, values))
        yield from self.exec_block(block, call_env, ctx)


# -- simple (regionless) op handlers ------------------------------------------------


def _coerce(value, type_):
    if isinstance(type_, FloatType):
        return dtype_for(type_)(value)
    if isinstance(type_, IntegerType) and type_.width == 1:
        return bool(value)
    if isinstance(type_, (IntegerType, IndexType)):
        return int(value)
    return value


def _h_constant(interp, op, env, ctx):
    env[op.result()] = _coerce(op.attr("value"), op.result().type)


def _h_int_binary(fn):
    def handler(interp, op, env, ctx):
        env[op.result()] = fn(int(env[op.operand(0)]),
                              int(env[op.operand(1)]))
    return handler


def _type_width(type_) -> int:
    return type_.width if isinstance(type_, IntegerType) else 64


def _h_uint_binary(fn):
    def handler(interp, op, env, ctx):
        width = _type_width(op.operand(0).type)
        mask = (1 << width) - 1
        result = fn(int(env[op.operand(0)]) & mask,
                    int(env[op.operand(1)]) & mask) & mask
        # signless ints carry a bit pattern: wrap back to the signed
        # representation so stores and signed consumers see the same bits
        if result >= 1 << (width - 1):
            result -= 1 << width
        env[op.result()] = result
    return handler


def _h_float_binary(fn):
    def handler(interp, op, env, ctx):
        env[op.result()] = fn(env[op.operand(0)], env[op.operand(1)])
    return handler


def _h_cmpi(interp, op, env, ctx):
    fn = _CMP[op.attr("predicate")]
    env[op.result()] = bool(fn(int(env[op.operand(0)]),
                               int(env[op.operand(1)])))


def _h_cmpf(interp, op, env, ctx):
    fn = _CMP[op.attr("predicate")]
    env[op.result()] = bool(fn(env[op.operand(0)], env[op.operand(1)]))


def _h_select(interp, op, env, ctx):
    env[op.result()] = env[op.operand(1)] if env[op.operand(0)] \
        else env[op.operand(2)]


def _h_negf(interp, op, env, ctx):
    env[op.result()] = -env[op.operand(0)]


def _h_cast(interp, op, env, ctx):
    env[op.result()] = _coerce(env[op.operand(0)], op.result().type)


def _h_math_unary(fn):
    def handler(interp, op, env, ctx):
        value = env[op.operand(0)]
        result = fn(value)
        # numpy keeps the dtype for float32 scalars; be defensive anyway
        env[op.result()] = _coerce(result, op.result().type)
    return handler


def _h_math_binary(fn):
    def handler(interp, op, env, ctx):
        result = fn(env[op.operand(0)], env[op.operand(1)])
        env[op.result()] = _coerce(result, op.result().type)
    return handler


def _h_alloc(interp, op, env, ctx):
    type_ = op.result().type
    sizes = [int(env[v]) for v in op.operands]
    env[op.result()] = MemoryBuffer.for_type(
        type_, sizes, name=op.result().name_hint)


def _h_dealloc(interp, op, env, ctx):
    pass


def _h_load(interp, op, env, ctx):
    buffer = env[op.operand(0)]
    indices = [int(env[v]) for v in op.operands[1:]]
    value = buffer.load(indices)
    interp.tracer.on_load(buffer, buffer.linear_index(indices),
                          buffer.element_bytes, ctx.block, ctx.thread,
                          op=op)
    env[op.result()] = value


def _h_store(interp, op, env, ctx):
    buffer = env[op.operand(1)]
    indices = [int(env[v]) for v in op.operands[2:]]
    buffer.store(indices, env[op.operand(0)])
    interp.tracer.on_store(buffer, buffer.linear_index(indices),
                           buffer.element_bytes, ctx.block, ctx.thread,
                           op=op)


def _h_atomic(interp, op, env, ctx):
    buffer = env[op.operand(1)]
    indices = [int(env[v]) for v in op.operands[2:]]
    old = buffer.load(indices)
    operand = env[op.operand(0)]
    kind = op.attr("kind")
    if kind in ("addf", "addi"):
        new = old + operand
    elif kind in ("maxf", "maxi"):
        new = max(old, operand)
    elif kind in ("minf", "mini"):
        new = min(old, operand)
    elif kind == "exchange":
        new = operand
    else:
        raise InterpreterError("unknown atomic kind %r" % kind)
    buffer.store(indices, new)
    linear = buffer.linear_index(indices)
    interp.tracer.on_load(buffer, linear, buffer.element_bytes,
                          ctx.block, ctx.thread, op=op)
    interp.tracer.on_store(buffer, linear, buffer.element_bytes,
                           ctx.block, ctx.thread, op=op)
    env[op.result()] = old


def _h_dim(interp, op, env, ctx):
    buffer = env[op.operand(0)]
    env[op.result()] = buffer.shape[int(env[op.operand(1)])]


def _h_get_global(interp, op, env, ctx):
    env[op.result()] = interp.global_buffer(op.attr("name"))


_SIMPLE = {
    "arith.constant": _h_constant,
    "arith.cmpi": _h_cmpi,
    "arith.cmpf": _h_cmpf,
    "arith.select": _h_select,
    "arith.negf": _h_negf,
    "memref.alloc": _h_alloc,
    "memref.alloca": _h_alloc,
    "memref.dealloc": _h_dealloc,
    "memref.load": _h_load,
    "memref.store": _h_store,
    "memref.atomic_rmw": _h_atomic,
    "memref.dim": _h_dim,
    "memref.get_global": _h_get_global,
}
for _name in arith_d.CASTS:
    _SIMPLE[_name] = _h_cast
for _name, _fn in _INT_BINOPS.items():
    _SIMPLE[_name] = _h_int_binary(_fn)
for _name, _fn in _UINT_BINOPS.items():
    _SIMPLE[_name] = _h_uint_binary(_fn)
for _name, _fn in _FLOAT_BINOPS.items():
    _SIMPLE[_name] = _h_float_binary(_fn)
for _name, _fn in _MATH_UNARY.items():
    _SIMPLE[_name] = _h_math_unary(_fn)
for _name, _fn in _MATH_BINARY.items():
    _SIMPLE[_name] = _h_math_binary(_fn)


# -- block plans ---------------------------------------------------------------

#: plan entry kinds: a run of pre-resolved simple handlers, a block
#: terminator (its operand values are the block's results), or a single
#: control-flow op dispatched by name as before
_KIND_RUN = 0
_KIND_TERMINATOR = 1
_KIND_CONTROL = 2

_TERMINATORS = (scf_d.YIELD, func_d.RETURN, scf_d.CONDITION)


def _compile_block(block: Block) -> list:
    """Segment a block into (kind, op, payload) plan entries.

    Consecutive regionless ops become one ``_KIND_RUN`` entry whose
    payload is a list of ``(handler, op)`` pairs; everything else gets its
    own entry and is interpreted exactly as the un-compiled loop did.
    """
    plan: list = []
    run: Optional[list] = None
    for op in block.ops:
        handler = _SIMPLE.get(op.name)
        if handler is not None:
            if run is None:
                run = []
                plan.append((_KIND_RUN, None, run))
            run.append((handler, op))
            continue
        run = None
        kind = _KIND_TERMINATOR if op.name in _TERMINATORS \
            else _KIND_CONTROL
        plan.append((kind, op, None))
    return plan


def run_module(module: Module, func_name: str, args: Sequence[object],
               tracer: Optional[Tracer] = None,
               alternative_selector=None) -> List[object]:
    """Convenience wrapper: interpret ``func_name`` of ``module``."""
    interp = Interpreter(module, tracer=tracer,
                         alternative_selector=alternative_selector)
    return interp.run_func(func_name, args)
