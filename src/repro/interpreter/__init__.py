"""Functional execution of the IR over numpy buffers.

The interpreter gives the reproduction its ground truth: every benchmark and
every transformed kernel variant is executed here and compared against a CPU
reference, mirroring the paper's correctness methodology (§VII-A). It is also
the engine behind the simulator's trace fidelity: an optional
:class:`Tracer` observes every memory access and barrier.
"""

from .memory import MemoryBuffer, Tracer
from .interp import (ConvergenceError, InterpreterError, Interpreter,
                     run_module)

__all__ = ["ConvergenceError", "Interpreter", "InterpreterError",
           "MemoryBuffer", "Tracer", "run_module"]
