"""Target GPU models and the simulated platform-specific backend.

Stands in for the CUDA/ROCm backends of the paper: architecture parameter
sets for the four evaluation GPUs (Table I), a register-usage estimator (the
ptxas-feedback stage of §VI), and an occupancy calculator (§II-A3).
"""

from .arch import (A100, A4000, ALL_ARCHS, GPUArchitecture, LANE_WARP_WIDTH,
                   MI210, RX6800, arch_by_name)
from .lowering import LinearInstr, linearize_thread_body
from .occupancy import Occupancy, compute_occupancy
from .registers import (RegisterEstimate, estimate_registers,
                        register_estimate_cache)

__all__ = [
    "A100", "A4000", "ALL_ARCHS", "GPUArchitecture", "LANE_WARP_WIDTH",
    "LinearInstr", "MI210", "Occupancy", "RX6800", "RegisterEstimate",
    "arch_by_name", "compute_occupancy", "estimate_registers",
    "linearize_thread_body", "register_estimate_cache",
]
