"""Occupancy calculation (§II-A3 of the paper).

Given a kernel's resource footprint — threads per block, registers per
thread, shared memory per block — and an architecture, compute how many
blocks fit on one SM and the resulting occupancy
``active_threads / max_threads_per_SM``, identifying the limiting resource.
"""

from __future__ import annotations

from dataclasses import dataclass

from .arch import GPUArchitecture


@dataclass
class Occupancy:
    blocks_per_sm: int
    active_threads: int
    occupancy: float
    limiter: str        # "threads", "registers", "shared", "blocks", "none"

    @property
    def active_warps(self) -> int:
        return self.active_threads  # in thread units; warps = /warp_size


def compute_occupancy(arch: GPUArchitecture, threads_per_block: int,
                      registers_per_thread: int,
                      shared_per_block: int) -> Occupancy:
    """CUDA-occupancy-calculator-style resource fitting."""
    if threads_per_block <= 0:
        raise ValueError("threads_per_block must be positive")
    if threads_per_block > arch.max_threads_per_block:
        return Occupancy(0, 0, 0.0, "threads")

    # warp-granular thread allocation
    warp = arch.warp_size
    warps_per_block = -(-threads_per_block // warp)
    alloc_threads = warps_per_block * warp

    limits = {}
    limits["threads"] = arch.max_threads_per_sm // alloc_threads
    limits["blocks"] = arch.max_blocks_per_sm
    regs_per_block = registers_per_thread * alloc_threads
    limits["registers"] = (arch.registers_per_sm // regs_per_block
                           if regs_per_block > 0 else arch.max_blocks_per_sm)
    if shared_per_block > 0:
        if shared_per_block > arch.shared_mem_per_block:
            return Occupancy(0, 0, 0.0, "shared")
        limits["shared"] = arch.shared_mem_per_sm // shared_per_block
    else:
        limits["shared"] = arch.max_blocks_per_sm

    blocks = min(limits.values())
    if blocks <= 0:
        limiter = min(limits, key=limits.get)
        return Occupancy(0, 0, 0.0, limiter)
    limiter = min(limits, key=lambda k: (limits[k], _PRIORITY[k]))
    if blocks == arch.max_blocks_per_sm and limiter != "blocks":
        limiter = "blocks" if limits["blocks"] == blocks else limiter
    active = blocks * alloc_threads
    occupancy = min(1.0, active / arch.max_threads_per_sm)
    if occupancy >= 1.0:
        limiter = "none"
    return Occupancy(blocks, active, occupancy, limiter)


_PRIORITY = {"threads": 0, "registers": 1, "shared": 2, "blocks": 3}
