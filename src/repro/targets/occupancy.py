"""Occupancy calculation (§II-A3 of the paper).

Given a kernel's resource footprint — threads per block, registers per
thread, shared memory per block — and an architecture, compute how many
blocks fit on one SM and the resulting occupancy
``active_threads / max_threads_per_SM``, identifying the limiting resource.
"""

from __future__ import annotations

from dataclasses import dataclass

from .arch import GPUArchitecture


@dataclass
class Occupancy:
    blocks_per_sm: int
    active_threads: int
    occupancy: float
    limiter: str        # "threads", "registers", "shared", "blocks", "none"
    warp_size: int = 32

    @property
    def active_warps(self) -> int:
        return self.active_threads // self.warp_size


def compute_occupancy(arch: GPUArchitecture, threads_per_block: int,
                      registers_per_thread: int,
                      shared_per_block: int) -> Occupancy:
    """CUDA-occupancy-calculator-style resource fitting."""
    if threads_per_block <= 0:
        raise ValueError("threads_per_block must be positive")
    warp = arch.warp_size
    if threads_per_block > arch.max_threads_per_block:
        return Occupancy(0, 0, 0.0, "threads", warp)

    # warp-granular thread allocation
    warps_per_block = -(-threads_per_block // warp)
    alloc_threads = warps_per_block * warp

    # per-resource block caps; resources the kernel does not consume get no
    # entry, so they can never be named as the limiter
    limits = {}
    limits["threads"] = arch.max_threads_per_sm // alloc_threads
    limits["blocks"] = arch.max_blocks_per_sm
    regs_per_block = registers_per_thread * alloc_threads
    if regs_per_block > 0:
        limits["registers"] = arch.registers_per_sm // regs_per_block
    if shared_per_block > 0:
        if shared_per_block > arch.shared_mem_per_block:
            return Occupancy(0, 0, 0.0, "shared", warp)
        limits["shared"] = arch.shared_mem_per_sm // shared_per_block

    blocks = min(limits.values())
    limiter = min((k for k, v in limits.items() if v == blocks),
                  key=_PRIORITY.get)
    if blocks <= 0:
        return Occupancy(0, 0, 0.0, limiter, warp)
    active = blocks * alloc_threads
    occupancy = min(1.0, active / arch.max_threads_per_sm)
    if occupancy >= 1.0:
        limiter = "none"
    return Occupancy(blocks, active, occupancy, limiter, warp)


#: tie-break between resources hitting the same block cap: report the one a
#: tuner can most directly act on
_PRIORITY = {"threads": 0, "registers": 1, "shared": 2, "blocks": 3}
