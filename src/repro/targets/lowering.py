"""Device lowering: flatten a thread body into a linear virtual-ISA stream.

The platform-specific backend of the paper (ptxas / AMD) consumes lowered
kernels; here the equivalent is a linearized instruction list with loop span
markers, consumed by the register estimator (live intervals) and available
to the timing model (instruction mix).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..dialects import arith
from ..ir import (Block, FloatType, IndexType, IntegerType, MemRefType,
                  Operation, OpResult, Type, Value)


@dataclass
class LinearInstr:
    """One instruction in the linearized stream."""

    index: int
    op: Operation
    kind: str                   # "alu", "fpu32", "fpu64", "special",
    #                             "load", "store", "barrier", "branch",
    #                             "loop_begin", "loop_end", "const"
    #: nesting depth of enclosing loops (for weighting)
    loop_depth: int


@dataclass
class Linearized:
    """A flattened thread body."""

    instrs: List[LinearInstr] = field(default_factory=list)
    #: per-value definition index
    def_index: Dict[Value, int] = field(default_factory=dict)
    #: per-value last-use index (extended to loop ends for loop-crossing)
    last_use: Dict[Value, int] = field(default_factory=dict)
    #: (start, end) spans of loop bodies
    loop_spans: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def length(self) -> int:
        return len(self.instrs)


def _kind_of(op: Operation) -> Optional[str]:
    name = op.name
    if name == "arith.constant":
        return "const"
    if name in ("memref.load",):
        return "load"
    if name in ("memref.store",):
        return "store"
    if name == "memref.atomic_rmw":
        return "load"
    if name == "polygeist.barrier":
        return "barrier"
    if name.startswith("math."):
        return "special"
    if name.startswith("arith."):
        width = None
        probe = op.results[0].type if op.results else (
            op.operand(0).type if op.num_operands else None)
        if isinstance(probe, FloatType):
            return "fpu64" if probe.width == 64 else "fpu32"
        return "alu"
    if name in ("memref.alloca", "memref.alloc", "memref.dim",
                "memref.get_global", "memref.dealloc"):
        return "alu"
    return None


def _value_registers(value: Value) -> int:
    """32-bit registers needed to hold a value (0 when rematerializable)."""
    if isinstance(value, OpResult) and \
            value.owner.name == "arith.constant":
        return 0  # immediates are rematerialized
    type_ = value.type
    if isinstance(type_, FloatType):
        return 2 if type_.width == 64 else 1
    if isinstance(type_, IndexType):
        return 2
    if isinstance(type_, IntegerType):
        return 2 if type_.width == 64 else 1
    if isinstance(type_, MemRefType):
        return 2  # a pointer
    return 1


def linearize_thread_body(thread_parallel: Operation) -> Linearized:
    """Flatten the body of a GPU thread loop into :class:`Linearized`."""
    lin = Linearized()

    def note_use(value: Value, index: int) -> None:
        if value in lin.last_use:
            lin.last_use[value] = max(lin.last_use[value], index)
        else:
            lin.last_use[value] = index

    def emit(op: Operation, kind: str, depth: int) -> None:
        index = len(lin.instrs)
        lin.instrs.append(LinearInstr(index, op, kind, depth))
        for operand in op.operands:
            note_use(operand, index)
        for result in op.results:
            lin.def_index[result] = index

    def walk_block(block: Block, depth: int) -> None:
        for op in block.ops:
            name = op.name
            if name in ("scf.yield", "scf.condition"):
                index = len(lin.instrs)
                for operand in op.operands:
                    note_use(operand, index)
                continue
            if name in ("scf.for", "scf.while", "scf.parallel"):
                start = len(lin.instrs)
                emit(op, "loop_begin", depth)
                for arg_source in op.operands:
                    note_use(arg_source, start)
                for region in op.regions:
                    for nested in region.blocks:
                        for arg in nested.args:
                            lin.def_index[arg] = start
                        walk_block(nested, depth + 1)
                end = len(lin.instrs)
                lin.instrs.append(LinearInstr(end, op, "loop_end", depth))
                lin.loop_spans.append((start, end))
                for result in op.results:
                    lin.def_index[result] = end
                continue
            if name == "scf.if":
                emit(op, "branch", depth)
                for region in op.regions:
                    for nested in region.blocks:
                        walk_block(nested, depth)
                end = len(lin.instrs)
                for result in op.results:
                    lin.def_index[result] = end
                continue
            if name == "polygeist.alternatives":
                walk_block(op.body_block(0), depth)
                continue
            kind = _kind_of(op)
            if kind is None:
                kind = "alu"
            emit(op, kind, depth)

    walk_block(thread_parallel.body_block(), 0)

    # extend lifetimes across loop back-edges: any value defined before a
    # loop and used inside it stays live until the loop's end. Values are
    # bucketed by their current last use so each span only inspects the
    # indices it covers (spans are in post-order, so by the time an outer
    # span is processed, inner-span extensions have already landed in its
    # range — the same cascade the naive spans × values scan produces).
    if lin.loop_spans:
        buckets: Dict[int, List[Value]] = {}
        for value, use in lin.last_use.items():
            buckets.setdefault(use, []).append(value)
        def_index = lin.def_index
        last_use = lin.last_use
        for start, end in lin.loop_spans:
            for use in range(start, end):  # use == end extends to itself
                values = buckets.get(use)
                if not values:
                    continue
                kept = []
                for value in values:
                    if def_index.get(value, 0) < start:
                        last_use[value] = end
                        buckets.setdefault(end, []).append(value)
                    else:
                        kept.append(value)
                buckets[use] = kept
    return lin
