"""Register-usage estimation — the simulated ptxas feedback stage (§VI).

The paper compiles every alternative with the platform backend and reads
back register counts and spill reports; alternatives that start spilling are
discarded because GPU spills go to local memory that is "several orders of
magnitude slower than registers". Here the backend is a live-interval
analysis over the linearized thread body: the register count is the maximum
number of simultaneously-live 32-bit register units plus a fixed overhead.
It is deliberately simple but preserves the property the pipeline relies
on: coarsening multiplies live values, so the estimate grows with the
factor and eventually crosses the spill threshold.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir import Operation
from .arch import GPUArchitecture
from .lowering import Linearized, _value_registers, linearize_thread_body

#: registers every thread needs regardless of the kernel body
BASE_REGISTERS = 10

#: active memo for :func:`estimate_registers`, keyed by (op, arch name);
#: ``None`` outside :func:`register_estimate_cache` scopes
_ESTIMATE_CACHE: Optional[Dict[Tuple[Operation, str],
                               "RegisterEstimate"]] = None


@contextmanager
def register_estimate_cache():
    """Memoize :func:`estimate_registers` by operation identity.

    Linearizing a thread body dominates the estimate's cost, and one
    tuning run asks the same question twice per alternative: once in the
    spill filter, once when the timing model characterizes the survivor.
    The cache is only sound while the analyzed IR is not mutated, so it
    is scoped: entries live for the dynamic extent of the ``with`` block
    (keys hold strong references, so operation identity cannot be
    recycled underneath the cache). Nested scopes share the outermost
    cache.
    """
    global _ESTIMATE_CACHE
    outer = _ESTIMATE_CACHE
    if outer is None:
        _ESTIMATE_CACHE = {}
    try:
        yield
    finally:
        if outer is None:
            _ESTIMATE_CACHE = None


@dataclass
class RegisterEstimate:
    """Backend feedback for one kernel variant."""

    registers_per_thread: int
    spilled_registers: int
    max_live: int

    @property
    def spills(self) -> bool:
        return self.spilled_registers > 0


def estimate_registers(thread_parallel: Operation,
                       arch: GPUArchitecture,
                       linearized: Optional[Linearized] = None
                       ) -> RegisterEstimate:
    """Estimate registers/thread for a thread loop on ``arch``."""
    cache = _ESTIMATE_CACHE if linearized is None else None
    if cache is not None:
        key = (thread_parallel, arch.name)
        hit = cache.get(key)
        if hit is not None:
            return hit
    lin = linearized or linearize_thread_body(thread_parallel)
    events = []  # (index, +units) and (index, -units)
    for value, definition in lin.def_index.items():
        last = lin.last_use.get(value)
        if last is None or last < definition:
            continue
        units = _value_registers(value)
        if units == 0:
            continue
        events.append((definition, units))
        events.append((last + 1, -units))
    events.sort()
    live = 0
    max_live = 0
    for _, delta in events:
        live += delta
        max_live = max(max_live, live)
    registers = max_live + BASE_REGISTERS
    limit = arch.max_registers_per_thread
    spilled = max(0, registers - limit)
    estimate = RegisterEstimate(registers_per_thread=min(registers, limit),
                                spilled_registers=spilled,
                                max_live=max_live)
    if cache is not None:
        cache[key] = estimate
    return estimate
