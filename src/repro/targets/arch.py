"""GPU architecture models (Table I of the paper).

These are the parameter sets the simulator and occupancy calculator consume.
Values come from Table I where the paper lists them and from public vendor
documentation otherwise. The AMD models carry the paper's two documented
behavioural quirks: 64-wide wavefronts and LDS→global offloading for kernels
with extreme shared-memory-per-thread ratios (§VII-D2, the ``nw`` anomaly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Latency-hiding parallelism is measured in 32-thread warp EQUIVALENTS
#: everywhere (simulator model and coarsening heuristic alike): a 64-wide
#: AMD wavefront issues per-lane, so it hides as much latency as two
#: 32-thread warps. Normalize ``active_threads`` by THIS constant — never
#: by ``arch.warp_size`` — or wavefront-64 targets (MI210, RX6800) would
#: see half the parallelism they really have.
LANE_WARP_WIDTH = 32.0


@dataclass(frozen=True)
class GPUArchitecture:
    """Parameters of one GPU target."""

    name: str
    vendor: str                     # "nvidia" | "amd"
    compute_capability: str
    num_sms: int
    warp_size: int
    max_threads_per_sm: int
    max_threads_per_block: int
    max_blocks_per_sm: int
    registers_per_sm: int           # 32-bit registers
    max_registers_per_thread: int
    shared_mem_per_sm: int          # bytes
    shared_mem_per_block: int       # bytes
    fp32_tflops: float
    fp64_tflops: float
    memory_bandwidth_gbs: float
    global_memory_gb: float
    l2_bytes: int
    l1_bytes_per_sm: int
    clock_ghz: float
    #: bytes of global memory transferred per coalesced transaction
    transaction_bytes: int = 32
    #: shared memory banks (4-byte wide)
    shared_banks: int = 32
    #: AMD quirk: shared/thread ratio (bytes) above which the backend
    #: offloads LDS to global memory (None = never, §VII-D2)
    lds_offload_bytes_per_thread: Optional[int] = None
    #: relative slowdown of shared memory once offloaded to global
    lds_offload_penalty: float = 6.0

    @property
    def is_amd(self) -> bool:
        return self.vendor == "amd"

    @property
    def fp32_lanes_per_sm(self) -> float:
        """FP32 FMA lanes per SM derived from peak TFLOPs (2 flops/FMA)."""
        return self.fp32_tflops * 1e12 / (2.0 * self.clock_ghz * 1e9 *
                                          self.num_sms)

    @property
    def fp64_ratio(self) -> float:
        """FP64 throughput as a fraction of FP32."""
        return self.fp64_tflops / self.fp32_tflops

    def peak_bandwidth_bytes(self) -> float:
        return self.memory_bandwidth_gbs * 1e9

    def peak_flops(self, dtype: str = "f32") -> float:
        """Peak FLOP/s for ``dtype`` ("f32" or "f64")."""
        if dtype == "f64":
            return self.fp64_tflops * 1e12
        if dtype == "f32":
            return self.fp32_tflops * 1e12
        raise ValueError("dtype must be 'f32' or 'f64', not %r" % dtype)

    def ridge_intensity(self, dtype: str = "f32") -> float:
        """Roofline ridge point in FLOP/byte: the arithmetic intensity at
        which peak compute and peak DRAM bandwidth balance. Kernels below
        it are bandwidth-limited, above it compute-limited."""
        return self.peak_flops(dtype) / self.peak_bandwidth_bytes()

    def describe_row(self) -> Dict[str, object]:
        """One Table-I-style row."""
        return {
            "GPU": self.name,
            "Compute Capability": self.compute_capability,
            "SMs": self.num_sms,
            "FLOPs (f64)": "%.2fT" % self.fp64_tflops,
            "FLOPs (f32)": "%.2fT" % self.fp32_tflops,
            "Memory Bandwidth": "%d GB/s" % self.memory_bandwidth_gbs,
            "Global Memory": "%d GB" % self.global_memory_gb,
            "L2 Cache": "%d MB" % (self.l2_bytes // (1024 * 1024)),
            "L1 Cache (Per SM)": "%d KB" % (self.l1_bytes_per_sm // 1024),
        }


# -- Table I instances -----------------------------------------------------------

A4000 = GPUArchitecture(
    name="NVIDIA A4000", vendor="nvidia", compute_capability="8.6",
    num_sms=48, warp_size=32,
    max_threads_per_sm=1536, max_threads_per_block=1024,
    max_blocks_per_sm=16,
    registers_per_sm=65536, max_registers_per_thread=255,
    shared_mem_per_sm=100 * 1024, shared_mem_per_block=48 * 1024,
    fp32_tflops=19.17, fp64_tflops=0.60,
    memory_bandwidth_gbs=445.0, global_memory_gb=16,
    l2_bytes=4 * 1024 * 1024, l1_bytes_per_sm=128 * 1024,
    clock_ghz=1.56,
)

RX6800 = GPUArchitecture(
    name="AMD RX6800", vendor="amd", compute_capability="gfx1030",
    num_sms=60, warp_size=64,
    max_threads_per_sm=2048, max_threads_per_block=1024,
    max_blocks_per_sm=16,
    registers_per_sm=65536, max_registers_per_thread=256,
    shared_mem_per_sm=64 * 1024, shared_mem_per_block=64 * 1024,
    fp32_tflops=16.17, fp64_tflops=1.01,
    memory_bandwidth_gbs=512.0, global_memory_gb=16,
    l2_bytes=4 * 1024 * 1024, l1_bytes_per_sm=16 * 1024,
    clock_ghz=2.10,
    lds_offload_bytes_per_thread=128,
)

A100 = GPUArchitecture(
    name="NVIDIA A100", vendor="nvidia", compute_capability="8.0",
    num_sms=108, warp_size=32,
    max_threads_per_sm=2048, max_threads_per_block=1024,
    max_blocks_per_sm=32,
    registers_per_sm=65536, max_registers_per_thread=255,
    shared_mem_per_sm=164 * 1024, shared_mem_per_block=48 * 1024,
    fp32_tflops=19.49, fp64_tflops=9.75,
    memory_bandwidth_gbs=1555.0, global_memory_gb=40,
    l2_bytes=40 * 1024 * 1024, l1_bytes_per_sm=192 * 1024,
    clock_ghz=1.41,
)

MI210 = GPUArchitecture(
    name="AMD MI210", vendor="amd", compute_capability="gfx90a",
    num_sms=104, warp_size=64,
    max_threads_per_sm=2048, max_threads_per_block=1024,
    max_blocks_per_sm=16,
    registers_per_sm=65536, max_registers_per_thread=256,
    shared_mem_per_sm=64 * 1024, shared_mem_per_block=64 * 1024,
    fp32_tflops=22.60, fp64_tflops=22.60,
    memory_bandwidth_gbs=1638.0, global_memory_gb=64,
    l2_bytes=16 * 1024 * 1024, l1_bytes_per_sm=16 * 1024,
    clock_ghz=1.70,
    lds_offload_bytes_per_thread=128,
)

ALL_ARCHS: Tuple[GPUArchitecture, ...] = (A4000, RX6800, A100, MI210)


def arch_by_name(name: str) -> GPUArchitecture:
    """Look up an architecture by (a substring of) its name."""
    lowered = name.lower()
    for arch in ALL_ARCHS:
        if lowered in arch.name.lower():
            return arch
    raise KeyError("no architecture matching %r" % name)
