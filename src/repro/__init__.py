"""repro: reproduction of "Retargeting and Respecializing GPU Workloads for
Performance Portability" (CGO 2024).

A pure-Python re-implementation of the Polygeist-GPU pipeline: a CUDA-subset
frontend, a mini-MLIR IR with the paper's parallel representation, the nested
parallel unroll-and-interleave transformation with thread/block coarsening,
alternatives-based multi-versioning with timing-driven optimization, and a
GPU performance simulator standing in for the paper's NVIDIA/AMD hardware.

Quickstart::

    from repro import compile_cuda
    from repro.targets import A100

    program = compile_cuda(source, arch=A100)
    program.launch("my_kernel", grid=(128,), block=(256,), args=[buf])
"""

__version__ = "1.0.0"


def compile_cuda(source, arch=None, **kwargs):
    """Compile CUDA source text into a runnable :class:`~repro.pipeline.Program`.

    Thin convenience wrapper over :func:`repro.pipeline.compile_cuda`, imported
    lazily to keep ``import repro`` cheap.
    """
    from .pipeline import compile_cuda as _compile
    return _compile(source, arch=arch, **kwargs)
