"""Heuristic coarsening-factor selection (the paper's §VIII-A future work).

The paper notes that prior per-strategy heuristics [18, 20, 25] could not be
readily applied to its *combined* coarsening and leaves factor-selection
heuristics to future work. This module implements one: a static,
model-guided rule that picks a single (block, thread) configuration from
the kernel's resource profile without running TDO's full sweep —

1. estimate the kernel's latency-hiding deficit from its occupancy and
   memory intensity: low active-warp counts need more in-flight work per
   thread, which is exactly what coarsening supplies;
2. satisfy the deficit with **block** factors first (shared-memory capacity
   permitting — they preserve coalescing and block shape, §V-C), then with
   **thread** factors that keep blocks at full warps and divide the extent;
3. cap everything so the register estimate stays below the spill threshold.

The companion experiment (``benchmarks/bench_heuristic.py``) measures how
much of TDO's benefit this recovers at a fraction of the compile cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..analysis import kernel_statistics, shared_bytes_per_block
from ..ir import Operation
from ..targets import (GPUArchitecture, LANE_WARP_WIDTH, compute_occupancy,
                       estimate_registers)
from ..transforms.coarsen import parallel_extents, thread_parallel

#: never propose more combined coarsening than this
MAX_TOTAL = 16
#: assume spilling starts when the scaled register estimate crosses this
SPILL_HEADROOM = 0.85
# The latency-hiding deficit below is measured in 32-thread warp
# equivalents via the shared ``repro.targets.LANE_WARP_WIDTH`` constant —
# the same normalization the simulator model uses, so heuristic and model
# can never drift apart on wavefront-64 targets. The absolute targets
# (48/16) are in those lane-normalized units.


def lane_warps(occupancy) -> float:
    """Active parallelism in 32-thread warp equivalents (lane-normalized)."""
    return occupancy.active_threads / LANE_WARP_WIDTH


@dataclass
class HeuristicChoice:
    """The selected configuration with its reasoning trail."""

    block_total: int
    thread_total: int
    reasons: list

    def as_config(self) -> Dict[str, int]:
        return {"block_total": self.block_total,
                "thread_total": self.thread_total}


def choose_factors(block_parallel: Operation,
                   arch: GPUArchitecture) -> HeuristicChoice:
    """Pick (block_total, thread_total) for one kernel without timing."""
    reasons = []
    threads = thread_parallel(block_parallel)
    extents = [e or 1 for e in parallel_extents(threads)]
    threads_per_block = 1
    for extent in extents:
        threads_per_block *= extent
    stats = kernel_statistics(threads)
    registers = estimate_registers(threads, arch)
    shared = shared_bytes_per_block(block_parallel)
    occupancy = compute_occupancy(arch, threads_per_block,
                                  registers.registers_per_thread, shared)

    # 1. how much extra per-thread parallelism do we want? Both sides of
    # the comparison are lane-normalized (see LANE_WARP_WIDTH), so the
    # deficit is computed in the same units on 32- and 64-wide targets.
    active_warps = lane_warps(occupancy)
    warps_wanted = 48.0 if stats.global_accesses >= 1 else 16.0
    deficit = warps_wanted / max(active_warps, 1.0)
    target = 1
    while target < deficit and target < MAX_TOTAL:
        target *= 2
    target = min(target, MAX_TOTAL)
    reasons.append("active warps %.0f vs wanted %.0f -> target x%d" %
                   (active_warps, warps_wanted, target))
    if target == 1:
        reasons.append("occupancy already sufficient; no coarsening")
        return HeuristicChoice(1, 1, reasons)

    # 2. block factors first, bounded by shared-memory capacity
    block_total = 1
    while block_total * 2 <= target:
        next_shared = shared * block_total * 2
        if shared and next_shared > arch.shared_mem_per_block:
            reasons.append(
                "block factor capped at x%d by shared memory (%d B)" %
                (block_total, next_shared))
            break
        block_total *= 2
    if block_total == target:
        reasons.append("block coarsening x%d covers the target" %
                       block_total)

    # 3. thread factors for the remainder, keeping full warps
    remainder = target // block_total
    thread_total = 1
    while thread_total * 2 <= remainder:
        next_threads = threads_per_block // (thread_total * 2)
        if next_threads < arch.warp_size:
            reasons.append(
                "thread factor capped at x%d to keep full warps" %
                thread_total)
            break
        if threads_per_block % (thread_total * 2) != 0:
            break
        thread_total *= 2
    if thread_total > 1:
        reasons.append("thread coarsening x%d fills the remainder" %
                       thread_total)

    # 4. register-pressure guard: scale back until below the spill line
    while block_total * thread_total > 1:
        scaled = registers.registers_per_thread * \
            (1 + 0.35 * (block_total * thread_total - 1))
        if scaled <= SPILL_HEADROOM * arch.max_registers_per_thread:
            break
        if thread_total > 1:
            thread_total //= 2
        else:
            block_total //= 2
        reasons.append("backed off for register pressure")
    return HeuristicChoice(block_total, thread_total, reasons)


def heuristic_tune(wrapper: Operation,
                   arch: GPUArchitecture) -> Optional[HeuristicChoice]:
    """Apply the heuristic's single choice to a gpu_wrapper in place.

    Returns the choice, or None if the chosen coarsening is illegal (in
    which case the wrapper is left untouched).
    """
    from ..transforms.coarsen import (CoarsenError, block_parallels,
                                      coarsen_wrapper)
    mains = block_parallels(wrapper, include_epilogues=False)
    if len(mains) != 1:
        return None
    choice = choose_factors(mains[0], arch)
    if choice.block_total > 1:
        try:
            coarsen_wrapper(wrapper, block_total=choice.block_total)
        except CoarsenError as error:
            choice.reasons.append("block coarsening illegal: %s" % error)
            choice.block_total = 1
    if choice.thread_total > 1:
        try:
            coarsen_wrapper(wrapper, thread_total=choice.thread_total)
        except CoarsenError as error:
            choice.reasons.append("thread coarsening illegal: %s" % error)
            choice.thread_total = 1
    return choice
