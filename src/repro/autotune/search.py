"""Coarsening configuration sweeps.

The paper's main experiment (§VII-B) independently sweeps *total* factors of
1, 2, 4, 8, 16 and 32 for thread and block coarsening; Fig. 15 additionally
sweeps per-dimension factors.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

#: the paper's total-factor grid (§VII-B)
PAPER_TOTALS = (1, 2, 4, 8, 16, 32)


def paper_sweep_configs(block_totals: Sequence[int] = PAPER_TOTALS,
                        thread_totals: Sequence[int] = PAPER_TOTALS,
                        max_product: Optional[int] = 32
                        ) -> List[Dict[str, object]]:
    """The cross product of total block × thread factors.

    ``max_product`` bounds the combined factor (the paper's own combined
    factors top out around 32, e.g. lud's peak at 14); unbounded products
    like 32 x 32 = 1024 copies only bloat compile time.
    """
    configs: List[Dict[str, object]] = []
    for block_total in block_totals:
        for thread_total in thread_totals:
            if max_product is not None and \
                    block_total * thread_total > max_product:
                continue
            configs.append({"block_total": block_total,
                            "thread_total": thread_total})
    return configs


def default_configs(max_total: int = 8) -> List[Dict[str, object]]:
    """A cheaper default sweep used by the end-to-end pipeline."""
    totals = [t for t in PAPER_TOTALS if t <= max_total]
    return paper_sweep_configs(totals, totals)


def per_dimension_configs(block_x: Iterable[int] = (1,),
                          block_y: Iterable[int] = (1,),
                          thread_x: Iterable[int] = (1,),
                          thread_y: Iterable[int] = (1,)
                          ) -> List[Dict[str, object]]:
    """Explicit per-dimension factor sweep (Fig. 15 style)."""
    configs: List[Dict[str, object]] = []
    for bx in block_x:
        for by in block_y:
            for tx in thread_x:
                for ty in thread_y:
                    config: Dict[str, object] = {}
                    if (bx, by) != (1, 1):
                        config["block_factors"] = (bx, by)
                    if (tx, ty) != (1, 1):
                        config["thread_factors"] = (tx, ty)
                    configs.append(config)
    return configs
