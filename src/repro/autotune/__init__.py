"""Kernel granularity selection: sweeps, pruning filters, and TDO (§VI)."""

from .filters import (FilterReport, prune_by_registers,
                      prune_by_shared_memory, prune_planned_by_shared_memory,
                      run_filters, run_planned_filters)
from .heuristic import HeuristicChoice, choose_factors, heuristic_tune
from .search import (default_configs, paper_sweep_configs,
                     per_dimension_configs)
from .tdo import TuneOutcome, timing_driven_optimization, tune_wrapper

__all__ = [
    "FilterReport", "HeuristicChoice", "TuneOutcome", "choose_factors",
    "default_configs", "heuristic_tune",
    "paper_sweep_configs", "per_dimension_configs", "prune_by_registers",
    "prune_by_shared_memory", "prune_planned_by_shared_memory",
    "run_filters", "run_planned_filters", "timing_driven_optimization",
    "tune_wrapper",
]
