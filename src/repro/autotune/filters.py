"""Alternative pruning filters (§VI).

Mirrors the paper's progressive filtering of alternative code paths:

1. **Early pruning for shared memory usage** — static shared allocation per
   block is known right after coarsening; alternatives exceeding the
   target's per-block shared memory are discarded immediately.
2. **Register/spill pruning** — after "backend compilation" (our register
   estimator), alternatives that start spilling are discarded, since GPU
   spills go to local memory orders of magnitude slower than registers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..analysis import shared_bytes_per_block
from ..dialects import polygeist
from ..ir import Operation
from ..obs import decisions as obs_decisions
from ..obs import metrics as obs_metrics
from ..obs import tracer as obs_tracer
from ..targets import GPUArchitecture, estimate_registers
from ..transforms.alternatives import prune_alternatives
from ..transforms.coarsen import block_parallels_in_region, thread_parallel


@dataclass
class FilterReport:
    """What the pruning stages did.

    ``survivors`` are indices into the alternative list *as seen by the
    stage that produced the report*; the merged report from
    :func:`run_filters` remaps them to indices into the original,
    unpruned alternative list (with ``survivor_descs`` carrying the
    matching descriptions), so it stays meaningful after in-place pruning.
    """

    survivors: List[int] = field(default_factory=list)
    survivor_descs: List[str] = field(default_factory=list)
    dropped_shared: List[str] = field(default_factory=list)
    dropped_spills: List[str] = field(default_factory=list)


def _region_block_loops(alt: Operation, index: int):
    return block_parallels_in_region(alt.region(index))


def _region_shared_bytes(alt: Operation, index: int) -> int:
    loops = _region_block_loops(alt, index)
    return max((shared_bytes_per_block(loop) for loop in loops), default=0)


def _region_max_registers(alt: Operation, index: int,
                          arch: GPUArchitecture) -> int:
    spilled = 0
    for loop in _region_block_loops(alt, index):
        estimate = estimate_registers(thread_parallel(loop), arch)
        spilled = max(spilled, estimate.spilled_registers)
    return spilled


def prune_by_shared_memory(alt: Operation,
                           arch: GPUArchitecture) -> FilterReport:
    """Stage 1: drop alternatives whose static shared memory cannot fit."""
    report = FilterReport()
    descs = polygeist.alternative_descs(alt)
    decision = obs_decisions.active_decision()
    with obs_tracer.span("filters.shared_memory", category="filters",
                         alternatives=len(alt.regions)) as span:
        for index in range(len(alt.regions)):
            usage = _region_shared_bytes(alt, index)
            if usage > arch.shared_mem_per_block:
                report.dropped_shared.append(
                    "%s (%d B > %d B)" % (descs[index], usage,
                                          arch.shared_mem_per_block))
                if decision is not None:
                    decision.eliminate(
                        descs[index], obs_decisions.SHARED_MEMORY,
                        "%d B static shared memory exceeds the %d B "
                        "per-block limit" % (usage,
                                             arch.shared_mem_per_block))
            else:
                report.survivors.append(index)
                report.survivor_descs.append(descs[index])
        span.set(survivors=len(report.survivors),
                 dropped=len(report.dropped_shared))
    obs_metrics.inc("filters.dropped_shared", len(report.dropped_shared))
    if report.survivors and len(report.survivors) < len(alt.regions):
        prune_alternatives(alt, report.survivors)
    return report


def prune_by_registers(alt: Operation, arch: GPUArchitecture,
                       backend=None) -> FilterReport:
    """Stage 3: drop alternatives whose backend compilation spills.

    Register estimation is independent per alternative, so an evaluation
    ``backend`` (see :mod:`repro.engine.parallel`) may fan it out.
    """
    report = FilterReport()
    descs = polygeist.alternative_descs(alt)
    indices = range(len(alt.regions))
    with obs_tracer.span("filters.registers", category="filters",
                         alternatives=len(alt.regions)) as span:
        if backend is None:
            spills = [_region_max_registers(alt, i, arch) for i in indices]
        else:
            spills = list(backend.map(
                lambda i: _region_max_registers(alt, i, arch), indices))
        for index, spilled in enumerate(spills):
            if spilled == 0:
                report.survivors.append(index)
                report.survivor_descs.append(descs[index])
            else:
                report.dropped_spills.append(
                    "%s (%d spilled registers)" % (descs[index], spilled))
        if not report.survivors:
            # everything spills: keep the least-bad one
            best = min(range(len(spills)), key=lambda i: spills[i])
            report.survivors = [best]
            report.survivor_descs = [descs[best]]
            report.dropped_spills = [d for i, d in enumerate(
                report.dropped_spills) if i != best]
        span.set(survivors=len(report.survivors),
                 dropped=len(alt.regions) - len(report.survivors))
    decision = obs_decisions.active_decision()
    if decision is not None:
        survivor_set = set(report.survivors)
        for index, spilled in enumerate(spills):
            if spilled > 0 and index not in survivor_set:
                decision.eliminate(
                    descs[index], obs_decisions.REGISTERS,
                    "%d register(s) spill to local memory" % spilled)
    obs_metrics.inc("filters.dropped_spills",
                    len(alt.regions) - len(report.survivors))
    if len(report.survivors) < len(alt.regions):
        prune_alternatives(alt, report.survivors)
    return report


def run_filters(alt: Operation, arch: GPUArchitecture,
                backend=None) -> FilterReport:
    """Run all static pruning stages; returns a merged report.

    The stages prune ``alt`` in place, so the register stage's survivor
    indices refer to the *already shared-memory-pruned* region list. The
    merged report composes the two mappings so its ``survivors`` (and
    ``survivor_descs``) always index the original alternative list.
    """
    original_descs = list(polygeist.alternative_descs(alt))
    total = len(alt.regions)
    with obs_tracer.span("filters", category="filters",
                         alternatives=total) as span:
        shared_report = prune_by_shared_memory(alt, arch)
        # when stage 1 pruned nothing (all survived, or none did and
        # pruning was skipped), stage-2 indices are already original
        # indices
        if shared_report.survivors and \
                len(shared_report.survivors) < total:
            base = shared_report.survivors
        else:
            base = list(range(total))
        register_report = prune_by_registers(alt, arch, backend=backend)
        merged = FilterReport(
            survivors=[base[i] for i in register_report.survivors])
        merged.survivor_descs = [original_descs[i]
                                 for i in merged.survivors]
        merged.dropped_shared = shared_report.dropped_shared
        merged.dropped_spills = register_report.dropped_spills
        span.set(survivors=len(merged.survivors))
    obs_metrics.inc("filters.runs")
    obs_metrics.inc("filters.survivors", len(merged.survivors))
    return merged
