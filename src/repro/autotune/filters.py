"""Alternative pruning filters (§VI).

Mirrors the paper's progressive filtering of alternative code paths:

1. **Early pruning for shared memory usage** — static shared allocation per
   block is known right after coarsening; alternatives exceeding the
   target's per-block shared memory are discarded immediately.
2. **Register/spill pruning** — after "backend compilation" (our register
   estimator), alternatives that start spilling are discarded, since GPU
   spills go to local memory orders of magnitude slower than registers.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..analysis import shared_bytes_per_block
from ..dialects import polygeist
from ..ir import Operation
from ..obs import decisions as obs_decisions
from ..obs import metrics as obs_metrics
from ..obs import tracer as obs_tracer
from ..targets import GPUArchitecture, estimate_registers
from ..transforms.alternatives import prune_alternatives
from ..transforms.coarsen import block_parallels_in_region, thread_parallel


@dataclass
class FilterReport:
    """What the pruning stages did.

    ``survivors`` are indices into the alternative list *as seen by the
    stage that produced the report*; the merged report from
    :func:`run_filters` remaps them to indices into the original,
    unpruned alternative list (with ``survivor_descs`` carrying the
    matching descriptions), so it stays meaningful after in-place pruning.
    """

    survivors: List[int] = field(default_factory=list)
    survivor_descs: List[str] = field(default_factory=list)
    dropped_shared: List[str] = field(default_factory=list)
    dropped_spills: List[str] = field(default_factory=list)


def _region_block_loops(alt: Operation, index: int):
    return block_parallels_in_region(alt.region(index))


def _region_shared_bytes(alt: Operation, index: int) -> int:
    loops = _region_block_loops(alt, index)
    return max((shared_bytes_per_block(loop) for loop in loops), default=0)


def _region_max_registers(alt: Operation, index: int,
                          arch: GPUArchitecture) -> int:
    spilled = 0
    for loop in _region_block_loops(alt, index):
        estimate = estimate_registers(thread_parallel(loop), arch)
        spilled = max(spilled, estimate.spilled_registers)
    return spilled


def prune_by_shared_memory(alt: Operation,
                           arch: GPUArchitecture) -> FilterReport:
    """Stage 1: drop alternatives whose static shared memory cannot fit."""
    report = FilterReport()
    descs = polygeist.alternative_descs(alt)
    decision = obs_decisions.active_decision()
    with obs_tracer.span("filters.shared_memory", category="filters",
                         alternatives=len(alt.regions)) as span:
        for index in range(len(alt.regions)):
            usage = _region_shared_bytes(alt, index)
            if usage > arch.shared_mem_per_block:
                report.dropped_shared.append(
                    "%s (%d B > %d B)" % (descs[index], usage,
                                          arch.shared_mem_per_block))
                if decision is not None:
                    decision.eliminate(
                        descs[index], obs_decisions.SHARED_MEMORY,
                        "%d B static shared memory exceeds the %d B "
                        "per-block limit" % (usage,
                                             arch.shared_mem_per_block))
            else:
                report.survivors.append(index)
                report.survivor_descs.append(descs[index])
        span.set(survivors=len(report.survivors),
                 dropped=len(report.dropped_shared))
    obs_metrics.inc("filters.dropped_shared", len(report.dropped_shared))
    if report.survivors and len(report.survivors) < len(alt.regions):
        prune_alternatives(alt, report.survivors)
    return report


def prune_by_registers(alt: Operation, arch: GPUArchitecture,
                       backend=None) -> FilterReport:
    """Stage 3: drop alternatives whose backend compilation spills.

    Register estimation is independent per alternative, so an evaluation
    ``backend`` (see :mod:`repro.engine.parallel`) may fan it out.
    """
    report = FilterReport()
    descs = polygeist.alternative_descs(alt)
    indices = range(len(alt.regions))
    with obs_tracer.span("filters.registers", category="filters",
                         alternatives=len(alt.regions)) as span:
        if backend is None:
            spills = [_region_max_registers(alt, i, arch) for i in indices]
        else:
            spills = list(backend.map(
                lambda i: _region_max_registers(alt, i, arch), indices))
        for index, spilled in enumerate(spills):
            if spilled == 0:
                report.survivors.append(index)
                report.survivor_descs.append(descs[index])
            else:
                report.dropped_spills.append(
                    "%s (%d spilled registers)" % (descs[index], spilled))
        if not report.survivors:
            # everything spills: keep the least-bad one
            best = min(range(len(spills)), key=lambda i: spills[i])
            report.survivors = [best]
            report.survivor_descs = [descs[best]]
            report.dropped_spills = [d for i, d in enumerate(
                report.dropped_spills) if i != best]
        span.set(survivors=len(report.survivors),
                 dropped=len(alt.regions) - len(report.survivors))
    decision = obs_decisions.active_decision()
    if decision is not None:
        survivor_set = set(report.survivors)
        for index, spilled in enumerate(spills):
            if spilled > 0 and index not in survivor_set:
                decision.eliminate(
                    descs[index], obs_decisions.REGISTERS,
                    "%d register(s) spill to local memory" % spilled)
    obs_metrics.inc("filters.dropped_spills",
                    len(alt.regions) - len(report.survivors))
    if len(report.survivors) < len(alt.regions):
        prune_alternatives(alt, report.survivors)
    return report


def prune_planned_by_shared_memory(plans: Sequence,
                                   arch: GPUArchitecture) -> FilterReport:
    """Stage 1 on *planned* alternatives: score from coarsening metadata.

    ``plans`` are :class:`~repro.transforms.alternatives.AlternativeInfo`
    entries whose ``shared_bytes`` predicts the post-coarsening footprint
    (block copies replicate every shared alloca, thread copies the ones
    inside the thread loop) — the same number the IR-measuring stage
    computes on a materialized clone, known before any clone exists.
    Emits the same span, decisions, and metrics as
    :func:`prune_by_shared_memory`; nothing is pruned in place because
    nothing is materialized yet.
    """
    report = FilterReport()
    decision = obs_decisions.active_decision()
    with obs_tracer.span("filters.shared_memory", category="filters",
                         alternatives=len(plans)) as span:
        for index, info in enumerate(plans):
            usage = info.shared_bytes
            if usage > arch.shared_mem_per_block:
                report.dropped_shared.append(
                    "%s (%d B > %d B)" % (info.desc, usage,
                                          arch.shared_mem_per_block))
                if decision is not None:
                    decision.eliminate(
                        info.desc, obs_decisions.SHARED_MEMORY,
                        "%d B static shared memory exceeds the %d B "
                        "per-block limit" % (usage,
                                             arch.shared_mem_per_block))
            else:
                report.survivors.append(index)
                report.survivor_descs.append(info.desc)
        span.set(survivors=len(report.survivors),
                 dropped=len(report.dropped_shared))
    obs_metrics.inc("filters.dropped_shared", len(report.dropped_shared))
    return report


def run_planned_filters(plans: Sequence, arch: GPUArchitecture,
                        materialize: Callable[[List[int]], Operation],
                        backend=None,
                        stage=None) -> Tuple[FilterReport, Operation]:
    """The lazy twin of :func:`run_filters`.

    Runs the shared-memory stage on plan metadata, calls
    ``materialize(survivor_indices)`` to build (and clean) IR for just the
    survivors, then runs the register stage on the materialized op.
    Returns ``(merged report, alternatives op)``; the merged report's
    ``survivors`` index the original planned list, exactly like
    :func:`run_filters`'s index the original region list. ``stage`` wraps
    the filter evaluations in an engine accounting stage (materialization
    does its own accounting inside the callback).
    """
    if stage is None:
        def stage(_name):
            return nullcontext()
    total = len(plans)
    with obs_tracer.span("filters", category="filters",
                         alternatives=total) as span:
        with stage("filters"):
            shared_report = prune_planned_by_shared_memory(plans, arch)
        # mirror run_filters: if every plan busts the shared-memory limit,
        # keep them all and let the register stage's least-bad fallback
        # pick, as the in-place pruning path does
        if shared_report.survivors and \
                len(shared_report.survivors) < total:
            base = shared_report.survivors
        else:
            base = list(range(total))
        alt = materialize(base)
        with stage("filters"):
            register_report = prune_by_registers(alt, arch,
                                                 backend=backend)
        merged = FilterReport(
            survivors=[base[i] for i in register_report.survivors])
        merged.survivor_descs = [plans[i].desc for i in merged.survivors]
        merged.dropped_shared = shared_report.dropped_shared
        merged.dropped_spills = register_report.dropped_spills
        span.set(survivors=len(merged.survivors))
    obs_metrics.inc("filters.runs")
    obs_metrics.inc("filters.survivors", len(merged.survivors))
    return merged, alt


def run_filters(alt: Operation, arch: GPUArchitecture,
                backend=None) -> FilterReport:
    """Run all static pruning stages; returns a merged report.

    The stages prune ``alt`` in place, so the register stage's survivor
    indices refer to the *already shared-memory-pruned* region list. The
    merged report composes the two mappings so its ``survivors`` (and
    ``survivor_descs``) always index the original alternative list.
    """
    original_descs = list(polygeist.alternative_descs(alt))
    total = len(alt.regions)
    with obs_tracer.span("filters", category="filters",
                         alternatives=total) as span:
        shared_report = prune_by_shared_memory(alt, arch)
        # when stage 1 pruned nothing (all survived, or none did and
        # pruning was skipped), stage-2 indices are already original
        # indices
        if shared_report.survivors and \
                len(shared_report.survivors) < total:
            base = shared_report.survivors
        else:
            base = list(range(total))
        register_report = prune_by_registers(alt, arch, backend=backend)
        merged = FilterReport(
            survivors=[base[i] for i in register_report.survivors])
        merged.survivor_descs = [original_descs[i]
                                 for i in merged.survivors]
        merged.dropped_shared = shared_report.dropped_shared
        merged.dropped_spills = register_report.dropped_spills
        span.set(survivors=len(merged.survivors))
    obs_metrics.inc("filters.runs")
    obs_metrics.inc("filters.survivors", len(merged.survivors))
    return merged
