"""Timing-driven optimization (§VI "Timing-Driven Optimization or
Auto-Tuning").

In the paper, surviving alternatives ship in the binary with dispatch logic;
a profiling mode times each one on real data and a final compilation removes
all but the winner. Here the "timing runs" are simulator evaluations: each
surviving alternative is modeled (or functionally trace-timed) for the
actual launch geometry, and the fastest is selected into place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..dialects import polygeist
from ..ir import Module, Operation, Value
from ..simulator.model import InvalidLaunch, LaunchTiming, block_count
from ..targets import GPUArchitecture
from ..transforms.alternatives import select_alternative
from ..transforms.coarsen import block_parallels_in_region
from .filters import FilterReport, run_filters


def _cleanup_alternatives(wrapper: Operation) -> None:
    """Clean the coarsened clones (CSE / redundant-load elimination) so the
    backend stages see what a real compiler would emit."""
    from ..ir import Module
    root = wrapper
    while root.parent_op is not None:
        root = root.parent_op
    if root.name == "builtin.module":
        from ..transforms import run_cleanup
        run_cleanup(Module(root))


@dataclass
class Candidate:
    index: int
    desc: str
    time_seconds: float
    valid: bool
    reason: str = ""


@dataclass
class TuneOutcome:
    """Everything TDO decided for one kernel wrapper."""

    selected_desc: str
    selected_time: float
    candidates: List[Candidate] = field(default_factory=list)
    filters: Optional[FilterReport] = None

    def speedup_over(self, baseline_desc: str) -> float:
        for candidate in self.candidates:
            if candidate.desc == baseline_desc and candidate.valid:
                return candidate.time_seconds / self.selected_time
        return 1.0


def _time_region(alt: Operation, index: int, arch: GPUArchitecture,
                 env: Dict[Value, int],
                 model_cache: Optional[Dict[int, object]] = None) -> float:
    from ..simulator.model import KernelModel
    total = 0.0
    for loop in block_parallels_in_region(alt.region(index)):
        blocks = block_count(loop, env)
        if blocks is None:
            raise InvalidLaunch("grid size not evaluable")
        if blocks <= 0:
            continue
        model = None if model_cache is None else model_cache.get(id(loop))
        if model is None:
            model = KernelModel(loop, arch)
            if model_cache is not None:
                model_cache[id(loop)] = model
        total += model.time_launch(blocks).time_seconds
    return total


def timing_driven_optimization(alt: Operation, arch: GPUArchitecture,
                               env,
                               select: bool = True) -> TuneOutcome:
    """Model every alternative and (optionally) select the fastest.

    ``env`` may be a single launch-environment dict or a sequence of them:
    the paper's profiling mode times each alternative over the *whole*
    application run, so alternatives are ranked by their time summed over
    every launch geometry observed (e.g. gaussian's shrinking grids).
    """
    envs = env if isinstance(env, (list, tuple)) else [env]
    descs = polygeist.alternative_descs(alt)
    candidates: List[Candidate] = []
    model_cache: Dict[int, object] = {}
    for index in range(len(alt.regions)):
        try:
            seconds = sum(_time_region(alt, index, arch, one, model_cache)
                          for one in envs)
            candidates.append(Candidate(index, descs[index], seconds, True))
        except InvalidLaunch as error:
            candidates.append(Candidate(index, descs[index], float("inf"),
                                        False, str(error)))
    valid = [c for c in candidates if c.valid]
    if not valid:
        raise InvalidLaunch("no alternative can launch on %s" % arch.name)
    best = min(valid, key=lambda c: c.time_seconds)
    if select:
        select_alternative(alt, best.index)
    return TuneOutcome(best.desc, best.time_seconds, candidates)


def tune_wrapper(wrapper: Operation, arch: GPUArchitecture,
                 env,
                 configs: Sequence[Dict[str, object]]) -> TuneOutcome:
    """Full §VI flow for one gpu_wrapper: alternatives → filters → TDO."""
    from ..transforms.alternatives import generate_coarsening_alternatives
    report = generate_coarsening_alternatives(wrapper, configs)
    if report.op is None:
        raise ValueError("no legal coarsening configuration: %s" %
                         "; ".join(report.rejected))
    _cleanup_alternatives(wrapper)
    filters = run_filters(report.op, arch)
    outcome = timing_driven_optimization(report.op, arch, env)
    outcome.filters = filters
    return outcome
