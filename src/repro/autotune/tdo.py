"""Timing-driven optimization (§VI "Timing-Driven Optimization or
Auto-Tuning").

In the paper, surviving alternatives ship in the binary with dispatch logic;
a profiling mode times each one on real data and a final compilation removes
all but the winner. Here the "timing runs" are simulator evaluations: each
surviving alternative is modeled (or functionally trace-timed) for the
actual launch geometry, and the fastest is selected into place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..dialects import polygeist
from ..ir import Module, Operation, Value
from ..obs import decisions as obs_decisions
from ..obs import metrics as obs_metrics
from ..obs import tracer as obs_tracer
from ..obs.log import get_logger
from ..simulator.model import (InvalidLaunch, LaunchTiming, block_count,
                               block_counts, env_columns,
                               use_scalar_model)
from ..targets import GPUArchitecture, register_estimate_cache
from ..transforms.alternatives import select_alternative
from ..transforms.coarsen import block_parallels_in_region
from .filters import FilterReport, run_planned_filters

logger = get_logger("autotune.tdo")


def _cleanup_alternatives(alt: Operation) -> None:
    """Clean the coarsened clones (CSE / redundant-load elimination) so the
    backend stages see what a real compiler would emit.

    Scoped: only the ``polygeist.alternatives`` regions are rewritten. The
    surrounding module was already cleaned to a fixpoint by the pipeline's
    pre-tuning cleanup, and every pass effect is block-local or downward,
    so this produces the same IR as re-cleaning the whole module (the
    benchsuite-wide equivalence test in ``tests/test_scoped_cleanup.py``
    asserts printed-IR equality).
    """
    from ..transforms import cleanup_regions
    cleanup_regions(list(alt.regions))


@dataclass
class Candidate:
    index: int
    desc: str
    time_seconds: float
    valid: bool
    reason: str = ""


@dataclass
class TuneOutcome:
    """Everything TDO decided for one kernel wrapper."""

    selected_desc: str
    selected_time: float
    candidates: List[Candidate] = field(default_factory=list)
    filters: Optional[FilterReport] = None
    #: region index of the winner (into the post-filter alternative op)
    selected_index: int = -1
    #: coarsening kwargs of the winner, for cache replay
    selected_config: Optional[Dict[str, object]] = None
    #: differential-validation report, when the gate ran
    validation: Optional[object] = None

    def speedup_over(self, baseline_desc: str) -> float:
        """Speedup of the selection relative to ``baseline_desc``.

        Raises :class:`KeyError` when no *valid* candidate carries that
        description — a missing or invalid baseline is a broken
        comparison, not parity, and must not read as 1.0x.
        """
        for candidate in self.candidates:
            if candidate.desc == baseline_desc and candidate.valid:
                if self.selected_time <= 0.0:
                    # degenerate zero-time selection: report no speedup
                    # rather than dividing by zero
                    return float("inf") if candidate.time_seconds > 0.0 \
                        else 1.0
                return candidate.time_seconds / self.selected_time
        raise KeyError("no valid candidate named %r to compare against"
                       % baseline_desc)


def _time_region(alt: Operation, index: int, arch: GPUArchitecture,
                 env: Dict[Value, int],
                 model_cache: Optional[Dict[int, object]] = None,
                 blocks_cache: Optional[Dict[tuple, int]] = None) -> float:
    from ..simulator.model import KernelModel
    total = 0.0
    for loop in block_parallels_in_region(alt.region(index)):
        key = loop.stable_uid()
        blocks = None
        if blocks_cache is not None:
            # env dicts stay alive for the whole optimization call, so
            # their id() is a stable per-call identity
            blocks = blocks_cache.get((key, id(env)))
        if blocks is None:
            blocks = block_count(loop, env)
            if blocks is None:
                raise InvalidLaunch("grid size not evaluable")
            if blocks_cache is not None:
                blocks_cache[(key, id(env))] = blocks
        if blocks <= 0:
            continue
        model = None if model_cache is None else model_cache.get(key)
        if model is None:
            model = KernelModel(loop, arch)
            if model_cache is not None:
                model_cache[key] = model
        total += model.time_seconds_for(blocks)
    return total


def _batched_candidates(alt: Operation, arch: GPUArchitecture,
                        envs, descs: List[str]) -> List[Candidate]:
    """Score every alternative in one vectorized batch.

    Assembles (model row, block count) entries in exactly the order the
    scalar path visits them (env-outer, loop-inner), evaluates all of
    them through :class:`~repro.simulator.batch.BatchedKernelModel`, and
    reduces per-alternative sums with the scalar path's accumulation
    grouping — so times, failure reasons, *and* the first-failure point
    of invalid alternatives are identical to the scalar path's.
    """
    import numpy as np

    from ..simulator.batch import BatchedKernelModel
    from ..simulator.model import KernelModel
    batch = BatchedKernelModel()
    model_cache: Dict[int, KernelModel] = {}
    rows: List[int] = []
    counts: List[int] = []
    # per alternative: list (one per env) of [start, stop) slices into
    # rows/counts, ("uniform", start, envs, loops) when every env
    # launches every loop, or the InvalidLaunch that stopped assembly
    plans: List[object] = []
    env_cols = env_columns(envs)
    for index in range(len(alt.regions)):
        loops = list(block_parallels_in_region(alt.region(index)))
        # all envs' block counts per loop in one vectorized evaluation
        loop_blocks = [block_counts(loop, envs, env_cols)
                       for loop in loops]

        # fast path: when no env's grid is unevaluable or empty (the
        # overwhelmingly common case), the (row, count) sequence is the
        # loop pattern repeated per env — assembled with list repetition
        # and one transpose instead of a per-(env, loop) python loop
        regular = len(envs) > 0 and \
            not any(None in per_env for per_env in loop_blocks)
        arrays = []
        if regular:
            for per_env in loop_blocks:
                arr = np.asarray(per_env, dtype=np.int64)
                if int(arr.min(initial=1)) <= 0:
                    regular = False
                    break
                arrays.append(arr)
        if regular:
            pattern: List[int] = []
            failed: Optional[InvalidLaunch] = None
            try:
                # loop order == the scalar path's first-env visit order,
                # so the first failure (construction or launchability)
                # is the same one the scalar path reports
                for loop in loops:
                    key = loop.stable_uid()
                    model = model_cache.get(key)
                    if model is None:
                        model = KernelModel(loop, arch)
                        model_cache[key] = model
                    model.ensure_launchable()
                    pattern.append(batch.add_model(model))
            except InvalidLaunch as error:
                failed = error
            if failed is not None:
                plans.append(failed)
                continue
            start = len(rows)
            rows.extend(pattern * len(envs))
            if arrays:
                counts.extend(np.stack(arrays).T.ravel().tolist())
            plans.append(("uniform", start, len(envs), len(loops)))
            continue

        env_spans: List[Tuple[int, int]] = []
        failure: Optional[InvalidLaunch] = None
        for position, one in enumerate(envs):
            start = len(rows)
            try:
                for loop, per_env in zip(loops, loop_blocks):
                    blocks = per_env[position]
                    if blocks is None:
                        raise InvalidLaunch("grid size not evaluable")
                    if blocks <= 0:
                        continue
                    key = loop.stable_uid()
                    model = model_cache.get(key)
                    if model is None:
                        model = KernelModel(loop, arch)
                        model_cache[key] = model
                    # scalar raises this inside time_seconds_for; raise
                    # it here so entries after the failure never batch
                    model.ensure_launchable()
                    rows.append(batch.add_model(model))
                    counts.append(blocks)
            except InvalidLaunch as error:
                del rows[start:]
                del counts[start:]
                failure = error
                break
            env_spans.append((start, len(rows)))
        plans.append(failure if failure is not None else env_spans)

    times_array = batch.times(rows, counts)
    times = times_array.tolist()

    candidates = []
    for index, plan in enumerate(plans):
        with obs_tracer.span("tdo.alternative", category="tdo",
                             desc=descs[index]) as span:
            if isinstance(plan, InvalidLaunch):
                span.set(invalid=str(plan))
                candidates.append(Candidate(index, descs[index],
                                            float("inf"), False,
                                            str(plan)))
                continue
            # scalar grouping: sum-over-envs of per-env accumulations
            seconds = 0
            if isinstance(plan, tuple):
                _, start, num_envs, width = plan
                span_times = times_array[start:start + num_envs * width]
                columns = span_times.reshape(num_envs, width)
                # left-to-right elementwise adds from 0.0 — the same IEEE
                # operation sequence as the scalar per-env accumulation
                env_totals = np.zeros(num_envs)
                for column in range(width):
                    env_totals = env_totals + columns[:, column]
                for env_total in env_totals.tolist():
                    seconds = seconds + env_total
            else:
                for start, stop in plan:
                    env_total = 0.0
                    for position in range(start, stop):
                        env_total += times[position]
                    seconds = seconds + env_total
            span.set(seconds=seconds)
            obs_metrics.observe("tdo.alternative_seconds", seconds)
            candidates.append(Candidate(index, descs[index], seconds,
                                        True))
    return candidates


def timing_driven_optimization(alt: Operation, arch: GPUArchitecture,
                               env,
                               select: bool = True,
                               backend=None) -> TuneOutcome:
    """Model every alternative and (optionally) select the fastest.

    ``env`` may be a single launch-environment dict or a sequence of them:
    the paper's profiling mode times each alternative over the *whole*
    application run, so alternatives are ranked by their time summed over
    every launch geometry observed (e.g. gaussian's shrinking grids).

    All alternatives are scored in one vectorized numpy batch (bit-
    identical to the scalar reference — see
    :mod:`repro.simulator.batch`); set ``REPRO_SCALAR_MODEL=1`` to force
    the scalar path.

    ``backend`` (see :mod:`repro.engine.parallel`) fans the per-alternative
    evaluation out over workers; ``None`` evaluates sequentially (batched
    when possible). All paths preserve order, so the selection is
    identical.
    """
    envs = env if isinstance(env, (list, tuple)) else [env]
    descs = polygeist.alternative_descs(alt)
    model_cache: Dict[int, object] = {}
    blocks_cache: Dict[tuple, int] = {}

    def evaluate(index: int) -> Candidate:
        # one span per simulated profiling run; runs inside worker
        # threads under a parallel backend, which the tracer supports
        with obs_tracer.span("tdo.alternative", category="tdo",
                             desc=descs[index]) as span:
            try:
                seconds = sum(_time_region(alt, index, arch, one,
                                           model_cache, blocks_cache)
                              for one in envs)
                span.set(seconds=seconds)
                obs_metrics.observe("tdo.alternative_seconds", seconds)
                return Candidate(index, descs[index], seconds, True)
            except InvalidLaunch as error:
                span.set(invalid=str(error))
                return Candidate(index, descs[index], float("inf"),
                                 False, str(error))

    indices = range(len(alt.regions))
    # a sequential backend (the default engine's) gains nothing from
    # per-alternative map dispatch — give it the vectorized batch too;
    # explicit multi-worker backends keep the scalar fan-out
    fan_out = backend is not None and getattr(backend, "workers", 1) > 1
    with obs_tracer.span("tdo", category="tdo",
                         alternatives=len(alt.regions),
                         launches=len(envs)):
        if fan_out:
            candidates = list(backend.map(evaluate, indices))
        elif use_scalar_model():
            candidates = [evaluate(index) for index in indices]
        else:
            candidates = _batched_candidates(alt, arch, envs, descs)
    obs_metrics.inc("tdo.evaluations", len(candidates))
    valid = [c for c in candidates if c.valid]
    if not valid:
        raise InvalidLaunch("no alternative can launch on %s" % arch.name)
    best = min(valid, key=lambda c: c.time_seconds)
    decision = obs_decisions.active_decision()
    if decision is not None:
        for candidate in candidates:
            if candidate is best:
                continue
            if not candidate.valid:
                decision.eliminate(candidate.desc, obs_decisions.TIMING,
                                   "invalid launch: %s" % candidate.reason)
            else:
                decision.set_time(candidate.desc, candidate.time_seconds)
                if best.time_seconds > 0.0:
                    margin = candidate.time_seconds / best.time_seconds
                    reason = "%.3es modeled, %.2fx slower than the " \
                             "winner" % (candidate.time_seconds, margin)
                else:
                    reason = "%.3es modeled, slower than the winner" \
                             % candidate.time_seconds
                decision.eliminate(candidate.desc, obs_decisions.TIMING,
                                   reason)
        decision.select(best.desc, best.time_seconds)
    logger.info("TDO selected %s (%.3es) out of %d alternatives",
                best.desc, best.time_seconds, len(candidates))
    if select:
        select_alternative(alt, best.index)
    return TuneOutcome(best.desc, best.time_seconds, candidates,
                       selected_index=best.index)


def _wrapper_label(wrapper: Operation) -> str:
    """The enclosing function's symbol name, for decision-log headers."""
    root = wrapper
    while root is not None and root.name != "func.func":
        root = root.parent_op
    if root is not None:
        return str(root.attr("sym_name") or "gpu_wrapper")
    return "gpu_wrapper"


def _clone_baseline(wrapper: Operation
                    ) -> Tuple[Optional[Operation], Optional[Operation]]:
    """A detached clone of the enclosing func, taken *before* alternative
    generation erases the wrapper body, plus the cloned wrapper matching
    ``wrapper`` (for launch-shape sizing). ``(None, None)`` when the
    wrapper is not nested in a function."""
    func_op = wrapper
    while func_op is not None and func_op.name != "func.func":
        func_op = func_op.parent_op
    if func_op is None:
        return None, None
    wrappers = polygeist.find_gpu_wrappers(func_op)
    position = next((i for i, w in enumerate(wrappers) if w is wrapper), -1)
    baseline_func = func_op.clone({})
    clones = polygeist.find_gpu_wrappers(baseline_func)
    if not 0 <= position < len(clones):
        return None, None
    return baseline_func, clones[position]


def _validation_gate(alt: Operation, baseline_func: Operation,
                     sizing_wrapper: Operation, env, decision
                     ) -> Tuple[object, Optional[List[int]]]:
    """Run the differential gate on a (post-filter) alternatives op.

    Prunes diverging regions in place and returns ``(report, keep)`` where
    ``keep`` maps post-validation region indices back to post-filter ones
    (``None`` when nothing was pruned). Raises when every alternative is
    rejected."""
    from ..transforms.alternatives import prune_alternatives
    from ..validate import validate_alternatives

    env0 = env[0] if isinstance(env, (list, tuple)) else env
    validation = validate_alternatives(baseline_func, alt, env0,
                                       sizing_wrapper)
    if validation.baseline_note and decision is not None:
        decision.note("validation inconclusive: baseline not executable: %s"
                      % validation.baseline_note)
    rejected = 0
    for verdict in validation.verdicts:
        if verdict.passed:
            continue
        rejected += 1
        if verdict.diff is not None:
            reason = "output diverged from baseline: %s" % \
                verdict.diff.summarize().splitlines()[0]
        else:
            reason = verdict.detail or verdict.status
        if decision is not None:
            decision.eliminate(verdict.desc, obs_decisions.VALIDATION,
                               reason)
        logger.warning("validation rejected %s: %s", verdict.desc, reason)
    obs_metrics.inc("validation.alternatives", len(validation.verdicts))
    obs_metrics.inc("validation.rejected", rejected)
    keep = validation.keep_indices()
    if not keep:
        first = validation.first_divergence
        raise ValueError(
            "validation rejected every alternative: %s" %
            (first.explain() if first is not None else "no verdicts"))
    if rejected:
        prune_alternatives(alt, keep)
        return validation, keep
    return validation, None


def tune_wrapper(wrapper: Operation, arch: GPUArchitecture,
                 env,
                 configs: Sequence[Dict[str, object]],
                 engine=None) -> TuneOutcome:
    """Full §VI flow for one gpu_wrapper: alternatives → filters → TDO.

    ``engine`` (a :class:`repro.engine.TuningEngine`) contributes its
    evaluation backend and per-stage stats; tuning decisions are cached at
    the :class:`~repro.pipeline.Program` level, not here.
    """
    from contextlib import nullcontext
    from ..transforms.alternatives import plan_coarsening_alternatives

    stats = engine.stats if engine is not None else None
    backend = engine.backend if engine is not None else None
    validate = engine is not None and getattr(engine, "validate", False)

    def stage(name):
        return stats.stage(name) if stats is not None else nullcontext()

    log = obs_decisions.current()
    decision = log.begin(_wrapper_label(wrapper), arch.name) \
        if log is not None else None
    baseline_func = sizing_wrapper = None
    if validate:
        # the baseline must be cloned before materialization erases the body
        baseline_func, sizing_wrapper = _clone_baseline(wrapper)
        if baseline_func is None and decision is not None:
            decision.note("validation skipped: wrapper not nested in a "
                          "function")
    with stage("alternatives"), \
            obs_tracer.span("tune.alternatives", category="tune"):
        report = plan_coarsening_alternatives(wrapper, configs)
    if stats is not None:
        stats.count("alternative_generations")
        stats.count("alternatives_generated", len(report.alternatives))
    obs_metrics.inc("alternatives_generated", len(report.alternatives))
    if decision is not None:
        for info in report.alternatives:
            decision.add(info.desc, config=dict(info.config))
        for config, reason in report.rejected_configs:
            decision.add(repr(config), config=config)
            decision.eliminate(repr(config), obs_decisions.GENERATION,
                               "illegal coarsening: %s" % reason)
    if not report.alternatives:
        raise ValueError("no legal coarsening configuration: %s" %
                         "; ".join(report.rejected))

    def materialize(indices):
        # clones are built only for the plans that survived the early
        # metadata filter; cost scales with survivors, not candidates
        with stage("alternatives"), \
                obs_tracer.span("tune.materialize", category="tune",
                                alternatives=len(indices)):
            alt = report.materialize(indices)
        with stage("cleanup"):
            _cleanup_alternatives(alt)
        return alt

    # the IR is stable from materialization until selection, so the spill
    # filter and the timing models may share one register-estimate memo
    # per loop
    with register_estimate_cache():
        filters, alt = run_planned_filters(report.alternatives, arch,
                                           materialize, backend=backend,
                                           stage=stage)
        validation = validation_keep = None
        if validate and baseline_func is not None:
            # gate after the cheap static filters, before the timing race:
            # a fast-but-miscompiled alternative must never win
            with stage("validate"), \
                    obs_tracer.span("tune.validate", category="tune"):
                validation, validation_keep = _validation_gate(
                    alt, baseline_func, sizing_wrapper, env, decision)
        with stage("tdo"):
            outcome = timing_driven_optimization(alt, arch, env,
                                                 backend=backend)
    outcome.filters = filters
    outcome.validation = validation
    # map the winning region back through the validation prune and the
    # filter prune to the original alternative so the winner's coarsening
    # config can be replayed from cache without regenerating alternatives
    index = outcome.selected_index
    if validation_keep is not None and 0 <= index < len(validation_keep):
        index = validation_keep[index]
    survivors = filters.survivors
    original = survivors[index] if 0 <= index < len(survivors) else index
    for info in report.alternatives:
        if info.index == original:
            outcome.selected_config = dict(info.config)
            break
    return outcome
