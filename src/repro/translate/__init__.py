"""CUDA → AMD translation paths (§VII-D).

Two routes, mirroring the paper's comparison:

* :mod:`hipify` — a clone of AMD's source-to-source tool, including the
  categories of manual intervention the paper reports (header swaps,
  ``#ifdef`` guard removal, command-line changes);
* :mod:`retarget` — the Polygeist-GPU way: nothing in the source changes,
  the target-agnostic parallel IR is simply compiled against an AMD
  architecture model.
"""

from .hipify import HipifyResult, hipify
from .retarget import RetargetReport, retarget_ease_report

__all__ = ["HipifyResult", "RetargetReport", "hipify",
           "retarget_ease_report"]
