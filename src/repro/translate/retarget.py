"""IR-level retargeting: the Polygeist-GPU route to AMD (§VII-D).

There is nothing to *translate*: the parallel representation is
target-agnostic, so retargeting is (a) compiling against an AMD
architecture model (warp size 64, LDS limits, FP64 ratios — all handled by
:mod:`repro.targets` and :mod:`repro.simulator`), and (b) re-running the
granularity autotuner for the new target. This module provides the
ease-of-use accounting that the paper contrasts with hipify: the frontend
consumes the original CUDA source with *CUDA* semantics, so no header or
guard rewrites are ever needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .hipify import hipify


@dataclass
class RetargetReport:
    """Ease-of-use comparison for one source file (§VII-D1)."""

    source_name: str
    hipify_automatic_changes: int
    hipify_manual_fixes: List[str] = field(default_factory=list)
    #: manual steps for the Polygeist-GPU route (source-level: always none;
    #: only compiler flags change)
    polygeist_manual_fixes: List[str] = field(default_factory=list)

    @property
    def hipify_fix_count(self) -> int:
        return len(self.hipify_manual_fixes)

    @property
    def polygeist_fix_count(self) -> int:
        return len(self.polygeist_manual_fixes)


def retarget_ease_report(source_name: str, source: str) -> RetargetReport:
    """Compare the manual effort of hipify+clang vs IR-level retargeting."""
    hip = hipify(source)
    return RetargetReport(
        source_name=source_name,
        hipify_automatic_changes=len(hip.changes),
        hipify_manual_fixes=list(hip.manual_fixes),
        polygeist_manual_fixes=[],  # the IR path needs only a target flag
    )
