"""A hipify clone: source-to-source CUDA → HIP translation.

Reproduces both what the real tool automates (API renames, header mapping)
and what it cannot (§VII-D1): headers included from external dependencies,
``#ifdef`` guards keyed on CUDA-specific macros, and preprocessor usage that
depends on the CUDA header structure. Those show up as *manual fixes
required*, which the ease-of-use comparison counts.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List

#: direct API/sumbol renames applied automatically
API_RENAMES: Dict[str, str] = {
    "cudaMalloc": "hipMalloc",
    "cudaFree": "hipFree",
    "cudaMemcpy": "hipMemcpy",
    "cudaMemset": "hipMemset",
    "cudaMemcpyHostToDevice": "hipMemcpyHostToDevice",
    "cudaMemcpyDeviceToHost": "hipMemcpyDeviceToHost",
    "cudaMemcpyDeviceToDevice": "hipMemcpyDeviceToDevice",
    "cudaDeviceSynchronize": "hipDeviceSynchronize",
    "cudaThreadSynchronize": "hipDeviceSynchronize",
    "cudaGetLastError": "hipGetLastError",
    "cudaGetErrorString": "hipGetErrorString",
    "cudaError_t": "hipError_t",
    "cudaSuccess": "hipSuccess",
    "cudaEvent_t": "hipEvent_t",
    "cudaEventCreate": "hipEventCreate",
    "cudaEventRecord": "hipEventRecord",
    "cudaEventSynchronize": "hipEventSynchronize",
    "cudaEventElapsedTime": "hipEventElapsedTime",
    "cudaStream_t": "hipStream_t",
    "cudaSetDevice": "hipSetDevice",
}

#: headers the tool maps automatically
HEADER_RENAMES: Dict[str, str] = {
    "cuda_runtime.h": "hip/hip_runtime.h",
    "cuda.h": "hip/hip_runtime.h",
    "cuda_runtime_api.h": "hip/hip_runtime_api.h",
}

#: macros whose #ifdef guards silently change meaning under HIP — the
#: paper had to remove such guards by hand
_CUDA_GUARD_MACROS = ("__CUDACC__", "__CUDA_ARCH__", "CUDA_VERSION")


@dataclass
class HipifyResult:
    """Output of the source-to-source translation."""

    source: str
    #: automatic replacements performed, as (what, count)
    changes: List[str] = field(default_factory=list)
    #: things a human must fix before the result compiles / runs correctly
    manual_fixes: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.manual_fixes


def hipify(source: str) -> HipifyResult:
    """Translate CUDA source text to HIP, reporting required manual fixes."""
    result = HipifyResult(source)
    text = source

    for old, new in API_RENAMES.items():
        pattern = r"\b%s\b" % re.escape(old)
        count = len(re.findall(pattern, text))
        if count:
            text = re.sub(pattern, new, text)
            result.changes.append("%s -> %s (%d)" % (old, new, count))

    # headers: known CUDA headers map automatically; unknown cuda-ish
    # headers (e.g. helper headers from the CUDA samples) need manual work
    def swap_header(match):
        header = match.group(2)
        if header in HEADER_RENAMES:
            result.changes.append("#include %s -> %s" %
                                  (header, HEADER_RENAMES[header]))
            return "#include %s%s%s" % (match.group(1),
                                        HEADER_RENAMES[header],
                                        match.group(3))
        if "cuda" in header or header.startswith("helper_"):
            result.manual_fixes.append(
                "external CUDA-dependent header %r must be hipified "
                "separately" % header)
        return match.group(0)

    text = re.sub(r'#include\s*([<"])([^>"]+)([>"])', swap_header, text)

    # HIP sources must include the HIP runtime header explicitly
    if "hip/hip_runtime.h" not in text and "__global__" in text:
        result.manual_fixes.append(
            "missing #include <hip/hip_runtime.h> must be added")

    # #ifdef guards keyed on CUDA macros behave differently under HIP
    for macro in _CUDA_GUARD_MACROS:
        if re.search(r"#\s*(ifdef|ifndef|if defined)\s*\(?\s*%s" % macro,
                     text):
            result.manual_fixes.append(
                "#ifdef guard on %s must be removed or rewritten" % macro)

    # textures and other unsupported features
    if re.search(r"\btexture\s*<", text):
        result.manual_fixes.append(
            "CUDA texture references are not translatable")

    result.source = text
    return result
