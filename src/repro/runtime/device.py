"""Device-side buffers (the cudaMalloc/cudaMemcpy surface)."""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from ..interpreter import MemoryBuffer
from ..ir import F32, F64, FloatType, INDEX, IndexType, IntegerType, Type

_DTYPE_TO_TYPE = {
    np.dtype(np.float32): F32,
    np.dtype(np.float64): F64,
    np.dtype(np.int64): INDEX,
    np.dtype(np.int32): INDEX,
}


def _ir_type_for_dtype(dtype) -> Type:
    dtype = np.dtype(dtype)
    if dtype in _DTYPE_TO_TYPE:
        return _DTYPE_TO_TYPE[dtype]
    raise TypeError("unsupported device dtype %s" % dtype)


class DeviceBuffer:
    """A buffer resident on the simulated device.

    Wraps a :class:`~repro.interpreter.MemoryBuffer`; created through
    :class:`~repro.runtime.GPURuntime` so transfers are accounted.
    """

    def __init__(self, shape: Sequence[int], dtype=np.float32,
                 name: str = ""):
        element = _ir_type_for_dtype(dtype)
        # device data is flat from the kernel's point of view
        self.buffer = MemoryBuffer(shape, element, "global", name=name)
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)

    @property
    def nbytes(self) -> int:
        return self.buffer.array.nbytes

    def write(self, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=self.dtype)
        self.buffer.array[...] = data.reshape(self.shape)

    def read(self) -> np.ndarray:
        return np.array(self.buffer.array)

    def fill(self, value) -> None:
        self.buffer.array[...] = value

    def __repr__(self) -> str:
        return "<DeviceBuffer %s %s>" % ("x".join(map(str, self.shape)),
                                         self.dtype)
