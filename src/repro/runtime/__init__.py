"""Simulated GPU runtime: device buffers, transfers, and composite timing."""

from .device import DeviceBuffer
from .gpu_runtime import GPURuntime, LaunchRecord, TimingTracer

__all__ = ["DeviceBuffer", "GPURuntime", "LaunchRecord", "TimingTracer"]
