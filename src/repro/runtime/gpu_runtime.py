"""The simulated GPU runtime: transfers, launches, and composite timing.

The paper's *composite* measurements (§VII-A) cover "the entire
computational part of an application including potentially multiple kernel
launches plus the logic between them and host-device communication". The
runtime accumulates exactly that: modeled kernel seconds (via a
:class:`TimingTracer` hooked into the interpreter) plus PCIe transfer
seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..interpreter import Tracer
from ..simulator.metrics import KernelMetrics
from ..simulator.model import KernelModel
from ..targets import GPUArchitecture
from .device import DeviceBuffer

#: PCIe gen4 x16-ish host/device link
PCIE_BANDWIDTH = 12e9
PCIE_LATENCY = 10e-6


@dataclass
class LaunchRecord:
    """One modeled block-loop execution."""

    kernel_name: str
    num_blocks: int
    threads_per_block: int
    time_seconds: float
    metrics: KernelMetrics


class TimingTracer(Tracer):
    """Charges simulated kernel time as the interpreter executes."""

    def __init__(self, arch: GPUArchitecture):
        self.arch = arch
        self.kernel_seconds = 0.0
        self.records: List[LaunchRecord] = []
        self._models: Dict[int, KernelModel] = {}
        self.enabled = True

    def on_kernel_block_loop(self, op, num_blocks: int) -> None:
        if not self.enabled or num_blocks <= 0:
            return
        # keyed by stable_uid, not id(): id() values can be reused after
        # GC, which would silently return a stale model for a new loop
        key = op.stable_uid()
        model = self._models.get(key)
        if model is None:
            model = KernelModel(op, self.arch)
            self._models[key] = model
        timing = model.time_launch(num_blocks)
        self.kernel_seconds += timing.time_seconds
        wrapper = op.parent_op
        name = ""
        if wrapper is not None:
            name = wrapper.attr("kernel_name", "") or ""
        self.records.append(LaunchRecord(
            name, num_blocks, model.threads_per_block,
            timing.time_seconds, timing.metrics))


class GPURuntime:
    """Tracks device allocations, transfers, and composite simulated time."""

    def __init__(self, arch: GPUArchitecture):
        self.arch = arch
        self.tracer = TimingTracer(arch)
        self.transfer_seconds = 0.0
        self.allocated_bytes = 0

    # -- memory management --------------------------------------------------

    def malloc(self, shape, dtype=np.float32, name: str = "") -> DeviceBuffer:
        if isinstance(shape, int):
            shape = (shape,)
        buffer = DeviceBuffer(shape, dtype, name)
        self.allocated_bytes += buffer.nbytes
        return buffer

    def to_device(self, data: np.ndarray, name: str = "") -> DeviceBuffer:
        """cudaMemcpy host→device (allocates)."""
        data = np.asarray(data)
        buffer = self.malloc(data.shape, data.dtype, name)
        buffer.write(data)
        self._charge_transfer(buffer.nbytes)
        return buffer

    def write(self, buffer: DeviceBuffer, data: np.ndarray) -> None:
        """cudaMemcpy host→device into an existing buffer."""
        buffer.write(data)
        self._charge_transfer(buffer.nbytes)

    def to_host(self, buffer: DeviceBuffer) -> np.ndarray:
        """cudaMemcpy device→host."""
        self._charge_transfer(buffer.nbytes)
        return buffer.read()

    def memset(self, buffer: DeviceBuffer, value=0) -> None:
        buffer.fill(value)

    def _charge_transfer(self, nbytes: int) -> None:
        self.transfer_seconds += PCIE_LATENCY + nbytes / PCIE_BANDWIDTH

    # -- timing ---------------------------------------------------------------

    @property
    def kernel_seconds(self) -> float:
        return self.tracer.kernel_seconds

    @property
    def composite_seconds(self) -> float:
        """Kernel time + host/device communication (§VII-A composite)."""
        return self.tracer.kernel_seconds + self.transfer_seconds

    @property
    def launches(self) -> List[LaunchRecord]:
        return self.tracer.records

    def reset(self) -> None:
        self.tracer.kernel_seconds = 0.0
        self.tracer.records.clear()
        self.transfer_seconds = 0.0
