"""End-to-end compilation pipeline: CUDA source → tuned, runnable Program.

This is the user-facing equivalent of the paper's Polygeist-GPU driver
(Fig. 4): parse CUDA, build the host+device parallel IR, clean it up,
multi-version each kernel with coarsening alternatives, prune by shared
memory and register pressure, select by timing-driven optimization for the
actual launch geometry, and execute on the simulated GPU.

Optimization tiers mirror the Fig. 16 comparison:

* ``tier="clang"``               — baseline: no parallel-aware optimization;
* ``tier="polygeist-noopt"``     — Polygeist's pre-existing optimizations
  (shared-memory LICM, barrier elimination) but no coarsening;
* ``tier="polygeist"``           — full pipeline with coarsening + TDO;
* ``tier="polygeist-heuristic"`` — coarsening chosen by the static
  heuristic (§VIII-A future work) instead of TDO.

:meth:`Program.profile_launch` additionally provides the paper's Fig. 12
profiling mode, where every surviving alternative is *executed* and timed
before the winner is compiled in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from .autotune import default_configs, tune_wrapper
from .autotune.tdo import TuneOutcome
from .dialects import polygeist
from .engine import TuningEngine, default_engine
from .engine.cache import CacheEntry, source_hash, tuning_key
from .frontend import ModuleGenerator, parse_translation_unit
from .interpreter import Interpreter, MemoryBuffer
from .ir import FloatType, IndexType, IntegerType, MemRefType
from .obs import decisions as obs_decisions
from .obs import tracer as obs_tracer
from .obs.log import get_logger
from .runtime import DeviceBuffer, GPURuntime
from .simulator.model import InvalidLaunch
from .targets import A100, GPUArchitecture
from .transforms import run_cleanup

TIERS = ("clang", "polygeist-noopt", "polygeist", "polygeist-heuristic")

logger = get_logger("pipeline")


@dataclass
class LaunchResult:
    """Outcome of one :meth:`Program.launch`."""

    kernel: str
    grid: Tuple[int, ...]
    block: Tuple[int, ...]
    kernel_seconds: float
    tuning: Optional[TuneOutcome] = None


class Program:
    """A compiled CUDA program bound to a target architecture."""

    def __init__(self, source: str, arch: GPUArchitecture = A100,
                 tier: str = "polygeist",
                 autotune_configs: Optional[Sequence[Dict]] = None,
                 defines: Optional[Dict[str, object]] = None,
                 engine: Optional[TuningEngine] = None):
        if tier not in TIERS:
            raise ValueError("tier must be one of %s" % (TIERS,))
        self.arch = arch
        self.tier = tier
        self.autotune_configs = list(autotune_configs) \
            if autotune_configs is not None else default_configs()
        self.engine = engine if engine is not None else default_engine()
        self._source_hash = source_hash(source, defines)
        with self.engine.stats.stage("parse"):
            self.unit = parse_translation_unit(source, defines)
            self.generator = ModuleGenerator(self.unit)
        self.module = self.generator.module
        self._interpreter = Interpreter(self.module)
        self._cleaned: Set[str] = set()
        self._tuned: Set[str] = set()
        self.tuning_outcomes: Dict[str, TuneOutcome] = {}

    def stats(self) -> Dict[str, object]:
        """Per-stage wall time and cache counters of this program's engine.

        The default engine is process-wide, so the numbers aggregate over
        every :class:`Program` sharing it. Everything comes from the
        engine's single :class:`~repro.obs.metrics.MetricsRegistry`; the
        ``gauges``/``histograms`` keys expose the raw instruments beyond
        the classic stage/counter views, and ``cache`` (plus the
        ``engine.cache.*`` counters) carries the tuning cache's
        hit/miss/evict totals and occupancy.
        """
        payload = self.engine.stats.as_dict()
        snapshot = self.engine.stats.registry.snapshot()
        payload["gauges"] = snapshot["gauges"]
        payload["histograms"] = snapshot["histograms"]
        cache_stats = self.engine.cache.stats()
        payload["cache"] = cache_stats
        payload["counters"].update(
            {"engine.cache.%s" % name: cache_stats[name]
             for name in ("hits", "misses", "stores", "evictions",
                          "dump_errors")})
        return payload

    def _run_cleanup(self, parallel: bool) -> None:
        with self.engine.stats.stage("cleanup"):
            run_cleanup(self.module, parallel_optimizations=parallel)

    # -- kernel launches ---------------------------------------------------------

    def launch(self, kernel: str, grid, block, args: Sequence[object],
               runtime: Optional[GPURuntime] = None) -> LaunchResult:
        """Launch ``kernel`` over ``grid`` × ``block`` with ``args``.

        Executes functionally on the simulated device and charges modeled
        kernel time to ``runtime`` (one is created on the fly if omitted).
        """
        grid = _as_dims(grid)
        block = _as_dims(block)
        if runtime is None:
            runtime = GPURuntime(self.arch)
        wrapper_name = self.generator.get_launch_wrapper(
            kernel, len(grid), block)
        if wrapper_name not in self._cleaned:
            self._run_cleanup(self.tier != "clang")
            self._cleaned.add(wrapper_name)
        tuning = None
        if self.tier == "polygeist" and wrapper_name not in self._tuned:
            tuning = self._tune(wrapper_name, grid)
        elif self.tier == "polygeist-heuristic" and \
                wrapper_name not in self._tuned:
            self._tune_heuristic(wrapper_name)
        coerced, writeback = self._coerce_args(wrapper_name, grid, args)
        saved_tracer = self._interpreter.tracer
        self._interpreter.tracer = runtime.tracer
        before = runtime.kernel_seconds
        try:
            self._interpreter.run_func(wrapper_name, coerced)
        finally:
            self._interpreter.tracer = saved_tracer
        for array, buffer in writeback:
            array[...] = buffer.array.reshape(array.shape)
        return LaunchResult(kernel, grid, block,
                            runtime.kernel_seconds - before,
                            tuning or self.tuning_outcomes.get(wrapper_name))

    def profile_launch(self, kernel: str, grid, block,
                       args: Sequence[object],
                       runtime: Optional[GPURuntime] = None,
                       runs_per_alternative: int = 1) -> LaunchResult:
        """The paper's profiling mode (§VI, Fig. 12), end to end.

        Instead of ranking alternatives analytically, the surviving
        alternatives are kept in the IR with dispatch logic (the
        ``polygeist.alternatives`` op), each one is *executed* on the
        simulated device and timed, and the fastest is then selected into
        place — exactly the "execute each alternative one or more times,
        select the best, call the compiler again to remove the others"
        flow. Subsequent :meth:`launch` calls run the winner.
        """
        from .autotune.filters import run_filters
        from .autotune.tdo import Candidate, TuneOutcome
        from .transforms import generate_coarsening_alternatives
        from .transforms.alternatives import select_alternative

        grid = _as_dims(grid)
        block = _as_dims(block)
        if runtime is None:
            runtime = GPURuntime(self.arch)
        wrapper_name = self.generator.get_launch_wrapper(
            kernel, len(grid), block)
        if wrapper_name not in self._cleaned:
            self._run_cleanup(True)
            self._cleaned.add(wrapper_name)
        f = self.module.func(wrapper_name)
        if wrapper_name not in self._tuned:
            self._tuned.add(wrapper_name)
            wrappers = polygeist.find_gpu_wrappers(f)
            if wrappers:
                with self.engine.stats.stage("alternatives"):
                    report = generate_coarsening_alternatives(
                        wrappers[0], self.autotune_configs)
                self.engine.stats.count("alternative_generations")
                self.engine.stats.count("alternatives_generated",
                                        len(report.alternatives))
                if report.op is not None:
                    log = obs_decisions.current()
                    decision = log.begin(wrapper_name, self.arch.name) \
                        if log is not None else None
                    if decision is not None:
                        for info in report.alternatives:
                            decision.add(info.desc,
                                         config=dict(info.config))
                    self._run_cleanup(True)
                    run_filters(report.op, self.arch)
                    coerced, _ = self._coerce_args(wrapper_name, grid, args)
                    # snapshot device state: profiling runs are discarded
                    snapshots = [(value, np.array(value.array))
                                 for value in coerced
                                 if isinstance(value, MemoryBuffer)]
                    descs = list(report.op.attr("alternatives.descs"))
                    candidates = []
                    saved_tracer = self._interpreter.tracer
                    saved_selector = self._interpreter.alternative_selector
                    try:
                        for index in range(len(report.op.regions)):
                            self._interpreter.alternative_selector = \
                                _fixed_selector(index)
                            probe = GPURuntime(self.arch)
                            self._interpreter.tracer = probe.tracer
                            with obs_tracer.span(
                                    "profile.alternative",
                                    category="profile",
                                    desc=descs[index],
                                    runs=runs_per_alternative):
                                for _ in range(runs_per_alternative):
                                    self._interpreter.run_func(
                                        wrapper_name, list(coerced))
                                    # restore device state after EVERY
                                    # run: non-idempotent kernels
                                    # (accumulators) would otherwise time
                                    # runs 2..N on already-mutated inputs
                                    for buffer, snapshot in snapshots:
                                        buffer.array[...] = snapshot
                            candidates.append(Candidate(
                                index, descs[index],
                                probe.kernel_seconds /
                                runs_per_alternative, True))
                    finally:
                        self._interpreter.tracer = saved_tracer
                        self._interpreter.alternative_selector = \
                            saved_selector
                    best = min(candidates, key=lambda c: c.time_seconds)
                    if decision is not None:
                        for candidate in candidates:
                            if candidate is best:
                                continue
                            decision.set_time(candidate.desc,
                                              candidate.time_seconds)
                            decision.eliminate(
                                candidate.desc, obs_decisions.TIMING,
                                "%.3es profiled, slower than the winner"
                                % candidate.time_seconds)
                        decision.select(best.desc, best.time_seconds)
                    logger.info("profiling selected %s (%.3es) for %s",
                                best.desc, best.time_seconds,
                                wrapper_name)
                    select_alternative(report.op, best.index)
                    self._run_cleanup(True)
                    self.tuning_outcomes[wrapper_name] = TuneOutcome(
                        best.desc, best.time_seconds, candidates)
        return self.launch(kernel, grid, block, args, runtime=runtime)

    def tune_aggregate(self, kernel: str, block, grids) -> None:
        """Tune a kernel's wrapper over a whole set of launch geometries.

        This is the paper's profiling mode: alternatives are ranked by
        their time summed over every launch of the application (important
        when grids shrink across launches, as in gaussian).
        """
        block = _as_dims(block)
        grids = [_as_dims(g) for g in grids]
        if not grids:
            return
        wrapper_name = self.generator.get_launch_wrapper(
            kernel, len(grids[0]), block)
        if wrapper_name not in self._cleaned:
            self._run_cleanup(self.tier != "clang")
            self._cleaned.add(wrapper_name)
        if self.tier != "polygeist" or wrapper_name in self._tuned:
            return
        f = self.module.func(wrapper_name)
        wrappers = polygeist.find_gpu_wrappers(f)
        self._tuned.add(wrapper_name)
        if not wrappers:
            return
        grid_args = f.body_block().args[:len(grids[0])]
        envs = [dict(zip(grid_args, grid)) for grid in grids]
        outcome = self._tune_with_cache(wrapper_name, wrappers[0], envs,
                                        [tuple(g) for g in grids])
        if outcome is not None:
            self.tuning_outcomes[wrapper_name] = outcome

    def model_launch(self, kernel: str, grid, block,
                     runtime: Optional[GPURuntime] = None):
        """Model a launch analytically without executing it.

        Used for paper-scale problem sizes where functional interpretation
        would be too slow; tunes on first use exactly like :meth:`launch`
        and returns a :class:`~repro.simulator.model.LaunchTiming`.
        """
        from .simulator.model import model_wrapper_launch
        grid = _as_dims(grid)
        block = _as_dims(block)
        wrapper_name = self.generator.get_launch_wrapper(
            kernel, len(grid), block)
        if wrapper_name not in self._cleaned:
            self._run_cleanup(self.tier != "clang")
            self._cleaned.add(wrapper_name)
        if self.tier == "polygeist" and wrapper_name not in self._tuned:
            self._tune(wrapper_name, grid)
        elif self.tier == "polygeist-heuristic" and \
                wrapper_name not in self._tuned:
            self._tune_heuristic(wrapper_name)
        f = self.module.func(wrapper_name)
        wrappers = polygeist.find_gpu_wrappers(f)
        if not wrappers:
            raise InvalidLaunch("no GPU wrapper in %s" % wrapper_name)
        env = dict(zip(f.body_block().args[:len(grid)], grid))
        if not hasattr(self, "_model_cache"):
            self._model_cache = {}
        timing = model_wrapper_launch(wrappers[0], self.arch, env,
                                      self._model_cache)
        if runtime is not None:
            runtime.tracer.kernel_seconds += timing.time_seconds
        return timing

    def model_launch_seconds(self, kernel: str, block,
                             grids) -> List[float]:
        """Modeled seconds for many launches of one kernel × block shape.

        Produces exactly ``[self.model_launch(kernel, g, block)
        .time_seconds for g in grids]`` — same floats, same tuning side
        effects, same failure points — but with one wrapper lookup and
        one vectorized grid-size evaluation for the whole group instead
        of a full walk per launch. This is the composite-modeling hot
        path of :func:`repro.benchsuite.base.simulate_composite`.
        """
        from .simulator.model import KernelModel, block_counts
        from .transforms.coarsen import block_parallels
        block = _as_dims(block)
        grids = [_as_dims(g) for g in grids]
        if not grids:
            return []
        wrapper_name = self.generator.get_launch_wrapper(
            kernel, len(grids[0]), block)
        if wrapper_name not in self._cleaned:
            self._run_cleanup(self.tier != "clang")
            self._cleaned.add(wrapper_name)
        if self.tier == "polygeist" and wrapper_name not in self._tuned:
            self._tune(wrapper_name, grids[0])
        elif self.tier == "polygeist-heuristic" and \
                wrapper_name not in self._tuned:
            self._tune_heuristic(wrapper_name)
        f = self.module.func(wrapper_name)
        wrappers = polygeist.find_gpu_wrappers(f)
        if not wrappers:
            raise InvalidLaunch("no GPU wrapper in %s" % wrapper_name)
        if not hasattr(self, "_model_cache"):
            self._model_cache = {}
        envs = [dict(zip(f.body_block().args[:len(grid)], grid))
                for grid in grids]
        loops = block_parallels(wrappers[0])
        with obs_tracer.span("model.launch_group", category="simulator",
                             launches=len(envs)) as span:
            loop_blocks = [block_counts(loop, envs) for loop in loops]
            models = []
            for loop in loops:
                key = loop.stable_uid()
                model = self._model_cache.get(key)
                if model is None:
                    model = KernelModel(loop, self.arch)
                    self._model_cache[key] = model
                models.append(model)
            seconds = []
            for position in range(len(envs)):
                # same accumulation grouping as model_wrapper_launch
                total_time = 0.0
                for blocks_per_env, model in zip(loop_blocks, models):
                    blocks = blocks_per_env[position]
                    if blocks is None:
                        raise InvalidLaunch("cannot evaluate grid size "
                                            "for modeling")
                    if blocks > 0:
                        total_time += model.time_seconds_for(blocks)
                seconds.append(total_time)
            span.set(seconds=sum(seconds))
        return seconds

    def _tune_heuristic(self, wrapper_name: str) -> None:
        """Apply the static heuristic (SVIII-A future work) in place."""
        from .autotune import heuristic_tune
        self._tuned.add(wrapper_name)
        f = self.module.func(wrapper_name)
        wrappers = polygeist.find_gpu_wrappers(f)
        if not wrappers:
            return
        choice = heuristic_tune(wrappers[0], self.arch)
        self._run_cleanup(True)
        self.heuristic_choices = getattr(self, "heuristic_choices", {})
        self.heuristic_choices[wrapper_name] = choice

    def _tune(self, wrapper_name: str, grid: Tuple[int, ...]
              ) -> Optional[TuneOutcome]:
        f = self.module.func(wrapper_name)
        wrappers = polygeist.find_gpu_wrappers(f)
        self._tuned.add(wrapper_name)
        if not wrappers:
            return None
        env = dict(zip(f.body_block().args[:len(grid)], grid))
        outcome = self._tune_with_cache(wrapper_name, wrappers[0], [env],
                                        [tuple(grid)])
        if outcome is not None:
            self.tuning_outcomes[wrapper_name] = outcome
        return outcome

    # -- cached tuning ------------------------------------------------------------

    def _tuning_key(self, wrapper_name: str,
                    grids: Sequence[Tuple[int, ...]]) -> str:
        return tuning_key(self._source_hash, self.arch, self.tier,
                          self.autotune_configs, wrapper_name, grids)

    def _tune_with_cache(self, wrapper_name: str, wrapper,
                         envs: List[Dict], grids: Sequence[Tuple[int, ...]]
                         ) -> Optional[TuneOutcome]:
        """Tune one wrapper, consulting the engine's tuning cache.

        On a hit the cached winner's coarsening is replayed directly on
        the wrapper — no alternative generation, filtering, or TDO runs at
        all. Failed tunings are cached as negative entries so they are not
        retried either.
        """
        cache = self.engine.cache
        stats = self.engine.stats
        key = self._tuning_key(wrapper_name, grids)
        hit, entry = cache.lookup(key)
        if hit and (entry.outcome is None or
                    entry.selected_config is not None):
            stats.count("cache_hits")
            return self._replay_cached(wrapper, entry)
        stats.count("cache_misses")
        try:
            outcome = tune_wrapper(wrapper, self.arch, envs,
                                   self.autotune_configs,
                                   engine=self.engine)
        except (ValueError, InvalidLaunch):
            cache.store(key, CacheEntry(None, None))
            return None  # keep the untransformed kernel
        self._run_cleanup(True)
        cache.store(key, CacheEntry(outcome, outcome.selected_config))
        return outcome

    def _replay_cached(self, wrapper,
                       entry: CacheEntry) -> Optional[TuneOutcome]:
        """Apply a cached tuning decision to a freshly built wrapper."""
        if entry.outcome is None:
            return None  # tuning is known to fail for this key
        from .transforms.coarsen import CoarsenError, coarsen_wrapper
        config = {key: tuple(value) if isinstance(value, list) else value
                  for key, value in entry.selected_config.items()}
        with self.engine.stats.stage("replay"):
            try:
                coarsen_wrapper(wrapper, **config)
            except CoarsenError:
                return None
        self._run_cleanup(True)
        return entry.outcome

    def _coerce_args(self, wrapper_name: str, grid: Tuple[int, ...],
                     args: Sequence[object]):
        f = self.module.func(wrapper_name)
        params = f.body_block().args
        expected = len(params) - len(grid)
        if len(args) != expected:
            raise TypeError("%s expects %d kernel arguments, got %d" %
                            (wrapper_name, expected, len(args)))
        coerced: List[object] = list(grid)
        writeback: List[Tuple[np.ndarray, MemoryBuffer]] = []
        for param, value in zip(params[len(grid):], args):
            type_ = param.type
            if isinstance(type_, MemRefType):
                if isinstance(value, DeviceBuffer):
                    coerced.append(value.buffer)
                elif isinstance(value, MemoryBuffer):
                    coerced.append(value)
                elif isinstance(value, np.ndarray):
                    buffer = MemoryBuffer(value.shape,
                                          _element_for(value.dtype),
                                          "global", data=value)
                    writeback.append((value, buffer))
                    coerced.append(buffer)
                else:
                    raise TypeError("expected a buffer for %r" %
                                    param.name_hint)
            elif isinstance(type_, FloatType):
                coerced.append(np.float32(value) if type_.width == 32
                               else np.float64(value))
            elif isinstance(type_, (IndexType, IntegerType)):
                coerced.append(int(value))
            else:
                coerced.append(value)
        return coerced, writeback

    # -- host-driven execution ---------------------------------------------------

    def run_host(self, func_name: str, args: Sequence[object],
                 runtime: Optional[GPURuntime] = None) -> List[object]:
        """Run a host C function (with its inlined launches) end to end.

        Host-driven flows have data-dependent grids, so coarsening with TDO
        is skipped; the cleanup tier still applies.
        """
        if runtime is None:
            runtime = GPURuntime(self.arch)
        if func_name not in self._cleaned:
            if not self.module.has_func(func_name):
                self.generator.emit_host_function(func_name)
            self._run_cleanup(self.tier != "clang")
            self._cleaned.add(func_name)
        coerced: List[object] = []
        writeback: List[Tuple[np.ndarray, MemoryBuffer]] = []
        f = self.module.func(func_name)
        for param, value in zip(f.body_block().args, args):
            type_ = param.type
            if isinstance(type_, MemRefType):
                if isinstance(value, DeviceBuffer):
                    coerced.append(value.buffer)
                elif isinstance(value, MemoryBuffer):
                    coerced.append(value)
                elif isinstance(value, np.ndarray):
                    buffer = MemoryBuffer(value.shape,
                                          _element_for(value.dtype),
                                          "global", data=value)
                    writeback.append((value, buffer))
                    coerced.append(buffer)
                else:
                    raise TypeError("expected a buffer argument")
            elif isinstance(type_, FloatType):
                coerced.append(np.float32(value) if type_.width == 32
                               else np.float64(value))
            else:
                coerced.append(int(value))
        saved = self._interpreter.tracer
        self._interpreter.tracer = runtime.tracer
        try:
            results = self._interpreter.run_func(func_name, coerced)
        finally:
            self._interpreter.tracer = saved
        for array, buffer in writeback:
            array[...] = buffer.array.reshape(array.shape)
        return results

    def kernels(self) -> List[str]:
        return [f.name for f in self.unit.kernels()]


def _fixed_selector(index: int):
    """An alternative_selector that always picks region ``index``.

    Raises instead of clamping: silently picking a different region than
    requested would attribute one alternative's timing to another.
    """
    def select(op):
        if not 0 <= index < len(op.regions):
            raise IndexError(
                "alternative index %d out of range: op has %d regions"
                % (index, len(op.regions)))
        return index
    return select


def _as_dims(value) -> Tuple[int, ...]:
    if isinstance(value, int):
        return (value,)
    dims = tuple(int(v) for v in value)
    if not 1 <= len(dims) <= 3:
        raise ValueError("grid/block must have 1 to 3 dimensions")
    return dims


def _element_for(dtype):
    from .ir import F32, F64, INDEX
    dtype = np.dtype(dtype)
    if dtype == np.float32:
        return F32
    if dtype == np.float64:
        return F64
    if dtype in (np.dtype(np.int32), np.dtype(np.int64)):
        return INDEX
    raise TypeError("unsupported array dtype %s" % dtype)


def compile_cuda(source: str, arch: Optional[GPUArchitecture] = None,
                 **kwargs) -> Program:
    """Compile CUDA source text into a :class:`Program`."""
    return Program(source, arch=arch or A100, **kwargs)
