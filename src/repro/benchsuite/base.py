"""Benchmark infrastructure: the common harness for all Rodinia ports.

Each benchmark provides:

* ``SOURCE``       — CUDA text in the supported subset;
* ``run_gpu``      — the host driver (allocations, launches, readback),
  executed *functionally* on the interpreter at a small ``verify`` size;
* ``run_cpu``      — a numpy reference for correctness checking;
* ``iter_launches``— the launch sequence at a given problem size, used to
  *model* composite time analytically at paper-scale sizes without
  interpreting every thread.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..pipeline import Program
from ..runtime import GPURuntime
from ..runtime.gpu_runtime import PCIE_BANDWIDTH, PCIE_LATENCY
from ..targets import GPUArchitecture

#: (kernel name, grid dims, block dims)
Launch = Tuple[str, Tuple[int, ...], Tuple[int, ...]]

#: memoized Benchmark.transfer_bytes results, keyed (name, size)
_TRANSFER_BYTES: Dict[Tuple[str, int], int] = {}


@dataclass
class BenchmarkResult:
    name: str
    passed: bool
    max_error: float
    composite_seconds: float
    kernel_seconds: float
    notes: List[str] = field(default_factory=list)


class Benchmark:
    """Base class; subclasses register themselves in :data:`BENCHMARKS`."""

    name: str = ""
    #: CUDA source text
    source: str = ""
    #: uses double-precision arithmetic (drives the AMD f64 story)
    uses_double: bool = False
    #: default problem size for functional verification (small)
    verify_size: int = 0
    #: default problem size for performance modeling (paper-ish)
    model_size: int = 0
    #: relative tolerance for CPU/GPU comparison
    rtol: float = 1e-4

    # -- to implement ------------------------------------------------------

    def build_inputs(self, size: int, seed: int = 0) -> Dict[str, np.ndarray]:
        raise NotImplementedError

    def run_gpu(self, program: Program, runtime: GPURuntime,
                inputs: Dict[str, np.ndarray], size: int
                ) -> Dict[str, np.ndarray]:
        raise NotImplementedError

    def run_cpu(self, inputs: Dict[str, np.ndarray], size: int
                ) -> Dict[str, np.ndarray]:
        raise NotImplementedError

    def iter_launches(self, size: int) -> Iterator[Launch]:
        raise NotImplementedError

    def transfer_bytes(self, size: int) -> int:
        """Bytes moved over PCIe during the composite run.

        Memoized per (benchmark, size): the byte count requires building
        the full model-size inputs (seconds at paper scale), and every
        arch × tier cell of a fig16/fig17 sweep re-asks the same question.
        """
        key = (self.name, size)
        cached = _TRANSFER_BYTES.get(key)
        if cached is None:
            inputs = self.build_inputs(size)
            cached = sum(a.nbytes for a in inputs.values()) * 2
            _TRANSFER_BYTES[key] = cached
        return cached

    # -- harness --------------------------------------------------------------

    def compare(self, got: Dict[str, np.ndarray],
                want: Dict[str, np.ndarray]) -> float:
        """Maximum relative error across all output arrays."""
        worst = 0.0
        for key, expected in want.items():
            actual = got[key]
            scale = np.maximum(np.abs(expected), 1.0)
            error = float(np.max(np.abs(actual - expected) / scale)) \
                if expected.size else 0.0
            worst = max(worst, error)
        return worst


BENCHMARKS: Dict[str, Benchmark] = {}


def register(benchmark_class):
    """Class decorator adding a benchmark to the registry."""
    instance = benchmark_class()
    if not instance.name:
        raise ValueError("benchmark needs a name")
    BENCHMARKS[instance.name] = instance
    return benchmark_class


def get_benchmark(name: str) -> Benchmark:
    return BENCHMARKS[name]


def verify_benchmark(name: str, arch: GPUArchitecture,
                     tier: str = "polygeist",
                     autotune_configs: Optional[Sequence[Dict]] = None,
                     size: Optional[int] = None,
                     seed: int = 0) -> BenchmarkResult:
    """Run a benchmark functionally and compare against the CPU reference.

    This is the paper's §VII-A correctness methodology: the same benchmark
    compiled in different configurations must produce matching outputs.
    """
    bench = get_benchmark(name)
    size = size or bench.verify_size
    inputs = bench.build_inputs(size, seed)
    program = Program(bench.source, arch=arch, tier=tier,
                      autotune_configs=autotune_configs)
    runtime = GPURuntime(arch)
    gpu_inputs = {k: np.array(v) for k, v in inputs.items()}
    got = bench.run_gpu(program, runtime, gpu_inputs, size)
    want = bench.run_cpu({k: np.array(v) for k, v in inputs.items()}, size)
    error = bench.compare(got, want)
    return BenchmarkResult(
        name=name,
        passed=error <= bench.rtol,
        max_error=error,
        composite_seconds=runtime.composite_seconds,
        kernel_seconds=runtime.kernel_seconds,
    )


def simulate_composite(name: str, arch,
                       tier: str = "polygeist",
                       autotune_configs: Optional[Sequence[Dict]] = None,
                       size: Optional[int] = None,
                       engine=None) -> float:
    """Model the composite time of a benchmark at paper-scale size.

    Sums analytically-modeled kernel launches (tuned per the tier) plus
    PCIe transfer time — no functional interpretation, so large problem
    sizes are cheap. ``arch`` may be a :class:`GPUArchitecture` or an
    architecture name (resolved via ``arch_by_name``), so sweep jobs can
    stay picklable by shipping the name. ``engine`` (a
    :class:`~repro.engine.TuningEngine`) overrides the process-wide
    default — the ``repro serve`` daemon passes a per-job engine over
    the shared on-disk cache so hit/miss accounting stays per request.
    """
    if isinstance(arch, str):
        from ..targets import arch_by_name
        arch = arch_by_name(arch)
    from ..simulator.model import use_scalar_model
    bench = get_benchmark(name)
    size = size or bench.model_size
    program = Program(bench.source, arch=arch, tier=tier,
                      autotune_configs=autotune_configs, engine=engine)
    launches = list(bench.iter_launches(size))
    grouped: Dict[Tuple[str, Tuple[int, ...]], List] = {}
    for kernel, grid, block in launches:
        grouped.setdefault((kernel, tuple(block)), []).append(grid)
    if tier == "polygeist":
        # profiling-mode tuning: rank alternatives over ALL launches
        for (kernel, block), grids in grouped.items():
            program.tune_aggregate(kernel, block, grids)
    total = 0.0
    if use_scalar_model():
        # the per-launch reference path
        for kernel, grid, block in launches:
            timing = program.model_launch(kernel, grid, block)
            total += timing.time_seconds
    else:
        # model each kernel group's launches in one batch, then reduce
        # in the original launch order (same float accumulation as the
        # reference path — groups interleave in e.g. lud)
        per_group = {key: iter(program.model_launch_seconds(
            key[0], key[1], grids)) for key, grids in grouped.items()}
        for kernel, grid, block in launches:
            total += next(per_group[(kernel, tuple(block))])
    bytes_moved = bench.transfer_bytes(size)
    total += 2 * PCIE_LATENCY + bytes_moved / PCIE_BANDWIDTH
    return total
