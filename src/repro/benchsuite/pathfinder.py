"""pathfinder — grid dynamic programming (Rodinia).

256-thread blocks, two shared buffers, and a per-block pyramid of HALO
iterations with barriers inside a uniform-bound loop — a prime
unroll-jam-interleave workload.
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np

from ..pipeline import Program
from ..runtime import GPURuntime
from .base import Benchmark, Launch, register

BLOCK = 256
PYRAMID = 2  # rows processed per kernel launch

SOURCE = r"""
#define BS 256

__global__ void dynproc_kernel(int iteration, int *gpuWall, int *gpuSrc,
                               int *gpuResults, int cols, int startStep,
                               int border) {
    __shared__ int prev[BS];
    __shared__ int result[BS];
    int bx = blockIdx.x;
    int tx = threadIdx.x;

    int small_block_cols = BS - iteration * 2;
    int blkX = small_block_cols * bx - border;
    int xidx = blkX + tx;

    int validXmin = 0;
    int validXmax = BS - 1;
    if (blkX < 0) {
        validXmin = -blkX;
    }
    if (blkX + BS - 1 > cols - 1) {
        validXmax = BS - 1 - (blkX + BS - cols);
    }

    int isValid = 0;
    if (tx >= validXmin && tx <= validXmax) {
        isValid = 1;
    }
    if (xidx >= 0 && xidx <= cols - 1) {
        prev[tx] = gpuSrc[xidx];
    }
    __syncthreads();

    for (int i = 0; i < iteration; i++) {
        if (tx >= i + 1 && tx <= BS - i - 2 && isValid == 1) {
            int left = prev[max(tx - 1, validXmin)];
            int up = prev[tx];
            int right = prev[min(tx + 1, validXmax)];
            int shortest = min(left, min(up, right));
            int index = cols * (startStep + i) + xidx;
            result[tx] = shortest + gpuWall[index];
        }
        __syncthreads();
        if (i < iteration - 1) {
            if (tx >= i + 1 && tx <= BS - i - 2 && isValid == 1) {
                prev[tx] = result[tx];
            }
            __syncthreads();
        }
    }
    if (tx >= iteration && tx <= BS - iteration - 1 && isValid == 1 &&
        xidx >= 0 && xidx <= cols - 1) {
        gpuResults[xidx] = result[tx];
    }
}
"""


def pathfinder_reference(wall: np.ndarray) -> np.ndarray:
    rows, cols = wall.shape
    dst = wall[0].astype(np.int64).copy()
    for r in range(1, rows):
        left = np.concatenate([dst[:1], dst[:-1]])
        right = np.concatenate([dst[1:], dst[-1:]])
        dst = np.minimum(np.minimum(left, right), dst) + wall[r]
    return dst


@register
class Pathfinder(Benchmark):
    name = "pathfinder"
    source = SOURCE
    verify_size = 1024   # columns; rows = 1 + steps*PYRAMID
    model_size = 100000
    rows_steps = 2
    model_rows_steps = 50
    rtol = 0.0

    def _grid(self, cols: int, iteration: int) -> int:
        small = BLOCK - iteration * 2
        return -(-cols // small)

    def build_inputs(self, size: int, seed: int = 0):
        rng = np.random.default_rng(seed)
        rows = 1 + self.rows_steps * PYRAMID
        wall = rng.integers(0, 10, size=(rows, size)).astype(np.int64)
        return {"wall": wall}

    def iter_launches(self, size: int) -> Iterator[Launch]:
        grid = self._grid(size, PYRAMID)
        for _ in range(self.model_rows_steps):
            yield ("dynproc_kernel", (grid,), (BLOCK,))

    def run_gpu(self, program: Program, runtime: GPURuntime,
                inputs: Dict[str, np.ndarray], size: int):
        wall = inputs["wall"]
        rows = wall.shape[0]
        gpu_wall = runtime.to_device(wall[1:].ravel())
        src = runtime.to_device(wall[0])
        dst = runtime.malloc(size, np.int64)
        start = 0
        while start < rows - 1:
            iteration = min(PYRAMID, rows - 1 - start)
            grid = self._grid(size, iteration)
            program.launch("dynproc_kernel", (grid,), (BLOCK,),
                           [iteration, gpu_wall, src, dst, size, start,
                            iteration], runtime=runtime)
            src, dst = dst, src
            start += iteration
        return {"dst": runtime.to_host(src)}

    def run_cpu(self, inputs: Dict[str, np.ndarray], size: int):
        return {"dst": pathfinder_reference(inputs["wall"])}
