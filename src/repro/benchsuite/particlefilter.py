"""particlefilter — sequential Monte Carlo tracker (Rodinia "float" app;
the arithmetic the paper attributes the AMD advantage to is double).

Three kernels: likelihood (double exp), a partial-sum reduction, and
normalize + systematic resampling index search.
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np

from ..pipeline import Program
from ..runtime import GPURuntime
from .base import Benchmark, Launch, register

BLOCK = 128

SOURCE = r"""
#define BS 128

__global__ void likelihood_kernel(double *arrayX, double *arrayY,
                                  double *objxy, double *likelihood,
                                  int countOnes, int numParticles) {
    int i = blockDim.x * blockIdx.x + threadIdx.x;
    if (i >= numParticles) return;
    double sum = 0.0;
    for (int j = 0; j < countOnes; j++) {
        double dx = arrayX[i] - objxy[j * 2];
        double dy = arrayY[i] - objxy[j * 2 + 1];
        sum += dx * dx + dy * dy;
    }
    likelihood[i] = exp(-sum / (2.0 * countOnes));
}

__global__ void sum_kernel(double *weights, double *partial,
                           int numParticles) {
    __shared__ double psum[BS];
    int tx = threadIdx.x;
    int i = blockDim.x * blockIdx.x + tx;
    double v = 0.0;
    if (i < numParticles) {
        v = weights[i];
    }
    psum[tx] = v;
    __syncthreads();
    for (int it = 0; it < 7; it++) {
        int stride = BS >> (it + 1);
        if (tx < stride) {
            psum[tx] += psum[tx + stride];
        }
        __syncthreads();
    }
    if (tx == 0) {
        partial[blockIdx.x] = psum[0];
    }
}

__global__ void normalize_kernel(double *weights, double *likelihood,
                                 double total, int numParticles) {
    int i = blockDim.x * blockIdx.x + threadIdx.x;
    if (i >= numParticles) return;
    weights[i] = likelihood[i] / total;
}

__global__ void find_index_kernel(double *cdf, double *u, int *indices,
                                  int numParticles) {
    int i = blockDim.x * blockIdx.x + threadIdx.x;
    if (i >= numParticles) return;
    int index = numParticles - 1;
    int found = 0;
    for (int j = 0; j < numParticles; j++) {
        if (found == 0 && cdf[j] >= u[i]) {
            index = j;
            found = 1;
        }
    }
    indices[i] = index;
}
"""


@register
class ParticleFilter(Benchmark):
    name = "particlefilter"
    source = SOURCE
    uses_double = True
    verify_size = 128   # particles
    model_size = 1 << 17
    count_ones = 8
    rtol = 1e-9

    def build_inputs(self, size: int, seed: int = 0):
        rng = np.random.default_rng(seed)
        return {
            "arrayX": rng.random(size) * 10,
            "arrayY": rng.random(size) * 10,
            "objxy": rng.random(self.count_ones * 2) * 5,
            "u": np.sort(rng.random(size)),
        }

    def iter_launches(self, size: int) -> Iterator[Launch]:
        grid = -(-size // BLOCK)
        yield ("likelihood_kernel", (grid,), (BLOCK,))
        yield ("sum_kernel", (grid,), (BLOCK,))
        yield ("normalize_kernel", (grid,), (BLOCK,))
        yield ("find_index_kernel", (grid,), (BLOCK,))

    def run_gpu(self, program: Program, runtime: GPURuntime,
                inputs: Dict[str, np.ndarray], size: int):
        grid = -(-size // BLOCK)
        ax = runtime.to_device(inputs["arrayX"])
        ay = runtime.to_device(inputs["arrayY"])
        objxy = runtime.to_device(inputs["objxy"])
        likelihood = runtime.malloc(size, np.float64)
        program.launch("likelihood_kernel", (grid,), (BLOCK,),
                       [ax, ay, objxy, likelihood, self.count_ones, size],
                       runtime=runtime)
        partial = runtime.malloc(grid, np.float64)
        program.launch("sum_kernel", (grid,), (BLOCK,),
                       [likelihood, partial, size], runtime=runtime)
        total = float(runtime.to_host(partial).sum())
        weights = runtime.malloc(size, np.float64)
        program.launch("normalize_kernel", (grid,), (BLOCK,),
                       [weights, likelihood, total, size], runtime=runtime)
        w = runtime.to_host(weights)
        cdf = runtime.to_device(np.cumsum(w))
        u = runtime.to_device(inputs["u"])
        indices = runtime.malloc(size, np.int64)
        program.launch("find_index_kernel", (grid,), (BLOCK,),
                       [cdf, u, indices, size], runtime=runtime)
        return {"weights": w, "indices": runtime.to_host(indices)}

    def run_cpu(self, inputs: Dict[str, np.ndarray], size: int):
        ax, ay = inputs["arrayX"], inputs["arrayY"]
        objxy = inputs["objxy"].reshape(-1, 2)
        dx = ax[:, None] - objxy[None, :, 0]
        dy = ay[:, None] - objxy[None, :, 1]
        s = (dx * dx + dy * dy).sum(axis=1)
        likelihood = np.exp(-s / (2.0 * self.count_ones))
        total = 0.0
        # match the GPU's blocked summation order exactly in float64
        weights = likelihood / likelihood.sum()
        # tolerate summation-order differences via rtol instead
        cdf = np.cumsum(weights)
        indices = np.empty(size, dtype=np.int64)
        for i, threshold in enumerate(inputs["u"]):
            hits = np.nonzero(cdf >= threshold)[0]
            indices[i] = hits[0] if hits.size else size - 1
        return {"weights": weights, "indices": indices}
