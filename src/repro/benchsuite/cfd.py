"""cfd — unstructured-grid Euler solver (Rodinia's euler3d).

The ``compute_flux`` kernel: per-element flux accumulation over four
neighbors through an indirection array — scattered (uncoalesced) loads,
moderate fp32 arithmetic, no shared memory. A classic memory-divergence
workload.
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np

from ..pipeline import Program
from ..runtime import GPURuntime
from .base import Benchmark, Launch, register

BLOCK = 192          # Rodinia's BLOCK_SIZE_3
NNB = 4              # neighbors per element
NVAR = 5             # density, 3 x momentum, energy

SOURCE = r"""
#define NNB 4
#define NVAR 5

__global__ void cuda_compute_flux(int nelr, int *neighbors,
                                  float *normals, float *variables,
                                  float *fluxes, float smoothing) {
    int i = blockDim.x * blockIdx.x + threadIdx.x;
    if (i >= nelr) return;

    float density_i = variables[i * NVAR];
    float mx_i = variables[i * NVAR + 1];
    float my_i = variables[i * NVAR + 2];
    float mz_i = variables[i * NVAR + 3];
    float energy_i = variables[i * NVAR + 4];

    float flux_density = 0.0f;
    float flux_x = 0.0f;
    float flux_y = 0.0f;
    float flux_z = 0.0f;
    float flux_energy = 0.0f;

    for (int j = 0; j < NNB; j++) {
        int nb = neighbors[i * NNB + j];
        float nx = normals[(i * NNB + j) * 3];
        float ny = normals[(i * NNB + j) * 3 + 1];
        float nz = normals[(i * NNB + j) * 3 + 2];
        if (nb >= 0) {
            float density_nb = variables[nb * NVAR];
            float mx_nb = variables[nb * NVAR + 1];
            float my_nb = variables[nb * NVAR + 2];
            float mz_nb = variables[nb * NVAR + 3];
            float energy_nb = variables[nb * NVAR + 4];
            float factor = smoothing * (density_i + density_nb);
            flux_density += factor * (nx * (mx_i + mx_nb) +
                                      ny * (my_i + my_nb) +
                                      nz * (mz_i + mz_nb));
            flux_x += factor * nx * (density_nb - density_i);
            flux_y += factor * ny * (density_nb - density_i);
            flux_z += factor * nz * (density_nb - density_i);
            flux_energy += factor * (energy_nb - energy_i);
        }
    }
    fluxes[i * NVAR] = flux_density;
    fluxes[i * NVAR + 1] = flux_x;
    fluxes[i * NVAR + 2] = flux_y;
    fluxes[i * NVAR + 3] = flux_z;
    fluxes[i * NVAR + 4] = flux_energy;
}

__global__ void cuda_time_step(int nelr, float *variables, float *fluxes,
                               float dt) {
    int i = blockDim.x * blockIdx.x + threadIdx.x;
    if (i >= nelr) return;
    for (int v = 0; v < NVAR; v++) {
        variables[i * NVAR + v] += dt * fluxes[i * NVAR + v];
    }
}
"""


def cfd_reference(variables, neighbors, normals, smoothing, dt, nelr):
    var = variables.astype(np.float32).reshape(nelr, NVAR).copy()
    nb = neighbors.reshape(nelr, NNB)
    nm = normals.astype(np.float32).reshape(nelr, NNB, 3)
    fluxes = np.zeros_like(var)
    smoothing = np.float32(smoothing)
    for i in range(nelr):
        fd = np.float32(0.0)
        fx = np.float32(0.0)
        fy = np.float32(0.0)
        fz = np.float32(0.0)
        fe = np.float32(0.0)
        for j in range(NNB):
            n = nb[i, j]
            if n < 0:
                continue
            nx, ny, nz = nm[i, j]
            factor = smoothing * (var[i, 0] + var[n, 0])
            fd += factor * (nx * (var[i, 1] + var[n, 1]) +
                            ny * (var[i, 2] + var[n, 2]) +
                            nz * (var[i, 3] + var[n, 3]))
            fx += factor * nx * (var[n, 0] - var[i, 0])
            fy += factor * ny * (var[n, 0] - var[i, 0])
            fz += factor * nz * (var[n, 0] - var[i, 0])
            fe += factor * (var[n, 4] - var[i, 4])
        fluxes[i] = (fd, fx, fy, fz, fe)
    var = (var + np.float32(dt) * fluxes).astype(np.float32)
    return var.ravel(), fluxes.ravel()


@register
class CFD(Benchmark):
    name = "cfd"
    source = SOURCE
    verify_size = 384    # elements
    model_size = 200000
    rtol = 1e-4

    def build_inputs(self, size: int, seed: int = 0):
        rng = np.random.default_rng(seed)
        neighbors = rng.integers(-1, size,
                                 size=size * NNB).astype(np.int64)
        return {
            "variables": rng.random(size * NVAR, dtype=np.float32) + 1.0,
            "neighbors": neighbors,
            "normals": (rng.random(size * NNB * 3,
                                   dtype=np.float32) - 0.5),
        }

    def iter_launches(self, size: int) -> Iterator[Launch]:
        grid = -(-size // BLOCK)
        for _ in range(8):  # RK iterations
            yield ("cuda_compute_flux", (grid,), (BLOCK,))
            yield ("cuda_time_step", (grid,), (BLOCK,))

    def run_gpu(self, program: Program, runtime: GPURuntime,
                inputs: Dict[str, np.ndarray], size: int):
        grid = -(-size // BLOCK)
        variables = runtime.to_device(inputs["variables"])
        neighbors = runtime.to_device(inputs["neighbors"])
        normals = runtime.to_device(inputs["normals"])
        fluxes = runtime.malloc(size * NVAR, np.float32)
        program.launch("cuda_compute_flux", (grid,), (BLOCK,),
                       [size, neighbors, normals, variables, fluxes, 0.1],
                       runtime=runtime)
        program.launch("cuda_time_step", (grid,), (BLOCK,),
                       [size, variables, fluxes, 0.01], runtime=runtime)
        return {"variables": runtime.to_host(variables),
                "fluxes": runtime.to_host(fluxes)}

    def run_cpu(self, inputs: Dict[str, np.ndarray], size: int):
        variables, fluxes = cfd_reference(
            inputs["variables"], inputs["neighbors"], inputs["normals"],
            0.1, 0.01, size)
        return {"variables": variables, "fluxes": fluxes}
