"""streamcluster — online clustering gain computation (Rodinia/PARSEC).

The ``compute_cost`` kernel evaluates, for every point, the cost delta of
opening a candidate center: a dimension loop over global memory plus an
atomic accumulation of the total gain.
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np

from ..pipeline import Program
from ..runtime import GPURuntime
from .base import Benchmark, Launch, register

BLOCK = 256
DIMS = 8

SOURCE = r"""
#define DIMS 8

__global__ void compute_cost(float *coords, float *center, float *weights,
                             float *costs, float *gain, int num_points) {
    int i = blockDim.x * blockIdx.x + threadIdx.x;
    if (i >= num_points) return;
    float dist = 0.0f;
    for (int d = 0; d < DIMS; d++) {
        float diff = coords[i * DIMS + d] - center[d];
        dist += diff * diff;
    }
    float new_cost = dist * weights[i];
    float delta = new_cost - costs[i];
    if (delta < 0.0f) {
        costs[i] = new_cost;
        atomicAdd(&gain[0], delta);
    }
}
"""


@register
class StreamCluster(Benchmark):
    name = "streamcluster"
    source = SOURCE
    verify_size = 1024
    model_size = 1 << 20
    rtol = 1e-2  # atomic accumulation order differs from numpy's sum

    def build_inputs(self, size: int, seed: int = 0):
        rng = np.random.default_rng(seed)
        return {
            "coords": rng.random(size * DIMS, dtype=np.float32),
            "center": rng.random(DIMS, dtype=np.float32),
            "weights": (rng.random(size, dtype=np.float32) + 0.5),
            "costs": (rng.random(size, dtype=np.float32) * 2),
        }

    def iter_launches(self, size: int) -> Iterator[Launch]:
        grid = -(-size // BLOCK)
        yield ("compute_cost", (grid,), (BLOCK,))

    def run_gpu(self, program: Program, runtime: GPURuntime,
                inputs: Dict[str, np.ndarray], size: int):
        grid = -(-size // BLOCK)
        coords = runtime.to_device(inputs["coords"])
        center = runtime.to_device(inputs["center"])
        weights = runtime.to_device(inputs["weights"])
        costs = runtime.to_device(inputs["costs"])
        gain = runtime.malloc(1, np.float32)
        program.launch("compute_cost", (grid,), (BLOCK,),
                       [coords, center, weights, costs, gain, size],
                       runtime=runtime)
        return {"costs": runtime.to_host(costs),
                "gain": runtime.to_host(gain)}

    def run_cpu(self, inputs: Dict[str, np.ndarray], size: int):
        coords = inputs["coords"].reshape(size, DIMS)
        diff = coords - inputs["center"][None, :]
        dist = (diff * diff).sum(axis=1, dtype=np.float32)
        new_cost = (dist * inputs["weights"]).astype(np.float32)
        delta = new_cost - inputs["costs"]
        improved = delta < 0
        costs = np.where(improved, new_cost, inputs["costs"])
        gain = np.array([delta[improved].sum(dtype=np.float32)],
                        dtype=np.float32)
        return {"costs": costs, "gain": gain}
