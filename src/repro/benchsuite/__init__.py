"""Rodinia-style benchmark suite.

Re-implementations of the Rodinia v3 CUDA benchmarks the paper evaluates
(§VII-A; 9 of the original 24 were excluded by the paper itself for
unsupported features). Every benchmark carries its CUDA source in our
supported subset, a Python host driver, a numpy CPU reference, and a
correctness checker — so all Fig. 13–17 experiments can regenerate from
this package.
"""

from .base import (Benchmark, BenchmarkResult, BENCHMARKS,
                   get_benchmark, register, simulate_composite,
                   verify_benchmark)
from . import (backprop, bfs, cfd, gaussian, hotspot, hotspot3d, lavamd,
               lud, myocyte, nn, nw, particlefilter, pathfinder, srad,
               streamcluster)

__all__ = [
    "BENCHMARKS", "Benchmark", "BenchmarkResult", "get_benchmark",
    "register", "simulate_composite", "verify_benchmark",
]
