"""srad_v1 — speckle-reducing anisotropic diffusion (Rodinia).

Includes the shared-memory tree ``reduce`` kernel whose address-computation
order caused the clang-vs-Polygeist register-allocation difference the
paper analyzes in §VII-C, plus the two diffusion kernels.
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np

from ..pipeline import Program
from ..runtime import GPURuntime
from .base import Benchmark, Launch, register

BLOCK = 256

SOURCE = r"""
#define BS 256

__global__ void extract(int ne, float *image) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= ne) return;
    image[i] = expf(image[i] / 255.0f);
}

__global__ void reduce(int ne, float *input, float *sums, float *sums2) {
    __shared__ float psum[BS];
    __shared__ float psum2[BS];
    int tx = threadIdx.x;
    int i = blockIdx.x * blockDim.x + tx;
    float value = 0.0f;
    if (i < ne) {
        value = input[i];
    }
    psum[tx] = value;
    psum2[tx] = value * value;
    __syncthreads();
    for (int it = 0; it < 8; it++) {
        int stride = BS >> (it + 1);
        if (tx < stride) {
            psum[tx] += psum[tx + stride];
            psum2[tx] += psum2[tx + stride];
        }
        __syncthreads();
    }
    if (tx == 0) {
        sums[blockIdx.x] = psum[0];
        sums2[blockIdx.x] = psum2[0];
    }
}

__global__ void srad(int nr, int nc, float q0sqr, float *image,
                     float *dN, float *dS, float *dW, float *dE,
                     float *c) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= nr * nc) return;
    int row = i / nc;
    int col = i % nc;
    int rn = max(row - 1, 0);
    int rs = min(row + 1, nr - 1);
    int cw = max(col - 1, 0);
    int ce = min(col + 1, nc - 1);
    float jc = image[row * nc + col];
    float n = image[rn * nc + col] - jc;
    float s = image[rs * nc + col] - jc;
    float w = image[row * nc + cw] - jc;
    float e = image[row * nc + ce] - jc;
    float g2 = (n * n + s * s + w * w + e * e) / (jc * jc);
    float l = (n + s + w + e) / jc;
    float num = (0.5f * g2) - ((1.0f / 16.0f) * (l * l));
    float den = 1.0f + 0.25f * l;
    float qsqr = num / (den * den);
    den = (qsqr - q0sqr) / (q0sqr * (1.0f + q0sqr));
    float diff = 1.0f / (1.0f + den);
    if (diff < 0.0f) {
        diff = 0.0f;
    }
    if (diff > 1.0f) {
        diff = 1.0f;
    }
    dN[i] = n;
    dS[i] = s;
    dW[i] = w;
    dE[i] = e;
    c[i] = diff;
}

__global__ void srad2(int nr, int nc, float lambda, float *image,
                      float *dN, float *dS, float *dW, float *dE,
                      float *c) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= nr * nc) return;
    int row = i / nc;
    int col = i % nc;
    int rs = min(row + 1, nr - 1);
    int ce = min(col + 1, nc - 1);
    float cN = c[i];
    float cS = c[rs * nc + col];
    float cW = c[i];
    float cE = c[row * nc + ce];
    float d = cN * dN[i] + cS * dS[i] + cW * dW[i] + cE * dE[i];
    image[i] = image[i] + 0.25f * lambda * d;
}
"""


def srad_reference(image: np.ndarray, nr: int, nc: int, lam: float,
                   iterations: int) -> np.ndarray:
    img = np.exp(image.astype(np.float32) / np.float32(255.0)
                 ).astype(np.float32).reshape(nr, nc)
    for _ in range(iterations):
        total = np.float32(img.sum(dtype=np.float64))
        total2 = np.float32((img.astype(np.float64) ** 2).sum())
        ne = nr * nc
        mean = total / ne
        var = (total2 / ne) - mean * mean
        q0sqr = var / (mean * mean)

        jc = img
        rn = np.vstack([img[:1], img[:-1]])
        rs = np.vstack([img[1:], img[-1:]])
        cw = np.hstack([img[:, :1], img[:, :-1]])
        ce = np.hstack([img[:, 1:], img[:, -1:]])
        n = rn - jc
        s = rs - jc
        w = cw - jc
        e = ce - jc
        g2 = (n * n + s * s + w * w + e * e) / (jc * jc)
        l = (n + s + w + e) / jc
        num = 0.5 * g2 - (1.0 / 16.0) * (l * l)
        den = 1.0 + 0.25 * l
        qsqr = num / (den * den)
        den = (qsqr - q0sqr) / (q0sqr * (1.0 + q0sqr))
        diff = np.clip(1.0 / (1.0 + den), 0.0, 1.0).astype(np.float32)

        cS = np.vstack([diff[1:], diff[-1:]])
        cE = np.hstack([diff[:, 1:], diff[:, -1:]])
        d = diff * n + cS * s + diff * w + cE * e
        img = (img + 0.25 * lam * d).astype(np.float32)
    return img.ravel()


@register
class SradV1(Benchmark):
    name = "srad_v1"
    source = SOURCE
    verify_size = 32   # 32x32 image
    model_size = 1024
    iterations = 1
    model_iterations = 20
    rtol = 5e-3  # reduction order differs between CPU and GPU

    def build_inputs(self, size: int, seed: int = 0):
        rng = np.random.default_rng(seed)
        return {"image": (rng.random((size, size), dtype=np.float32) * 255)}

    def iter_launches(self, size: int) -> Iterator[Launch]:
        ne = size * size
        grid = -(-ne // BLOCK)
        yield ("extract", (grid,), (BLOCK,))
        for _ in range(self.model_iterations):
            yield ("reduce", (grid,), (BLOCK,))
            yield ("srad", (grid,), (BLOCK,))
            yield ("srad2", (grid,), (BLOCK,))

    def run_gpu(self, program: Program, runtime: GPURuntime,
                inputs: Dict[str, np.ndarray], size: int):
        nr = nc = size
        ne = nr * nc
        lam = 0.5
        grid = -(-ne // BLOCK)
        image = runtime.to_device(inputs["image"].ravel())
        sums = runtime.malloc(grid, np.float32)
        sums2 = runtime.malloc(grid, np.float32)
        dN = runtime.malloc(ne, np.float32)
        dS = runtime.malloc(ne, np.float32)
        dW = runtime.malloc(ne, np.float32)
        dE = runtime.malloc(ne, np.float32)
        c = runtime.malloc(ne, np.float32)
        program.launch("extract", (grid,), (BLOCK,), [ne, image],
                       runtime=runtime)
        for _ in range(self.iterations):
            program.launch("reduce", (grid,), (BLOCK,),
                           [ne, image, sums, sums2], runtime=runtime)
            total = float(runtime.to_host(sums).sum(dtype=np.float64))
            total2 = float(runtime.to_host(sums2).sum(dtype=np.float64))
            mean = total / ne
            var = (total2 / ne) - mean * mean
            q0sqr = var / (mean * mean)
            program.launch("srad", (grid,), (BLOCK,),
                           [nr, nc, q0sqr, image, dN, dS, dW, dE, c],
                           runtime=runtime)
            program.launch("srad2", (grid,), (BLOCK,),
                           [nr, nc, lam, image, dN, dS, dW, dE, c],
                           runtime=runtime)
        return {"image": runtime.to_host(image)}

    def run_cpu(self, inputs: Dict[str, np.ndarray], size: int):
        return {"image": srad_reference(inputs["image"].ravel(), size,
                                        size, 0.5, self.iterations)}
