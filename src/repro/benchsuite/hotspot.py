"""hotspot — thermal simulation stencil (Rodinia).

16×16 blocks with shared tiles for temperature and power; the block
processes the interior of its tile (one pyramid step per launch), iterated
from the host.
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np

from ..pipeline import Program
from ..runtime import GPURuntime
from .base import Benchmark, Launch, register

B = 16

SOURCE = r"""
#define BS 16

__global__ void calculate_temp(float *power, float *temp_src,
                               float *temp_dst, int grid_cols,
                               int grid_rows, float cap, float rx,
                               float ry, float rz, float step) {
    __shared__ float temp_on_cuda[BS][BS];
    __shared__ float power_on_cuda[BS][BS];

    int tx = threadIdx.x;
    int ty = threadIdx.y;
    int bx = blockIdx.x;
    int by = blockIdx.y;

    // each block computes the interior (BS-2)^2 of its tile
    int small = BS - 2;
    int blkY = small * by - 1;
    int blkX = small * bx - 1;
    int yidx = blkY + ty;
    int xidx = blkX + tx;

    int loadYidx = min(max(yidx, 0), grid_rows - 1);
    int loadXidx = min(max(xidx, 0), grid_cols - 1);
    int index = grid_cols * loadYidx + loadXidx;
    temp_on_cuda[ty][tx] = temp_src[index];
    power_on_cuda[ty][tx] = power[index];
    __syncthreads();

    float amb_temp = 80.0f;
    float step_div_cap = step / cap;
    int inside = 0;
    if (ty >= 1 && ty <= BS - 2 && tx >= 1 && tx <= BS - 2 &&
        yidx >= 0 && yidx <= grid_rows - 1 &&
        xidx >= 0 && xidx <= grid_cols - 1) {
        inside = 1;
    }
    float updated = 0.0f;
    if (inside == 1) {
        float center = temp_on_cuda[ty][tx];
        float north = temp_on_cuda[ty - 1][tx];
        float south = temp_on_cuda[ty + 1][tx];
        float west = temp_on_cuda[ty][tx - 1];
        float east = temp_on_cuda[ty][tx + 1];
        updated = center + step_div_cap *
            (power_on_cuda[ty][tx] +
             (south + north - 2.0f * center) / ry +
             (east + west - 2.0f * center) / rx +
             (amb_temp - center) / rz);
    }
    __syncthreads();
    if (inside == 1) {
        temp_dst[grid_cols * yidx + xidx] = updated;
    }
}
"""


def hotspot_reference(power, temp, steps, cap, rx, ry, rz, step):
    temp = temp.astype(np.float32).copy()
    power = power.astype(np.float32)
    amb = np.float32(80.0)
    sdc = np.float32(step / cap)
    for _ in range(steps):
        padded = np.pad(temp, 1, mode="edge")
        north = padded[:-2, 1:-1]
        south = padded[2:, 1:-1]
        west = padded[1:-1, :-2]
        east = padded[1:-1, 2:]
        temp = (temp + sdc * (power +
                              (south + north - 2 * temp) / np.float32(ry) +
                              (east + west - 2 * temp) / np.float32(rx) +
                              (amb - temp) / np.float32(rz))
                ).astype(np.float32)
    return temp


_PARAMS = dict(cap=0.5, rx=1.0, ry=1.0, rz=80.0, step=0.0625)


@register
class Hotspot(Benchmark):
    name = "hotspot"
    source = SOURCE
    verify_size = 28   # 2x2 blocks of interior 14
    model_size = 1022
    steps = 2
    model_steps = 60
    rtol = 1e-3

    def _grid(self, size: int) -> int:
        return -(-size // (B - 2))

    def build_inputs(self, size: int, seed: int = 0):
        rng = np.random.default_rng(seed)
        return {
            "temp": (rng.random((size, size), dtype=np.float32) * 50 + 300),
            "power": rng.random((size, size), dtype=np.float32),
        }

    def iter_launches(self, size: int) -> Iterator[Launch]:
        g = self._grid(size)
        for _ in range(self.model_steps):
            yield ("calculate_temp", (g, g), (B, B))

    def run_gpu(self, program: Program, runtime: GPURuntime,
                inputs: Dict[str, np.ndarray], size: int):
        g = self._grid(size)
        p = _PARAMS
        power = runtime.to_device(inputs["power"].ravel())
        src = runtime.to_device(inputs["temp"].ravel())
        dst = runtime.malloc(size * size, np.float32)
        dst.write(inputs["temp"].ravel())
        for _ in range(self.steps):
            program.launch("calculate_temp", (g, g), (B, B),
                           [power, src, dst, size, size, p["cap"],
                            p["rx"], p["ry"], p["rz"], p["step"]],
                           runtime=runtime)
            src, dst = dst, src
        return {"temp": runtime.to_host(src).reshape(size, size)}

    def run_cpu(self, inputs: Dict[str, np.ndarray], size: int):
        p = _PARAMS
        return {"temp": hotspot_reference(
            inputs["power"], inputs["temp"], self.steps, p["cap"], p["rx"],
            p["ry"], p["rz"], p["step"])}
