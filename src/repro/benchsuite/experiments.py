"""Experiment drivers reproducing the paper's evaluation (§VII).

Each function returns plain data structures that the ``benchmarks/`` harness
formats into the corresponding table or figure:

* :func:`sweep_kernel_configs` / :func:`fig13_data` — §VII-B / Fig. 13;
* :func:`fig14_heatmap`                            — Fig. 14;
* :func:`fig15_dimension_sweep`                    — Fig. 15;
* :func:`table2_profile`                           — Table II;
* :func:`fig16_data`                               — Fig. 16;
* :func:`fig17_data`                               — Fig. 17;
* :func:`hipify_ease_data`                         — §VII-D1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..autotune import paper_sweep_configs
from ..autotune.tdo import timing_driven_optimization
from ..dialects import polygeist
from ..frontend import ModuleGenerator, parse_translation_unit
from ..simulator.model import InvalidLaunch
from ..targets import A100, A4000, GPUArchitecture, MI210, RX6800
from ..transforms import generate_coarsening_alternatives, run_cleanup
from ..translate import retarget_ease_report
from .base import BENCHMARKS, get_benchmark

#: kernel-measurement cutoff, as in §VII-A ("measurements with runtimes
#: less than 0.0001s are discarded")
MIN_KERNEL_SECONDS = 1e-4


@dataclass
class ConfigTime:
    """One coarsening configuration's modeled kernel time."""

    block_total: int
    thread_total: int
    desc: str
    seconds: float
    valid: bool
    reason: str = ""


@dataclass
class KernelSweep:
    """Full coarsening sweep for one kernel at one launch group."""

    benchmark: str
    kernel: str
    block: Tuple[int, ...]
    results: List[ConfigTime] = field(default_factory=list)

    def baseline(self) -> Optional[ConfigTime]:
        for result in self.results:
            if result.block_total == 1 and result.thread_total == 1 and \
                    result.valid:
                return result
        return None

    def best(self, block_only=False, thread_only=False
             ) -> Optional[ConfigTime]:
        candidates = [r for r in self.results if r.valid]
        if block_only:
            candidates = [r for r in candidates if r.thread_total == 1]
        if thread_only:
            candidates = [r for r in candidates if r.block_total == 1]
        return min(candidates, key=lambda r: r.seconds, default=None)

    def speedup(self, **kwargs) -> float:
        baseline = self.baseline()
        best = self.best(**kwargs)
        if baseline is None or best is None or best.seconds <= 0:
            return 1.0
        return baseline.seconds / best.seconds


def sweep_kernel_configs(source: str, kernel: str,
                         block: Tuple[int, ...],
                         grids: Sequence[Tuple[int, ...]],
                         arch: GPUArchitecture,
                         configs: Optional[Sequence[Dict]] = None,
                         benchmark_name: str = "",
                         engine=None) -> KernelSweep:
    """Model every coarsening config of one kernel over a set of grids.

    ``engine`` (a :class:`repro.engine.TuningEngine`) contributes its
    evaluation backend and per-stage instrumentation to the sweep.
    """
    from contextlib import nullcontext
    stats = engine.stats if engine is not None else None
    backend = engine.backend if engine is not None else None

    def stage(name):
        return stats.stage(name) if stats is not None else nullcontext()

    configs = list(configs) if configs is not None \
        else paper_sweep_configs()
    with stage("parse"):
        unit = parse_translation_unit(source)
        generator = ModuleGenerator(unit)
    wrapper_name = generator.get_launch_wrapper(kernel, len(grids[0]),
                                                block)
    with stage("cleanup"):
        run_cleanup(generator.module)
    f = generator.module.func(wrapper_name)
    wrapper = polygeist.find_gpu_wrappers(f)[0]
    with stage("alternatives"):
        report = generate_coarsening_alternatives(wrapper, configs)
    if stats is not None:
        stats.count("alternative_generations")
        stats.count("alternatives_generated", len(report.alternatives))
    sweep = KernelSweep(benchmark_name, kernel, tuple(block))
    if report.op is None:
        return sweep
    with stage("cleanup"):
        run_cleanup(generator.module)
    grid_args = f.body_block().args[:len(grids[0])]
    envs = [dict(zip(grid_args, grid)) for grid in grids]
    envs = _apply_measurement_cutoff(report, arch, envs)
    with stage("tdo"):
        outcome = timing_driven_optimization(report.op, arch, envs,
                                             select=False,
                                             backend=backend)
    by_index = {info.index: info for info in report.alternatives}
    for candidate in outcome.candidates:
        info = by_index.get(candidate.index)
        config = info.config if info else {}
        sweep.results.append(ConfigTime(
            block_total=int(config.get("block_total", 1)),
            thread_total=int(config.get("thread_total", 1)),
            desc=candidate.desc,
            seconds=candidate.time_seconds,
            valid=candidate.valid,
            reason=candidate.reason))
    for rejected in report.rejected:
        sweep.results.append(ConfigTime(0, 0, rejected, float("inf"),
                                        False, "illegal coarsening"))
    return sweep


def _apply_measurement_cutoff(report, arch, envs):
    """Drop launch geometries whose baseline runtime is below the paper's
    0.0001 s measurement cutoff (§VII-A); keeps kernel measurements from
    being dominated by launch-overhead tails (e.g. lud's shrinking grids).
    """
    from ..autotune.tdo import _time_region
    baseline_index = None
    for info in report.alternatives:
        config = info.config
        if int(config.get("block_total", 1)) == 1 and \
                int(config.get("thread_total", 1)) == 1 and \
                not config.get("block_factors") and \
                not config.get("thread_factors"):
            baseline_index = info.index
            break
    if baseline_index is None:
        return envs
    cache = {}
    kept = []
    for env in envs:
        try:
            seconds = _time_region(report.op, baseline_index, arch, env,
                                   cache)
        except InvalidLaunch:
            continue
        if seconds >= MIN_KERNEL_SECONDS:
            kept.append(env)
    return kept or envs


def _launch_groups(bench) -> Dict[Tuple[str, Tuple[int, ...]],
                                  List[Tuple[int, ...]]]:
    groups: Dict[Tuple[str, Tuple[int, ...]], List[Tuple[int, ...]]] = {}
    for kernel, grid, block in bench.iter_launches(bench.model_size):
        groups.setdefault((kernel, tuple(block)), []).append(tuple(grid))
    return groups


def resolve_benchmark(name: str):
    """Look up a benchmark by name in the Rodinia suite or the HeCBench
    extras — the union population Fig. 13 sweeps over."""
    if name in BENCHMARKS:
        return BENCHMARKS[name]
    from .hecbench import HECBENCH
    if name in HECBENCH:
        return HECBENCH[name]
    raise KeyError("no benchmark named %r" % name)


def fig13_population(benchmarks: Optional[Sequence[str]] = None,
                     include_hecbench: bool = False) -> Dict[str, object]:
    """The benchmark population of one Fig. 13 sweep, name -> instance."""
    population: Dict[str, object] = {}
    if benchmarks is not None:
        for name in benchmarks:
            population[name] = resolve_benchmark(name)
        return population
    for name in sorted(BENCHMARKS):
        population[name] = get_benchmark(name)
    if include_hecbench:
        from .hecbench import HECBENCH
        population.update(HECBENCH)
    return population


def fig13_data(arch: GPUArchitecture = A100,
               benchmarks: Optional[Sequence[str]] = None,
               configs: Optional[Sequence[Dict]] = None,
               include_hecbench: bool = False,
               engine=None) -> List[KernelSweep]:
    """Per-kernel sweeps across the suite (the Fig. 13 scatter).

    ``include_hecbench`` adds the HeCBench-style extras, mirroring the
    paper's wider 181-kernel population.
    """
    population = fig13_population(benchmarks, include_hecbench)
    sweeps: List[KernelSweep] = []
    for name in sorted(population):
        bench = population[name]
        for (kernel, block), grids in _launch_groups(bench).items():
            sweep = sweep_kernel_configs(bench.source, kernel, block,
                                         grids, arch, configs, name,
                                         engine=engine)
            baseline = sweep.baseline()
            if baseline is None or baseline.seconds < MIN_KERNEL_SECONDS:
                continue  # §VII-A cutoff
            sweeps.append(sweep)
    return sweeps


def geomean(values: Sequence[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 1.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def fig13_summary(sweeps: Sequence[KernelSweep]) -> Dict[str, float]:
    """The §VII-B headline numbers: geomean speedups per strategy."""
    return {
        "combined": geomean([s.speedup() for s in sweeps]),
        "thread_only": geomean([s.speedup(thread_only=True)
                                for s in sweeps]),
        "block_only": geomean([s.speedup(block_only=True)
                               for s in sweeps]),
    }


def fig14_heatmap(arch: GPUArchitecture = A100,
                  totals: Sequence[int] = (1, 2, 4, 8, 16, 32),
                  kernel: str = "lud_internal"
                  ) -> Dict[Tuple[int, int], Optional[float]]:
    """lud speedups over (block_total, thread_total); None = invalid."""
    bench = get_benchmark("lud")
    groups = _launch_groups(bench)
    (kernel_name, block), grids = next(
        ((k, g) for k, g in groups.items() if k[0] == kernel))
    configs = [{"block_total": b, "thread_total": t}
               for b in totals for t in totals]
    sweep = sweep_kernel_configs(bench.source, kernel_name, block, grids,
                                 arch, configs, "lud")
    baseline = sweep.baseline()
    heatmap: Dict[Tuple[int, int], Optional[float]] = {}
    for result in sweep.results:
        key = (result.block_total, result.thread_total)
        if result.valid and baseline is not None:
            heatmap[key] = baseline.seconds / result.seconds
        else:
            heatmap[key] = None
    return heatmap


def fig15_dimension_sweep(arch: GPUArchitecture = A100,
                          block_x: Sequence[int] = tuple(range(1, 11)),
                          thread_x: Sequence[int] = (1, 2, 4, 8)
                          ) -> Dict[Tuple[int, int], Optional[float]]:
    """lud_internal: block coarsening along x × thread coarsening."""
    bench = get_benchmark("lud")
    groups = _launch_groups(bench)
    (kernel, block), grids = next(
        ((k, g) for k, g in groups.items() if k[0] == "lud_internal"))
    configs = [{"block_factors": (bx, 1), "thread_factors": (tx, 1)}
               for bx in block_x for tx in thread_x]
    unit = parse_translation_unit(bench.source)
    generator = ModuleGenerator(unit)
    wrapper_name = generator.get_launch_wrapper(kernel, len(grids[0]),
                                                block)
    run_cleanup(generator.module)
    f = generator.module.func(wrapper_name)
    wrapper = polygeist.find_gpu_wrappers(f)[0]
    report = generate_coarsening_alternatives(wrapper, configs)
    run_cleanup(generator.module)
    grid_args = f.body_block().args[:len(grids[0])]
    envs = [dict(zip(grid_args, grid)) for grid in grids]
    envs = _apply_measurement_cutoff(report, arch, envs)
    outcome = timing_driven_optimization(report.op, arch, envs,
                                         select=False)
    by_index = {info.index: info for info in report.alternatives}
    results: Dict[Tuple[int, int], Optional[float]] = {}
    baseline = None
    for candidate in outcome.candidates:
        info = by_index[candidate.index]
        bx = info.config.get("block_factors", (1, 1))[0]
        tx = info.config.get("thread_factors", (1, 1))[0]
        if (bx, tx) == (1, 1) and candidate.valid:
            baseline = candidate.time_seconds
    for candidate in outcome.candidates:
        info = by_index[candidate.index]
        bx = info.config.get("block_factors", (1, 1))[0]
        tx = info.config.get("thread_factors", (1, 1))[0]
        if candidate.valid and baseline:
            results[(bx, tx)] = baseline / candidate.time_seconds
        else:
            results[(bx, tx)] = None
    return results


#: the three (block, thread) factor points Table II profiles
TABLE2_CONFIGS: Tuple[Tuple[str, Dict[str, int]], ...] = (
    ("(1, 1)", {}),
    ("(4, 1)", {"block_total": 4}),
    ("(1, 4)", {"thread_total": 4}),
)


def table2_profile_row(config: Dict[str, int],
                       arch: GPUArchitecture = A100,
                       size: int = 64) -> Dict[str, object]:
    """One Table II row: lud profiling counters at one coarsening config.

    Counters come from trace-driven functional execution (real addresses
    through the cache model); runtimes from the analytical model at
    ``model_size``. Each row is independent, which is what lets the
    sharded sweep run them as separate jobs.
    """
    from ..simulator import trace_kernel
    from ..transforms import coarsen_wrapper
    from .lud import make_diagonally_dominant, B

    bench = get_benchmark("lud")
    unit = parse_translation_unit(bench.source)
    generator = ModuleGenerator(unit)
    tiles = size // B
    remaining = tiles - 1
    wrapper_name = generator.get_launch_wrapper("lud_internal", 2,
                                                (B, B))
    run_cleanup(generator.module)
    f = generator.module.func(wrapper_name)
    wrapper = polygeist.find_gpu_wrappers(f)[0]
    if config:
        coarsen_wrapper(wrapper, **config)
        run_cleanup(generator.module)
    from ..interpreter import MemoryBuffer
    from ..ir import F32
    matrix = MemoryBuffer((size * size,), F32,
                          data=make_diagonally_dominant(size, 0).ravel())
    trace = trace_kernel(generator.module, wrapper_name,
                         [remaining, remaining, matrix, size, 0], arch)
    # runtime from the analytical model at paper-ish scale
    model_grid = bench.model_size // B - 1
    unit2 = parse_translation_unit(bench.source)
    gen2 = ModuleGenerator(unit2)
    wname2 = gen2.get_launch_wrapper("lud_internal", 2, (B, B))
    run_cleanup(gen2.module)
    f2 = gen2.module.func(wname2)
    wrapper2 = polygeist.find_gpu_wrappers(f2)[0]
    if config:
        coarsen_wrapper(wrapper2, **config)
        run_cleanup(gen2.module)
    from ..simulator.model import model_wrapper_launch
    env = dict(zip(f2.body_block().args[:2],
                   (model_grid, model_grid)))
    timing = model_wrapper_launch(wrapper2, arch, env)
    metrics = trace.metrics
    metrics.time_seconds = timing.time_seconds
    # unit utilizations come from the analytical model (the trace only
    # counts traffic events)
    metrics.lsu_utilization = timing.metrics.lsu_utilization
    metrics.fma_utilization = timing.metrics.fma_utilization
    return metrics.table_row()


def table2_profile(arch: GPUArchitecture = A100, size: int = 64
                   ) -> Dict[str, Dict[str, object]]:
    """lud profiling counters at (1,1), (4,1), (1,4) — Table II."""
    rows: Dict[str, Dict[str, object]] = {}
    for label, config in TABLE2_CONFIGS:
        rows[label] = table2_profile_row(config, arch, size)
    return rows


def fig16_data(archs: Optional[Sequence[GPUArchitecture]] = None,
               tiers: Sequence[str] = ("clang", "polygeist-noopt",
                                       "polygeist"),
               benchmarks: Optional[Sequence[str]] = None,
               configs: Optional[Sequence[Dict]] = None
               ) -> Dict[str, Dict[Tuple[str, str], float]]:
    """Composite times per benchmark × (arch, tier) — Fig. 16."""
    from .base import simulate_composite
    archs = list(archs) if archs is not None else [A4000, A100, RX6800,
                                                   MI210]
    data: Dict[str, Dict[Tuple[str, str], float]] = {}
    for name in sorted(benchmarks or BENCHMARKS):
        data[name] = {}
        for arch in archs:
            for tier in tiers:
                seconds = simulate_composite(name, arch, tier=tier,
                                             autotune_configs=configs)
                data[name][(arch.name, tier)] = seconds
    return data


def fig16_geomeans(data: Dict[str, Dict[Tuple[str, str], float]],
                   arch_name: str, baseline_tier: str = "clang"
                   ) -> Dict[str, float]:
    """Geomean speedup of each tier over the baseline tier on one arch.

    Missing cells (``None`` / absent) are skipped; a legitimately-0.0
    modeled time cannot form a finite ratio, so it is dropped with a
    warning rather than silently. If *every* benchmark's ratio was
    discarded for a tier, the sweep is all-invalid and this raises
    instead of reporting a masking 1.0 geomean.
    """
    import warnings
    tiers = sorted({tier for rows in data.values()
                    for (a, tier) in rows if a == arch_name})
    result = {}
    for tier in tiers:
        ratios = []
        populated = 0
        dropped_zero = 0
        for name in data:
            base = data[name].get((arch_name, baseline_tier))
            this = data[name].get((arch_name, tier))
            if base is None or this is None:
                continue
            populated += 1
            if base > 0 and this > 0:
                ratios.append(base / this)
            else:
                dropped_zero += 1
                warnings.warn(
                    "fig16_geomeans: %s on %s/%s has a 0.0 modeled time "
                    "(base=%r this=%r); dropping it from the geomean" %
                    (name, arch_name, tier, base, this), RuntimeWarning,
                    stacklevel=2)
        if populated and not ratios:
            raise ValueError(
                "fig16_geomeans: every ratio for tier %r on %s was "
                "discarded (%d zero-time of %d populated cells) — the "
                "sweep is all-invalid" %
                (tier, arch_name, dropped_zero, populated))
        result[tier] = geomean(ratios)
    return result


def fig17_data(benchmarks: Optional[Sequence[str]] = None,
               configs: Optional[Sequence[Dict]] = None
               ) -> Dict[str, Dict[str, float]]:
    """A4000 (clang), A4000 (Polygeist-GPU), RX6800 (Polygeist-GPU)."""
    from .base import simulate_composite
    data: Dict[str, Dict[str, float]] = {}
    for name in sorted(benchmarks or BENCHMARKS):
        data[name] = {
            "A4000 (clang)": simulate_composite(name, A4000, tier="clang"),
            "A4000 (Polygeist-GPU)": simulate_composite(
                name, A4000, tier="polygeist", autotune_configs=configs),
            "RX6800 (Polygeist-GPU)": simulate_composite(
                name, RX6800, tier="polygeist", autotune_configs=configs),
            # untuned AMD run: isolates the hardware ratio (fp64 throughput,
            # LDS offload) from per-platform tuning differences
            "RX6800 (clang)": simulate_composite(name, RX6800,
                                                 tier="clang"),
        }
    return data


def hipify_ease_data(benchmarks: Optional[Sequence[str]] = None):
    """Manual-fix counts: hipify+clang vs Polygeist-GPU (§VII-D1)."""
    reports = []
    for name in sorted(benchmarks or BENCHMARKS):
        bench = get_benchmark(name)
        # benchmarks ship bare kernels; add the realistic CUDA prelude the
        # paper's Rodinia sources have, which is what trips hipify
        source = ('#include <cuda_runtime.h>\n#include "helper_cuda.h"\n'
                  "#ifdef __CUDACC__\n#endif\n") + bench.source
        reports.append(retarget_ease_report(name, source))
    return reports
