"""nw — Needleman-Wunsch sequence alignment (Rodinia).

The §VII-D2 anomaly: both kernels run 16-thread blocks with 2180 bytes of
shared memory per block — 136 bytes per thread, an extreme ratio that makes
the AMD backend offload LDS to global memory.
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np

from ..pipeline import Program
from ..runtime import GPURuntime
from .base import Benchmark, Launch, register

B = 16

SOURCE = r"""
#define BS 16

__global__ void needle_1(int *reference, int *matrix, int cols,
                         int penalty, int blk) {
    __shared__ int temp[BS + 1][BS + 1];
    __shared__ int sref[BS][BS];
    int bx = blockIdx.x;
    int tx = threadIdx.x;
    int b_index_x = bx;
    int b_index_y = blk - 1 - bx;
    int base = cols * BS * b_index_y + BS * b_index_x;
    int index    = base + cols + tx + 1;
    int index_n  = base + tx + 1;
    int index_w  = base + cols;
    int index_nw = base;

    for (int ty = 0; ty < BS; ty++) {
        sref[ty][tx] = reference[index + cols * ty];
    }
    if (tx == 0) {
        temp[0][0] = matrix[index_nw];
    }
    temp[tx + 1][0] = matrix[index_w + cols * tx];
    temp[0][tx + 1] = matrix[index_n];
    __syncthreads();

    for (int m = 0; m < BS; m++) {
        if (tx <= m) {
            int t_index_x = tx + 1;
            int t_index_y = m - tx + 1;
            int v = temp[t_index_y - 1][t_index_x - 1] +
                    sref[t_index_y - 1][t_index_x - 1];
            int w = temp[t_index_y][t_index_x - 1] - penalty;
            int n2 = temp[t_index_y - 1][t_index_x] - penalty;
            temp[t_index_y][t_index_x] = max(v, max(w, n2));
        }
        __syncthreads();
    }
    for (int mi = 0; mi < BS - 1; mi++) {
        int m = BS - 2 - mi;
        if (tx <= m) {
            int t_index_x = tx + BS - m;
            int t_index_y = BS - tx;
            int v = temp[t_index_y - 1][t_index_x - 1] +
                    sref[t_index_y - 1][t_index_x - 1];
            int w = temp[t_index_y][t_index_x - 1] - penalty;
            int n2 = temp[t_index_y - 1][t_index_x] - penalty;
            temp[t_index_y][t_index_x] = max(v, max(w, n2));
        }
        __syncthreads();
    }
    for (int ty = 0; ty < BS; ty++) {
        matrix[index + ty * cols] = temp[ty + 1][tx + 1];
    }
}

__global__ void needle_2(int *reference, int *matrix, int cols,
                         int penalty, int blk, int block_width) {
    __shared__ int temp[BS + 1][BS + 1];
    __shared__ int sref[BS][BS];
    int bx = blockIdx.x;
    int tx = threadIdx.x;
    int b_index_x = bx + block_width - blk;
    int b_index_y = block_width - bx - 1;
    int base = cols * BS * b_index_y + BS * b_index_x;
    int index    = base + cols + tx + 1;
    int index_n  = base + tx + 1;
    int index_w  = base + cols;
    int index_nw = base;

    for (int ty = 0; ty < BS; ty++) {
        sref[ty][tx] = reference[index + cols * ty];
    }
    if (tx == 0) {
        temp[0][0] = matrix[index_nw];
    }
    temp[tx + 1][0] = matrix[index_w + cols * tx];
    temp[0][tx + 1] = matrix[index_n];
    __syncthreads();

    for (int m = 0; m < BS; m++) {
        if (tx <= m) {
            int t_index_x = tx + 1;
            int t_index_y = m - tx + 1;
            int v = temp[t_index_y - 1][t_index_x - 1] +
                    sref[t_index_y - 1][t_index_x - 1];
            int w = temp[t_index_y][t_index_x - 1] - penalty;
            int n2 = temp[t_index_y - 1][t_index_x] - penalty;
            temp[t_index_y][t_index_x] = max(v, max(w, n2));
        }
        __syncthreads();
    }
    for (int mi = 0; mi < BS - 1; mi++) {
        int m = BS - 2 - mi;
        if (tx <= m) {
            int t_index_x = tx + BS - m;
            int t_index_y = BS - tx;
            int v = temp[t_index_y - 1][t_index_x - 1] +
                    sref[t_index_y - 1][t_index_x - 1];
            int w = temp[t_index_y][t_index_x - 1] - penalty;
            int n2 = temp[t_index_y - 1][t_index_x] - penalty;
            temp[t_index_y][t_index_x] = max(v, max(w, n2));
        }
        __syncthreads();
    }
    for (int ty = 0; ty < BS; ty++) {
        matrix[index + ty * cols] = temp[ty + 1][tx + 1];
    }
}
"""


def nw_reference(reference: np.ndarray, matrix: np.ndarray, penalty: int,
                 rows: int):
    out = matrix.astype(np.int64).copy().reshape(rows, rows)
    ref = reference.astype(np.int64).reshape(rows, rows)
    for i in range(1, rows):
        for j in range(1, rows):
            out[i, j] = max(out[i - 1, j - 1] + ref[i, j],
                            out[i, j - 1] - penalty,
                            out[i - 1, j] - penalty)
    return out


@register
class NW(Benchmark):
    name = "nw"
    source = SOURCE
    verify_size = 48   # (48+1 grid => 3 blocks per side)
    model_size = 2048
    rtol = 0.0  # integer benchmark: exact

    def _dims(self, size: int):
        rows = size + 1  # DP matrix is (n+1)^2
        block_width = size // B
        return rows, block_width

    def build_inputs(self, size: int, seed: int = 0):
        rng = np.random.default_rng(seed)
        rows, _ = self._dims(size)
        reference = rng.integers(-10, 10, size=(rows, rows)).astype(np.int64)
        matrix = np.zeros((rows, rows), dtype=np.int64)
        penalty = 10
        matrix[0, :] = -penalty * np.arange(rows)
        matrix[:, 0] = -penalty * np.arange(rows)
        return {"reference": reference, "matrix": matrix}

    def iter_launches(self, size: int) -> Iterator[Launch]:
        _, block_width = self._dims(size)
        for blk in range(1, block_width + 1):
            yield ("needle_1", (blk,), (B,))
        for blk in range(block_width - 1, 0, -1):
            yield ("needle_2", (blk,), (B,))

    def run_gpu(self, program: Program, runtime: GPURuntime,
                inputs: Dict[str, np.ndarray], size: int):
        rows, block_width = self._dims(size)
        penalty = 10
        reference = runtime.to_device(inputs["reference"].ravel())
        matrix = runtime.to_device(inputs["matrix"].ravel())
        for blk in range(1, block_width + 1):
            program.launch("needle_1", (blk,), (B,),
                           [reference, matrix, rows, penalty, blk],
                           runtime=runtime)
        for blk in range(block_width - 1, 0, -1):
            program.launch("needle_2", (blk,), (B,),
                           [reference, matrix, rows, penalty, blk,
                            block_width], runtime=runtime)
        return {"matrix": runtime.to_host(matrix).reshape(rows, rows)}

    def run_cpu(self, inputs: Dict[str, np.ndarray], size: int):
        rows, _ = self._dims(size)
        return {"matrix": nw_reference(inputs["reference"],
                                       inputs["matrix"], 10, rows)}
