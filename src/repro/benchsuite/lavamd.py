"""lavaMD — particle interactions within neighbor boxes (Rodinia).

Double precision, one thread block per home box, shared staging of the
neighbor box particles, and an inner interaction loop whose shared loads
are loop-invariant — the kernel behind the paper's LICM anecdote (§VII-C).
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np

from ..pipeline import Program
from ..runtime import GPURuntime
from .base import Benchmark, Launch, register

PAR = 32   # particles per box (Rodinia: 100; reduced for interpretation)

SOURCE = r"""
#define PAR 32

__global__ void kernel_gpu_cuda(double *rvx, double *rvy, double *rvz,
                                double *rvq, double *fvx, double *fvy,
                                double *fvz, double *fvq,
                                int *nei_list, int nei_count,
                                double alpha, int num_boxes) {
    __shared__ double rAx[PAR];
    __shared__ double rAy[PAR];
    __shared__ double rAz[PAR];
    __shared__ double rBx[PAR];
    __shared__ double rBy[PAR];
    __shared__ double rBz[PAR];
    __shared__ double qB[PAR];

    int bx = blockIdx.x;
    int wtx = threadIdx.x;
    double a2 = 2.0 * alpha * alpha;

    int first_i = bx * PAR;
    rAx[wtx] = rvx[first_i + wtx];
    rAy[wtx] = rvy[first_i + wtx];
    rAz[wtx] = rvz[first_i + wtx];
    __syncthreads();

    double fx = 0.0;
    double fy = 0.0;
    double fz = 0.0;
    double fq = 0.0;

    for (int k = 0; k < nei_count; k++) {
        int pointer = nei_list[bx * nei_count + k];
        int first_j = pointer * PAR;
        rBx[wtx] = rvx[first_j + wtx];
        rBy[wtx] = rvy[first_j + wtx];
        rBz[wtx] = rvz[first_j + wtx];
        qB[wtx] = rvq[first_j + wtx];
        __syncthreads();

        for (int j = 0; j < PAR; j++) {
            double r2 = rAx[wtx] * rBx[j] + rAy[wtx] * rBy[j] +
                rAz[wtx] * rBz[j];
            double u2 = a2 * r2;
            double vij = exp(-u2);
            double fs = 2.0 * vij;
            double dx = rAx[wtx] - rBx[j];
            double dy = rAy[wtx] - rBy[j];
            double dz = rAz[wtx] - rBz[j];
            fq += qB[j] * vij;
            fx += qB[j] * fs * dx;
            fy += qB[j] * fs * dy;
            fz += qB[j] * fs * dz;
        }
        __syncthreads();
    }
    fvx[first_i + wtx] += fx;
    fvy[first_i + wtx] += fy;
    fvz[first_i + wtx] += fz;
    fvq[first_i + wtx] += fq;
}
"""


def lavamd_reference(rv, q, nei_list, num_boxes, nei_count, alpha):
    rx, ry, rz = rv
    n = num_boxes * PAR
    fx = np.zeros(n)
    fy = np.zeros(n)
    fz = np.zeros(n)
    fq = np.zeros(n)
    a2 = 2.0 * alpha * alpha
    for bx in range(num_boxes):
        home = slice(bx * PAR, (bx + 1) * PAR)
        ax, ay, az = rx[home], ry[home], rz[home]
        for k in range(nei_count):
            pointer = nei_list[bx * nei_count + k]
            nb = slice(pointer * PAR, (pointer + 1) * PAR)
            bx_, by_, bz_, qb = rx[nb], ry[nb], rz[nb], q[nb]
            r2 = np.outer(ax, bx_) + np.outer(ay, by_) + np.outer(az, bz_)
            vij = np.exp(-a2 * r2)
            fs = 2.0 * vij
            dx = ax[:, None] - bx_[None, :]
            dy = ay[:, None] - by_[None, :]
            dz = az[:, None] - bz_[None, :]
            fq[home] += (qb[None, :] * vij).sum(axis=1)
            fx[home] += (qb[None, :] * fs * dx).sum(axis=1)
            fy[home] += (qb[None, :] * fs * dy).sum(axis=1)
            fz[home] += (qb[None, :] * fs * dz).sum(axis=1)
    return fx, fy, fz, fq


@register
class LavaMD(Benchmark):
    name = "lavaMD"
    source = SOURCE
    uses_double = True
    verify_size = 4    # boxes
    model_size = 1000
    nei_count = 3
    rtol = 1e-9

    def build_inputs(self, size: int, seed: int = 0):
        rng = np.random.default_rng(seed)
        n = size * PAR
        nei = rng.integers(0, size, size=size * self.nei_count
                           ).astype(np.int64)
        return {
            "rx": rng.random(n), "ry": rng.random(n), "rz": rng.random(n),
            "q": rng.random(n), "nei": nei,
        }

    def iter_launches(self, size: int) -> Iterator[Launch]:
        yield ("kernel_gpu_cuda", (size,), (PAR,))

    def run_gpu(self, program: Program, runtime: GPURuntime,
                inputs: Dict[str, np.ndarray], size: int):
        n = size * PAR
        rx = runtime.to_device(inputs["rx"])
        ry = runtime.to_device(inputs["ry"])
        rz = runtime.to_device(inputs["rz"])
        q = runtime.to_device(inputs["q"])
        nei = runtime.to_device(inputs["nei"])
        fx = runtime.malloc(n, np.float64)
        fy = runtime.malloc(n, np.float64)
        fz = runtime.malloc(n, np.float64)
        fq = runtime.malloc(n, np.float64)
        program.launch("kernel_gpu_cuda", (size,), (PAR,),
                       [rx, ry, rz, q, fx, fy, fz, fq, nei,
                        self.nei_count, 0.5, size], runtime=runtime)
        return {"fx": runtime.to_host(fx), "fy": runtime.to_host(fy),
                "fz": runtime.to_host(fz), "fq": runtime.to_host(fq)}

    def run_cpu(self, inputs: Dict[str, np.ndarray], size: int):
        fx, fy, fz, fq = lavamd_reference(
            (inputs["rx"], inputs["ry"], inputs["rz"]), inputs["q"],
            inputs["nei"], size, self.nei_count, 0.5)
        return {"fx": fx, "fy": fy, "fz": fz, "fq": fq}
