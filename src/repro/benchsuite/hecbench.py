"""HeCBench-style micro-benchmarks.

The paper's kernel-level experiment (§VII-B, Fig. 13) additionally sweeps
112 HeCBench benchmarks. This module provides a representative slice of
that population — classic kernels with distinct resource signatures — to
widen the coarsening sweep beyond Rodinia. They register like any other
benchmark but are kept in a separate registry so the Rodinia experiments
stay faithful to the paper's suite.
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np

from ..pipeline import Program
from ..runtime import GPURuntime
from .base import Benchmark, Launch

#: HeCBench-style extras (not part of the Rodinia registry)
HECBENCH: Dict[str, Benchmark] = {}


def register_hec(benchmark_class):
    instance = benchmark_class()
    HECBENCH[instance.name] = instance
    return benchmark_class


@register_hec
class Atax(Benchmark):
    """atax: A^T (A x) — two matrix-vector products, bandwidth bound."""

    name = "hec-atax"
    verify_size = 64
    model_size = 4096
    rtol = 1e-3
    source = r"""
__global__ void atax_kernel1(float *A, float *x, float *tmp, int nx,
                             int ny) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= nx) return;
    float acc = 0.0f;
    for (int j = 0; j < ny; j++) {
        acc += A[i * ny + j] * x[j];
    }
    tmp[i] = acc;
}

__global__ void atax_kernel2(float *A, float *y, float *tmp, int nx,
                             int ny) {
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    if (j >= ny) return;
    float acc = 0.0f;
    for (int i = 0; i < nx; i++) {
        acc += A[i * ny + j] * tmp[i];
    }
    y[j] = acc;
}
"""

    def build_inputs(self, size: int, seed: int = 0):
        rng = np.random.default_rng(seed)
        return {"A": rng.random((size, size), dtype=np.float32),
                "x": rng.random(size, dtype=np.float32)}

    def iter_launches(self, size: int) -> Iterator[Launch]:
        grid = -(-size // 256)
        yield ("atax_kernel1", (grid,), (256,))
        yield ("atax_kernel2", (grid,), (256,))

    def run_gpu(self, program: Program, runtime: GPURuntime,
                inputs: Dict[str, np.ndarray], size: int):
        grid = -(-size // 256)
        A = runtime.to_device(inputs["A"].ravel())
        x = runtime.to_device(inputs["x"])
        tmp = runtime.malloc(size, np.float32)
        y = runtime.malloc(size, np.float32)
        program.launch("atax_kernel1", (grid,), (256,),
                       [A, x, tmp, size, size], runtime=runtime)
        program.launch("atax_kernel2", (grid,), (256,),
                       [A, y, tmp, size, size], runtime=runtime)
        return {"y": runtime.to_host(y)}

    def run_cpu(self, inputs: Dict[str, np.ndarray], size: int):
        A = inputs["A"].astype(np.float32)
        tmp = (A @ inputs["x"]).astype(np.float32)
        return {"y": (A.T @ tmp).astype(np.float32)}


@register_hec
class SharedGemm(Benchmark):
    """gemm with 16x16 shared tiles — the canonical coarsening target."""

    name = "hec-gemm"
    verify_size = 64
    model_size = 2048
    rtol = 1e-3
    source = r"""
#define TS 16

__global__ void gemm_tiled(float *A, float *B, float *C, int n) {
    __shared__ float As[TS][TS];
    __shared__ float Bs[TS][TS];
    int tx = threadIdx.x;
    int ty = threadIdx.y;
    int row = blockIdx.y * TS + ty;
    int col = blockIdx.x * TS + tx;
    float acc = 0.0f;
    for (int t = 0; t < n / TS; t++) {
        As[ty][tx] = A[row * n + t * TS + tx];
        Bs[ty][tx] = B[(t * TS + ty) * n + col];
        __syncthreads();
        for (int k = 0; k < TS; k++) {
            acc += As[ty][k] * Bs[k][tx];
        }
        __syncthreads();
    }
    C[row * n + col] = acc;
}
"""

    def build_inputs(self, size: int, seed: int = 0):
        rng = np.random.default_rng(seed)
        return {"A": rng.random((size, size), dtype=np.float32),
                "B": rng.random((size, size), dtype=np.float32)}

    def iter_launches(self, size: int) -> Iterator[Launch]:
        grid = size // 16
        yield ("gemm_tiled", (grid, grid), (16, 16))

    def run_gpu(self, program: Program, runtime: GPURuntime,
                inputs: Dict[str, np.ndarray], size: int):
        grid = size // 16
        A = runtime.to_device(inputs["A"].ravel())
        B = runtime.to_device(inputs["B"].ravel())
        C = runtime.malloc(size * size, np.float32)
        program.launch("gemm_tiled", (grid, grid), (16, 16),
                       [A, B, C, size], runtime=runtime)
        return {"C": runtime.to_host(C).reshape(size, size)}

    def run_cpu(self, inputs: Dict[str, np.ndarray], size: int):
        A = inputs["A"].astype(np.float32).reshape(size // 16, 16, -1)
        # tile-ordered accumulation to match the kernel's fp32 rounding
        a = inputs["A"].astype(np.float32)
        b = inputs["B"].astype(np.float32)
        c = np.zeros((size, size), dtype=np.float32)
        for t in range(size // 16):
            c += a[:, t * 16:(t + 1) * 16] @ b[t * 16:(t + 1) * 16, :]
            c = c.astype(np.float32)
        return {"C": c}


@register_hec
class Stencil1D(Benchmark):
    """1-D 7-point stencil with a shared halo tile."""

    name = "hec-stencil1d"
    verify_size = 2048
    model_size = 1 << 22
    rtol = 1e-5
    source = r"""
#define BS 256
#define R 3

__global__ void stencil_1d(float *in, float *out, int n) {
    __shared__ float tile[BS + 2 * R];
    int g = blockIdx.x * blockDim.x + threadIdx.x;
    int l = threadIdx.x + R;
    tile[l] = in[g + R];
    if (threadIdx.x < R) {
        tile[l - R] = in[g];
        tile[l + BS] = in[g + BS + R];
    }
    __syncthreads();
    float acc = 0.0f;
    for (int k = 0; k < 2 * R + 1; k++) {
        acc += tile[threadIdx.x + k];
    }
    out[g] = acc / 7.0f;
}
"""

    def build_inputs(self, size: int, seed: int = 0):
        rng = np.random.default_rng(seed)
        return {"in": rng.random(size + 2 * 3 + 256, dtype=np.float32)}

    def iter_launches(self, size: int) -> Iterator[Launch]:
        yield ("stencil_1d", (size // 256,), (256,))

    def run_gpu(self, program: Program, runtime: GPURuntime,
                inputs: Dict[str, np.ndarray], size: int):
        src = runtime.to_device(inputs["in"])
        out = runtime.malloc(size, np.float32)
        program.launch("stencil_1d", (size // 256,), (256,),
                       [src, out, size], runtime=runtime)
        return {"out": runtime.to_host(out)}

    def run_cpu(self, inputs: Dict[str, np.ndarray], size: int):
        data = inputs["in"].astype(np.float32)
        acc = np.zeros(size, dtype=np.float32)
        for k in range(7):
            acc += data[k:k + size]
            acc = acc.astype(np.float32)
        return {"out": acc / np.float32(7.0)}


@register_hec
class Softmax(Benchmark):
    """row-wise softmax: per-row reduction + normalization per thread."""

    name = "hec-softmax"
    verify_size = 512
    model_size = 1 << 16
    rtol = 1e-4
    source = r"""
#define COLS 16

__global__ void softmax_kernel(float *in, float *out, int rows) {
    int r = blockIdx.x * blockDim.x + threadIdx.x;
    if (r >= rows) return;
    float maxv = in[r * COLS];
    for (int c = 1; c < COLS; c++) {
        maxv = fmaxf(maxv, in[r * COLS + c]);
    }
    float total = 0.0f;
    for (int c = 0; c < COLS; c++) {
        total += expf(in[r * COLS + c] - maxv);
    }
    for (int c = 0; c < COLS; c++) {
        out[r * COLS + c] = expf(in[r * COLS + c] - maxv) / total;
    }
}
"""

    def build_inputs(self, size: int, seed: int = 0):
        rng = np.random.default_rng(seed)
        return {"in": rng.random(size * 16, dtype=np.float32) * 4}

    def iter_launches(self, size: int) -> Iterator[Launch]:
        yield ("softmax_kernel", (-(-size // 256),), (256,))

    def run_gpu(self, program: Program, runtime: GPURuntime,
                inputs: Dict[str, np.ndarray], size: int):
        src = runtime.to_device(inputs["in"])
        out = runtime.malloc(size * 16, np.float32)
        program.launch("softmax_kernel", (-(-size // 256),), (256,),
                       [src, out, size], runtime=runtime)
        return {"out": runtime.to_host(out)}

    def run_cpu(self, inputs: Dict[str, np.ndarray], size: int):
        data = inputs["in"].astype(np.float32).reshape(size, 16)
        maxv = data.max(axis=1, keepdims=True)
        e = np.exp(data - maxv).astype(np.float32)
        return {"out": (e / e.sum(axis=1, keepdims=True,
                                  dtype=np.float32)).astype(
            np.float32).ravel()}


@register_hec
class Reduction(Benchmark):
    """two-level tree reduction with shared memory."""

    name = "hec-reduction"
    verify_size = 1 << 13
    model_size = 1 << 24
    rtol = 1e-4
    source = r"""
#define BS 256

__global__ void reduce_kernel(float *in, float *out, int n) {
    __shared__ float partial[BS];
    int tx = threadIdx.x;
    int g = blockIdx.x * blockDim.x + tx;
    float v = 0.0f;
    if (g < n) {
        v = in[g];
    }
    partial[tx] = v;
    __syncthreads();
    for (int it = 0; it < 8; it++) {
        int stride = BS >> (it + 1);
        if (tx < stride) {
            partial[tx] += partial[tx + stride];
        }
        __syncthreads();
    }
    if (tx == 0) {
        out[blockIdx.x] = partial[0];
    }
}
"""

    def build_inputs(self, size: int, seed: int = 0):
        rng = np.random.default_rng(seed)
        return {"in": rng.random(size, dtype=np.float32)}

    def iter_launches(self, size: int) -> Iterator[Launch]:
        yield ("reduce_kernel", (-(-size // 256),), (256,))

    def run_gpu(self, program: Program, runtime: GPURuntime,
                inputs: Dict[str, np.ndarray], size: int):
        grid = -(-size // 256)
        src = runtime.to_device(inputs["in"])
        out = runtime.malloc(grid, np.float32)
        program.launch("reduce_kernel", (grid,), (256,),
                       [src, out, size], runtime=runtime)
        total = runtime.to_host(out).sum(dtype=np.float64)
        return {"total": np.array([total])}

    def run_cpu(self, inputs: Dict[str, np.ndarray], size: int):
        return {"total": np.array([inputs["in"].sum(dtype=np.float64)])}


@register_hec
class Transpose(Benchmark):
    """tiled matrix transpose through shared memory (coalescing classic)."""

    name = "hec-transpose"
    verify_size = 64
    model_size = 8192
    rtol = 0.0
    source = r"""
#define TS 16

__global__ void transpose_tiled(float *in, float *out, int n) {
    __shared__ float tile[TS][TS + 1];
    int x = blockIdx.x * TS + threadIdx.x;
    int y = blockIdx.y * TS + threadIdx.y;
    tile[threadIdx.y][threadIdx.x] = in[y * n + x];
    __syncthreads();
    int tx = blockIdx.y * TS + threadIdx.x;
    int ty = blockIdx.x * TS + threadIdx.y;
    out[ty * n + tx] = tile[threadIdx.x][threadIdx.y];
}
"""

    def build_inputs(self, size: int, seed: int = 0):
        rng = np.random.default_rng(seed)
        return {"in": rng.random((size, size), dtype=np.float32)}

    def iter_launches(self, size: int) -> Iterator[Launch]:
        grid = size // 16
        yield ("transpose_tiled", (grid, grid), (16, 16))

    def run_gpu(self, program: Program, runtime: GPURuntime,
                inputs: Dict[str, np.ndarray], size: int):
        grid = size // 16
        src = runtime.to_device(inputs["in"].ravel())
        out = runtime.malloc(size * size, np.float32)
        program.launch("transpose_tiled", (grid, grid), (16, 16),
                       [src, out, size], runtime=runtime)
        return {"out": runtime.to_host(out).reshape(size, size)}

    def run_cpu(self, inputs: Dict[str, np.ndarray], size: int):
        return {"out": inputs["in"].T.copy()}
