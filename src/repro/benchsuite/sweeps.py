"""Process-sharded experiment sweeps over the paper's evaluation matrix.

The figure drivers in :mod:`~repro.benchsuite.experiments` are serial
nested loops over an embarrassingly-parallel job matrix (benchmark ×
architecture × tier for Fig. 16, benchmark × launch-group for Fig. 13,
…). This module decomposes each driver into independent *picklable* jobs,
runs them over :class:`~repro.engine.scheduler.SweepScheduler` worker
processes (per-job timeout, bounded retry, crash isolation,
degrade-to-in-process), and merges the results deterministically so the
output is **identical to the serial driver** — parallelism is a
throughput knob, never a behavior change.

Workers share the on-disk tuning cache when ``$REPRO_TUNING_CACHE`` is
set (safe since the per-writer temp-file fix in
:mod:`repro.engine.cache`), so repeated sweeps replay tuning decisions
across processes.

Three layers:

* :func:`plan_figure` — decompose a figure into ``Job``s plus a merge
  function that rebuilds the serial driver's exact output structure;
* :func:`run_figure_sweep` — plan + schedule + merge, with ``--resume``
  support via previously-saved per-job values;
* ``sharded_fig13_data`` / ``sharded_fig16_data`` / ``sharded_fig17_data``
  / ``sharded_table2_profile`` — drop-in replacements for the serial
  drivers (``workers<=1`` falls back to the serial path exactly).

The ``repro sweep`` CLI subcommand fronts :func:`run_figure_sweep` and
persists per-job values as JSON for resumption.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..engine.scheduler import (Job, JobResult, SweepScheduler,
                                sweep_workers)
from ..obs.log import get_logger
from ..targets import A100, A4000, GPUArchitecture, MI210, RX6800, \
    arch_by_name
from .base import BENCHMARKS, simulate_composite
from .experiments import (ConfigTime, KernelSweep, TABLE2_CONFIGS,
                          fig13_data, fig13_population, fig16_data,
                          fig17_data, table2_profile, table2_profile_row)

logger = get_logger("benchsuite.sweeps")

#: the figures the sweep engine can shard
FIGURES = ("fig13", "fig16", "fig17", "table2")

#: Fig. 16 defaults, mirroring ``fig16_data``
FIG16_ARCHS: Tuple[GPUArchitecture, ...] = (A4000, A100, RX6800, MI210)
FIG16_TIERS: Tuple[str, ...] = ("clang", "polygeist-noopt", "polygeist")

#: Fig. 17 columns: (label, arch name, tier, uses autotune configs) in the
#: serial driver's insertion order
FIG17_COLUMNS: Tuple[Tuple[str, str, str, bool], ...] = (
    ("A4000 (clang)", "NVIDIA A4000", "clang", False),
    ("A4000 (Polygeist-GPU)", "NVIDIA A4000", "polygeist", True),
    ("RX6800 (Polygeist-GPU)", "AMD RX6800", "polygeist", True),
    ("RX6800 (clang)", "AMD RX6800", "clang", False),
)


def _resolve_arch(arch) -> GPUArchitecture:
    if isinstance(arch, str):
        return arch_by_name(arch)
    return arch


# -- job runners (module-level: must pickle under any start method) ----------


def _run_fig13_job(payload: Dict[str, Any]) -> List[KernelSweep]:
    return fig13_data(arch=arch_by_name(payload["arch"]),
                      benchmarks=[payload["benchmark"]],
                      configs=payload["configs"])


def _run_composite_job(payload: Dict[str, Any]) -> float:
    return simulate_composite(payload["benchmark"], payload["arch"],
                              tier=payload["tier"],
                              autotune_configs=payload["configs"])


def _run_table2_job(payload: Dict[str, Any]) -> Dict[str, object]:
    return table2_profile_row(payload["config"],
                              arch_by_name(payload["arch"]),
                              payload["size"])


_RUNNERS: Dict[str, Callable[[Dict[str, Any]], Any]] = {
    "fig13": _run_fig13_job,
    "fig16": _run_composite_job,
    "fig17": _run_composite_job,
    "table2": _run_table2_job,
}


def run_sweep_job(payload: Dict[str, Any]) -> Any:
    """Execute one sweep job; the scheduler ships this to workers.

    When the payload carries ``trace: True`` (set by
    :func:`run_figure_sweep` whenever the parent process has a tracer
    installed), the job runs under a fresh worker-local tracer and
    returns a wrapped value carrying the recorded spans (plus the worker
    tracer's epoch), which the parent absorbs back into its own tracer.
    """
    runner = _RUNNERS[payload["kind"]]
    if not payload.get("trace"):
        return runner(payload)
    from ..obs import tracer as obs_tracer
    worker_tracer = obs_tracer.Tracer()
    with obs_tracer.tracing(worker_tracer):
        value = runner(payload)
    return {"__traced__": True, "value": value,
            "epoch": worker_tracer.epoch,
            "spans": [s.as_dict() for s in worker_tracer.finished()]}


def _unwrap_traced(result, parent_tracer) -> Any:
    """Absorb a traced job wrapper's spans; return the payload value."""
    value = result.value
    if isinstance(value, dict) and value.get("__traced__"):
        if parent_tracer is not None:
            parent_tracer.absorb(value.get("spans") or [],
                                 value.get("epoch"))
        result.value = value = value["value"]
    return value


# -- figure decomposition ----------------------------------------------------


@dataclass
class SweepPlan:
    """A figure decomposed into jobs plus its deterministic merge."""

    figure: str
    jobs: List[Job]
    #: rebuilds the serial driver's output from ``{job key: value}``
    merge: Callable[[Dict[str, Any]], Any]
    #: the serial driver over the same parameters (workers<=1 fallback)
    serial: Callable[[], Any]

    @property
    def keys(self) -> List[str]:
        return [job.key for job in self.jobs]


def plan_figure(figure: str,
                benchmarks: Optional[Sequence[str]] = None,
                archs: Optional[Sequence] = None,
                tiers: Optional[Sequence[str]] = None,
                configs: Optional[Sequence[Dict]] = None,
                include_hecbench: bool = False,
                arch=None,
                size: int = 64) -> SweepPlan:
    """Decompose one figure driver into independent jobs.

    ``arch`` applies to the single-architecture figures (fig13, table2);
    ``archs``/``tiers`` to fig16. The job list and the merge function
    both follow the serial driver's iteration order, so the merged
    output is identical to the serial path.
    """
    configs = list(configs) if configs is not None else None
    if figure == "fig13":
        one_arch = _resolve_arch(arch or A100)
        names = sorted(fig13_population(benchmarks, include_hecbench))
        jobs = [Job("fig13|%s|%s" % (name, one_arch.name),
                    {"kind": "fig13", "benchmark": name,
                     "arch": one_arch.name, "configs": configs})
                for name in names]

        def merge13(values):
            sweeps: List[KernelSweep] = []
            for job in jobs:
                sweeps.extend(values[job.key])
            return sweeps

        return SweepPlan("fig13", jobs, merge13,
                         lambda: fig13_data(
                             arch=one_arch, benchmarks=benchmarks,
                             configs=configs,
                             include_hecbench=include_hecbench))

    if figure == "fig16":
        arch_list = [_resolve_arch(a) for a in archs] \
            if archs is not None else list(FIG16_ARCHS)
        tier_list = tuple(tiers) if tiers is not None else FIG16_TIERS
        names = sorted(benchmarks or BENCHMARKS)
        jobs = [Job("fig16|%s|%s|%s" % (name, one.name, tier),
                    {"kind": "fig16", "benchmark": name, "arch": one.name,
                     "tier": tier, "configs": configs})
                for name in names for one in arch_list
                for tier in tier_list]

        def merge16(values):
            data: Dict[str, Dict[Tuple[str, str], float]] = {}
            for name in names:
                data[name] = {}
                for one in arch_list:
                    for tier in tier_list:
                        key = "fig16|%s|%s|%s" % (name, one.name, tier)
                        data[name][(one.name, tier)] = values[key]
            return data

        return SweepPlan("fig16", jobs, merge16,
                         lambda: fig16_data(
                             archs=arch_list, tiers=tier_list,
                             benchmarks=benchmarks, configs=configs))

    if figure == "fig17":
        names = sorted(benchmarks or BENCHMARKS)
        jobs = [Job("fig17|%s|%s" % (name, label),
                    {"kind": "fig17", "benchmark": name, "arch": arch_name,
                     "tier": tier,
                     "configs": configs if tuned else None})
                for name in names
                for label, arch_name, tier, tuned in FIG17_COLUMNS]

        def merge17(values):
            data: Dict[str, Dict[str, float]] = {}
            for name in names:
                data[name] = {}
                for label, _, _, _ in FIG17_COLUMNS:
                    data[name][label] = \
                        values["fig17|%s|%s" % (name, label)]
            return data

        return SweepPlan("fig17", jobs, merge17,
                         lambda: fig17_data(benchmarks=benchmarks,
                                            configs=configs))

    if figure == "table2":
        one_arch = _resolve_arch(arch or A100)
        jobs = [Job("table2|%s" % label,
                    {"kind": "table2", "label": label, "config": config,
                     "arch": one_arch.name, "size": size})
                for label, config in TABLE2_CONFIGS]

        def merge_t2(values):
            return {label: values["table2|%s" % label]
                    for label, _ in TABLE2_CONFIGS}

        return SweepPlan("table2", jobs, merge_t2,
                         lambda: table2_profile(arch=one_arch, size=size))

    raise ValueError("unknown figure %r (expected one of %s)" %
                     (figure, ", ".join(FIGURES)))


# -- value (de)serialization for resume files --------------------------------


def encode_value(figure: str, value: Any) -> Any:
    """JSON-encode one job value (fig13 returns dataclasses)."""
    if figure == "fig13":
        return [asdict(sweep) for sweep in value]
    return value


def decode_value(figure: str, value: Any) -> Any:
    """Invert :func:`encode_value`."""
    if figure == "fig13":
        return [KernelSweep(
            benchmark=raw["benchmark"], kernel=raw["kernel"],
            block=tuple(raw["block"]),
            results=[ConfigTime(**r) for r in raw["results"]])
            for raw in value]
    return value


def encode_figure_data(figure: str, data: Any) -> Any:
    """JSON-friendly encoding of the merged figure output."""
    if data is None:
        return None
    if figure == "fig13":
        return [asdict(sweep) for sweep in data]
    if figure == "fig16":
        # tuple keys -> nested {benchmark: {arch: {tier: seconds}}}
        out: Dict[str, Dict[str, Dict[str, float]]] = {}
        for name, rows in data.items():
            out[name] = {}
            for (arch_name, tier), seconds in rows.items():
                out[name].setdefault(arch_name, {})[tier] = seconds
        return out
    return data


# -- orchestration -----------------------------------------------------------


@dataclass
class SweepOutcome:
    """Everything one sharded sweep produced."""

    figure: str
    #: the serial driver's exact output, or None when jobs failed
    data: Any
    #: per-job values, including resumed ones
    values: Dict[str, Any]
    #: scheduling results for the jobs run in THIS invocation
    results: Dict[str, JobResult] = field(default_factory=dict)
    #: keys skipped because a resume file already had their values
    resumed: List[str] = field(default_factory=list)
    elapsed: float = 0.0
    #: architecture names the planned jobs cover (for provenance)
    archs: List[str] = field(default_factory=list)

    @property
    def failed(self) -> Dict[str, str]:
        return {key: result.error for key, result in self.results.items()
                if not result.ok}

    @property
    def retries(self) -> int:
        return sum(r.retries for r in self.results.values())

    @property
    def timeouts(self) -> int:
        return sum(r.timeouts for r in self.results.values())

    @property
    def degraded(self) -> int:
        return sum(1 for r in self.results.values() if r.degraded)


def run_figure_sweep(figure: str,
                     workers: Optional[int] = None,
                     timeout: Optional[float] = None,
                     retries: int = 2,
                     backoff: float = 0.5,
                     degrade: bool = True,
                     mp_context: Optional[str] = None,
                     resume_values: Optional[Dict[str, Any]] = None,
                     serial_fallback: bool = True,
                     **plan_kwargs) -> SweepOutcome:
    """Plan, schedule, and merge one figure sweep.

    ``resume_values`` maps job keys to already-computed values (decoded
    from a previous run's JSON); those jobs are skipped. Job failures
    never raise — they are reported on the outcome and ``data`` is
    ``None`` until every job has a value. With ``serial_fallback`` off,
    ``workers<=1`` still runs job-by-job through the scheduler (in
    process), which keeps per-job values available for resume files.
    """
    plan = plan_figure(figure, **plan_kwargs)
    plan_archs = sorted({str(job.payload["arch"]) for job in plan.jobs
                         if job.payload.get("arch")})
    wanted = set(plan.keys)
    resumed = {key: value for key, value in (resume_values or {}).items()
               if key in wanted}
    todo = [job for job in plan.jobs if job.key not in resumed]
    start = time.perf_counter()
    workers = sweep_workers(workers)
    if serial_fallback and workers <= 1 and not resumed and not timeout:
        # pure serial path: run the driver itself so the fallback is
        # exactly the code the sharded result is compared against
        data = plan.serial()
        values = dict(zip(plan.keys, [None] * len(plan.keys)))
        return SweepOutcome(figure, data, values,
                            elapsed=time.perf_counter() - start,
                            archs=plan_archs)
    from ..obs import tracer as obs_tracer
    parent_tracer = obs_tracer.current()
    if parent_tracer is not None:
        # ship spans back from the workers: each job runs under its own
        # tracer and the parent absorbs the spans (pid-tagged, epoch-
        # rebased) so one trace covers the whole sharded sweep
        todo = [Job(job.key, dict(job.payload, trace=True))
                for job in todo]
    scheduler = SweepScheduler(workers=workers, timeout=timeout,
                               retries=retries, backoff=backoff,
                               degrade=degrade, mp_context=mp_context)
    logger.info("sweep %s: %d jobs (%d resumed) on %r", figure,
                len(todo), len(resumed), scheduler)
    with scheduler:  # worker processes reaped even if a merge step throws
        results = scheduler.run(run_sweep_job, todo)
    values: Dict[str, Any] = dict(resumed)
    for key, result in results.items():
        if result.ok:
            values[key] = _unwrap_traced(result, parent_tracer)
    data = plan.merge(values) if len(values) == len(plan.jobs) else None
    return SweepOutcome(figure, data, values, results,
                        sorted(resumed), time.perf_counter() - start,
                        archs=plan_archs)


# -- resume-file I/O ---------------------------------------------------------


def write_sweep_json(path: str, outcome: SweepOutcome,
                     meta: Optional[Dict[str, Any]] = None,
                     created: Optional[str] = None) -> None:
    """Persist per-job values (for ``--resume``) plus the merged data.

    ``created`` is a caller-supplied timestamp string for the provenance
    header (the CLI stamps wall-clock time; tests leave it ``None`` for
    byte-stable output).
    """
    from ..analysis.check import provenance_header
    payload = {
        "figure": outcome.figure,
        "provenance": provenance_header(outcome.archs, created=created),
        "jobs": {key: encode_value(outcome.figure, value)
                 for key, value in outcome.values.items()
                 if value is not None},
        "failed": outcome.failed,
        "data": encode_figure_data(outcome.figure, outcome.data),
        "meta": dict(meta or {}, elapsed=outcome.elapsed,
                     resumed=len(outcome.resumed),
                     retries=outcome.retries, timeouts=outcome.timeouts,
                     degraded=outcome.degraded),
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1)


def load_resume_values(path: str, figure: str) -> Dict[str, Any]:
    """Read a sweep JSON back into ``{job key: decoded value}``."""
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("figure") != figure:
        raise ValueError("resume file %s is for figure %r, not %r" %
                         (path, payload.get("figure"), figure))
    return {key: decode_value(figure, value)
            for key, value in payload.get("jobs", {}).items()}


# -- drop-in sharded drivers -------------------------------------------------


def _sharded(figure: str, workers: Optional[int], plan_kwargs: Dict,
             **scheduler_kwargs) -> Any:
    workers = sweep_workers(workers)
    outcome = run_figure_sweep(figure, workers=workers, **scheduler_kwargs,
                               **plan_kwargs)
    if outcome.data is None:
        raise RuntimeError(
            "sweep %s failed for %d job(s): %s" %
            (figure, len(outcome.failed),
             "; ".join("%s (%s)" % item
                       for item in sorted(outcome.failed.items()))))
    return outcome.data


def sharded_fig13_data(arch=None, benchmarks=None, configs=None,
                       include_hecbench: bool = False,
                       workers: Optional[int] = None,
                       **scheduler_kwargs) -> List[KernelSweep]:
    """Sharded drop-in for :func:`fig13_data` (identical results)."""
    return _sharded("fig13", workers,
                    dict(arch=arch, benchmarks=benchmarks, configs=configs,
                         include_hecbench=include_hecbench),
                    **scheduler_kwargs)


def sharded_fig16_data(archs=None, tiers=None, benchmarks=None,
                       configs=None, workers: Optional[int] = None,
                       **scheduler_kwargs):
    """Sharded drop-in for :func:`fig16_data` (identical results)."""
    return _sharded("fig16", workers,
                    dict(archs=archs, tiers=tiers, benchmarks=benchmarks,
                         configs=configs),
                    **scheduler_kwargs)


def sharded_fig17_data(benchmarks=None, configs=None,
                       workers: Optional[int] = None,
                       **scheduler_kwargs):
    """Sharded drop-in for :func:`fig17_data` (identical results)."""
    return _sharded("fig17", workers,
                    dict(benchmarks=benchmarks, configs=configs),
                    **scheduler_kwargs)


def sharded_table2_profile(arch=None, size: int = 64,
                           workers: Optional[int] = None,
                           **scheduler_kwargs):
    """Sharded drop-in for :func:`table2_profile` (identical results)."""
    return _sharded("table2", workers, dict(arch=arch, size=size),
                    **scheduler_kwargs)
