"""nn — k-nearest-neighbors distance kernel (Rodinia).

A memory-bound streaming kernel: one Euclidean distance per thread; the
candidate selection runs on the host, as in Rodinia.
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np

from ..pipeline import Program
from ..runtime import GPURuntime
from .base import Benchmark, Launch, register

BLOCK = 256

SOURCE = r"""
__global__ void euclid(float *d_locations_lat, float *d_locations_lng,
                       float *d_distances, int numRecords,
                       float lat, float lng) {
    int globalId = blockDim.x * blockIdx.x + threadIdx.x;
    if (globalId >= numRecords) return;
    float latDiff = lat - d_locations_lat[globalId];
    float lngDiff = lng - d_locations_lng[globalId];
    d_distances[globalId] = sqrtf(latDiff * latDiff + lngDiff * lngDiff);
}
"""


@register
class NN(Benchmark):
    name = "nn"
    source = SOURCE
    verify_size = 2048
    model_size = 1 << 22
    rtol = 1e-5

    def build_inputs(self, size: int, seed: int = 0):
        rng = np.random.default_rng(seed)
        return {
            "lat": (rng.random(size, dtype=np.float32) * 180 - 90),
            "lng": (rng.random(size, dtype=np.float32) * 360 - 180),
        }

    def iter_launches(self, size: int) -> Iterator[Launch]:
        grid = -(-size // BLOCK)
        yield ("euclid", (grid,), (BLOCK,))

    def run_gpu(self, program: Program, runtime: GPURuntime,
                inputs: Dict[str, np.ndarray], size: int):
        grid = -(-size // BLOCK)
        lat = runtime.to_device(inputs["lat"])
        lng = runtime.to_device(inputs["lng"])
        distances = runtime.malloc(size, np.float32)
        program.launch("euclid", (grid,), (BLOCK,),
                       [lat, lng, distances, size, 30.0, -120.0],
                       runtime=runtime)
        d = runtime.to_host(distances)
        # host-side top-10 selection, as in Rodinia
        nearest = np.argsort(d)[:10]
        return {"distances": d, "nearest": nearest.astype(np.int64)}

    def run_cpu(self, inputs: Dict[str, np.ndarray], size: int):
        lat_diff = np.float32(30.0) - inputs["lat"]
        lng_diff = np.float32(-120.0) - inputs["lng"]
        d = np.sqrt(lat_diff * lat_diff + lng_diff * lng_diff
                    ).astype(np.float32)
        nearest = np.argsort(d)[:10]
        return {"distances": d, "nearest": nearest.astype(np.int64)}
