"""lud — blocked LU decomposition (the paper's in-depth case study).

Faithful to Rodinia's three-kernel structure: ``lud_diagonal`` factors the
diagonal tile, ``lud_perimeter`` (2·B threads) updates the row/column
stripes, and ``lud_internal`` (B×B threads, 2-D grid) updates the trailing
submatrix with two shared tiles. These are the kernels behind Fig. 14/15
and Table II.
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np

from ..pipeline import Program
from ..runtime import GPURuntime
from .base import Benchmark, Launch, register

B = 16  # tile size, as in Rodinia

SOURCE = r"""
#define BS 16

__global__ void lud_diagonal(float *m, int n, int offset) {
    __shared__ float shadow[BS][BS];
    int tx = threadIdx.x;
    for (int i = 0; i < BS; i++) {
        shadow[i][tx] = m[(offset + i) * n + offset + tx];
    }
    __syncthreads();
    for (int i = 0; i < BS - 1; i++) {
        if (tx > i) {
            for (int j = 0; j < i; j++) {
                shadow[tx][i] -= shadow[tx][j] * shadow[j][i];
            }
            shadow[tx][i] /= shadow[i][i];
        }
        __syncthreads();
        if (tx > i) {
            for (int j = 0; j < i + 1; j++) {
                shadow[i + 1][tx] -= shadow[i + 1][j] * shadow[j][tx];
            }
        }
        __syncthreads();
    }
    for (int i = 1; i < BS; i++) {
        m[(offset + i) * n + offset + tx] = shadow[i][tx];
    }
}

__global__ void lud_perimeter(float *m, int n, int offset) {
    __shared__ float dia[BS][BS];
    __shared__ float peri_row[BS][BS];
    __shared__ float peri_col[BS][BS];
    int tx = threadIdx.x;
    int bx = blockIdx.x;
    int idx = 0;
    if (tx < BS) {
        idx = tx;
        for (int i = 0; i < BS / 2; i++) {
            dia[i][idx] = m[(offset + i) * n + offset + idx];
        }
        for (int i = 0; i < BS; i++) {
            peri_row[i][idx] =
                m[(offset + i) * n + offset + (bx + 1) * BS + idx];
        }
    } else {
        idx = tx - BS;
        for (int i = BS / 2; i < BS; i++) {
            dia[i][idx] = m[(offset + i) * n + offset + idx];
        }
        for (int i = 0; i < BS; i++) {
            peri_col[i][idx] =
                m[(offset + (bx + 1) * BS + i) * n + offset + idx];
        }
    }
    __syncthreads();
    if (tx < BS) {
        idx = tx;
        for (int i = 1; i < BS; i++) {
            for (int j = 0; j < i; j++) {
                peri_row[i][idx] -= dia[i][j] * peri_row[j][idx];
            }
        }
    } else {
        idx = tx - BS;
        for (int i = 0; i < BS; i++) {
            for (int j = 0; j < i; j++) {
                peri_col[idx][i] -= peri_col[idx][j] * dia[j][i];
            }
            peri_col[idx][i] /= dia[i][i];
        }
    }
    __syncthreads();
    if (tx < BS) {
        idx = tx;
        for (int i = 1; i < BS; i++) {
            m[(offset + i) * n + offset + (bx + 1) * BS + idx] =
                peri_row[i][idx];
        }
    } else {
        idx = tx - BS;
        for (int i = 0; i < BS; i++) {
            m[(offset + (bx + 1) * BS + i) * n + offset + idx] =
                peri_col[i][idx];
        }
    }
}

__global__ void lud_internal(float *m, int n, int offset) {
    __shared__ float peri_row[BS][BS];
    __shared__ float peri_col[BS][BS];
    int tx = threadIdx.x;
    int ty = threadIdx.y;
    int gx = (blockIdx.x + 1) * BS;
    int gy = (blockIdx.y + 1) * BS;
    peri_row[ty][tx] = m[(offset + ty) * n + offset + gx + tx];
    peri_col[ty][tx] = m[(offset + gy + ty) * n + offset + tx];
    __syncthreads();
    float sum = 0.0f;
    for (int i = 0; i < BS; i++) {
        sum += peri_col[ty][i] * peri_row[i][tx];
    }
    m[(offset + gy + ty) * n + offset + gx + tx] -= sum;
}
"""


def lu_reference(matrix: np.ndarray) -> np.ndarray:
    """In-place Doolittle LU without pivoting (Rodinia's lud_base)."""
    a = matrix.astype(np.float32).copy()
    n = a.shape[0]
    for k in range(n):
        a[k + 1:, k] = (a[k + 1:, k] / a[k, k]).astype(np.float32)
        a[k + 1:, k + 1:] = (a[k + 1:, k + 1:] -
                             np.outer(a[k + 1:, k], a[k, k + 1:])
                             ).astype(np.float32)
    return a


def make_diagonally_dominant(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    a = rng.random((n, n), dtype=np.float32)
    # bump the diagonal in place (no pivoting needed); equivalent to
    # adding eye(n)*n without materializing an n*n temporary
    a.flat[::n + 1] += np.float32(n)
    return a


@register
class Lud(Benchmark):
    name = "lud"
    source = SOURCE
    verify_size = 64
    model_size = 8192
    rtol = 2e-3  # blocked vs straight LU round-off differs slightly

    def build_inputs(self, size: int, seed: int = 0):
        return {"matrix": make_diagonally_dominant(size, seed)}

    def iter_launches(self, size: int) -> Iterator[Launch]:
        tiles = size // B
        for t in range(tiles):
            offset = t * B
            remaining = tiles - t - 1
            yield ("lud_diagonal", (1,), (B,))
            if remaining > 0:
                yield ("lud_perimeter", (remaining,), (2 * B,))
                yield ("lud_internal", (remaining, remaining), (B, B))

    def run_gpu(self, program: Program, runtime: GPURuntime,
                inputs: Dict[str, np.ndarray], size: int):
        matrix = runtime.to_device(inputs["matrix"].ravel())
        tiles = size // B
        for t in range(tiles):
            offset = t * B
            remaining = tiles - t - 1
            program.launch("lud_diagonal", (1,), (B,),
                           [matrix, size, offset], runtime=runtime)
            if remaining > 0:
                program.launch("lud_perimeter", (remaining,), (2 * B,),
                               [matrix, size, offset], runtime=runtime)
                program.launch("lud_internal", (remaining, remaining),
                               (B, B), [matrix, size, offset],
                               runtime=runtime)
        return {"matrix": runtime.to_host(matrix).reshape(size, size)}

    def run_cpu(self, inputs: Dict[str, np.ndarray], size: int):
        return {"matrix": lu_reference(inputs["matrix"])}
