"""gaussian — Gaussian elimination (Rodinia).

The §VII-C pathology: ``Fan2`` runs in 4×4 = 16-thread blocks — less than a
warp — with low arithmetic intensity and a launch per matrix row, so it
"fails to saturate available resources and even run in a full warp". Block
coarsening is the paper's fix.
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np

from ..pipeline import Program
from ..runtime import GPURuntime
from .base import Benchmark, Launch, register

BLOCK_1D = 16
BLOCK_XY = 4  # Fan2 runs 4x4 blocks = 16 threads

SOURCE = r"""
__global__ void Fan1(float *m_cuda, float *a_cuda, int Size, int t) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= Size - 1 - t) return;
    m_cuda[Size * (i + t + 1) + t] =
        a_cuda[Size * (i + t + 1) + t] / a_cuda[Size * t + t];
}

__global__ void Fan2(float *m_cuda, float *a_cuda, float *b_cuda,
                     int Size, int t) {
    int x = blockIdx.x * blockDim.x + threadIdx.x;
    int y = blockIdx.y * blockDim.y + threadIdx.y;
    if (x >= Size - 1 - t) return;
    if (y >= Size - t) return;
    a_cuda[Size * (x + 1 + t) + (y + t)] -=
        m_cuda[Size * (x + 1 + t) + t] * a_cuda[Size * t + (y + t)];
    if (y == 0) {
        b_cuda[x + 1 + t] -= m_cuda[Size * (x + 1 + t) + t] * b_cuda[t];
    }
}
"""


def gaussian_reference(a: np.ndarray, b: np.ndarray):
    """Forward elimination + back substitution, in float32."""
    a = a.astype(np.float32).copy()
    b = b.astype(np.float32).copy()
    n = a.shape[0]
    m = np.zeros_like(a)
    for t in range(n - 1):
        m[t + 1:, t] = (a[t + 1:, t] / a[t, t]).astype(np.float32)
        a[t + 1:, t:] = (a[t + 1:, t:] -
                         np.outer(m[t + 1:, t], a[t, t:])).astype(np.float32)
        b[t + 1:] = (b[t + 1:] - m[t + 1:, t] * b[t]).astype(np.float32)
    x = np.zeros(n, dtype=np.float32)
    for i in range(n - 1, -1, -1):
        x[i] = np.float32((b[i] - np.dot(a[i, i + 1:], x[i + 1:])) / a[i, i])
    return a, b, x


@register
class Gaussian(Benchmark):
    name = "gaussian"
    source = SOURCE
    verify_size = 48
    model_size = 1024
    rtol = 1e-2  # elimination is numerically touchy in fp32

    def build_inputs(self, size: int, seed: int = 0):
        rng = np.random.default_rng(seed)
        a = rng.random((size, size), dtype=np.float32)
        a += np.eye(size, dtype=np.float32) * size
        b = rng.random(size, dtype=np.float32)
        return {"a": a, "b": b}

    def iter_launches(self, size: int) -> Iterator[Launch]:
        for t in range(size - 1):
            rows = size - 1 - t
            grid1 = -(-rows // BLOCK_1D)
            yield ("Fan1", (grid1,), (BLOCK_1D,))
            gx = -(-rows // BLOCK_XY)
            gy = -(-(size - t) // BLOCK_XY)
            yield ("Fan2", (gx, gy), (BLOCK_XY, BLOCK_XY))

    def run_gpu(self, program: Program, runtime: GPURuntime,
                inputs: Dict[str, np.ndarray], size: int):
        a = runtime.to_device(inputs["a"].ravel())
        b = runtime.to_device(inputs["b"])
        m = runtime.malloc(size * size, np.float32)
        m.fill(0.0)
        for t in range(size - 1):
            rows = size - 1 - t
            grid1 = -(-rows // BLOCK_1D)
            program.launch("Fan1", (grid1,), (BLOCK_1D,),
                           [m, a, size, t], runtime=runtime)
            gx = -(-rows // BLOCK_XY)
            gy = -(-(size - t) // BLOCK_XY)
            program.launch("Fan2", (gx, gy), (BLOCK_XY, BLOCK_XY),
                           [m, a, b, size, t], runtime=runtime)
        a_host = runtime.to_host(a).reshape(size, size)
        b_host = runtime.to_host(b)
        # back substitution on the host, as in Rodinia
        x = np.zeros(size, dtype=np.float32)
        for i in range(size - 1, -1, -1):
            x[i] = np.float32(
                (b_host[i] - np.dot(a_host[i, i + 1:], x[i + 1:])) /
                a_host[i, i])
        return {"x": x}

    def run_cpu(self, inputs: Dict[str, np.ndarray], size: int):
        _, _, x = gaussian_reference(inputs["a"], inputs["b"])
        return {"x": x}
