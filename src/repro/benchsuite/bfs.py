"""bfs — breadth-first search (Rodinia).

Frontier expansion with heavy control-flow divergence and no shared memory;
the host iterates until the frontier is empty (device→host flag readback
each iteration, visible in composite time).
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np

from ..pipeline import Program
from ..runtime import GPURuntime
from .base import Benchmark, Launch, register

BLOCK = 256

SOURCE = r"""
__global__ void bfs_kernel1(int *starts, int *degrees, int *edges,
                            int *mask, int *updating_mask, int *visited,
                            int *cost, int no_of_nodes) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid >= no_of_nodes) return;
    if (mask[tid] == 1) {
        mask[tid] = 0;
        int start = starts[tid];
        int degree = degrees[tid];
        for (int i = start; i < start + degree; i++) {
            int id = edges[i];
            if (visited[id] == 0) {
                cost[id] = cost[tid] + 1;
                updating_mask[id] = 1;
            }
        }
    }
}

__global__ void bfs_kernel2(int *mask, int *updating_mask, int *visited,
                            int *over, int no_of_nodes) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid >= no_of_nodes) return;
    if (updating_mask[tid] == 1) {
        mask[tid] = 1;
        visited[tid] = 1;
        updating_mask[tid] = 0;
        over[0] = 1;
    }
}
"""


def make_graph(n: int, degree: int, seed: int):
    """A random graph in CSR form with fixed out-degree."""
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, n, size=n * degree).astype(np.int64)
    # make it loosely connected: node i always links to (i+1) % n
    edges[::degree] = (np.arange(n) + 1) % n
    starts = (np.arange(n) * degree).astype(np.int64)
    degrees = np.full(n, degree, dtype=np.int64)
    return starts, degrees, edges


def bfs_reference(starts, degrees, edges, n, source=0):
    cost = np.full(n, -1, dtype=np.int64)
    cost[source] = 0
    frontier = [source]
    level = 0
    while frontier:
        next_frontier = []
        for node in frontier:
            for e in range(starts[node], starts[node] + degrees[node]):
                neighbor = edges[e]
                if cost[neighbor] == -1:
                    cost[neighbor] = level + 1
                    next_frontier.append(neighbor)
        frontier = sorted(set(next_frontier))
        level += 1
    return cost


@register
class BFS(Benchmark):
    name = "bfs"
    source = SOURCE
    verify_size = 256
    model_size = 1 << 20
    degree = 4
    rtol = 0.0

    def build_inputs(self, size: int, seed: int = 0):
        starts, degrees, edges = make_graph(size, self.degree, seed)
        return {"starts": starts, "degrees": degrees, "edges": edges}

    def iter_launches(self, size: int) -> Iterator[Launch]:
        grid = -(-size // BLOCK)
        for _ in range(12):  # typical number of frontier levels
            yield ("bfs_kernel1", (grid,), (BLOCK,))
            yield ("bfs_kernel2", (grid,), (BLOCK,))

    def run_gpu(self, program: Program, runtime: GPURuntime,
                inputs: Dict[str, np.ndarray], size: int):
        n = size
        grid = -(-n // BLOCK)
        starts = runtime.to_device(inputs["starts"])
        degrees = runtime.to_device(inputs["degrees"])
        edges = runtime.to_device(inputs["edges"])
        mask = runtime.malloc(n, np.int64)
        updating = runtime.malloc(n, np.int64)
        visited = runtime.malloc(n, np.int64)
        cost = runtime.malloc(n, np.int64)
        cost.fill(-1)
        host_mask = np.zeros(n, dtype=np.int64)
        host_mask[0] = 1
        runtime.write(mask, host_mask)
        host_visited = np.zeros(n, dtype=np.int64)
        host_visited[0] = 1
        runtime.write(visited, host_visited)
        host_cost = np.full(n, -1, dtype=np.int64)
        host_cost[0] = 0
        runtime.write(cost, host_cost)
        over = runtime.malloc(1, np.int64)

        for _ in range(n):  # safety bound
            over.fill(0)
            program.launch("bfs_kernel1", (grid,), (BLOCK,),
                           [starts, degrees, edges, mask, updating,
                            visited, cost, n], runtime=runtime)
            program.launch("bfs_kernel2", (grid,), (BLOCK,),
                           [mask, updating, visited, over, n],
                           runtime=runtime)
            if runtime.to_host(over)[0] == 0:
                break
        return {"cost": runtime.to_host(cost)}

    def run_cpu(self, inputs: Dict[str, np.ndarray], size: int):
        return {"cost": bfs_reference(inputs["starts"], inputs["degrees"],
                                      inputs["edges"], size)}
