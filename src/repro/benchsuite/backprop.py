"""backprop — neural network training step (Rodinia).

``layerforward`` uses a 16×16 block with shared input/weight tiles and a
barrier-carrying tree reduction; ``adjust_weights`` is a simple streaming
update kernel.
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np

from ..pipeline import Program
from ..runtime import GPURuntime
from .base import Benchmark, Launch, register

W = 16  # WIDTH/HEIGHT of the per-block tile

SOURCE = r"""
#define WIDTH 16

__global__ void layerforward(float *input_cuda, float *input_hidden_cuda,
                             float *hidden_partial_sum, int in, int hid) {
    __shared__ float input_node[WIDTH];
    __shared__ float weight_matrix[WIDTH][WIDTH];
    int by = blockIdx.y;
    int tx = threadIdx.x;
    int ty = threadIdx.y;

    int index = (hid + 1) * WIDTH * by + (hid + 1) * ty + tx + 1 + (hid + 1);
    int index_in = WIDTH * by + ty + 1;

    if (tx == 0) {
        input_node[ty] = input_cuda[index_in];
    }
    __syncthreads();
    weight_matrix[ty][tx] = input_hidden_cuda[index];
    __syncthreads();
    weight_matrix[ty][tx] = weight_matrix[ty][tx] * input_node[ty];
    __syncthreads();
    for (int it = 0; it < 4; it++) {
        int power_two = 2 << it;
        if (ty % power_two == 0) {
            weight_matrix[ty][tx] = weight_matrix[ty][tx] +
                weight_matrix[ty + power_two / 2][tx];
        }
        __syncthreads();
    }
    if (tx == 0) {
        hidden_partial_sum[by * hid + ty] = weight_matrix[tx][ty];
    }
}

__global__ void adjust_weights(float *delta, int hid, float *ly, int in,
                               float *w, float *oldw) {
    int by = blockIdx.y;
    int tx = threadIdx.x;
    int ty = threadIdx.y;
    int index = (hid + 1) * WIDTH * by + (hid + 1) * ty + tx + 1 + (hid + 1);
    int index_y = WIDTH * by + ty + 1;
    int index_x = tx + 1;
    w[index] += 0.3f * delta[index_x] * ly[index_y] +
        0.3f * oldw[index];
    oldw[index] = 0.3f * delta[index_x] * ly[index_y] +
        0.3f * oldw[index];
}
"""


def layerforward_reference(input_units, weights, n_in, hid):
    """Partial sums per block, exactly as the kernel computes them."""
    blocks = n_in // W
    partial = np.zeros((blocks, hid), dtype=np.float32)
    for by in range(blocks):
        tile = np.empty((W, W), dtype=np.float32)
        for ty in range(W):
            for tx in range(W):
                index = (hid + 1) * W * by + (hid + 1) * ty + tx + 1 + \
                    (hid + 1)
                tile[ty, tx] = weights.ravel()[index]
        node = input_units[W * by + 1: W * by + W + 1]
        tile = (tile.T * node).T.astype(np.float32)
        # tree reduction down column direction (float32 order matters)
        for it in range(4):
            p = 2 << it
            for ty in range(0, W, p):
                tile[ty] = (tile[ty] + tile[ty + p // 2]).astype(np.float32)
        partial[by] = tile[0]
    return partial.ravel()


def adjust_reference(delta, hid, ly, n_in, w, oldw):
    w = w.copy()
    oldw = oldw.copy()
    blocks = n_in // W
    for by in range(blocks):
        for ty in range(W):
            for tx in range(W):
                index = (hid + 1) * W * by + (hid + 1) * ty + tx + 1 + \
                    (hid + 1)
                index_y = W * by + ty + 1
                index_x = tx + 1
                change = np.float32(0.3) * delta[index_x] * ly[index_y] + \
                    np.float32(0.3) * oldw.ravel()[index]
                w.ravel()[index] = w.ravel()[index] + change
                oldw.ravel()[index] = change
    return w, oldw


@register
class Backprop(Benchmark):
    name = "backprop"
    source = SOURCE
    verify_size = 64    # input units; hidden = 16
    model_size = 65536
    hid = W
    rtol = 1e-4

    def build_inputs(self, size: int, seed: int = 0):
        rng = np.random.default_rng(seed)
        hid = self.hid
        return {
            "input_units": rng.random(size + 1, dtype=np.float32),
            "weights": rng.random((size + 1) * (hid + 1),
                                  dtype=np.float32),
            "delta": rng.random(hid + 1, dtype=np.float32),
            "oldw": rng.random((size + 1) * (hid + 1), dtype=np.float32),
        }

    def iter_launches(self, size: int) -> Iterator[Launch]:
        blocks = size // W
        yield ("layerforward", (1, blocks), (W, W))
        yield ("adjust_weights", (1, blocks), (W, W))

    def run_gpu(self, program: Program, runtime: GPURuntime,
                inputs: Dict[str, np.ndarray], size: int):
        hid = self.hid
        blocks = size // W
        input_units = runtime.to_device(inputs["input_units"])
        weights = runtime.to_device(inputs["weights"])
        partial = runtime.malloc(blocks * hid, np.float32)
        program.launch("layerforward", (1, blocks), (W, W),
                       [input_units, weights, partial, size, hid],
                       runtime=runtime)
        delta = runtime.to_device(inputs["delta"])
        oldw = runtime.to_device(inputs["oldw"])
        program.launch("adjust_weights", (1, blocks), (W, W),
                       [delta, hid, input_units, size, weights, oldw],
                       runtime=runtime)
        return {"partial": runtime.to_host(partial),
                "weights": runtime.to_host(weights),
                "oldw": runtime.to_host(oldw)}

    def run_cpu(self, inputs: Dict[str, np.ndarray], size: int):
        partial = layerforward_reference(inputs["input_units"],
                                         inputs["weights"], size, self.hid)
        w, oldw = adjust_reference(inputs["delta"], self.hid,
                                   inputs["input_units"], size,
                                   inputs["weights"], inputs["oldw"])
        return {"partial": partial, "weights": w.ravel(),
                "oldw": oldw.ravel()}
