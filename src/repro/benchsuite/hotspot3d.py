"""hotspot3D — 3-D thermal stencil (Rodinia), double precision.

One of the f64-heavy benchmarks the paper singles out in §VII-D2: the
RX6800's higher FP64 throughput beats the A4000 here.
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np

from ..pipeline import Program
from ..runtime import GPURuntime
from .base import Benchmark, Launch, register

BX, BY = 16, 4

SOURCE = r"""
__global__ void hotspotOpt1(double *p, double *tIn, double *tOut,
                            double stepDivCap, int nx, int ny, int nz,
                            double ce, double cw, double cn, double cs,
                            double ct, double cb, double cc) {
    double amb_temp = 80.0;
    int i = blockDim.x * blockIdx.x + threadIdx.x;
    int j = blockDim.y * blockIdx.y + threadIdx.y;
    if (i >= nx) return;
    if (j >= ny) return;
    int c = i + j * nx;
    int xy = nx * ny;
    int W = i - 1;
    int E = i + 1;
    int N = j - 1;
    int S = j + 1;
    if (W < 0) W = 0;
    if (E > nx - 1) E = nx - 1;
    if (N < 0) N = 0;
    if (S > ny - 1) S = ny - 1;

    double temp1 = tIn[c];
    double temp2 = tIn[c];
    double temp3 = tIn[c + xy];
    for (int k = 0; k < nz; k++) {
        int base = k * xy;
        tOut[c + base] = cc * temp2 + cw * tIn[base + W + j * nx] +
            ce * tIn[base + E + j * nx] + cs * tIn[base + i + S * nx] +
            cn * tIn[base + i + N * nx] + cb * temp1 + ct * temp3 +
            stepDivCap * p[c + base] + ct * amb_temp;
        temp1 = temp2;
        temp2 = temp3;
        if (k + 2 < nz) {
            temp3 = tIn[c + (k + 2) * xy];
        }
    }
}
"""


def hotspot3d_reference(power, temp, steps, coeffs, sdc, nx, ny, nz):
    ce, cw, cn, cs, ct, cb, cc = coeffs
    t = temp.astype(np.float64).copy().reshape(nz, ny, nx)
    p = power.astype(np.float64).reshape(nz, ny, nx)
    amb = 80.0
    for _ in range(steps):
        west = np.concatenate([t[:, :, :1], t[:, :, :-1]], axis=2)
        east = np.concatenate([t[:, :, 1:], t[:, :, -1:]], axis=2)
        north = np.concatenate([t[:, :1, :], t[:, :-1, :]], axis=1)
        south = np.concatenate([t[:, 1:, :], t[:, -1:, :]], axis=1)
        below = np.concatenate([t[:1, :, :], t[:-1, :, :]], axis=0)
        above = np.concatenate([t[1:, :, :], t[-1:, :, :]], axis=0)
        t = (cc * t + cw * west + ce * east + cs * south + cn * north +
             cb * below + ct * above + sdc * p + ct * amb)
    return t.ravel()


_COEFFS = (0.03, 0.03, 0.01, 0.01, 0.05, 0.05, 0.82)
_SDC = 0.001


@register
class Hotspot3D(Benchmark):
    name = "hotspot3D"
    source = SOURCE
    uses_double = True
    verify_size = 16   # 16 x 16 x 4
    model_size = 512
    steps = 2
    model_steps = 100
    rtol = 1e-6

    def _dims(self, size: int):
        return size, size, 4 if size <= 64 else 8

    def build_inputs(self, size: int, seed: int = 0):
        nx, ny, nz = self._dims(size)
        rng = np.random.default_rng(seed)
        return {
            "temp": rng.random(nx * ny * nz) * 50 + 300,
            "power": rng.random(nx * ny * nz),
        }

    def iter_launches(self, size: int) -> Iterator[Launch]:
        nx, ny, _ = self._dims(size)
        grid = (-(-nx // BX), -(-ny // BY))
        for _ in range(self.model_steps):
            yield ("hotspotOpt1", grid, (BX, BY))

    def run_gpu(self, program: Program, runtime: GPURuntime,
                inputs: Dict[str, np.ndarray], size: int):
        nx, ny, nz = self._dims(size)
        ce, cw, cn, cs, ct, cb, cc = _COEFFS
        power = runtime.to_device(inputs["power"])
        src = runtime.to_device(inputs["temp"])
        dst = runtime.malloc(nx * ny * nz, np.float64)
        grid = (-(-nx // BX), -(-ny // BY))
        for _ in range(self.steps):
            program.launch("hotspotOpt1", grid, (BX, BY),
                           [power, src, dst, _SDC, nx, ny, nz,
                            ce, cw, cn, cs, ct, cb, cc], runtime=runtime)
            src, dst = dst, src
        return {"temp": runtime.to_host(src)}

    def run_cpu(self, inputs: Dict[str, np.ndarray], size: int):
        nx, ny, nz = self._dims(size)
        return {"temp": hotspot3d_reference(
            inputs["power"], inputs["temp"], self.steps, _COEFFS, _SDC,
            nx, ny, nz)}
