"""myocyte — cardiac myocyte ODE integration (Rodinia).

One thread per simulation instance, each integrating a small ODE system
over many sequential steps: extremely compute-bound per thread with
transcendental math, tiny grids, and no inter-thread communication — the
opposite corner of the workload space from lud/nw.
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np

from ..pipeline import Program
from ..runtime import GPURuntime
from .base import Benchmark, Launch, register

BLOCK = 32
STATES = 4
STEPS = 16

SOURCE = r"""
#define STATES 4
#define STEPS 16

__global__ void solver_kernel(float *initial, float *result,
                              float *params, int instances, float h) {
    int i = blockDim.x * blockIdx.x + threadIdx.x;
    if (i >= instances) return;

    float v = initial[i * STATES];
    float w = initial[i * STATES + 1];
    float ca = initial[i * STATES + 2];
    float na = initial[i * STATES + 3];
    float p0 = params[i * 2];
    float p1 = params[i * 2 + 1];

    for (int step = 0; step < STEPS; step++) {
        float dv = p0 * (v - v * v * v / 3.0f - w + p1);
        float dw = 0.08f * (v + 0.7f - 0.8f * w);
        float dca = 0.05f * (expf(-ca) - na * 0.1f);
        float dna = 0.02f * (sinf(v * 0.5f) - na);
        v = v + h * dv;
        w = w + h * dw;
        ca = ca + h * dca;
        na = na + h * dna;
    }
    result[i * STATES] = v;
    result[i * STATES + 1] = w;
    result[i * STATES + 2] = ca;
    result[i * STATES + 3] = na;
}
"""


def myocyte_reference(initial, params, instances, h):
    state = initial.astype(np.float32).reshape(instances, STATES).copy()
    p = params.astype(np.float32).reshape(instances, 2)
    h = np.float32(h)
    v = state[:, 0].copy()
    w = state[:, 1].copy()
    ca = state[:, 2].copy()
    na = state[:, 3].copy()
    f = np.float32
    for _ in range(STEPS):
        dv = p[:, 0] * (v - v * v * v / f(3.0) - w + p[:, 1])
        dw = f(0.08) * (v + f(0.7) - f(0.8) * w)
        dca = f(0.05) * (np.exp(-ca) - na * f(0.1))
        dna = f(0.02) * (np.sin(v * f(0.5)) - na)
        v = (v + h * dv).astype(np.float32)
        w = (w + h * dw).astype(np.float32)
        ca = (ca + h * dca).astype(np.float32)
        na = (na + h * dna).astype(np.float32)
    out = np.stack([v, w, ca, na], axis=1).astype(np.float32)
    return out.ravel()


@register
class Myocyte(Benchmark):
    name = "myocyte"
    source = SOURCE
    verify_size = 128     # instances
    model_size = 8192
    rtol = 1e-4

    def build_inputs(self, size: int, seed: int = 0):
        rng = np.random.default_rng(seed)
        return {
            "initial": (rng.random(size * STATES,
                                   dtype=np.float32) - 0.5),
            "params": (rng.random(size * 2, dtype=np.float32) + 0.5),
        }

    def iter_launches(self, size: int) -> Iterator[Launch]:
        grid = -(-size // BLOCK)
        yield ("solver_kernel", (grid,), (BLOCK,))

    def run_gpu(self, program: Program, runtime: GPURuntime,
                inputs: Dict[str, np.ndarray], size: int):
        grid = -(-size // BLOCK)
        initial = runtime.to_device(inputs["initial"])
        params = runtime.to_device(inputs["params"])
        result = runtime.malloc(size * STATES, np.float32)
        program.launch("solver_kernel", (grid,), (BLOCK,),
                       [initial, result, params, size, 0.05],
                       runtime=runtime)
        return {"result": runtime.to_host(result)}

    def run_cpu(self, inputs: Dict[str, np.ndarray], size: int):
        return {"result": myocyte_reference(inputs["initial"],
                                            inputs["params"], size, 0.05)}
