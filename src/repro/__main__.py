"""Command-line interface: ``python -m repro <command>``.

Commands mirror the Polygeist-GPU driver workflow:

* ``emit-ir``   — compile a .cu file and print the parallel IR for a kernel
  (optionally after coarsening), the Fig. 2/5 representation;
* ``tune``      — sweep coarsening factors for a kernel and print the
  TDO candidate table (``--validate`` turns on the differential
  equivalence gate);
* ``validate``  — differentially validate every coarsening alternative of
  a benchmark or kernel against the untransformed baseline, and run the
  static barrier-legality lint;
* ``hipify``    — run the source-to-source CUDA→HIP translation and report
  the manual fixes a human would still need (§VII-D1);
* ``targets``   — list the available GPU architecture models (Table I);
* ``cache``     — inspect or clear the on-disk tuning cache
  (``$REPRO_TUNING_CACHE``);
* ``trace``     — summarize a recorded Chrome trace-event JSON file
  (produced by ``tune --trace``);
* ``sweep``     — run one figure's evaluation matrix (fig13/fig16/fig17/
  table2) sharded over crash-isolated worker processes, with per-job
  timeout, bounded retry, and ``--resume`` from a previous ``--json``
  output;
* ``analyze``   — tune + model one benchmark with full observability and
  report each kernel's roofline position, a named bottleneck verdict,
  and why TDO's winner won (see ``docs/ANALYZE.md``);
* ``check``     — diff two recorded runs (``BENCH_*.json`` or
  ``sweep --json``) cell by cell and exit non-zero on regressions
  beyond a noise band; exit 2 when the records are not comparable;
* ``serve``     — run the long-lived tuning daemon: an HTTP/JSON API
  over an async job queue and ONE shared on-disk tuning cache, so many
  clients amortize each other's tuning runs (see ``docs/SERVE.md``);
* ``submit``    — send one tuning request to a running daemon and wait
  for (or poll) the result.

``tune --trace out.json`` records every compilation stage — parse, each
cleanup pass, each pruning filter, each modeled alternative — as a Chrome
trace loadable in Perfetto; ``tune --explain`` prints why every generated
alternative was eliminated or selected. ``-v``/``-q`` control the
``repro`` logger hierarchy.
"""

from __future__ import annotations

import argparse
import sys


def _load_source(path: str) -> str:
    with open(path) as handle:
        return handle.read()


def _parse_dims(text: str):
    return tuple(int(part) for part in text.split(",") if part)


def cmd_emit_ir(args) -> int:
    from .dialects import polygeist
    from .frontend import ModuleGenerator, parse_translation_unit
    from .ir import print_op
    from .transforms import coarsen_wrapper, run_cleanup

    unit = parse_translation_unit(_load_source(args.file))
    generator = ModuleGenerator(unit)
    kernels = [f.name for f in unit.kernels()]
    if not kernels:
        print("no __global__ kernels found", file=sys.stderr)
        return 1
    kernel = args.kernel or kernels[0]
    block = _parse_dims(args.block)
    name = generator.get_launch_wrapper(kernel, args.grid_rank, block)
    run_cleanup(generator.module)
    wrapper = polygeist.find_gpu_wrappers(generator.module.func(name))[0]
    if args.block_factor > 1 or args.thread_factor > 1:
        result = coarsen_wrapper(
            wrapper,
            block_total=args.block_factor if args.block_factor > 1
            else None,
            thread_total=args.thread_factor if args.thread_factor > 1
            else None)
        run_cleanup(generator.module)
        print("// coarsened: %s" % result.describe())
    print(print_op(generator.module.func(name)))
    return 0


def _run_full_tune(source: str, kernel: str, block, grids, arch, configs,
                   engine):
    """The full §VI flow (alternatives → filters → TDO) for one kernel.

    This is what ``tune --trace`` / ``tune --explain`` observe: unlike
    the sweep table (which models *every* configuration unfiltered), it
    runs the pruning filters, so the trace contains the filter stages and
    the decision log names an eliminating stage per alternative.
    """
    from .autotune import tune_wrapper
    from .dialects import polygeist
    from .frontend import ModuleGenerator, parse_translation_unit
    from .transforms import run_cleanup

    with engine.stats.stage("parse"):
        unit = parse_translation_unit(source)
        generator = ModuleGenerator(unit)
    wrapper_name = generator.get_launch_wrapper(kernel, len(grids[0]),
                                                block)
    with engine.stats.stage("cleanup"):
        run_cleanup(generator.module)
    f = generator.module.func(wrapper_name)
    wrapper = polygeist.find_gpu_wrappers(f)[0]
    grid_args = f.body_block().args[:len(grids[0])]
    envs = [dict(zip(grid_args, grid)) for grid in grids]
    return tune_wrapper(wrapper, arch, envs, configs, engine=engine)


def cmd_tune(args) -> int:
    from .autotune import paper_sweep_configs
    from .benchsuite.experiments import sweep_kernel_configs
    from .engine import EngineStats, TuningEngine
    from .obs import decisions as obs_decisions
    from .obs import metrics as obs_metrics
    from .obs import tracer as obs_tracer
    from .obs.export import write_chrome_trace
    from .targets import arch_by_name

    arch = arch_by_name(args.arch)
    block = _parse_dims(args.block)
    grid = _parse_dims(args.grid)
    configs = paper_sweep_configs(max_product=args.max_factor)
    tracer = None
    registry = None
    log = None
    validate = args.validate or None
    if args.trace:
        # one registry backs both the engine's stage stats and the
        # engine-less instrumentation sites (passes, filters, model)
        registry = obs_metrics.install(obs_metrics.MetricsRegistry())
        tracer = obs_tracer.install(obs_tracer.Tracer())
        engine = TuningEngine(workers=args.workers,
                              stats=EngineStats(registry=registry),
                              validate=validate)
    else:
        engine = TuningEngine(workers=args.workers, validate=validate)
    try:
        sweep = sweep_kernel_configs(
            _load_source(args.file), args.kernel, block, [grid], arch,
            configs, engine=engine)
        baseline = sweep.baseline()
        if baseline is None:
            print("baseline configuration failed to model",
                  file=sys.stderr)
            return 1
        print("%-26s %14s %10s" % ("configuration", "modeled time",
                                   "speedup"))
        print("-" * 54)
        for result in sorted(sweep.results, key=lambda r: r.seconds):
            if result.valid:
                print("%-26s %13.3es %9.2fx" %
                      (result.desc, result.seconds,
                       baseline.seconds / result.seconds))
            else:
                print("%-26s %14s  (%s)" % (result.desc, "invalid",
                                            result.reason))
        best = sweep.best()
        print("-" * 54)
        print("best: %s (%.2fx) on %s" %
              (best.desc, baseline.seconds / best.seconds, arch.name))
        outcome = None
        if args.explain or args.trace or engine.validate:
            log = obs_decisions.install(obs_decisions.DecisionLog())
            try:
                outcome = _run_full_tune(_load_source(args.file),
                                         args.kernel, block, [grid], arch,
                                         configs, engine)
            except ValueError as error:
                print("full tune failed: %s" % error, file=sys.stderr)
                if engine.validate:
                    return 1
            finally:
                obs_decisions.uninstall()
        if engine.validate and outcome is not None \
                and outcome.validation is not None:
            print()
            print(outcome.validation.summary())
        if args.explain and log is not None and len(log):
            print()
            print(log.explain())
        if args.stats:
            print()
            print("engine stages (%r):" % engine.backend)
            print(engine.stats.report())
    finally:
        if tracer is not None:
            obs_tracer.uninstall()
            obs_metrics.uninstall()
            write_chrome_trace(args.trace, tracer, metrics=registry,
                               decisions=log)
            print("wrote %d spans to %s" % (len(tracer), args.trace),
                  file=sys.stderr)
    return 0


def _lint_source(source: str, launches) -> list:
    """Build every distinct launch wrapper from ``launches`` and lint the
    resulting module."""
    from .frontend import ModuleGenerator, parse_translation_unit
    from .transforms import run_cleanup
    from .validate import lint_module

    generator = ModuleGenerator(parse_translation_unit(source))
    seen = set()
    for kernel, grid, block in launches:
        key = (kernel, len(grid), tuple(block))
        if key not in seen:
            seen.add(key)
            generator.get_launch_wrapper(kernel, len(grid), tuple(block))
    run_cleanup(generator.module)
    return lint_module(generator.module)


def cmd_validate(args) -> int:
    from .benchsuite import BENCHMARKS, get_benchmark
    from .frontend import parse_translation_unit
    from .targets import arch_by_name
    from .validate import validate_benchmark, validate_source

    arch = arch_by_name(args.arch)
    if args.target in BENCHMARKS:
        bench = get_benchmark(args.target)
        source = bench.source
        launches = list(bench.iter_launches(args.size or
                                            bench.verify_size))
        report = validate_benchmark(args.target, arch, size=args.size,
                                    seed=args.seed)
    else:
        source = _load_source(args.target)
        kernels = [f.name for f in
                   parse_translation_unit(source).kernels()]
        if not kernels:
            print("no __global__ kernels found", file=sys.stderr)
            return 1
        kernel = args.kernel or kernels[0]
        grid = _parse_dims(args.grid)
        block = _parse_dims(args.block)
        launches = [(kernel, grid, block)]
        report = validate_source(source, kernel, grid, block,
                                 seed=args.seed)

    lint_reports = _lint_source(source, launches)
    findings = [f for r in lint_reports for f in r.findings]
    if findings:
        print("lint: %d finding(s)" % len(findings))
        for lint_report in lint_reports:
            if lint_report.findings:
                print(lint_report.summary())
    else:
        print("lint: clean (%d wrapper(s))" % len(lint_reports))
    print()
    print(report.summary())
    errors = [f for f in findings if f.severity == "error"]
    if not report.ok or errors:
        divergence = report.first_divergence
        if divergence is not None:
            print()
            print("first failing alternative: %s" % divergence.desc,
                  file=sys.stderr)
        return 1
    return 0


def cmd_trace(args) -> int:
    from .obs.export import summarize_trace_file

    try:
        summary = summarize_trace_file(args.file, top=args.top,
                                       metrics=True)
    except (OSError, ValueError) as error:
        print("cannot summarize %s: %s" % (args.file, error),
              file=sys.stderr)
        return 1
    print(summary)
    return 0


def cmd_analyze(args) -> int:
    import json
    import time

    from .analysis.report import analyze_benchmark
    from .autotune import paper_sweep_configs
    from .benchsuite import BENCHMARKS
    from .targets import arch_by_name

    if args.bench not in BENCHMARKS:
        print("unknown benchmark %r (have: %s)" %
              (args.bench, ", ".join(sorted(BENCHMARKS))), file=sys.stderr)
        return 1
    configs = paper_sweep_configs(max_product=args.max_factor) \
        if args.max_factor is not None else None
    analysis = analyze_benchmark(args.bench, arch_by_name(args.arch),
                                 tier=args.tier, size=args.size,
                                 configs=configs)
    analysis.provenance["created"] = \
        time.strftime("%Y-%m-%dT%H:%M:%S%z")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(analysis.as_dict(), handle, indent=1)
            handle.write("\n")
        print("wrote %s" % args.json)
    if args.markdown or not args.json:
        print(analysis.to_markdown())
    return 0


def cmd_check(args) -> int:
    from .analysis.check import (CheckUsageError, check_files,
                                 parse_noise_band)

    try:
        report = check_files(args.baseline, args.new,
                             parse_noise_band(args.noise_band))
    except CheckUsageError as error:
        print("check refused: %s" % error, file=sys.stderr)
        return 2
    print(report.summary())
    return 0 if report.ok else 1


def cmd_cache(args) -> int:
    from .engine import TuningCache, default_cache_path

    path = args.path or default_cache_path()
    if not path:
        print("no cache directory: pass --path or set $REPRO_TUNING_CACHE",
              file=sys.stderr)
        return 1
    cache = TuningCache(path)
    if args.action == "clear":
        cache.clear()
        print("cleared tuning cache at %s" % path)
    else:
        print("tuning cache at %s: %d entries on disk" %
              (path, cache.disk_entries()))
    return 0


def cmd_hipify(args) -> int:
    from .translate import hipify

    result = hipify(_load_source(args.file))
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(result.source)
    else:
        print(result.source)
    for change in result.changes:
        print("// auto: %s" % change, file=sys.stderr)
    for fix in result.manual_fixes:
        print("// MANUAL FIX NEEDED: %s" % fix, file=sys.stderr)
    return 0 if result.clean else 2


def cmd_sweep(args) -> int:
    import os

    from .autotune import paper_sweep_configs
    from .benchsuite.sweeps import (load_resume_values, run_figure_sweep,
                                    write_sweep_json)

    benchmarks = [b.strip() for b in (args.benchmarks or "").split(",")
                  if b.strip()] or None
    arch_names = [a.strip() for a in (args.arch or "").split(",")
                  if a.strip()]
    configs = paper_sweep_configs(max_product=args.max_factor) \
        if args.max_factor is not None else None
    if args.figure == "fig13":
        plan_kwargs = dict(benchmarks=benchmarks, configs=configs,
                           include_hecbench=args.include_hecbench)
        if arch_names:
            plan_kwargs["arch"] = arch_names[0]
    elif args.figure == "fig16":
        plan_kwargs = dict(benchmarks=benchmarks, configs=configs)
        if arch_names:
            plan_kwargs["archs"] = arch_names
    elif args.figure == "fig17":
        plan_kwargs = dict(benchmarks=benchmarks, configs=configs)
        if arch_names:
            print("fig17 columns fix their architectures; --arch ignored",
                  file=sys.stderr)
    else:  # table2
        plan_kwargs = dict(size=args.size)
        if arch_names:
            plan_kwargs["arch"] = arch_names[0]
        if benchmarks:
            print("table2 has no benchmark axis; --benchmarks ignored",
                  file=sys.stderr)

    resume_values = None
    if args.resume:
        if not args.json:
            print("--resume needs --json FILE to resume from",
                  file=sys.stderr)
            return 1
        if os.path.exists(args.json):
            try:
                resume_values = load_resume_values(args.json, args.figure)
            except (OSError, ValueError) as error:
                print("cannot resume from %s: %s" % (args.json, error),
                      file=sys.stderr)
                return 1

    outcome = run_figure_sweep(
        args.figure, workers=args.workers, timeout=args.timeout,
        retries=args.retries, resume_values=resume_values,
        serial_fallback=False, **plan_kwargs)

    print("sweep %s: %d job(s) run, %d resumed, %d failed in %.1fs"
          % (args.figure, len(outcome.results), len(outcome.resumed),
             len(outcome.failed), outcome.elapsed))
    if outcome.retries or outcome.timeouts or outcome.degraded:
        print("  retries=%d timeouts=%d degraded=%d" %
              (outcome.retries, outcome.timeouts, outcome.degraded))
    for key, error in sorted(outcome.failed.items()):
        print("  FAILED %s: %s" % (key, error), file=sys.stderr)
    if args.json:
        import time
        write_sweep_json(args.json, outcome,
                         meta={"workers": args.workers,
                               "timeout": args.timeout,
                               "benchmarks": benchmarks,
                               "max_factor": args.max_factor},
                         created=time.strftime("%Y-%m-%dT%H:%M:%S%z"))
        print("wrote %s" % args.json)
    return 0 if outcome.data is not None else 1


def cmd_bench(args) -> int:
    from .bench import run_model_bench

    benchmarks = args.benchmarks.split(",") if args.benchmarks else None
    archs = args.archs.split(",") if args.archs else None
    recorder = run_model_bench(args.figure, benchmarks=benchmarks,
                               archs=archs, repeats=args.repeats)
    out = args.out or ("BENCH_%s.json" % args.figure)
    recorder.write(out)
    scalar = recorder.seconds("scalar")
    batched = recorder.seconds("batched")
    print("%s: scalar %.2fs CPU, batched %.2fs CPU -> %.2fx speedup "
          "(outputs identical: %s)" %
          (args.figure, scalar, batched, recorder.derived["speedup_cpu"],
           recorder.derived["outputs_identical"]))
    print("wrote %s" % out)
    return 0


def cmd_serve(args) -> int:
    from .serve import ServerConfig, TuneServer

    server = TuneServer(ServerConfig(
        host=args.host, port=args.port, workers=args.workers,
        queue_depth=args.queue_depth, job_timeout=args.timeout,
        retries=args.retries, isolation=args.isolation,
        cache_dir=args.cache, cache_max=args.cache_max,
        drain_grace=args.drain_grace, ledger=not args.no_ledger))
    server.start()
    server.install_signal_handlers()
    if args.ready_file:
        # port 0 means "pick a free port"; tests and the CI smoke step
        # learn the bound address from this file
        with open(args.ready_file, "w") as handle:
            handle.write(server.url + "\n")
    print("repro serve listening on %s (cache: %s)" %
          (server.url, server.cache_dir))
    server.serve_forever()
    clean = server.wait_stopped(timeout=max(5.0, args.drain_grace))
    print("repro serve drained%s" % ("" if clean else " (grace expired)"))
    return 0 if clean else 1


def cmd_submit(args) -> int:
    import json

    from .serve import ServeClient, ServeError

    request = {"arch": args.arch, "tier": args.tier}
    if args.benchmark:
        request["benchmark"] = args.benchmark
    if args.file:
        request["source"] = _load_source(args.file)
        if args.kernel:
            request["kernel"] = args.kernel
        request["grid"] = list(_parse_dims(args.grid))
        request["block"] = list(_parse_dims(args.block))
    if args.max_factor is not None:
        request["max_factor"] = args.max_factor
    if args.size is not None:
        request["size"] = args.size

    client = ServeClient(args.url, timeout=args.http_timeout,
                         retries=args.http_retries)
    try:
        submitted = client.submit(request)
        if args.no_wait:
            print("queued %s (%s)" % (submitted["job"],
                                      submitted["target"]))
            return 0
        result = client.wait(submitted["job"], timeout=args.wait)
    except ServeError as error:
        print("submit failed%s: %s" %
              (" (HTTP %d)" % error.status if error.status else "",
               error), file=sys.stderr)
        return 1
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(result, handle, indent=1)
            handle.write("\n")
    # one stable grep-able line for scripts and the CI smoke step
    print("%s %s: modeled %.6es, wall %.3fs, warm=%s" %
          (result["job"], result["target"], result["seconds"],
           result["wall_seconds"],
           "yes" if result["cache_hit"] else "no"))
    return 0


def cmd_targets(args) -> int:
    from .targets import ALL_ARCHS

    for arch in ALL_ARCHS:
        row = arch.describe_row()
        print("%-14s %-8s SMs=%-4d warp=%-3d %s f32, %s f64, %s" %
              (row["GPU"], row["Compute Capability"], row["SMs"],
               arch.warp_size, row["FLOPs (f32)"], row["FLOPs (f64)"],
               row["Memory Bandwidth"]))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="more diagnostics on the 'repro' logger "
                             "(-v info, -vv debug)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="only log errors")
    sub = parser.add_subparsers(dest="command", required=True)

    emit = sub.add_parser("emit-ir", help="print the parallel IR")
    emit.add_argument("file")
    emit.add_argument("--kernel", help="kernel name (default: first)")
    emit.add_argument("--block", default="256",
                      help="block dims, comma separated (default 256)")
    emit.add_argument("--grid-rank", type=int, default=1)
    emit.add_argument("--block-factor", type=int, default=1,
                      help="apply block coarsening by this total factor")
    emit.add_argument("--thread-factor", type=int, default=1,
                      help="apply thread coarsening by this total factor")
    emit.set_defaults(fn=cmd_emit_ir)

    tune = sub.add_parser("tune", help="sweep coarsening factors")
    tune.add_argument("file")
    tune.add_argument("kernel")
    tune.add_argument("--arch", default="a100")
    tune.add_argument("--grid", default="1024")
    tune.add_argument("--block", default="256")
    tune.add_argument("--max-factor", type=int, default=32)
    tune.add_argument("--workers", type=int, default=None,
                      help="evaluation workers (default: "
                           "$REPRO_TUNE_WORKERS or sequential)")
    tune.add_argument("--stats", action="store_true",
                      help="print per-stage engine timings after the sweep")
    tune.add_argument("--trace", metavar="FILE",
                      help="record a Chrome trace-event JSON of the whole "
                           "pipeline (open in Perfetto)")
    tune.add_argument("--explain", action="store_true",
                      help="print why each alternative was eliminated "
                           "or selected")
    tune.add_argument("--validate", action="store_true",
                      help="differentially validate every surviving "
                           "alternative against the uncoarsened baseline "
                           "before timing (also: $REPRO_VALIDATE)")
    tune.set_defaults(fn=cmd_tune)

    validate = sub.add_parser(
        "validate", help="differential transform validation + barrier lint")
    validate.add_argument("target",
                          help="benchsuite name (e.g. lud) or a .cu file")
    validate.add_argument("--arch", default="a100")
    validate.add_argument("--kernel",
                          help=".cu mode: kernel name (default: first)")
    validate.add_argument("--grid", default="4",
                          help=".cu mode: grid dims, comma separated")
    validate.add_argument("--block", default="64",
                          help=".cu mode: block dims, comma separated")
    validate.add_argument("--size", type=int, default=None,
                          help="benchmark mode: problem size "
                               "(default: the verify size)")
    validate.add_argument("--seed", type=int, default=0,
                          help="input-seeding RNG seed")
    validate.set_defaults(fn=cmd_validate)

    bench = sub.add_parser(
        "bench", help="time scalar vs batched model scoring, write "
                      "BENCH_<figure>.json")
    bench.add_argument("figure", choices=("fig16", "fig13"))
    bench.add_argument("--benchmarks", default="gaussian,lud",
                       help="comma-separated benchsuite names "
                            "(default: gaussian,lud)")
    bench.add_argument("--archs", default="NVIDIA A100",
                       help="comma-separated GPU names "
                            "(default: 'NVIDIA A100')")
    bench.add_argument("--repeats", type=int, default=1,
                       help="repeats per mode; minimum CPU time is "
                            "recorded (default 1)")
    bench.add_argument("--out", help="output path "
                                     "(default BENCH_<figure>.json)")
    bench.set_defaults(fn=cmd_bench)

    cache = sub.add_parser("cache", help="inspect the on-disk tuning cache")
    cache.add_argument("action", choices=("info", "clear"))
    cache.add_argument("--path", help="cache directory (default: "
                                      "$REPRO_TUNING_CACHE)")
    cache.set_defaults(fn=cmd_cache)

    hip = sub.add_parser("hipify", help="CUDA -> HIP source translation")
    hip.add_argument("file")
    hip.add_argument("-o", "--output")
    hip.set_defaults(fn=cmd_hipify)

    sweep = sub.add_parser(
        "sweep", help="run a figure's job matrix over worker processes")
    sweep.add_argument("figure",
                       choices=("fig13", "fig16", "fig17", "table2"))
    sweep.add_argument("--benchmarks",
                       help="comma-separated benchmark subset "
                            "(default: all registered)")
    sweep.add_argument("--arch",
                       help="architecture name(s), comma separated: the "
                            "arch list for fig16, a single arch for "
                            "fig13/table2")
    sweep.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: "
                            "$REPRO_SWEEP_WORKERS or the CPU count)")
    sweep.add_argument("--timeout", type=float, default=None,
                       help="per-job wall-clock limit in seconds; "
                            "overdue workers are killed and the job "
                            "retried")
    sweep.add_argument("--retries", type=int, default=2,
                       help="retry budget per job before degrading to "
                            "in-process execution (default 2)")
    sweep.add_argument("--max-factor", type=int, default=None,
                       help="bound the autotuning config sweep to "
                            "block*thread <= N (default: the paper set)")
    sweep.add_argument("--size", type=int, default=64,
                       help="table2 problem size (default 64)")
    sweep.add_argument("--include-hecbench", action="store_true",
                       help="fig13: include the HeCBench ports")
    sweep.add_argument("--json", metavar="FILE",
                       help="write per-job values and merged data as JSON")
    sweep.add_argument("--resume", action="store_true",
                       help="skip jobs already present in --json FILE")
    sweep.set_defaults(fn=cmd_sweep)

    targets = sub.add_parser("targets", help="list GPU models")
    targets.set_defaults(fn=cmd_targets)

    serve = sub.add_parser(
        "serve", help="run the tuning daemon (HTTP/JSON, shared cache)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8321,
                       help="listen port; 0 picks a free one "
                            "(default 8321)")
    serve.add_argument("--workers", type=int, default=2,
                       help="concurrent dispatcher threads (default 2)")
    serve.add_argument("--queue-depth", type=int, default=32,
                       help="queued+running bound before 429 "
                            "(default 32)")
    serve.add_argument("--timeout", type=float, default=None,
                       help="per-job wall-clock limit in seconds "
                            "(enforced in both isolation modes)")
    serve.add_argument("--retries", type=int, default=1,
                       help="retry budget per job (default 1)")
    serve.add_argument("--isolation", choices=("process", "thread"),
                       default="process",
                       help="run jobs in worker processes (timeout "
                            "enforcement, crash isolation) or in-daemon "
                            "threads (default process)")
    serve.add_argument("--cache", metavar="DIR",
                       help="shared tuning cache directory (default: "
                            "$REPRO_TUNING_CACHE)")
    serve.add_argument("--cache-max", metavar="BUDGET",
                       help="LRU cache budget: bytes, k/m/g suffix, or "
                            "'<N>e' entries (default: "
                            "$REPRO_TUNING_CACHE_MAX)")
    serve.add_argument("--drain-grace", type=float, default=30.0,
                       help="seconds to finish the backlog on "
                            "SIGTERM/SIGINT (default 30)")
    serve.add_argument("--no-ledger", action="store_true",
                       help="disable the durable job ledger (jobs then "
                            "do not survive a daemon restart)")
    serve.add_argument("--ready-file", metavar="FILE",
                       help="write the bound URL here once listening")
    serve.set_defaults(fn=cmd_serve)

    submit = sub.add_parser(
        "submit", help="send one tuning request to a running daemon")
    submit.add_argument("--url", default="http://127.0.0.1:8321")
    group = submit.add_mutually_exclusive_group(required=True)
    group.add_argument("--benchmark", help="benchsuite name (e.g. lud)")
    group.add_argument("--file", help="a .cu file to tune")
    submit.add_argument("--kernel",
                        help="--file mode: kernel name (default: first)")
    submit.add_argument("--grid", default="1024",
                        help="--file mode: grid dims (default 1024)")
    submit.add_argument("--block", default="256",
                        help="--file mode: block dims (default 256)")
    submit.add_argument("--arch", default="a100")
    submit.add_argument("--tier", default="polygeist")
    submit.add_argument("--max-factor", type=int, default=None,
                        help="bound the coarsening sweep to "
                             "block*thread <= N (default: the paper set)")
    submit.add_argument("--size", type=int, default=None,
                        help="problem size (default: the model size)")
    submit.add_argument("--wait", type=float, default=300.0,
                        help="seconds to wait for the result "
                             "(default 300)")
    submit.add_argument("--no-wait", action="store_true",
                        help="just queue the job and print its id")
    submit.add_argument("--http-timeout", type=float, default=30.0,
                        help="per-request HTTP timeout (default 30)")
    submit.add_argument("--http-retries", type=int, default=2,
                        help="retry budget for 429/503 responses, with "
                             "exponential backoff honoring Retry-After "
                             "(default 2; 0 fails fast)")
    submit.add_argument("--json", metavar="FILE",
                        help="write the full result (incl. the decision "
                             "log) as JSON")
    submit.set_defaults(fn=cmd_submit)

    analyze = sub.add_parser(
        "analyze", help="bottleneck attribution report for one benchmark")
    analyze.add_argument("bench", help="benchsuite name (e.g. lud)")
    analyze.add_argument("--arch", default="a100")
    analyze.add_argument("--tier", default="polygeist",
                         help="compilation tier to analyze "
                              "(default polygeist)")
    analyze.add_argument("--size", type=int, default=None,
                         help="problem size (default: the model size)")
    analyze.add_argument("--max-factor", type=int, default=None,
                         help="bound the coarsening sweep to "
                              "block*thread <= N (default: the paper set)")
    analyze.add_argument("--json", metavar="FILE",
                         help="write the full report as JSON")
    analyze.add_argument("--markdown", action="store_true",
                         help="print the markdown report (default unless "
                              "--json is given)")
    analyze.set_defaults(fn=cmd_analyze)

    check = sub.add_parser(
        "check", help="diff two bench/sweep records, fail on regressions")
    check.add_argument("baseline", help="baseline BENCH_*.json or "
                                        "sweep --json output")
    check.add_argument("new", help="the record to gate")
    check.add_argument("--noise-band", default="5%",
                       help="relative slack before a slower cell counts "
                            "as a regression, e.g. '5%%' or 0.05 "
                            "(default 5%%)")
    check.set_defaults(fn=cmd_check)

    trace = sub.add_parser("trace", help="summarize a recorded trace file")
    trace.add_argument("action", choices=("summarize",))
    trace.add_argument("file", help="Chrome trace-event JSON "
                                    "(from tune --trace)")
    trace.add_argument("--top", type=int, default=20,
                       help="show the N hottest span names (default 20)")
    trace.set_defaults(fn=cmd_trace)
    return parser


def main(argv=None) -> int:
    from .obs.log import configure_logging

    args = build_parser().parse_args(argv)
    configure_logging(-1 if args.quiet else args.verbose)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
