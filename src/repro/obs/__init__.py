"""Observability for the compilation pipeline: traces, metrics, decisions.

The paper's alternatives mechanism (§VI) makes multi-stage decisions —
shared-memory pruning, register filtering, then timing-driven selection —
that are invisible from the outside. ``repro.obs`` makes every one of them
a first-class artifact:

* :mod:`~repro.obs.tracer` — a thread-safe, span-based tracer with a
  disabled-by-default no-op fast path. Instrumentation sites call
  :func:`~repro.obs.tracer.span`, which costs one global read when no
  tracer is installed;
* :mod:`~repro.obs.metrics` — a registry of counters / gauges /
  histograms (per-pass op-count deltas, cache traffic, filter survivor
  counts, per-alternative modeled times). The tuning engine's
  :class:`~repro.engine.stats.EngineStats` is a facade over the same
  registry class, so there is exactly one metrics path;
* :mod:`~repro.obs.decisions` — a structured log of why each coarsening
  alternative was eliminated (and by which stage) or selected;
* :mod:`~repro.obs.export` — Chrome trace-event JSON (loadable in
  Perfetto / ``chrome://tracing``) and a plain-text flame summary;
* :mod:`~repro.obs.log` — the single ``repro`` stdlib-logging hierarchy
  behind the CLI's ``-v`` / ``-q`` flags.

The package depends only on the standard library and is imported by every
other layer, so it must never import from the rest of ``repro``.
"""

from .decisions import (AlternativeDecision, DecisionLog, TuneDecision,
                        GENERATION, REGISTERS, SHARED_MEMORY, TIMING,
                        logging_decisions)
from .export import (chrome_trace_events, flame_summary, histogram_table,
                     summarize_events, summarize_trace_file, trace_payload,
                     write_chrome_trace)
from .log import configure_logging, get_logger
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, collecting
from .tracer import Span, Tracer, span, tracing

__all__ = [
    "AlternativeDecision", "Counter", "DecisionLog", "Gauge", "GENERATION",
    "Histogram", "MetricsRegistry", "REGISTERS", "SHARED_MEMORY", "Span",
    "TIMING", "Tracer", "TuneDecision", "chrome_trace_events", "collecting",
    "configure_logging", "flame_summary", "get_logger", "histogram_table",
    "logging_decisions",
    "span", "summarize_events", "summarize_trace_file", "trace_payload",
    "tracing", "write_chrome_trace",
]
