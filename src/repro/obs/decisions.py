"""Structured TDO decision log: why each alternative lived or died.

The §VI flow eliminates coarsening alternatives in five places, in order:

1. **generation** — the coarsening itself is illegal for the kernel
   (e.g. a factor that does not divide the block shape);
2. **shared-memory** — static shared allocation per block exceeds the
   target's limit;
3. **registers** — backend register estimation says the alternative
   spills;
4. **validation** — the opt-in differential gate (``tune --validate`` /
   ``$REPRO_VALIDATE``) interpreted the alternative and its output
   diverged from the uncoarsened baseline;
5. **timing** — the alternative launches fine but loses the modeled
   timing race.

A :class:`DecisionLog` records, per tuned wrapper, one
:class:`AlternativeDecision` for every alternative ever considered, with
the eliminating stage and a human-readable reason — the data behind
``repro tune --explain``. Like the tracer, a log is installed
process-wide (:func:`install` / :func:`logging_decisions`) and every
recording helper is a no-op when none is installed.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

#: elimination stage names, in pipeline order
GENERATION = "generation"
SHARED_MEMORY = "shared-memory"
REGISTERS = "registers"
VALIDATION = "validation"
TIMING = "timing"

STAGES = (GENERATION, SHARED_MEMORY, REGISTERS, VALIDATION, TIMING)


@dataclass
class AlternativeDecision:
    """The fate of one coarsening alternative."""

    desc: str
    #: the coarsening kwargs that produced it (None for generation-time
    #: rejections recorded only by repr)
    config: Optional[Dict[str, object]] = None
    #: which stage eliminated it; None while alive / for the winner
    eliminated_by: Optional[str] = None
    reason: str = ""
    #: modeled (or profiled) seconds, when the alternative reached timing
    time_seconds: Optional[float] = None
    selected: bool = False

    def as_dict(self) -> Dict[str, object]:
        return {"desc": self.desc, "config": self.config,
                "eliminated_by": self.eliminated_by, "reason": self.reason,
                "time_seconds": self.time_seconds,
                "selected": self.selected}

    def outcome(self) -> str:
        """One-line status, e.g. ``eliminated by registers: ...``."""
        if self.selected:
            suffix = "" if self.time_seconds is None \
                else " (%.3es modeled)" % self.time_seconds
            return "selected%s" % suffix
        if self.eliminated_by is None:
            return "survived (not selected)"
        return "eliminated by %s: %s" % (self.eliminated_by, self.reason)


@dataclass
class TuneDecision:
    """Every alternative-level decision for one tuned wrapper."""

    wrapper: str = ""
    arch: str = ""
    alternatives: List[AlternativeDecision] = field(default_factory=list)
    #: free-form wrapper-level annotations (lint findings, validation
    #: caveats such as "baseline not executable")
    notes: List[str] = field(default_factory=list)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def add(self, desc: str, config: Optional[Dict[str, object]] = None
            ) -> AlternativeDecision:
        decision = self.find(desc)
        if decision is None:
            decision = AlternativeDecision(desc, config=config)
            self.alternatives.append(decision)
        elif config is not None and decision.config is None:
            decision.config = config
        return decision

    def find(self, desc: str) -> Optional[AlternativeDecision]:
        for decision in self.alternatives:
            if decision.desc == desc:
                return decision
        return None

    def eliminate(self, desc: str, stage: str, reason: str) -> None:
        """Mark ``desc`` eliminated; the first elimination wins."""
        decision = self.add(desc)
        if decision.eliminated_by is None and not decision.selected:
            decision.eliminated_by = stage
            decision.reason = reason

    def select(self, desc: str, time_seconds: Optional[float] = None
               ) -> None:
        decision = self.add(desc)
        decision.selected = True
        decision.eliminated_by = None
        decision.reason = ""
        if time_seconds is not None:
            decision.time_seconds = time_seconds

    def set_time(self, desc: str, time_seconds: float) -> None:
        self.add(desc).time_seconds = time_seconds

    @property
    def winner(self) -> Optional[AlternativeDecision]:
        for decision in self.alternatives:
            if decision.selected:
                return decision
        return None

    def as_dict(self) -> Dict[str, object]:
        return {"wrapper": self.wrapper, "arch": self.arch,
                "alternatives": [d.as_dict() for d in self.alternatives],
                "notes": list(self.notes)}

    def explain(self) -> str:
        header = "tuning decision for %s on %s" % (
            self.wrapper or "<kernel>", self.arch or "<arch>")
        lines = [header]
        for note in self.notes:
            lines.append("  note: %s" % note)
        winner = self.winner
        if winner is not None:
            lines.append("  winner: %s%s" % (
                winner.desc,
                "" if winner.time_seconds is None
                else " (%.3es modeled)" % winner.time_seconds))
        width = max((len(d.desc) for d in self.alternatives), default=0)
        for decision in self.alternatives:
            lines.append("  %-*s  %s" % (width, decision.desc,
                                         decision.outcome()))
        return "\n".join(lines)


class DecisionLog:
    """An append-only list of :class:`TuneDecision` records."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.decisions: List[TuneDecision] = []
        self._current: Optional[TuneDecision] = None

    def begin(self, wrapper: str = "", arch: str = "") -> TuneDecision:
        """Start recording a new wrapper's tuning decision."""
        decision = TuneDecision(wrapper=wrapper, arch=arch)
        with self._lock:
            self.decisions.append(decision)
            self._current = decision
        return decision

    def current_decision(self) -> Optional[TuneDecision]:
        with self._lock:
            return self._current

    def as_dict(self) -> Dict[str, object]:
        with self._lock:
            decisions = list(self.decisions)
        return {"decisions": [d.as_dict() for d in decisions]}

    def explain(self) -> str:
        with self._lock:
            decisions = list(self.decisions)
        return "\n\n".join(d.explain() for d in decisions)

    def __len__(self) -> int:
        with self._lock:
            return len(self.decisions)


#: the active decision log, per thread — tuning records decisions on
#: the thread that drives the pipeline (pool workers only compute),
#: and a per-thread slot keeps concurrent daemon jobs from restoring
#: over each other's logs or cross-contaminating their decisions
_active = threading.local()


def install(log: DecisionLog) -> DecisionLog:
    _active.log = log
    return log


def uninstall() -> None:
    _active.log = None


def current() -> Optional[DecisionLog]:
    return getattr(_active, "log", None)


def enabled() -> bool:
    return current() is not None


def active_decision() -> Optional[TuneDecision]:
    """The in-progress :class:`TuneDecision`, if a log is installed."""
    log = current()
    return log.current_decision() if log is not None else None


@contextmanager
def logging_decisions(log: Optional[DecisionLog] = None
                      ) -> Iterator[DecisionLog]:
    """Install a decision log on this thread for the block's duration."""
    previous = current()
    _active.log = log if log is not None else DecisionLog()
    try:
        yield _active.log
    finally:
        _active.log = previous
