"""Span-based tracing with a no-op fast path.

A :class:`Tracer` records nested, named spans of wall time. Nesting is
tracked per thread (each thread keeps its own span stack), so the tracer
works unchanged under the parallel tuning backend: spans opened inside a
``ThreadPoolBackend`` worker nest within that worker's stack and carry the
worker's thread id, never interleaving with another thread's spans.

Instrumentation sites call the module-level :func:`span` helper. When no
tracer is installed (the default), it returns a shared no-op context
manager — the cost is one global read and one call, so always-on
instrumentation does not tax untraced runs. Install a tracer for the
duration of a block with :func:`tracing`::

    with tracing() as tracer:
        program.model_launch("kernel", grid, block)
    write_chrome_trace("out.json", tracer)
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


@dataclass
class Span:
    """One finished span: a named interval of wall time on one thread."""

    name: str
    category: str
    #: start offset in seconds from the tracer's epoch
    start: float
    duration: float
    #: OS thread identifier the span ran on
    tid: int
    #: nesting depth within the owning thread (0 = top level)
    depth: int
    #: name of the enclosing span on the same thread, if any
    parent: Optional[str]
    args: Dict[str, object] = field(default_factory=dict)
    #: seconds spent in directly nested child spans
    child_seconds: float = 0.0
    #: OS process the span ran in (0 = the recording process; set
    #: explicitly when spans are absorbed from worker processes)
    pid: int = 0

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def self_seconds(self) -> float:
        """Duration minus time attributed to direct children."""
        return max(0.0, self.duration - self.child_seconds)

    def as_dict(self) -> Dict[str, object]:
        """Picklable/JSON-friendly form for cross-process shipping."""
        return {"name": self.name, "category": self.category,
                "start": self.start, "duration": self.duration,
                "tid": self.tid, "depth": self.depth,
                "parent": self.parent, "args": dict(self.args),
                "child_seconds": self.child_seconds,
                "pid": self.pid or os.getpid()}

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "Span":
        return cls(name=raw["name"], category=raw["category"],
                   start=raw["start"], duration=raw["duration"],
                   tid=raw["tid"], depth=raw["depth"],
                   parent=raw.get("parent"),
                   args=dict(raw.get("args") or {}),
                   child_seconds=raw.get("child_seconds", 0.0),
                   pid=raw.get("pid", 0))


class _NullSpan:
    """The disabled-tracer fast path: one shared, reusable no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **args) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class _LiveSpan:
    """An open span; finalizes into a :class:`Span` on ``__exit__``."""

    __slots__ = ("_tracer", "name", "category", "args", "_start",
                 "_child_seconds")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 args: Dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.category = category
        self.args = args
        self._start = 0.0
        self._child_seconds = 0.0

    def set(self, **args) -> "_LiveSpan":
        """Attach extra args to the span (no-op on the disabled path)."""
        self.args.update(args)
        return self

    def __enter__(self) -> "_LiveSpan":
        self._tracer._stack().append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        tracer = self._tracer
        stack = tracer._stack()
        stack.pop()
        duration = end - self._start
        parent = stack[-1] if stack else None
        if parent is not None:
            parent._child_seconds += duration
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        tracer._record(Span(
            name=self.name, category=self.category,
            start=self._start - tracer.epoch, duration=duration,
            tid=threading.get_ident(), depth=len(stack),
            parent=parent.name if parent is not None else None,
            args=self.args, child_seconds=self._child_seconds))
        return False


class Tracer:
    """Collects finished spans from any number of threads."""

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._spans: List[Span] = []

    def _stack(self) -> List[_LiveSpan]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, span_: Span) -> None:
        with self._lock:
            self._spans.append(span_)

    def span(self, name: str, category: str = "repro",
             **args) -> _LiveSpan:
        """Open a span; use as a context manager."""
        return _LiveSpan(self, name, category, args)

    def finished(self) -> List[Span]:
        """A snapshot of all spans recorded so far."""
        with self._lock:
            return list(self._spans)

    def absorb(self, spans: List[Dict[str, object]],
               epoch: Optional[float] = None) -> int:
        """Merge spans recorded by another process's tracer into this one.

        ``spans`` are :meth:`Span.as_dict` payloads; ``epoch`` is the
        remote tracer's epoch. ``time.perf_counter()`` is CLOCK_MONOTONIC
        system-wide on Linux, so the remote epoch is directly comparable
        to ours and remote starts rebase onto this tracer's timeline.
        Each absorbed span keeps its originating ``pid``, so exporters
        can keep per-process thread lanes from colliding even when two
        workers report equal OS thread idents.
        """
        shift = (epoch - self.epoch) if epoch is not None else 0.0
        absorbed = []
        for raw in spans:
            span_ = Span.from_dict(raw)
            span_.start += shift
            absorbed.append(span_)
        with self._lock:
            self._spans.extend(absorbed)
        return len(absorbed)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def __repr__(self) -> str:
        return "Tracer(%d spans)" % len(self)


#: the process-wide active tracer; ``None`` keeps instrumentation no-op
_active: Optional[Tracer] = None


def install(tracer: Tracer) -> Tracer:
    """Make ``tracer`` the process-wide active tracer."""
    global _active
    _active = tracer
    return tracer


def uninstall() -> None:
    global _active
    _active = None


def current() -> Optional[Tracer]:
    return _active


def enabled() -> bool:
    return _active is not None


def span(name: str, category: str = "repro", **args):
    """Open a span on the active tracer, or a shared no-op when disabled.

    This is the function every instrumentation site calls; keep its
    disabled path free of any work beyond the global read.
    """
    tracer = _active
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, category, **args)


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Install a tracer for the duration of the block, then restore."""
    global _active
    previous = _active
    _active = tracer if tracer is not None else Tracer()
    try:
        yield _active
    finally:
        _active = previous
