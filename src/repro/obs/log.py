"""The single ``repro`` logger hierarchy.

Every module that wants diagnostics gets a child of the one ``repro``
logger via :func:`get_logger` (``get_logger("engine.cache")`` →
``repro.engine.cache``), so one call configures them all. The CLI's
``-v`` / ``-vv`` / ``-q`` flags map onto :func:`configure_logging`
verbosity levels; library users can instead attach their own handlers to
``logging.getLogger("repro")`` as usual.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

#: name of the root logger of the hierarchy
ROOT_LOGGER = "repro"


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``""`` → the root)."""
    return logging.getLogger(
        ROOT_LOGGER + ("." + name if name else ""))


def configure_logging(verbosity: int = 0,
                      stream=None) -> logging.Logger:
    """Configure the ``repro`` logger for CLI use.

    ``verbosity``: ``-1`` quiet (errors only), ``0`` default (warnings),
    ``1`` info (``-v``), ``2``+ debug (``-vv``). Installs one stderr
    handler the first time; reconfigures its level on later calls.
    """
    logger = logging.getLogger(ROOT_LOGGER)
    if verbosity <= -1:
        level = logging.ERROR
    elif verbosity == 0:
        level = logging.WARNING
    elif verbosity == 1:
        level = logging.INFO
    else:
        level = logging.DEBUG
    logger.setLevel(level)
    handler = _own_handler(logger)
    if handler is None:
        handler = logging.StreamHandler(stream if stream is not None
                                        else sys.stderr)
        handler.set_name("repro-cli")
        handler.setFormatter(
            logging.Formatter("%(name)s: %(levelname)s: %(message)s"))
        logger.addHandler(handler)
        logger.propagate = False
    handler.setLevel(level)
    return logger


def _own_handler(logger: logging.Logger) -> Optional[logging.Handler]:
    for handler in logger.handlers:
        if handler.get_name() == "repro-cli":
            return handler
    return None
