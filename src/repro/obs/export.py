"""Trace exporters: Chrome trace-event JSON and plain-text flame summary.

The JSON follows the Trace Event Format's ``X`` (complete) events, which
both Perfetto (https://ui.perfetto.dev) and ``chrome://tracing`` load
directly. Metrics and decision-log snapshots ride along under the
format's ``otherData`` key, so one file carries the whole observation.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .decisions import DecisionLog
from .metrics import MetricsRegistry
from .tracer import Span, Tracer


def _tid_table(spans: Sequence[Span]) -> Dict[Tuple[int, int], int]:
    """Compact (pid, OS thread ident) pairs to small stable ids.

    Keyed per process: spans absorbed from worker processes may carry the
    same OS thread ident as a local thread (thread idents are only unique
    within a process), and merging them onto one lane would interleave
    unrelated span stacks.
    """
    table: Dict[Tuple[int, int], int] = {}
    for span in spans:
        key = (span.pid, span.tid)
        if key not in table:
            table[key] = len(table)
    return table


def chrome_trace_events(spans: Sequence[Span],
                        pid: Optional[int] = None) -> List[dict]:
    """Convert spans to Chrome trace-event ``X`` (complete) events.

    ``pid`` labels spans recorded in this process (``span.pid == 0``);
    spans absorbed from worker processes keep their own pid so the trace
    viewer renders one process group per worker.
    """
    pid = pid if pid is not None else os.getpid()
    tids = _tid_table(spans)
    events = []
    for span in spans:
        event = {
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": span.start * 1e6,        # microseconds
            "dur": span.duration * 1e6,
            "pid": span.pid or pid,
            "tid": tids[(span.pid, span.tid)],
        }
        if span.args:
            event["args"] = dict(span.args)
        events.append(event)
    return events


def trace_payload(tracer: Tracer,
                  metrics: Optional[MetricsRegistry] = None,
                  decisions: Optional[DecisionLog] = None) -> dict:
    """The full JSON document for one observed run."""
    other: Dict[str, object] = {}
    if metrics is not None:
        other["metrics"] = metrics.snapshot()
    if decisions is not None:
        other["decisions"] = decisions.as_dict()["decisions"]
    payload = {
        "traceEvents": chrome_trace_events(tracer.finished()),
        "displayTimeUnit": "ms",
    }
    if other:
        payload["otherData"] = other
    return payload


def write_chrome_trace(path: str, tracer: Tracer,
                       metrics: Optional[MetricsRegistry] = None,
                       decisions: Optional[DecisionLog] = None) -> dict:
    """Write the trace JSON to ``path``; returns the payload written."""
    payload = trace_payload(tracer, metrics, decisions)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1, default=str)
    return payload


# -- flame summary ------------------------------------------------------------

def _aggregate(rows: Iterable[Tuple[str, float, float]]
               ) -> List[Tuple[str, int, float, float]]:
    """Aggregate (name, duration, self) rows to per-name totals."""
    totals: Dict[str, List[float]] = {}
    for name, duration, self_seconds in rows:
        entry = totals.setdefault(name, [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += duration
        entry[2] += self_seconds
    return [(name, int(calls), total, self_total)
            for name, (calls, total, self_total) in totals.items()]


def _format_summary(aggregated: List[Tuple[str, int, float, float]],
                    top: Optional[int] = None) -> str:
    aggregated = sorted(aggregated, key=lambda row: row[3], reverse=True)
    grand_self = sum(row[3] for row in aggregated) or 1.0
    if top is not None:
        aggregated = aggregated[:top]
    width = max([len(row[0]) for row in aggregated] + [4])
    lines = ["%-*s %8s %12s %12s %7s" % (width, "span", "calls",
                                         "total", "self", "self%"),
             "-" * (width + 43)]
    for name, calls, total, self_total in aggregated:
        lines.append("%-*s %8d %11.6fs %11.6fs %6.1f%%" % (
            width, name, calls, total, self_total,
            100.0 * self_total / grand_self))
    return "\n".join(lines)


def flame_summary(spans: Sequence[Span], top: Optional[int] = None) -> str:
    """Per-span-name table of calls / total / self time, hottest first."""
    return _format_summary(_aggregate(
        (span.name, span.duration, span.self_seconds) for span in spans),
        top=top)


def summarize_events(events: Sequence[dict],
                     top: Optional[int] = None) -> str:
    """Flame summary from raw Chrome trace events (e.g. a loaded file).

    Self time is reconstructed from interval containment per thread:
    events fully inside another event on the same tid are its children.
    """
    rows: List[Tuple[str, float, float]] = []
    by_tid: Dict[object, List[dict]] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        # lane identity is (pid, tid): workers' tid counters restart per
        # process, so tid alone would interleave unrelated span stacks
        by_tid.setdefault((event.get("pid"), event.get("tid")),
                          []).append(event)
    for tid_events in by_tid.values():
        # sort by start asc, then duration desc so parents precede children
        tid_events.sort(key=lambda e: (e.get("ts", 0.0),
                                       -e.get("dur", 0.0)))
        stack: List[List] = []  # [name, end_ts, dur, child_dur]
        for event in tid_events:
            ts = float(event.get("ts", 0.0))
            dur = float(event.get("dur", 0.0))
            while stack and stack[-1][1] <= ts:
                name, _, total, child = stack.pop()
                rows.append((name, total / 1e6,
                             max(0.0, total - child) / 1e6))
            if stack:
                stack[-1][3] += dur
            stack.append([event.get("name", "?"), ts + dur, dur, 0.0])
        while stack:
            name, _, total, child = stack.pop()
            rows.append((name, total / 1e6, max(0.0, total - child) / 1e6))
    return _format_summary(_aggregate(rows), top=top)


def histogram_table(histograms: Dict[str, Dict[str, float]]) -> str:
    """Per-histogram summary table with percentile columns.

    Consumes :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`'s
    ``histograms`` mapping; older snapshots without ``p50``/``p90`` keys
    render those columns as 0.
    """
    width = max([len(name) for name in histograms] + [9])
    lines = ["%-*s %8s %12s %12s %12s %12s" %
             (width, "histogram", "count", "mean", "p50", "p90", "max"),
             "-" * (width + 61)]
    for name in sorted(histograms):
        summary = histograms[name]
        lines.append("%-*s %8d %12.6g %12.6g %12.6g %12.6g" % (
            width, name, summary.get("count", 0),
            summary.get("mean", 0.0), summary.get("p50", 0.0),
            summary.get("p90", 0.0), summary.get("max", 0.0)))
    return "\n".join(lines)


def summarize_trace_file(path: str, top: Optional[int] = None,
                         metrics: bool = False) -> str:
    """Load a Chrome trace JSON file and return its flame summary.

    With ``metrics=True``, a histogram table (count/mean/p50/p90/max per
    recorded histogram) is appended when the file carries a metrics
    snapshot under ``otherData``.
    """
    with open(path) as handle:
        payload = json.load(handle)
    if isinstance(payload, dict):
        events = payload.get("traceEvents", [])
    else:  # the JSON-array flavor of the format
        events = payload
        payload = {}
    summary = summarize_events(events, top=top)
    if metrics:
        histograms = (payload.get("otherData") or {}) \
            .get("metrics", {}).get("histograms") or {}
        if histograms:
            summary += "\n\n" + histogram_table(histograms)
    return summary
