"""A registry of counters, gauges, and histograms.

One :class:`MetricsRegistry` instance backs the tuning engine's
:class:`~repro.engine.stats.EngineStats` (stage wall times are histograms,
cache traffic is counters), and the same instance can be installed
process-wide so instrumentation sites without engine access — the pass
manager's op-count deltas, the filters' survivor counts, the simulator's
per-alternative times — record into it too. The module-level helpers
(:func:`inc`, :func:`observe`, :func:`set_gauge`) are no-ops when no
registry is installed, mirroring the tracer's fast path.

All instruments are thread-safe: the parallel tuning backend may record
from several workers at once.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, Optional


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "_lock", "value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """A value that can go up and down; keeps the last set value."""

    __slots__ = ("name", "_lock", "value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self.value: float = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)


class Histogram:
    """Streaming summary of observed values: count/total/min/max plus
    percentile estimates (p50/p90) from a bounded sample reservoir.

    The reservoir is deterministic (no RNG, so runs reproduce exactly):
    when it fills, every other sample is dropped and the keep-stride
    doubles, so it always holds an evenly-strided subsequence of the
    observation stream, bounded at :data:`SAMPLE_CAP` values.
    """

    __slots__ = ("name", "_lock", "count", "total", "min", "max",
                 "_samples", "_stride")

    #: bound on retained samples per histogram
    SAMPLE_CAP = 4096

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: list = []
        self._stride = 1

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            if self.count % self._stride == 0:
                self._samples.append(value)
                if len(self._samples) > self.SAMPLE_CAP:
                    self._samples = self._samples[::2]
                    self._stride *= 2
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @staticmethod
    def _rank(ordered: list, q: float) -> float:
        """Nearest-rank percentile over an already-sorted sample list."""
        if not ordered:
            return 0.0
        index = max(0, min(len(ordered) - 1,
                           int(-(-q * len(ordered) // 1)) - 1))
        return ordered[index]

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile estimate, ``q`` in (0, 1]."""
        with self._lock:
            ordered = sorted(self._samples)
        return self._rank(ordered, q)

    def summary(self) -> Dict[str, float]:
        with self._lock:
            ordered = sorted(self._samples)
            return {"count": self.count, "total": self.total,
                    "mean": self.total / self.count if self.count else 0.0,
                    "min": self.min if self.min is not None else 0.0,
                    "p50": self._rank(ordered, 0.50),
                    "p90": self._rank(ordered, 0.90),
                    "max": self.max if self.max is not None else 0.0}


class MetricsRegistry:
    """Get-or-create home for named instruments."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name)
            return instrument

    # -- read-side views -----------------------------------------------------

    def counter_value(self, name: str) -> int:
        """A counter's value without creating it (0 when absent)."""
        with self._lock:
            instrument = self._counters.get(name)
        return instrument.value if instrument is not None else 0

    def counter_values(self) -> Dict[str, int]:
        with self._lock:
            return {name: c.value for name, c in self._counters.items()}

    def gauge_values(self) -> Dict[str, float]:
        with self._lock:
            return {name: g.value for name, g in self._gauges.items()}

    def histogram_summaries(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            instruments = list(self._histograms.values())
        return {h.name: h.summary() for h in instruments}

    def snapshot(self) -> Dict[str, Dict]:
        """Plain-data view of every instrument, for export/JSON."""
        return {"counters": self.counter_values(),
                "gauges": self.gauge_values(),
                "histograms": self.histogram_summaries()}

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def __repr__(self) -> str:
        with self._lock:
            return "MetricsRegistry(%d counters, %d gauges, %d histograms)" \
                % (len(self._counters), len(self._gauges),
                   len(self._histograms))


#: the process-wide registry for engine-less instrumentation sites
_active: Optional[MetricsRegistry] = None


def install(registry: MetricsRegistry) -> MetricsRegistry:
    global _active
    _active = registry
    return registry


def uninstall() -> None:
    global _active
    _active = None


def current() -> Optional[MetricsRegistry]:
    return _active


def enabled() -> bool:
    return _active is not None


def inc(name: str, amount: int = 1) -> None:
    """Bump a counter on the installed registry; no-op when none."""
    registry = _active
    if registry is not None:
        registry.counter(name).inc(amount)


def observe(name: str, value: float) -> None:
    """Record into a histogram on the installed registry; no-op when none."""
    registry = _active
    if registry is not None:
        registry.histogram(name).observe(value)


def set_gauge(name: str, value: float) -> None:
    registry = _active
    if registry is not None:
        registry.gauge(name).set(value)


@contextmanager
def collecting(registry: Optional[MetricsRegistry] = None
               ) -> Iterator[MetricsRegistry]:
    """Install a registry for the duration of the block, then restore."""
    global _active
    previous = _active
    _active = registry if registry is not None else MetricsRegistry()
    try:
        yield _active
    finally:
        _active = previous
