"""Benchmark recording: machine-readable before/after evidence.

Performance claims in this repo are backed by checked-in ``BENCH_*.json``
files produced through :class:`BenchRecorder`. The schema is deliberately
small and stable so trajectories can be compared across commits:

.. code-block:: json

    {
      "name": "fig16",
      "created": "2026-08-08T12:00:00+00:00",
      "host": {"python": "3.12.3", "numpy": "2.4.6", "cpus": 1},
      "config": {"benchmarks": ["gaussian", "lud"], "archs": ["NVIDIA A100"]},
      "measurements": [
        {"label": "scalar", "cpu_seconds": 7.1, "wall_seconds": 7.3,
         "repeats": 3, "meta": {"REPRO_SCALAR_MODEL": "1"}},
        {"label": "batched", "cpu_seconds": 3.4, "wall_seconds": 3.5,
         "repeats": 3, "meta": {}}
      ],
      "derived": {"speedup_cpu": 2.08, "outputs_identical": true}
    }

``cpu_seconds``/``wall_seconds`` are the *minimum* over ``repeats`` runs:
on shared machines the minimum is the least-noise estimator of the true
cost, and this container's wall clock in particular is very noisy — CPU
time is the number to trust. ``derived`` carries whatever the producing
harness proved about the runs (for the model benches: that the batched
and scalar paths returned ``==``-identical figure data).
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


@dataclass
class Measurement:
    label: str
    cpu_seconds: float
    wall_seconds: float
    repeats: int
    meta: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "cpu_seconds": self.cpu_seconds,
            "wall_seconds": self.wall_seconds,
            "repeats": self.repeats,
            "meta": dict(self.meta),
        }


def _host_info() -> Dict[str, object]:
    info: Dict[str, object] = {
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
    }
    try:
        import numpy
        info["numpy"] = numpy.__version__
    except ImportError:
        info["numpy"] = None
    return info


class BenchRecorder:
    """Collects timed measurements and writes one ``BENCH_*.json``."""

    def __init__(self, name: str,
                 config: Optional[Dict[str, object]] = None):
        self.name = name
        self.config = dict(config or {})
        self.measurements: List[Measurement] = []
        self.derived: Dict[str, object] = {}

    def measure(self, label: str, fn: Callable[[], object],
                repeats: int = 1,
                env: Optional[Dict[str, str]] = None,
                meta: Optional[Dict[str, object]] = None) -> object:
        """Run ``fn`` ``repeats`` times under optional env overrides.

        Records the minimum CPU/wall seconds over the repeats and returns
        the last run's result (all repeats must be deterministic — the
        result is what callers cross-check between measurement modes).
        """
        saved = {}
        for key, value in (env or {}).items():
            saved[key] = os.environ.get(key)
            os.environ[key] = value
        try:
            best_cpu = best_wall = float("inf")
            result = None
            for _ in range(max(1, repeats)):
                wall0 = time.perf_counter()
                cpu0 = time.process_time()
                result = fn()
                best_cpu = min(best_cpu, time.process_time() - cpu0)
                best_wall = min(best_wall, time.perf_counter() - wall0)
        finally:
            for key, value in saved.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value
        merged = dict(meta or {})
        merged.update(env or {})
        self.measurements.append(Measurement(
            label=label, cpu_seconds=best_cpu, wall_seconds=best_wall,
            repeats=max(1, repeats), meta=merged))
        return result

    def derive(self, key: str, value: object) -> None:
        self.derived[key] = value

    def seconds(self, label: str) -> float:
        for m in self.measurements:
            if m.label == label:
                return m.cpu_seconds
        raise KeyError("no measurement labeled %r" % label)

    def speedup(self, baseline: str, contender: str,
                key: Optional[str] = None) -> float:
        """Record and return baseline/contender CPU-time ratio."""
        ratio = self.seconds(baseline) / self.seconds(contender)
        self.derived[key or "speedup_cpu"] = ratio
        return ratio

    def to_dict(self) -> Dict[str, object]:
        from ..analysis.check import provenance_header
        created = time.strftime("%Y-%m-%dT%H:%M:%S%z")
        archs = self.config.get("archs")
        return {
            "name": self.name,
            "created": created,
            "provenance": provenance_header(archs, created=created),
            "host": _host_info(),
            "config": self.config,
            "measurements": [m.to_dict() for m in self.measurements],
            "derived": dict(self.derived),
        }

    def write(self, path: str) -> str:
        with open(path, "w") as f:
            json.dump(self.to_dict(), f, indent=2, sort_keys=False)
            f.write("\n")
        return path
