"""Micro-benchmark harness for the analytical-model hot path.

``python -m repro bench fig16`` (or ``fig13``) times the figure-data
producers twice over the same inputs — once forced onto the scalar
reference model (``REPRO_SCALAR_MODEL=1``) and once on the batched numpy
path — proves the two runs produce ``==``-identical figure data, and
writes the timings to a ``BENCH_<figure>.json`` record (see
:mod:`repro.bench.record` for the schema). CI runs the fig16 variant as a
smoke test so a regression that silently drops the batched path (or
breaks its equivalence) fails loudly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .record import BenchRecorder, Measurement

__all__ = ["BenchRecorder", "Measurement", "run_model_bench"]

#: defaults keep the smoke run under a few minutes on one CPU while still
#: covering an interleaved-launch benchmark (lud) and a multi-kernel one
DEFAULT_BENCHMARKS = ("gaussian", "lud")
DEFAULT_ARCHS = ("NVIDIA A100",)


def _fresh_engine():
    # the process-wide default engine memoizes tuning outcomes per
    # (source, wrapper, grids); a bench run must not replay the previous
    # mode's (or repeat's) decisions, so each run starts cold
    from ..engine import TuningEngine, set_default_engine
    set_default_engine(TuningEngine())


def _fig16_run(benchmarks, archs, configs):
    from ..benchsuite.experiments import fig16_data

    def run():
        _fresh_engine()
        data = fig16_data(archs=archs, benchmarks=benchmarks,
                          configs=configs)
        # flatten to plain, order-stable JSON-comparable form
        return {name: {"%s|%s" % key: value
                       for key, value in sorted(cells.items())}
                for name, cells in data.items()}
    return run


def _fig13_run(benchmarks, archs, configs):
    from ..benchsuite.experiments import fig13_data

    def run():
        _fresh_engine()
        out = []
        for arch in archs:
            for sweep in fig13_data(arch=arch, benchmarks=benchmarks,
                                    configs=configs):
                out.append({
                    "benchmark": sweep.benchmark,
                    "kernel": sweep.kernel,
                    "block": list(sweep.block),
                    "results": [[r.desc, r.seconds, r.valid]
                                for r in sweep.results],
                })
        return out
    return run


def run_model_bench(figure: str,
                    benchmarks: Optional[Sequence[str]] = None,
                    archs: Optional[Sequence[str]] = None,
                    repeats: int = 1,
                    configs=None) -> BenchRecorder:
    """Time scalar vs batched model scoring for one figure producer.

    Returns the populated :class:`BenchRecorder`; the caller decides
    where (whether) to write it. Raises ``RuntimeError`` if the two paths
    disagree on the figure data — the equivalence is the point.
    """
    from ..simulator.model import use_scalar_model
    from ..targets import arch_by_name

    bench_names = sorted(benchmarks or DEFAULT_BENCHMARKS)
    arch_names = list(archs or DEFAULT_ARCHS)
    arch_objs = [arch_by_name(name) for name in arch_names]
    if figure == "fig16":
        run = _fig16_run(bench_names, arch_objs, configs)
    elif figure == "fig13":
        run = _fig13_run(bench_names, arch_objs, configs)
    else:
        raise ValueError("unknown bench figure %r (fig16 or fig13)" %
                         figure)

    # prewarm shared memoized state (e.g. transfer-byte counts) so
    # whichever mode runs first doesn't pay one-time costs for both
    if figure == "fig16":
        from ..benchsuite.base import get_benchmark
        for name in bench_names:
            bench = get_benchmark(name)
            bench.transfer_bytes(bench.model_size)

    recorder = BenchRecorder(figure, config={
        "benchmarks": bench_names,
        "archs": arch_names,
        "repeats": repeats,
    })
    from ..engine import default_engine

    def stage_seconds():
        # per-stage wall time of the *last* repeat's engine: the engine
        # is recreated per run, so this is one clean run's breakdown
        return dict(default_engine().stats.stage_seconds)

    scalar = recorder.measure("scalar", run, repeats=repeats,
                              env={"REPRO_SCALAR_MODEL": "1"})
    scalar_stages = stage_seconds()
    # uniform measurement schema across figures: the key is always
    # present, null when the producer bypasses the engine (fig13 calls
    # the alternatives sweep directly, so no stage split exists)
    recorder.measurements[-1].meta["stage_seconds"] = scalar_stages or None
    batched = recorder.measure("batched", run, repeats=repeats)
    batched_stages = stage_seconds()
    recorder.measurements[-1].meta["stage_seconds"] = batched_stages or None
    identical = scalar == batched
    recorder.derive("outputs_identical", identical)
    recorder.derive("batched_available", not use_scalar_model())
    recorder.speedup("scalar", "batched")
    # the batched rewrite targets the TDO scoring stage specifically; the
    # end-to-end ratio dilutes it with parse/clone/cleanup costs the
    # model change cannot touch, so record the stage-local ratio too
    tdo_scalar = scalar_stages.get("tdo")
    tdo_batched = batched_stages.get("tdo")
    if tdo_scalar and tdo_batched:
        recorder.derive("tdo_stage_speedup", tdo_scalar / tdo_batched)
    if not identical:
        raise RuntimeError(
            "scalar and batched model paths disagree on %s data" % figure)
    return recorder
