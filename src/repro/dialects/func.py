"""The ``func`` dialect: functions, calls, and returns."""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..ir import (Builder, FunctionType, Module, Operation, Type, Value,
                  register_op_verifier, single_block_region)

FUNC = "func.func"
CALL = "func.call"
RETURN = "func.return"

#: attribute marking CUDA __global__ kernels
KERNEL_ATTR = "gpu.kernel"


def func(builder: Builder, sym_name: str, function_type: FunctionType,
         arg_names: Sequence[str] = (), kernel: bool = False) -> Operation:
    """Create a function with an empty entry block."""
    region = single_block_region(list(function_type.inputs), list(arg_names))
    attributes = {"sym_name": sym_name, "function_type": function_type}
    if kernel:
        attributes[KERNEL_ATTR] = True
    return builder.create(FUNC, [], [], attributes, [region])


def return_(builder: Builder, values: Sequence[Value] = ()) -> Operation:
    return builder.create(RETURN, list(values), [])


def call(builder: Builder, callee: str, args: Sequence[Value],
         result_types: Sequence[Type]) -> Operation:
    return builder.create(CALL, list(args), list(result_types),
                          {"callee": callee})


def func_type(op: Operation) -> FunctionType:
    return op.attr("function_type")


def func_name(op: Operation) -> str:
    return op.attr("sym_name")


def is_kernel(op: Operation) -> bool:
    return bool(op.attr(KERNEL_ATTR))


def entry_block(op: Operation):
    return op.body_block()


def func_args(op: Operation) -> List[Value]:
    return list(op.body_block().args)


@register_op_verifier(FUNC)
def _verify_func(op: Operation) -> None:
    type_ = op.attr("function_type")
    if not isinstance(type_, FunctionType):
        raise ValueError("func.func needs a function_type attribute")
    block = op.body_block()
    if tuple(a.type for a in block.args) != type_.inputs:
        raise ValueError("func.func entry block args mismatch signature")
