"""The ``memref`` dialect: memory allocation, loads, stores, globals."""

from __future__ import annotations

from typing import Optional, Sequence

from ..ir import (Builder, DYNAMIC, INDEX, MemRefType, Operation, Type, Value,
                  register_op_verifier)

ALLOC = "memref.alloc"
ALLOCA = "memref.alloca"
DEALLOC = "memref.dealloc"
LOAD = "memref.load"
STORE = "memref.store"
DIM = "memref.dim"
GLOBAL = "memref.global"
GET_GLOBAL = "memref.get_global"
ATOMIC_RMW = "memref.atomic_rmw"

#: supported atomic read-modify-write kinds
ATOMIC_KINDS = ("addf", "addi", "maxf", "maxi", "minf", "mini", "exchange")


def alloc(builder: Builder, type_: MemRefType,
          dynamic_sizes: Sequence[Value] = ()) -> Value:
    """Allocate a buffer in global (device) memory."""
    op = builder.create(ALLOC, list(dynamic_sizes), [type_])
    op.result().name_hint = "buf"
    return op.result()


def alloca(builder: Builder, type_: MemRefType) -> Value:
    """Allocate a static buffer; used for CUDA ``__shared__`` and locals."""
    if not type_.has_static_shape:
        raise ValueError("alloca requires a static shape")
    op = builder.create(ALLOCA, [], [type_])
    op.result().name_hint = "shmem" if type_.memory_space == "shared" \
        else "priv"
    return op.result()


def load(builder: Builder, ref: Value, indices: Sequence[Value]) -> Value:
    type_ = ref.type
    if not isinstance(type_, MemRefType):
        raise TypeError("load from non-memref %s" % type_)
    if len(indices) != type_.rank:
        raise ValueError("load rank mismatch: %d indices for %s" %
                         (len(indices), type_))
    return builder.create(LOAD, [ref, *indices], [type_.element]).result()


def store(builder: Builder, value: Value, ref: Value,
          indices: Sequence[Value]) -> Operation:
    type_ = ref.type
    if not isinstance(type_, MemRefType):
        raise TypeError("store to non-memref %s" % type_)
    if len(indices) != type_.rank:
        raise ValueError("store rank mismatch: %d indices for %s" %
                         (len(indices), type_))
    return builder.create(STORE, [value, ref, *indices], [])


def atomic_rmw(builder: Builder, kind: str, value: Value, ref: Value,
               indices: Sequence[Value]) -> Value:
    if kind not in ATOMIC_KINDS:
        raise ValueError("unknown atomic kind %r" % kind)
    return builder.create(ATOMIC_RMW, [value, ref, *indices],
                          [value.type], {"kind": kind}).result()


def dim(builder: Builder, ref: Value, index: Value) -> Value:
    return builder.create(DIM, [ref, index], [INDEX]).result()


def global_(builder: Builder, sym_name: str, type_: MemRefType,
            constant: bool = False) -> Operation:
    """Declare a module-level global buffer (``__device__`` variables)."""
    return builder.create(GLOBAL, [], [],
                          {"sym_name": sym_name, "type": type_,
                           "constant": constant})


def get_global(builder: Builder, module_op, sym_name: str) -> Value:
    for op in module_op.body_block().ops:
        if op.name == GLOBAL and op.attr("sym_name") == sym_name:
            return builder.create(GET_GLOBAL, [], [op.attr("type")],
                                  {"name": sym_name}).result()
    raise KeyError("no global %r" % sym_name)


def load_op_ref(op: Operation) -> Value:
    """The memref operand of a load/store/atomic op."""
    if op.name == LOAD:
        return op.operand(0)
    if op.name in (STORE, ATOMIC_RMW):
        return op.operand(1)
    raise ValueError("%s is not a memory access" % op.name)


def access_indices(op: Operation) -> Sequence[Value]:
    """The index operands of a load/store/atomic op."""
    if op.name == LOAD:
        return op.operands[1:]
    if op.name in (STORE, ATOMIC_RMW):
        return op.operands[2:]
    raise ValueError("%s is not a memory access" % op.name)


@register_op_verifier(LOAD)
def _verify_load(op: Operation) -> None:
    type_ = op.operand(0).type
    if not isinstance(type_, MemRefType):
        raise ValueError("memref.load base must be a memref")
    if op.num_operands != 1 + type_.rank:
        raise ValueError("memref.load index count mismatch")


@register_op_verifier(STORE)
def _verify_store(op: Operation) -> None:
    type_ = op.operand(1).type
    if not isinstance(type_, MemRefType):
        raise ValueError("memref.store base must be a memref")
    if op.num_operands != 2 + type_.rank:
        raise ValueError("memref.store index count mismatch")


@register_op_verifier(ALLOC)
def _verify_alloc(op: Operation) -> None:
    type_ = op.result().type
    if not isinstance(type_, MemRefType):
        raise ValueError("memref.alloc must produce a memref")
    dynamic = sum(1 for d in type_.shape if d == DYNAMIC)
    if op.num_operands != dynamic:
        raise ValueError("memref.alloc dynamic size count mismatch")
