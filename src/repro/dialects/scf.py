"""The ``scf`` dialect: structured control flow.

``scf.parallel`` is the centerpiece of the Polygeist-GPU representation: GPU
blocks and threads are nested multi-dimensional parallel loops, and the
unroll-and-interleave transformation of the paper operates directly on them.

Op encodings:

* ``scf.for``      operands ``[lb, ub, step, *iter_inits]``; one region whose
  block args are ``[iv, *iter_args]``; terminated by ``scf.yield``.
* ``scf.if``       operands ``[cond]``; two regions (then/else) whose blocks
  have no args; both terminated by ``scf.yield``.
* ``scf.while``    operands ``[*inits]``; region 0 ("before") terminated by
  ``scf.condition(cond, *forwarded)``, region 1 ("after") terminated by
  ``scf.yield(*next_inits)``.
* ``scf.parallel`` operands ``[*lbs, *ubs, *steps]`` with attribute
  ``num_dims``; block args are the induction variables; attribute
  ``gpu.kind`` is ``"blocks"``/``"threads"`` for loops that came from a GPU
  kernel launch structure.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..ir import (Block, Builder, INDEX, Operation, Region, Type, Value,
                  register_op_verifier, single_block_region)

FOR = "scf.for"
IF = "scf.if"
WHILE = "scf.while"
PARALLEL = "scf.parallel"
YIELD = "scf.yield"
CONDITION = "scf.condition"

#: attribute marking what a parallel loop represents on the GPU
GPU_KIND_ATTR = "gpu.kind"
KIND_BLOCKS = "blocks"
KIND_THREADS = "threads"


# -- creation helpers ---------------------------------------------------------

def yield_(builder: Builder, values: Sequence[Value] = ()) -> Operation:
    return builder.create(YIELD, list(values), [])


def condition(builder: Builder, cond: Value,
              forwarded: Sequence[Value] = ()) -> Operation:
    return builder.create(CONDITION, [cond, *forwarded], [])


def for_(builder: Builder, lb: Value, ub: Value, step: Value,
         iter_inits: Sequence[Value] = (),
         iv_name: str = "i") -> Operation:
    """Create an ``scf.for`` with an empty body block (no terminator yet)."""
    region = single_block_region(
        [INDEX] + [v.type for v in iter_inits],
        [iv_name] + ["iter%d" % i for i in range(len(iter_inits))])
    return builder.create(FOR, [lb, ub, step, *iter_inits],
                          [v.type for v in iter_inits], {}, [region])


def build_for(builder: Builder, lb: Value, ub: Value, step: Value,
              iter_inits: Sequence[Value],
              body: Callable[[Builder, Value, List[Value]], Sequence[Value]],
              iv_name: str = "i") -> Operation:
    """Create an ``scf.for`` and populate its body via a callback.

    ``body(b, iv, iter_args)`` must return the values to yield.
    """
    op = for_(builder, lb, ub, step, iter_inits, iv_name)
    block = op.body_block()
    with builder.at_end(block):
        results = body(builder, block.arg(0), list(block.args[1:]))
        yield_(builder, results)
    return op


def if_(builder: Builder, cond: Value,
        result_types: Sequence[Type] = ()) -> Operation:
    """Create an ``scf.if`` with empty then/else blocks."""
    return builder.create(IF, [cond], list(result_types), {},
                          [single_block_region(), single_block_region()])


def while_(builder: Builder, inits: Sequence[Value],
           result_types: Sequence[Type]) -> Operation:
    before = single_block_region([v.type for v in inits])
    after = single_block_region(list(result_types))
    return builder.create(WHILE, list(inits), list(result_types), {},
                          [before, after])


def parallel(builder: Builder, lbs: Sequence[Value], ubs: Sequence[Value],
             steps: Sequence[Value], gpu_kind: Optional[str] = None,
             iv_names: Sequence[str] = ()) -> Operation:
    """Create a multi-dimensional ``scf.parallel`` with an empty body."""
    num_dims = len(lbs)
    if not (len(ubs) == num_dims and len(steps) == num_dims):
        raise ValueError("parallel bound count mismatch")
    names = list(iv_names) or ["iv%d" % i for i in range(num_dims)]
    region = single_block_region([INDEX] * num_dims, names)
    attributes = {"num_dims": num_dims}
    if gpu_kind is not None:
        attributes[GPU_KIND_ATTR] = gpu_kind
    return builder.create(PARALLEL, [*lbs, *ubs, *steps], [], attributes,
                          [region])


# -- accessors ---------------------------------------------------------------

def parallel_num_dims(op: Operation) -> int:
    return op.attr("num_dims")


def parallel_lower_bounds(op: Operation) -> List[Value]:
    n = parallel_num_dims(op)
    return op.operands[0:n]


def parallel_upper_bounds(op: Operation) -> List[Value]:
    n = parallel_num_dims(op)
    return op.operands[n:2 * n]


def parallel_steps(op: Operation) -> List[Value]:
    n = parallel_num_dims(op)
    return op.operands[2 * n:3 * n]


def parallel_ivs(op: Operation) -> List[Value]:
    return list(op.body_block().args)


def parallel_kind(op: Operation) -> Optional[str]:
    return op.attr(GPU_KIND_ATTR)


def is_gpu_blocks(op: Operation) -> bool:
    return op.name == PARALLEL and parallel_kind(op) == KIND_BLOCKS


def is_gpu_threads(op: Operation) -> bool:
    return op.name == PARALLEL and parallel_kind(op) == KIND_THREADS


def for_iv(op: Operation) -> Value:
    return op.body_block().arg(0)


def for_iter_args(op: Operation) -> List[Value]:
    return list(op.body_block().args[1:])


def if_then_block(op: Operation) -> Block:
    return op.body_block(0)


def if_else_block(op: Operation) -> Block:
    return op.body_block(1)


def terminator(block: Block) -> Optional[Operation]:
    """The trailing yield/condition op of a block, if present."""
    if block.ops and block.ops[-1].name in (YIELD, CONDITION):
        return block.ops[-1]
    return None


# -- verifiers -----------------------------------------------------------------

@register_op_verifier(FOR)
def _verify_for(op: Operation) -> None:
    if op.num_operands < 3:
        raise ValueError("scf.for needs lb, ub, step")
    n_iter = op.num_operands - 3
    if op.num_results != n_iter:
        raise ValueError("scf.for result/iter count mismatch")
    block = op.body_block()
    if len(block.args) != 1 + n_iter:
        raise ValueError("scf.for block arg count mismatch")
    term = terminator(block)
    if term is None or term.name != YIELD or term.num_operands != n_iter:
        raise ValueError("scf.for must end in a matching scf.yield")


@register_op_verifier(IF)
def _verify_if(op: Operation) -> None:
    if op.num_operands != 1:
        raise ValueError("scf.if takes exactly the condition")
    if len(op.regions) != 2:
        raise ValueError("scf.if needs then and else regions")
    for region in op.regions:
        term = terminator(region.entry)
        if term is None or term.num_operands != op.num_results:
            raise ValueError("scf.if branches must yield matching values")


@register_op_verifier(PARALLEL)
def _verify_parallel(op: Operation) -> None:
    n = op.attr("num_dims")
    if n is None or op.num_operands != 3 * n:
        raise ValueError("scf.parallel operand count mismatch")
    if op.num_results != 0:
        raise ValueError("scf.parallel cannot produce results")
    if len(op.body_block().args) != n:
        raise ValueError("scf.parallel induction variable count mismatch")
    kind = op.attr(GPU_KIND_ATTR)
    if kind not in (None, KIND_BLOCKS, KIND_THREADS):
        raise ValueError("bad gpu.kind %r" % kind)


@register_op_verifier(WHILE)
def _verify_while(op: Operation) -> None:
    if len(op.regions) != 2:
        raise ValueError("scf.while needs before and after regions")
    before = terminator(op.body_block(0))
    if before is None or before.name != CONDITION:
        raise ValueError("scf.while before region must end in scf.condition")
    after = terminator(op.body_block(1))
    if after is None or after.name != YIELD:
        raise ValueError("scf.while after region must end in scf.yield")
