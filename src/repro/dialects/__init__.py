"""Dialect definitions: op names, builder helpers, and verifiers.

Each submodule mirrors an MLIR dialect used by Polygeist-GPU:

* :mod:`~repro.dialects.arith` — integer/float arithmetic and comparisons;
* :mod:`~repro.dialects.math` — transcendental functions;
* :mod:`~repro.dialects.memref` — memory allocation and access;
* :mod:`~repro.dialects.scf` — structured control flow, incl. multi-dim
  ``scf.parallel``;
* :mod:`~repro.dialects.func` — functions and calls;
* :mod:`~repro.dialects.polygeist` — GPU wrapper regions, barriers and
  alternative code paths (the paper's custom ops);
* :mod:`~repro.dialects.gpu` — outlined kernels and launches.
"""

from . import arith, func, gpu, math, memref, polygeist, scf  # noqa: F401
from .effects import (is_allocation, is_pure, is_terminator, has_side_effects,
                      reads_memory, writes_memory)

__all__ = [
    "arith", "func", "gpu", "math", "memref", "polygeist", "scf",
    "is_allocation", "is_pure", "is_terminator", "has_side_effects",
    "reads_memory", "writes_memory",
]
