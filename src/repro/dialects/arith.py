"""The ``arith`` dialect: constants, arithmetic, comparisons, casts."""

from __future__ import annotations

from typing import Optional

from ..ir import (Builder, F32, F64, I1, INDEX, FloatType, IndexType,
                  IntegerType, Operation, OpResult, Type, Value,
                  register_op_verifier)

CONSTANT = "arith.constant"
SELECT = "arith.select"
CMPI = "arith.cmpi"
CMPF = "arith.cmpf"

#: integer binary ops (two same-type int/index operands, same-type result)
INT_BINARY = {
    "arith.addi", "arith.subi", "arith.muli", "arith.divsi", "arith.remsi",
    "arith.divui", "arith.remui", "arith.andi", "arith.ori", "arith.xori",
    "arith.shli", "arith.shrsi", "arith.shrui", "arith.minsi", "arith.maxsi",
    "arith.minui", "arith.maxui",
}

#: float binary ops
FLOAT_BINARY = {
    "arith.addf", "arith.subf", "arith.mulf", "arith.divf", "arith.remf",
    "arith.minf", "arith.maxf",
}

#: unary ops
UNARY = {"arith.negf"}

#: cast ops: (operand type class) -> (result type class) checked loosely
CASTS = {
    "arith.index_cast", "arith.sitofp", "arith.uitofp", "arith.fptosi",
    "arith.extf", "arith.truncf", "arith.extsi", "arith.extui",
    "arith.trunci", "arith.bitcast",
}

#: comparison predicates shared by cmpi and cmpf
PREDICATES = ("eq", "ne", "lt", "le", "gt", "ge")


def constant(builder: Builder, value, type_: Type) -> Value:
    """Materialize a typed constant."""
    if isinstance(type_, FloatType):
        value = float(value)
    elif isinstance(type_, (IntegerType, IndexType)):
        value = int(value)
    op = builder.create(CONSTANT, [], [type_], {"value": value})
    op.result().name_hint = "c%s" % str(value).replace("-", "m").replace(
        ".", "_")
    return op.result()


def index_constant(builder: Builder, value: int) -> Value:
    return constant(builder, value, INDEX)


def binary(builder: Builder, name: str, lhs: Value, rhs: Value) -> Value:
    if name not in INT_BINARY and name not in FLOAT_BINARY:
        raise ValueError("unknown arith binary op %r" % name)
    return builder.create(name, [lhs, rhs], [lhs.type]).result()


def addi(builder: Builder, lhs: Value, rhs: Value) -> Value:
    return binary(builder, "arith.addi", lhs, rhs)


def subi(builder: Builder, lhs: Value, rhs: Value) -> Value:
    return binary(builder, "arith.subi", lhs, rhs)


def muli(builder: Builder, lhs: Value, rhs: Value) -> Value:
    return binary(builder, "arith.muli", lhs, rhs)


def divsi(builder: Builder, lhs: Value, rhs: Value) -> Value:
    return binary(builder, "arith.divsi", lhs, rhs)


def remsi(builder: Builder, lhs: Value, rhs: Value) -> Value:
    return binary(builder, "arith.remsi", lhs, rhs)


def addf(builder: Builder, lhs: Value, rhs: Value) -> Value:
    return binary(builder, "arith.addf", lhs, rhs)


def subf(builder: Builder, lhs: Value, rhs: Value) -> Value:
    return binary(builder, "arith.subf", lhs, rhs)


def mulf(builder: Builder, lhs: Value, rhs: Value) -> Value:
    return binary(builder, "arith.mulf", lhs, rhs)


def divf(builder: Builder, lhs: Value, rhs: Value) -> Value:
    return binary(builder, "arith.divf", lhs, rhs)


def negf(builder: Builder, value: Value) -> Value:
    return builder.create("arith.negf", [value], [value.type]).result()


def cmpi(builder: Builder, predicate: str, lhs: Value, rhs: Value) -> Value:
    if predicate not in PREDICATES:
        raise ValueError("unknown predicate %r" % predicate)
    return builder.create(CMPI, [lhs, rhs], [I1],
                          {"predicate": predicate}).result()


def cmpf(builder: Builder, predicate: str, lhs: Value, rhs: Value) -> Value:
    if predicate not in PREDICATES:
        raise ValueError("unknown predicate %r" % predicate)
    return builder.create(CMPF, [lhs, rhs], [I1],
                          {"predicate": predicate}).result()


def select(builder: Builder, cond: Value, true_value: Value,
           false_value: Value) -> Value:
    return builder.create(SELECT, [cond, true_value, false_value],
                          [true_value.type]).result()


def cast(builder: Builder, name: str, value: Value, to: Type) -> Value:
    if name not in CASTS:
        raise ValueError("unknown cast %r" % name)
    return builder.create(name, [value], [to]).result()


def index_cast(builder: Builder, value: Value,
               to: Optional[Type] = None) -> Value:
    """Cast between index and integer types (defaults to index)."""
    return cast(builder, "arith.index_cast", value, to or INDEX)


def sitofp(builder: Builder, value: Value, to: Type = F32) -> Value:
    return cast(builder, "arith.sitofp", value, to)


def constant_value(value: Value):
    """The Python value of an ``arith.constant`` result, or None."""
    if isinstance(value, OpResult) and value.owner.name == CONSTANT:
        return value.owner.attributes.get("value")
    return None


@register_op_verifier(CONSTANT)
def _verify_constant(op: Operation) -> None:
    if op.num_results != 1 or op.num_operands != 0:
        raise ValueError("arith.constant must be ()->(1 result)")
    if "value" not in op.attributes:
        raise ValueError("arith.constant needs a value attribute")


@register_op_verifier(CMPI)
def _verify_cmpi(op: Operation) -> None:
    if op.attr("predicate") not in PREDICATES:
        raise ValueError("bad cmpi predicate %r" % op.attr("predicate"))


@register_op_verifier(CMPF)
def _verify_cmpf(op: Operation) -> None:
    if op.attr("predicate") not in PREDICATES:
        raise ValueError("bad cmpf predicate %r" % op.attr("predicate"))
