"""The ``polygeist`` dialect: the paper's custom operations.

* ``polygeist.gpu_wrapper`` — a region-carrying op inlining a GPU kernel into
  host code (Fig. 5 of the paper). Its region contains the ``scf.parallel``
  over blocks, which contains the ``scf.parallel`` over threads. Host/device
  code motion may cross the wrapper boundary, but parallel/barrier constructs
  may not.
* ``polygeist.barrier`` — barrier synchronization (``__syncthreads``); its
  operands are the induction variables of the parallel loop(s) whose
  iterations it synchronizes (Fig. 2).
* ``polygeist.alternatives`` — compile-time multi-versioning (Fig. 12): each
  region is a semantically equivalent implementation; later pipeline stages
  prune and ultimately select exactly one.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..ir import (Block, Builder, Operation, Region, Value,
                  register_op_verifier, single_block_region)

GPU_WRAPPER = "polygeist.gpu_wrapper"
BARRIER = "polygeist.barrier"
ALTERNATIVES = "polygeist.alternatives"

#: attribute on gpu_wrapper: name of the original CUDA kernel
KERNEL_NAME_ATTR = "kernel_name"
#: attribute on alternatives: one descriptor string per region
DESCS_ATTR = "alternatives.descs"


def gpu_wrapper(builder: Builder, kernel_name: str = "") -> Operation:
    """Create an empty GPU wrapper region in host code."""
    return builder.create(GPU_WRAPPER, [], [],
                          {KERNEL_NAME_ATTR: kernel_name},
                          [single_block_region()])


def barrier(builder: Builder, ivs: Sequence[Value]) -> Operation:
    """A barrier synchronizing the parallel iterations producing ``ivs``."""
    return builder.create(BARRIER, list(ivs), [])


def alternatives(builder: Builder, regions: Sequence[Region],
                 descs: Sequence[str]) -> Operation:
    if len(regions) != len(descs):
        raise ValueError("one descriptor per alternative region required")
    return builder.create(ALTERNATIVES, [], [], {DESCS_ATTR: list(descs)},
                          regions)


def wrapper_body(op: Operation) -> Block:
    return op.body_block()


def wrapper_kernel_name(op: Operation) -> str:
    return op.attr(KERNEL_NAME_ATTR, "")


def barrier_ivs(op: Operation) -> List[Value]:
    return op.operands


def alternative_descs(op: Operation) -> List[str]:
    return list(op.attr(DESCS_ATTR, []))


def find_gpu_wrappers(root: Operation) -> List[Operation]:
    return root.ops_matching(GPU_WRAPPER)


def find_barriers(root: Operation) -> List[Operation]:
    return root.ops_matching(BARRIER)


def barrier_syncs_loop(barrier_op: Operation, parallel_op: Operation) -> bool:
    """True if the barrier synchronizes iterations of ``parallel_op``.

    A barrier synchronizes a parallel loop when any of its operands is an
    induction variable of that loop (the paper's encoding, Fig. 2).
    """
    ivs = set()
    for arg in parallel_op.body_block().args:
        ivs.add(arg)
    return any(operand in ivs for operand in barrier_op.operands)


@register_op_verifier(BARRIER)
def _verify_barrier(op: Operation) -> None:
    from ..ir import BlockArgument
    for operand in op.operands:
        if not isinstance(operand, BlockArgument):
            raise ValueError(
                "polygeist.barrier operands must be parallel loop ivs")


@register_op_verifier(ALTERNATIVES)
def _verify_alternatives(op: Operation) -> None:
    descs = op.attr(DESCS_ATTR)
    if not isinstance(descs, (list, tuple)) or len(descs) != len(op.regions):
        raise ValueError("alternatives.descs must match region count")
    if not op.regions:
        raise ValueError("polygeist.alternatives needs at least one region")
