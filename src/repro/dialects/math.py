"""The ``math`` dialect: transcendental and other libm-style functions."""

from __future__ import annotations

from ..ir import Builder, Value

#: unary math ops (float -> same float)
UNARY = {
    "math.sqrt", "math.rsqrt", "math.exp", "math.log", "math.sin",
    "math.cos", "math.tan", "math.atan", "math.tanh", "math.absf",
    "math.floor", "math.ceil", "math.exp2", "math.log2", "math.log10",
}

#: binary math ops
BINARY = {"math.powf", "math.atan2", "math.fmod"}


def unary(builder: Builder, name: str, value: Value) -> Value:
    if name not in UNARY:
        raise ValueError("unknown math unary op %r" % name)
    return builder.create(name, [value], [value.type]).result()


def binary(builder: Builder, name: str, lhs: Value, rhs: Value) -> Value:
    if name not in BINARY:
        raise ValueError("unknown math binary op %r" % name)
    return builder.create(name, [lhs, rhs], [lhs.type]).result()


def sqrt(builder: Builder, value: Value) -> Value:
    return unary(builder, "math.sqrt", value)


def exp(builder: Builder, value: Value) -> Value:
    return unary(builder, "math.exp", value)


def log(builder: Builder, value: Value) -> Value:
    return unary(builder, "math.log", value)


def absf(builder: Builder, value: Value) -> Value:
    return unary(builder, "math.absf", value)


def powf(builder: Builder, lhs: Value, rhs: Value) -> Value:
    return binary(builder, "math.powf", lhs, rhs)
