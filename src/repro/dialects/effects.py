"""Side-effect summaries for every op, used by CSE/DCE/LICM and legality
checks in the coarsening transformations."""

from __future__ import annotations

from typing import Dict

from ..ir import Operation

#: ops with no side effects whose results depend only on operands
_PURE = {
    "arith.constant", "arith.select", "arith.cmpi", "arith.cmpf",
    "memref.dim", "memref.get_global",
}

_READ = {"memref.load"}
_WRITE = {"memref.store"}
_READ_WRITE = {"memref.atomic_rmw"}
_ALLOC = {"memref.alloc", "memref.alloca"}
_TERMINATORS = {"scf.yield", "scf.condition", "func.return",
                "gpu.module_end"}
#: ops that order execution across threads; never reordered or duplicated
_SYNC = {"polygeist.barrier"}


def _pure_by_name(name: str) -> bool:
    if name in _PURE:
        return True
    dialect = name.split(".", 1)[0]
    if dialect == "math":
        return True
    if dialect == "arith":
        # all arith computation ops are pure; covered by prefix
        return True
    return False


_IMPURE = frozenset(_READ | _WRITE | _READ_WRITE | _ALLOC | _SYNC |
                    _TERMINATORS | {"func.call", "gpu.launch_func"})

#: purity depends only on the op name (region-free ops), so memoize it —
#: this runs once per op per CSE sweep and the set unions are not free
_PURE_BY_NAME_CACHE: Dict[str, bool] = {}


def is_pure(op: Operation) -> bool:
    """True if the op can be duplicated, reordered, or removed when unused."""
    if op.regions:
        return False
    name = op.name
    pure = _PURE_BY_NAME_CACHE.get(name)
    if pure is None:
        pure = name not in _IMPURE and _pure_by_name(name)
        _PURE_BY_NAME_CACHE[name] = pure
    return pure


def reads_memory(op: Operation) -> bool:
    if op.name in _READ or op.name in _READ_WRITE:
        return True
    if op.regions:
        return _any_nested(op, reads_memory)
    return op.name in {"func.call", "gpu.launch_func"}


def writes_memory(op: Operation) -> bool:
    if op.name in _WRITE or op.name in _READ_WRITE:
        return True
    if op.regions:
        return _any_nested(op, writes_memory)
    return op.name in {"func.call", "gpu.launch_func"}


def is_allocation(op: Operation) -> bool:
    return op.name in _ALLOC


def is_terminator(op: Operation) -> bool:
    return op.name in _TERMINATORS


def is_sync(op: Operation) -> bool:
    if op.name in _SYNC:
        return True
    if op.regions:
        return _any_nested(op, is_sync)
    return False


def has_side_effects(op: Operation) -> bool:
    """True if removing the op (when its results are unused) is unsound."""
    if op.name in _TERMINATORS:
        return True
    if op.name in _WRITE or op.name in _READ_WRITE or op.name in _SYNC:
        return True
    if op.name in {"func.call", "gpu.launch_func", "memref.dealloc"}:
        return True
    if op.regions:
        return _any_nested(op, has_side_effects)
    # Loads are removable when unused, allocations when unused.
    return False


def _any_nested(op: Operation, predicate) -> bool:
    for region in op.regions:
        for block in region.blocks:
            for child in block.ops:
                if predicate(child):
                    return True
    return False
