"""The ``gpu`` dialect: outlined kernels and launches.

After high-level optimization, ``polygeist.gpu_wrapper`` regions are outlined
into ``gpu.func`` kernels referenced by ``gpu.launch_func`` ops — mirroring
the MLIR GPU pipeline the paper lowers through before invoking the
platform-specific backend.
"""

from __future__ import annotations

from typing import List, Sequence

from ..ir import (Builder, FunctionType, Operation, Type, Value,
                  register_op_verifier, single_block_region)

FUNC = "gpu.func"
LAUNCH_FUNC = "gpu.launch_func"
MODULE_END = "gpu.module_end"

#: attributes on gpu.launch_func
KERNEL_ATTR = "kernel"
GRID_DIMS_ATTR = "num_grid_dims"


def gpu_func(builder: Builder, sym_name: str, function_type: FunctionType,
             arg_names: Sequence[str] = ()) -> Operation:
    region = single_block_region(list(function_type.inputs), list(arg_names))
    return builder.create(FUNC, [], [],
                          {"sym_name": sym_name,
                           "function_type": function_type}, [region])


def launch_func(builder: Builder, kernel: str,
                grid: Sequence[Value], block: Sequence[Value],
                args: Sequence[Value]) -> Operation:
    """Launch ``kernel`` over ``grid`` x ``block`` (each up to 3-D)."""
    if not 1 <= len(grid) <= 3 or not 1 <= len(block) <= 3:
        raise ValueError("grid/block must be 1- to 3-dimensional")
    return builder.create(
        LAUNCH_FUNC, [*grid, *block, *args], [],
        {KERNEL_ATTR: kernel, GRID_DIMS_ATTR: len(grid),
         "num_block_dims": len(block)})


def launch_grid(op: Operation) -> List[Value]:
    n = op.attr(GRID_DIMS_ATTR)
    return op.operands[0:n]


def launch_block(op: Operation) -> List[Value]:
    n = op.attr(GRID_DIMS_ATTR)
    m = op.attr("num_block_dims")
    return op.operands[n:n + m]


def launch_args(op: Operation) -> List[Value]:
    n = op.attr(GRID_DIMS_ATTR)
    m = op.attr("num_block_dims")
    return op.operands[n + m:]


@register_op_verifier(LAUNCH_FUNC)
def _verify_launch(op: Operation) -> None:
    if not op.attr(KERNEL_ATTR):
        raise ValueError("gpu.launch_func needs a kernel symbol")
    n = op.attr(GRID_DIMS_ATTR)
    m = op.attr("num_block_dims")
    if n is None or m is None or op.num_operands < n + m:
        raise ValueError("gpu.launch_func operand count mismatch")
