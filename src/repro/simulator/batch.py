"""Batched (vectorized) evaluation of the analytical timing model.

:class:`~repro.simulator.model.KernelModel` scores one launch per Python
call — fine for a handful of configurations, quadratically painful for
TDO's alternatives × launch-geometries product. This module stacks the
launch-count-independent :class:`~repro.simulator.model.LaunchFeatures`
of many models into numpy arrays and evaluates *all* requested
(model, num_blocks) pairs in one array pass.

Bit-identical by construction: every expression below mirrors
:func:`repro.simulator.model.evaluate_launch` operand-for-operand (same
grouping, same branch structure via ``np.where``), the integer ceil
division uses the same ``-(-n // d)`` idiom on int64, and both paths read
the *same* cached ``LaunchFeatures`` instance per model. IEEE-754 float64
arithmetic is deterministic given identical operand order, so the batched
seconds compare ``==`` to the scalar ones — which the equivalence suite
(``tests/test_batched_equivalence.py``) asserts across the benchsuite.

The scalar path remains the reference implementation; set
``REPRO_SCALAR_MODEL=1`` to force consumers (TDO) back onto it.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from .model import (LAUNCH_OVERHEAD, OVERLAP_LEAK, InvalidLaunch,
                    KernelModel)

#: LaunchFeatures fields stacked as float64 columns
_FLOAT_FIELDS = (
    "compute_cycles_per_block",
    "compute_util",
    "rw_bytes",
    "inflight_bytes_per_sm",
    "dram_latency_seconds",
    "peak_bandwidth",
    "shared_bytes",
    "shared_bw_per_sm",
    "bank_conflicts",
    "lds_offload_penalty",
    "block_latency_cycles",
    "clock",
)
#: LaunchFeatures fields stacked as int64 columns
_INT_FIELDS = ("wave_divisor", "num_sms", "blocks_per_sm")


class BatchedKernelModel:
    """Scores many (model, num_blocks) launches in one numpy pass.

    Usage: intern each distinct :class:`KernelModel` with
    :meth:`add_model` (idempotent per instance), then call :meth:`times`
    with parallel arrays of model rows and block counts. Feature columns
    are built lazily and invalidated by further ``add_model`` calls, so
    interning and scoring can interleave.
    """

    def __init__(self) -> None:
        self._models: List[KernelModel] = []
        self._rows: Dict[int, int] = {}
        self._columns: Dict[str, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self._models)

    def add_model(self, model: KernelModel) -> int:
        """Intern ``model`` and return its row index (stable per instance)."""
        row = self._rows.get(id(model))
        if row is None:
            row = len(self._models)
            self._models.append(model)
            self._rows[id(model)] = row
            self._columns.clear()
        return row

    def _column_view(self) -> Dict[str, np.ndarray]:
        if not self._columns:
            feats = [model.features() for model in self._models]
            for name in _FLOAT_FIELDS:
                self._columns[name] = np.array(
                    [getattr(f, name) for f in feats], dtype=np.float64)
            for name in _INT_FIELDS:
                self._columns[name] = np.array(
                    [getattr(f, name) for f in feats], dtype=np.int64)
            self._columns["lds_offloaded"] = np.array(
                [f.lds_offloaded for f in feats], dtype=bool)
        return self._columns

    def times(self, model_rows: Sequence[int],
              num_blocks: Sequence[int]) -> np.ndarray:
        """Modeled seconds for each (model row, block count) pair.

        Mirrors :func:`repro.simulator.model.evaluate_launch` (plus the
        launch overhead and the ``num_blocks <= 0`` zero-time early exit
        of ``_compute_launch_inner``) expression-for-expression; callers
        must have run :meth:`KernelModel.ensure_launchable` first, which
        this re-checks defensively.
        """
        idx = np.asarray(model_rows, dtype=np.intp)
        nb = np.asarray(num_blocks, dtype=np.int64)
        if idx.size == 0:
            return np.zeros(0, dtype=np.float64)
        cols = self._column_view()

        blocks_per_sm = cols["blocks_per_sm"][idx]
        bad = (blocks_per_sm == 0) & (nb > 0)
        if bad.any():
            self._models[int(idx[int(np.argmax(bad))])].ensure_launchable()
        # zero/negative block counts time to 0.0 (scalar early exit);
        # clamp so the shared arithmetic below never divides by zero
        nb_safe = np.maximum(nb, 1)

        sms_used = np.minimum(cols["num_sms"][idx], nb_safe)
        compute_seconds = cols["compute_cycles_per_block"][idx] * nb_safe / \
            (sms_used * cols["clock"][idx] * cols["compute_util"][idx])

        total_bytes = cols["rw_bytes"][idx] * nb_safe
        achievable_bw = sms_used * cols["inflight_bytes_per_sm"][idx] / \
            cols["dram_latency_seconds"][idx]
        achieved_bw = np.minimum(cols["peak_bandwidth"][idx], achievable_bw)
        memory_seconds = np.where(total_bytes != 0.0,
                                  total_bytes / achieved_bw, 0.0)

        shared_nb = cols["shared_bytes"][idx] * nb_safe
        offloaded = cols["lds_offloaded"][idx]
        # both branches evaluated dense, then selected — the expressions
        # themselves keep the scalar operand grouping
        shared_off = shared_nb * cols["lds_offload_penalty"][idx] / \
            achieved_bw
        memory_off = (total_bytes + shared_nb) / achieved_bw
        shared_on = shared_nb * cols["bank_conflicts"][idx] / \
            (sms_used * cols["shared_bw_per_sm"][idx])
        shared_seconds = np.where(offloaded, shared_off, shared_on)
        memory_seconds = np.where(offloaded, memory_off, memory_seconds)

        waves = -(-nb_safe // cols["wave_divisor"][idx])
        latency_floor = waves * cols["block_latency_cycles"][idx] / \
            cols["clock"][idx]

        dominant = np.maximum(np.maximum(compute_seconds, memory_seconds),
                              shared_seconds)
        # scalar sum(tuple) accumulates left-to-right from 0
        work_sum = 0.0 + compute_seconds + memory_seconds + shared_seconds
        busy = dominant + OVERLAP_LEAK * (work_sum - dominant)
        busy = np.maximum(busy, latency_floor)
        time = busy + LAUNCH_OVERHEAD
        return np.where(nb > 0, time, 0.0)
