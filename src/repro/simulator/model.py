"""Analytical GPU kernel timing model.

Combines the first-order quantities through which the paper's coarsening
transformations act on performance:

* **occupancy** (registers/thread × threads/block × shared/block vs the SM's
  resources, §II-A3) determines how many warps are active per SM;
* **memory-level parallelism**: coarsening interleaves ``f`` independent
  copies of each statement, multiplying the outstanding loads per warp. By
  Little's law the achieved DRAM bandwidth is
  ``min(peak, inflight_bytes / latency)`` — this is the mechanism by which
  coarsening compensates reduced occupancy (§II-A3 "balancing per-thread
  workload and occupancy");
* **coalescing efficiency** of every global access (Fig. 11);
* **sub-warp waste**: blocks whose thread count is not a warp multiple
  leave SIMD lanes idle (the lud thread-factor ≥ 16 cliff of Fig. 14, the
  gaussian block-size-16 pathology of §VII-C);
* **shared-memory throughput**, with the AMD LDS→global offload quirk
  (§VII-D2, the nw anomaly);
* **FP64 throughput ratio** (§VII-D2: f64-heavy benchmarks favor RX6800);
* **divergence** (§VI "kernel statistics": branches hurt);
* a fixed **launch overhead** per kernel, visible in composite timings.

Absolute seconds are not meant to match the paper's hardware; the *shape*
of comparisons (which configuration wins, where cliffs fall) is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..analysis import kernel_statistics, shared_bytes_per_block
from ..analysis.uniformity import depends_on_values
from ..dialects import arith, scf
from ..ir import Operation, OpResult, Value
from ..obs import tracer as obs_tracer
from ..targets import (GPUArchitecture, LANE_WARP_WIDTH, Occupancy,
                       compute_occupancy, estimate_registers)
from .coalescing import analyze_coalescing, analyze_shared_conflicts
from .metrics import KernelMetrics

#: seconds of fixed overhead per kernel launch
LAUNCH_OVERHEAD = 5e-6
#: DRAM latency in cycles
DRAM_LATENCY_CYCLES = 400.0
#: shared-memory latency in cycles
SHARED_LATENCY_CYCLES = 25.0
#: baseline outstanding memory requests per warp (before coarsening)
BASE_MLP = 2.0
#: baseline instruction-level parallelism per thread
BASE_ILP = 1.5
#: warps needed per scheduler to hide arithmetic latency
COMPUTE_LATENCY_WARPS = 8.0
#: bytes per shared-memory bank access
SHARED_BANK_BYTES = 4
#: fraction of non-dominant pipeline work that fails to overlap with the
#: dominant one (issue-slot and LSU contention)
OVERLAP_LEAK = 0.25


class InvalidLaunch(ValueError):
    """The kernel cannot launch on this architecture at all."""


def use_scalar_model() -> bool:
    """True when the scalar reference path is forced (or numpy missing).

    ``REPRO_SCALAR_MODEL=1`` pins every consumer (TDO scoring, composite
    modeling) to the one-launch-at-a-time reference implementation — the
    equivalence suite diffs the two paths through this switch.
    """
    import os
    if os.environ.get("REPRO_SCALAR_MODEL", "") not in ("", "0"):
        return True
    try:
        import numpy  # noqa: F401
    except ImportError:
        return True
    return False


@dataclass
class LaunchTiming:
    """Modeled execution of one block-level parallel loop."""

    time_seconds: float
    occupancy: Occupancy
    metrics: KernelMetrics
    breakdown: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class LaunchFeatures:
    """Everything the timing formula needs that does NOT depend on the
    launch's block count.

    Extracted once per :class:`KernelModel` so the scalar reference path
    and :class:`~repro.simulator.batch.BatchedKernelModel` consume the
    *same* per-model scalars — the equivalence between the two paths then
    reduces to the (identically-grouped) arithmetic over ``num_blocks``.
    """

    # compute pipeline
    compute_cycles_per_thread: float
    compute_cycles_per_block: float
    compute_util: float
    #: lane-normalized active parallelism (32-thread warp equivalents)
    active_warps: float
    # global-memory pipeline (all per-block quantities)
    read_bytes: float           #: transferred (transaction) read bytes
    write_bytes: float          #: transferred (transaction) write bytes
    useful_read: float          #: bytes the SM actually requested
    useful_write: float
    read_requests: float
    write_requests: float
    rw_bytes: float             #: read_bytes + write_bytes, summed once
    inflight_bytes_per_sm: float
    dram_latency_seconds: float
    peak_bandwidth: float
    # shared-memory pipeline
    shared_bytes: float         #: per block
    shared_bw_per_sm: float
    bank_conflicts: float
    lds_offloaded: bool
    lds_offload_penalty: float
    # latency floor
    block_latency_cycles: float
    wave_divisor: int           #: max(1, blocks_per_sm * num_sms)
    # machine scalars
    clock: float
    num_sms: int
    blocks_per_sm: int


@dataclass(frozen=True)
class LaunchTerms:
    """The intermediate pipeline terms of one scored launch."""

    compute_seconds: float
    memory_seconds: float
    shared_seconds: float
    latency_floor: float
    busy: float
    time_seconds: float


def evaluate_launch(f: LaunchFeatures, num_blocks: int) -> LaunchTerms:
    """The scalar reference evaluation of the timing formula.

    :class:`~repro.simulator.batch.BatchedKernelModel` mirrors this
    function expression-for-expression (same operand grouping), which is
    what makes the batched times bit-identical — keep the two in sync.
    """
    sms_used = min(f.num_sms, num_blocks)
    compute_seconds = (f.compute_cycles_per_block * num_blocks /
                       (sms_used * f.clock * f.compute_util))

    total_bytes = f.rw_bytes * num_blocks
    achievable_bw = sms_used * f.inflight_bytes_per_sm / \
        f.dram_latency_seconds
    achieved_bw = min(f.peak_bandwidth, achievable_bw)
    memory_seconds = total_bytes / achieved_bw if total_bytes else 0.0

    if f.lds_offloaded:
        # demoted to global memory: both slower and bandwidth-consuming
        shared_seconds = (f.shared_bytes * num_blocks *
                          f.lds_offload_penalty / achieved_bw)
        total_bytes += f.shared_bytes * num_blocks
        memory_seconds = total_bytes / achieved_bw
    else:
        shared_seconds = (f.shared_bytes * num_blocks *
                          f.bank_conflicts /
                          (sms_used * f.shared_bw_per_sm))

    waves = -(-num_blocks // f.wave_divisor)
    latency_floor = waves * f.block_latency_cycles / f.clock

    # compute / global-memory / shared-memory pipelines overlap, but
    # imperfectly: the dominant one sets the pace and the others leak
    # through (issue slots, LSU contention). The per-block dependence
    # chain is a separate lower bound.
    work_terms = (compute_seconds, memory_seconds, shared_seconds)
    dominant = max(work_terms)
    busy = dominant + OVERLAP_LEAK * (sum(work_terms) - dominant)
    busy = max(busy, latency_floor)
    time = busy + LAUNCH_OVERHEAD
    return LaunchTerms(compute_seconds, memory_seconds, shared_seconds,
                       latency_floor, busy, time)


def _coarsen_totals(parallel: Operation) -> int:
    """Combined coarsening factor recorded on a loop's history attribute.

    Entries look like ``"thread:dim0:x4"`` (see
    :mod:`repro.transforms.unroll_interleave`); anything else is a sign of
    attribute corruption and is reported as :class:`InvalidLaunch` naming
    the offending entry instead of dying with a bare ``IndexError`` deep
    inside timing.
    """
    total = 1
    for entry in parallel.attr("coarsen.history", []):
        try:
            factor = int(str(entry).rsplit("x", 1)[1])
        except (IndexError, ValueError):
            raise InvalidLaunch(
                "malformed coarsen.history entry %r (expected "
                "'<style>:dim<N>:x<factor>')" % (entry,)) from None
        if factor <= 0:
            raise InvalidLaunch(
                "malformed coarsen.history entry %r: factor must be "
                "positive" % (entry,))
        total *= factor
    return total


def _thread_extents(thread_parallel: Operation) -> List[int]:
    extents = []
    for lb, ub in zip(scf.parallel_lower_bounds(thread_parallel),
                      scf.parallel_upper_bounds(thread_parallel)):
        lb_const = arith.constant_value(lb) or 0
        ub_const = arith.constant_value(ub)
        if ub_const is None:
            raise InvalidLaunch("thread extents must be static")
        extents.append(ub_const - lb_const)
    return extents


def _divergent_branches(thread_parallel: Operation) -> int:
    """Count scf.if ops whose condition varies across threads."""
    ivs = set(thread_parallel.body_block().args)
    count = 0
    stack = [thread_parallel.body_block()]
    while stack:
        block = stack.pop()
        for op in block.ops:
            if op.name == scf.IF and \
                    depends_on_values(op.operand(0), ivs):
                count += 1
            for region in op.regions:
                stack.extend(region.blocks)
    return count


class KernelModel:
    """Static performance characterization of one block-level loop."""

    def __init__(self, block_parallel: Operation, arch: GPUArchitecture):
        from ..transforms.coarsen import thread_parallel as find_threads
        self.arch = arch
        self.block_parallel = block_parallel
        self.threads = find_threads(block_parallel)
        extents = _thread_extents(self.threads)
        self.threads_per_block = 1
        for extent in extents:
            self.threads_per_block *= max(1, extent)
        self.stats = kernel_statistics(self.threads)
        self.accesses = analyze_coalescing(
            self.threads, arch.warp_size, arch.transaction_bytes)
        self.registers = estimate_registers(self.threads, arch)
        self.bank_conflicts = analyze_shared_conflicts(
            self.threads, arch.shared_banks)
        self.shared_per_block = shared_bytes_per_block(block_parallel)
        self.block_factor = _coarsen_totals(block_parallel)
        self.thread_factor = _coarsen_totals(self.threads)
        self.coarsen_total = self.block_factor * self.thread_factor
        self.divergent_branches = _divergent_branches(self.threads)

        # AMD LDS offload: extreme shared/thread ratios are demoted to
        # global memory by the backend (§VII-D2)
        self.lds_offloaded = False
        if arch.lds_offload_bytes_per_thread is not None and \
                self.shared_per_block > 0:
            ratio = self.shared_per_block / self.threads_per_block
            if ratio > arch.lds_offload_bytes_per_thread:
                self.lds_offloaded = True

        shared_for_occupancy = 0 if self.lds_offloaded \
            else self.shared_per_block
        self.occupancy = compute_occupancy(
            arch, self.threads_per_block,
            self.registers.registers_per_thread, shared_for_occupancy)

        # derived quantities, precomputed: time_launch touches these in its
        # inner loops and the model is immutable after construction
        warp = arch.warp_size
        #: threads the hardware allocates (rounded up to a warp multiple)
        self.alloc_threads_per_block = \
            -(-self.threads_per_block // warp) * warp
        #: fraction of allocated SIMD lanes doing useful work
        self.lane_efficiency = (self.threads_per_block /
                                self.alloc_threads_per_block)
        self._timing_cache: Dict[int, LaunchTiming] = {}
        self._features: Optional[LaunchFeatures] = None

    # -- derived quantities -------------------------------------------------

    def spills(self) -> bool:
        return self.registers.spills

    def ensure_launchable(self) -> None:
        """Raise :class:`InvalidLaunch` if no block fits on an SM.

        The single home of the resource-exhaustion error: the scalar path
        and the batched TDO wiring both raise through here, so the two
        paths produce byte-identical failure reasons.
        """
        if self.occupancy.blocks_per_sm == 0:
            raise InvalidLaunch(
                "kernel exceeds %s resources (limited by %s)" %
                (self.arch.name, self.occupancy.limiter))

    # -- timing ------------------------------------------------------------------

    def time_launch(self, num_blocks: int) -> LaunchTiming:
        """Model a launch of ``num_blocks`` blocks.

        The model is static, so the result depends only on ``num_blocks``
        and is memoized; callers get a private copy (metrics and breakdown
        are theirs to mutate).
        """
        cached = self._timing_cache.get(num_blocks)
        if cached is None:
            cached = self._compute_launch(num_blocks)
            self._timing_cache[num_blocks] = cached
        from dataclasses import replace
        return LaunchTiming(cached.time_seconds, cached.occupancy,
                            replace(cached.metrics),
                            dict(cached.breakdown))

    def time_seconds_for(self, num_blocks: int) -> float:
        """Modeled seconds only — skips the defensive copy of
        :meth:`time_launch`; the hot path of candidate ranking."""
        cached = self._timing_cache.get(num_blocks)
        if cached is None:
            cached = self._compute_launch(num_blocks)
            self._timing_cache[num_blocks] = cached
        return cached.time_seconds

    def _compute_launch(self, num_blocks: int) -> LaunchTiming:
        with obs_tracer.span("model.compute", category="simulator",
                             blocks=num_blocks):
            return self._compute_launch_inner(num_blocks)

    def features(self) -> LaunchFeatures:
        """The launch-count-independent scalars of this kernel, cached.

        This is the data :class:`~repro.simulator.batch.BatchedKernelModel`
        stacks into arrays; the scalar path consumes the same instance so
        the two can only disagree in the ``num_blocks`` arithmetic.
        """
        if self._features is None:
            self._features = self._compute_features()
        return self._features

    def _compute_features(self) -> LaunchFeatures:
        arch = self.arch
        occupancy = self.occupancy
        T = self.threads_per_block
        stats = self.stats
        clock = arch.clock_ghz * 1e9

        # -- compute ---------------------------------------------------------
        lanes32 = max(1.0, arch.fp32_lanes_per_sm)
        spill_penalty = 1.0
        if self.registers.spills:
            # spills hit local memory: painful but bounded (ptxas spills
            # the coldest values first)
            spill_penalty = min(4.0,
                                1.0 + 0.1 * self.registers.spilled_registers)
        divergence = 1.0 + 0.35 * min(self.divergent_branches, 4)
        cycles32 = stats.flops_f32 / lanes32
        lanes64 = max(lanes32 * arch.fp64_ratio, 1e-3)
        cycles64 = stats.flops_f64 / lanes64
        cycles_int = stats.int_ops / lanes32
        cycles_special = stats.special_ops / (lanes32 / 4.0)
        compute_cycles_per_thread = (cycles32 + cycles64 + cycles_int +
                                     cycles_special)
        # idle SIMD lanes in partially-filled warps still occupy the units
        compute_cycles_per_block = (compute_cycles_per_thread * T *
                                    divergence * spill_penalty /
                                    self.lane_efficiency)

        # how well can arithmetic latency be hidden? Parallelism is
        # lane-normalized (32-thread warp equivalents, see
        # repro.targets.LANE_WARP_WIDTH) so 64-wide AMD wavefronts are not
        # undercounted: they issue per-lane
        active_warps = occupancy.active_threads / LANE_WARP_WIDTH
        ilp = BASE_ILP * (1.0 + 0.5 * (self.coarsen_total - 1) ** 0.5)
        compute_util = min(1.0, active_warps * ilp / (
            COMPUTE_LATENCY_WARPS * max(1.0, lanes32 / arch.warp_size)))
        compute_util = max(compute_util, 0.05)

        # -- global memory ------------------------------------------------------
        warps_per_block = self.alloc_threads_per_block // arch.warp_size
        read_bytes = 0.0
        write_bytes = 0.0
        useful_read = 0.0
        useful_write = 0.0
        read_requests = 0.0
        write_requests = 0.0
        for access in self.accesses:
            warp_execs = access.executions * warps_per_block * \
                self.lane_efficiency
            transferred = warp_execs * access.transactions_per_warp * \
                arch.transaction_bytes
            useful = warp_execs * arch.warp_size * access.element_bytes * \
                self.lane_efficiency
            if access.is_store:
                write_bytes += transferred
                useful_write += useful
                write_requests += warp_execs
            else:
                read_bytes += transferred
                useful_read += useful
                read_requests += warp_execs
        # atomics: serialized uncoalesced traffic
        atomic_bytes = stats.atomics * T * 4.0 * arch.warp_size
        read_bytes += atomic_bytes
        write_bytes += atomic_bytes

        # achieved bandwidth via Little's law: outstanding requests
        mlp = BASE_MLP * self.coarsen_total
        mem_ops_per_thread = max(stats.global_accesses, 1e-9)
        mlp = min(mlp, max(mem_ops_per_thread, 1.0) * 4.0, 64.0)
        inflight_bytes_per_sm = (active_warps * mlp *
                                 arch.transaction_bytes)
        latency_seconds = DRAM_LATENCY_CYCLES / clock

        # -- shared memory --------------------------------------------------------
        shared_accesses_per_block = stats.shared_accesses * T
        shared_bytes = shared_accesses_per_block * SHARED_BANK_BYTES
        shared_bw_per_sm = (arch.shared_banks * SHARED_BANK_BYTES * clock *
                            max(self.lane_efficiency, 0.1))

        # -- latency floor ----------------------------------------------------------
        issue_cycles = compute_cycles_per_thread + stats.global_accesses + \
            stats.shared_accesses
        shared_latency = SHARED_LATENCY_CYCLES
        if self.lds_offloaded:
            # offloaded "shared" memory lives in global memory: every
            # access pays DRAM latency (this is what made nw 15x worse
            # with offloading disabled in the paper's experiment)
            shared_latency = DRAM_LATENCY_CYCLES
        dependent_stalls = (
            stats.global_accesses * DRAM_LATENCY_CYCLES / mlp +
            stats.shared_accesses * shared_latency / mlp)
        block_latency_cycles = issue_cycles + dependent_stalls

        return LaunchFeatures(
            compute_cycles_per_thread=compute_cycles_per_thread,
            compute_cycles_per_block=compute_cycles_per_block,
            compute_util=compute_util,
            active_warps=active_warps,
            read_bytes=read_bytes,
            write_bytes=write_bytes,
            useful_read=useful_read,
            useful_write=useful_write,
            read_requests=read_requests,
            write_requests=write_requests,
            rw_bytes=read_bytes + write_bytes,
            inflight_bytes_per_sm=inflight_bytes_per_sm,
            dram_latency_seconds=latency_seconds,
            peak_bandwidth=arch.peak_bandwidth_bytes(),
            shared_bytes=shared_bytes,
            shared_bw_per_sm=shared_bw_per_sm,
            bank_conflicts=self.bank_conflicts,
            lds_offloaded=self.lds_offloaded,
            lds_offload_penalty=arch.lds_offload_penalty,
            block_latency_cycles=block_latency_cycles,
            wave_divisor=max(1, occupancy.blocks_per_sm * arch.num_sms),
            clock=clock,
            num_sms=arch.num_sms,
            blocks_per_sm=occupancy.blocks_per_sm,
        )

    def _compute_launch_inner(self, num_blocks: int) -> LaunchTiming:
        occupancy = self.occupancy
        if num_blocks <= 0:
            metrics = KernelMetrics()
            return LaunchTiming(0.0, occupancy, metrics, {})
        self.ensure_launchable()

        T = self.threads_per_block
        stats = self.stats
        f = self.features()
        terms = evaluate_launch(f, num_blocks)
        busy = terms.busy

        # -- metrics -----------------------------------------------------------------
        # The analytical model has no cache-hit modeling, so every L2→L1
        # transaction reaches DRAM: DRAM traffic equals the *transferred*
        # (transaction-granular) bytes, which for uncoalesced access is ≥
        # the useful bytes — the same invariant trace.py's counters obey.
        metrics = KernelMetrics(
            time_seconds=terms.time_seconds,
            lsu_utilization=min(1.0, terms.memory_seconds / busy
                                if busy else 0.0),
            fma_utilization=min(1.0, terms.compute_seconds / busy
                                if busy else 0.0),
            l2_to_l1_read_bytes=f.read_bytes * num_blocks,
            l1_to_l2_write_bytes=f.write_bytes * num_blocks,
            dram_read_bytes=f.read_bytes * num_blocks,
            dram_write_bytes=f.write_bytes * num_blocks,
            l1_to_sm_read_requests=f.read_requests * num_blocks,
            sm_to_l1_write_requests=f.write_requests * num_blocks,
            shmem_to_sm_read_requests=stats.loads_shared * T * num_blocks,
            sm_to_shmem_write_requests=stats.stores_shared * T * num_blocks,
            occupancy=occupancy.occupancy,
            registers_per_thread=self.registers.registers_per_thread,
            shared_bytes_per_block=self.shared_per_block,
            threads_per_block=T,
            num_blocks=num_blocks,
        )
        breakdown = {
            "compute": terms.compute_seconds,
            "memory": terms.memory_seconds,
            "shared": terms.shared_seconds,
            "latency": terms.latency_floor,
            "overhead": LAUNCH_OVERHEAD,
        }
        return LaunchTiming(terms.time_seconds, occupancy, metrics,
                            breakdown)


# -- wrapper-level modeling -----------------------------------------------------------


_INDEX_OPS = {
    "arith.addi": lambda a, b: a + b,
    "arith.subi": lambda a, b: a - b,
    "arith.muli": lambda a, b: a * b,
    "arith.divsi": lambda a, b: a // b if b else None,
    "arith.remsi": lambda a, b: a % b if b else None,
    "arith.minsi": min, "arith.maxsi": max,
}


def _eval_index(value: Value, env: Dict[Value, int]) -> Optional[int]:
    """Evaluate an index SSA expression given known leaf values."""
    if value in env:
        return env[value]
    if not isinstance(value, OpResult):
        return None
    op = value.owner
    if op.name == arith.CONSTANT:
        return int(op.attr("value"))
    operands = [_eval_index(v, env) for v in op.operands]
    if any(v is None for v in operands):
        return None
    fn = _INDEX_OPS.get(op.name)
    if fn is None or len(operands) != 2:
        if op.name == "arith.index_cast":
            return operands[0]
        return None
    return fn(*operands)


def block_count(block_parallel: Operation,
                env: Dict[Value, int]) -> Optional[int]:
    """Number of blocks this loop executes, given launch parameter values."""
    total = 1
    for lb, ub in zip(scf.parallel_lower_bounds(block_parallel),
                      scf.parallel_upper_bounds(block_parallel)):
        lb_value = _eval_index(lb, env)
        ub_value = _eval_index(ub, env)
        if lb_value is None or ub_value is None:
            return None
        total *= max(0, ub_value - lb_value)
    return total


class _VecFallback(Exception):
    """Vectorized index evaluation hit a case only the scalar path handles
    (per-env zero divisor, missing leaf binding)."""


def _eval_index_vec(value: Value, cols: Dict[Value, object]):
    """Vectorized :func:`_eval_index`: leaves bind int64 column arrays.

    Returns an int64 array (or plain int for env-independent
    subexpressions), ``None`` for inexpressible values — mirroring the
    scalar evaluator — and raises :class:`_VecFallback` where per-env
    divergence (a zero divisor in *some* envs) needs the scalar path.
    """
    import numpy as np
    if value in cols:
        return cols[value]
    if not isinstance(value, OpResult):
        return None
    op = value.owner
    if op.name == arith.CONSTANT:
        return int(op.attr("value"))
    operands = [_eval_index_vec(v, cols) for v in op.operands]
    if any(v is None for v in operands):
        return None
    if op.name == "arith.index_cast":
        return operands[0]
    if len(operands) != 2:
        return None
    a, b = operands
    scalar = isinstance(a, int) and isinstance(b, int)
    if op.name == "arith.addi":
        return a + b
    if op.name == "arith.subi":
        return a - b
    if op.name == "arith.muli":
        return a * b
    if op.name in ("arith.divsi", "arith.remsi"):
        if isinstance(b, int):
            if b == 0:
                return None
            return a // b if op.name == "arith.divsi" else a % b
        if np.any(b == 0):
            raise _VecFallback
        return a // b if op.name == "arith.divsi" else a % b
    if op.name == "arith.minsi":
        return min(a, b) if scalar else np.minimum(a, b)
    if op.name == "arith.maxsi":
        return max(a, b) if scalar else np.maximum(a, b)
    return None


def env_columns(envs: Sequence[Dict[Value, int]]):
    """Stack launch environments into per-key int64 columns.

    Returns ``None`` when the envs cannot be stacked (fewer than two,
    ragged key sets, or numpy unavailable) — callers fall back to the
    scalar :func:`block_count`. Computing the columns once and passing
    them to every :func:`block_counts` call over the same envs avoids
    re-validating and re-stacking per (loop, alternative).
    """
    if len(envs) < 2:
        return None
    try:
        import numpy as np
    except ImportError:
        return None
    keys = list(envs[0])
    if any(len(env) != len(keys) or any(k not in env for k in keys)
           for env in envs[1:]):
        return None
    return {key: np.array([env[key] for env in envs], dtype=np.int64)
            for key in keys}


def block_counts(block_parallel: Operation,
                 envs: Sequence[Dict[Value, int]],
                 cols=None) -> List[Optional[int]]:
    """:func:`block_count` over many launch environments at once.

    One evaluation of the bound expressions over stacked int64 columns
    replaces ``len(envs)`` recursive walks; any env set the vectorized
    evaluator cannot express (ragged keys, env-dependent zero divisors,
    numpy unavailable) falls back to per-env :func:`block_count`, so the
    result is always elementwise-identical to the scalar path.

    ``cols`` may carry :func:`env_columns`'s result for these same envs,
    letting repeat callers pay the stacking cost once.
    """
    if len(envs) < 2:
        return [block_count(block_parallel, env) for env in envs]
    if cols is None:
        cols = env_columns(envs)
        if cols is None:
            return [block_count(block_parallel, env) for env in envs]
    import numpy as np
    total = 1
    try:
        for lb, ub in zip(scf.parallel_lower_bounds(block_parallel),
                          scf.parallel_upper_bounds(block_parallel)):
            lb_value = _eval_index_vec(lb, cols)
            ub_value = _eval_index_vec(ub, cols)
            if lb_value is None or ub_value is None:
                return [None] * len(envs)
            total = total * np.maximum(0, np.asarray(ub_value - lb_value,
                                                     dtype=np.int64))
    except _VecFallback:
        return [block_count(block_parallel, env) for env in envs]
    return np.broadcast_to(np.asarray(total, dtype=np.int64),
                           (len(envs),)).tolist()


def model_wrapper_launch(wrapper: Operation, arch: GPUArchitecture,
                         env: Dict[Value, int],
                         models: Optional[Dict[int, KernelModel]] = None
                         ) -> LaunchTiming:
    """Model one execution of a gpu_wrapper (main + epilogue loops).

    ``env`` maps launch-parameter SSA values (e.g. grid-dimension function
    arguments) to their runtime integers. ``models`` optionally caches
    :class:`KernelModel` instances keyed by the loop's
    :meth:`~repro.ir.Operation.stable_uid` (never-reused, unlike ``id()``).
    """
    from ..transforms.coarsen import block_parallels
    total_time = 0.0
    breakdown: Dict[str, float] = {}
    metrics = KernelMetrics()
    occupancy = None
    with obs_tracer.span("model.wrapper_launch",
                         category="simulator") as span:
        for loop in block_parallels(wrapper):
            blocks = block_count(loop, env)
            if blocks is None:
                raise InvalidLaunch("cannot evaluate grid size for "
                                    "modeling")
            key = loop.stable_uid()
            if models is not None and key in models:
                model = models[key]
            else:
                model = KernelModel(loop, arch)
                if models is not None:
                    models[key] = model
            timing = model.time_launch(blocks)
            if blocks > 0:
                total_time += timing.time_seconds
                _merge_metrics(metrics, timing.metrics)
                for name, value in timing.breakdown.items():
                    breakdown[name] = breakdown.get(name, 0.0) + value
                if occupancy is None:
                    occupancy = timing.occupancy
        span.set(seconds=total_time)
    if occupancy is None:
        occupancy = Occupancy(0, 0, 0.0, "none")
    metrics.time_seconds = total_time
    return LaunchTiming(total_time, occupancy, metrics, breakdown)


def _merge_metrics(into: KernelMetrics, other: KernelMetrics) -> None:
    into.l2_to_l1_read_bytes += other.l2_to_l1_read_bytes
    into.l1_to_l2_write_bytes += other.l1_to_l2_write_bytes
    into.dram_read_bytes += other.dram_read_bytes
    into.dram_write_bytes += other.dram_write_bytes
    into.l1_to_sm_read_requests += other.l1_to_sm_read_requests
    into.sm_to_l1_write_requests += other.sm_to_l1_write_requests
    into.shmem_to_sm_read_requests += other.shmem_to_sm_read_requests
    into.sm_to_shmem_write_requests += other.sm_to_shmem_write_requests
    into.lsu_utilization = max(into.lsu_utilization, other.lsu_utilization)
    into.fma_utilization = max(into.fma_utilization, other.fma_utilization)
    into.occupancy = max(into.occupancy, other.occupancy)
    into.registers_per_thread = max(into.registers_per_thread,
                                    other.registers_per_thread)
    into.shared_bytes_per_block = max(into.shared_bytes_per_block,
                                      other.shared_bytes_per_block)
    into.threads_per_block = max(into.threads_per_block,
                                 other.threads_per_block)
    into.num_blocks += other.num_blocks
