"""Trace-driven simulation: functional execution feeding a cache model.

This is the high-fidelity path behind the Table II experiment: the kernel is
executed by the interpreter with a :class:`TraceCollector` observing every
memory access; accesses are grouped into per-warp transactions (coalescing
on *actual* addresses), streamed through L1/L2 cache models, and reduced to
Nsight-Compute-style counters. Unlike the analytical model this captures
cross-thread and cross-(coarsened-)block locality — e.g. block coarsening's
reduced L2→L1 traffic on lud.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..interpreter import Interpreter, MemoryBuffer, Tracer
from ..ir import Module
from ..targets import GPUArchitecture
from .cache import Cache
from .metrics import KernelMetrics


@dataclass
class _Access:
    op_id: int
    buffer_id: int
    byte_address: int
    nbytes: int
    is_store: bool
    space: str
    thread: int
    seq: int


class TraceCollector(Tracer):
    """Collects every GPU memory access, grouped per block."""

    def __init__(self):
        #: block id -> list of accesses
        self.blocks: Dict[int, List[_Access]] = defaultdict(list)
        #: per (block, thread, op) occurrence counters
        self._seq: Dict[Tuple[int, int, int], int] = defaultdict(int)
        self.barriers = 0

    def _record(self, buffer: MemoryBuffer, linear: int, nbytes: int,
                block: Optional[int], thread: Optional[int], op,
                is_store: bool) -> None:
        if block is None or thread is None:
            return  # host-side access
        op_id = id(op)
        key = (block, thread, op_id)
        seq = self._seq[key]
        self._seq[key] = seq + 1
        self.blocks[block].append(_Access(
            op_id, buffer.buffer_id, linear * nbytes, nbytes, is_store,
            buffer.space, thread, seq))

    def on_load(self, buffer, linear, nbytes, block, thread, op=None):
        self._record(buffer, linear, nbytes, block, thread, op, False)

    def on_store(self, buffer, linear, nbytes, block, thread, op=None):
        self._record(buffer, linear, nbytes, block, thread, op, True)

    def on_barrier(self, block):
        self.barriers += 1


def _warp_transactions(accesses: Sequence[_Access], warp_size: int,
                       transaction_bytes: int):
    """Group accesses into per-warp requests and coalesced transactions.

    Returns (requests, transactions) where each transaction is a
    (buffer_id, segment, is_store) triple; requests is the number of
    warp-level memory requests (one per (warp, op, seq) group).
    """
    groups: Dict[Tuple[int, int, int], List[_Access]] = defaultdict(list)
    for access in accesses:
        warp = access.thread // warp_size
        groups[(warp, access.op_id, access.seq)].append(access)
    transactions = []
    requests = 0
    for group in groups.values():
        requests += 1
        segments = {}
        for access in group:
            segment = access.byte_address // transaction_bytes
            segments[(access.buffer_id, segment)] = access.is_store
        for (buffer_id, segment), is_store in segments.items():
            transactions.append((buffer_id, segment, is_store))
    return requests, transactions


@dataclass
class TraceResult:
    """Counters extracted from a full functional trace."""

    metrics: KernelMetrics
    l1_hit_rate: float
    l2_hit_rate: float
    shared_bank_conflict_factor: float
    global_read_requests: int
    global_write_requests: int


def trace_kernel(module: Module, func_name: str, args: Sequence[object],
                 arch: GPUArchitecture,
                 alternative_selector=None) -> TraceResult:
    """Functionally execute ``func_name`` and derive memory counters."""
    collector = TraceCollector()
    interp = Interpreter(module, tracer=collector,
                         alternative_selector=alternative_selector)
    interp.run_func(func_name, list(args))

    # NVIDIA caches are sectored: presence is tracked at the 32 B
    # transaction granularity, matching the analytical model's accounting
    l2 = Cache(arch.l2_bytes, line_bytes=arch.transaction_bytes, ways=16)
    tbytes = arch.transaction_bytes
    metrics = KernelMetrics()
    read_requests = 0
    write_requests = 0
    shared_requests = 0
    shared_conflict_passes = 0

    for block_id in sorted(collector.blocks):
        accesses = collector.blocks[block_id]
        global_accesses = [a for a in accesses
                           if a.space in ("global", "constant")]
        shared_accesses = [a for a in accesses if a.space == "shared"]

        # one L1 per resident block (approximation: block-private L1 slice)
        l1 = Cache(arch.l1_bytes_per_sm,
                   line_bytes=arch.transaction_bytes, ways=8)
        requests, transactions = _warp_transactions(
            global_accesses, arch.warp_size, tbytes)
        for buffer_id, segment, is_store in transactions:
            if is_store:
                # write-through: every store transaction reaches L2
                metrics.l1_to_l2_write_bytes += tbytes
                if not l2.access(buffer_id, segment * tbytes):
                    metrics.dram_write_bytes += tbytes
            else:
                if not l1.access(buffer_id, segment * tbytes):
                    metrics.l2_to_l1_read_bytes += tbytes
                    if not l2.access(buffer_id, segment * tbytes):
                        metrics.dram_read_bytes += tbytes

        groups_read, _ = _warp_transactions(
            [a for a in global_accesses if not a.is_store],
            arch.warp_size, tbytes)
        groups_write, _ = _warp_transactions(
            [a for a in global_accesses if a.is_store],
            arch.warp_size, tbytes)
        read_requests += groups_read
        write_requests += groups_write

        # shared memory: warp requests and bank conflicts
        shared_groups: Dict[Tuple[int, int, int], List[_Access]] = \
            defaultdict(list)
        for access in shared_accesses:
            warp = access.thread // arch.warp_size
            shared_groups[(warp, access.op_id, access.seq)].append(access)
        for group in shared_groups.values():
            shared_requests += 1
            banks: Dict[int, set] = defaultdict(set)
            for access in group:
                bank = (access.byte_address // 4) % arch.shared_banks
                banks[bank].add(access.byte_address // 4)
            passes = max((len(words) for words in banks.values()),
                         default=1)
            shared_conflict_passes += passes
            if group[0].is_store:
                metrics.sm_to_shmem_write_requests += 1
            else:
                metrics.shmem_to_sm_read_requests += 1

    metrics.l1_to_sm_read_requests = read_requests
    metrics.sm_to_l1_write_requests = write_requests
    conflict_factor = (shared_conflict_passes / shared_requests
                       if shared_requests else 1.0)
    return TraceResult(
        metrics=metrics,
        l1_hit_rate=1.0 - (metrics.l2_to_l1_read_bytes /
                           (read_requests * tbytes)
                           if read_requests else 0.0),
        l2_hit_rate=l2.stats.hit_rate,
        shared_bank_conflict_factor=conflict_factor,
        global_read_requests=read_requests,
        global_write_requests=write_requests)
