"""Profiling counters in the style of NVIDIA Nsight Compute (Table II)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class KernelMetrics:
    """Counters for one kernel launch."""

    time_seconds: float = 0.0
    lsu_utilization: float = 0.0      # load/store unit
    fma_utilization: float = 0.0      # fused multiply/add unit
    l2_to_l1_read_bytes: float = 0.0
    l1_to_l2_write_bytes: float = 0.0
    dram_read_bytes: float = 0.0
    dram_write_bytes: float = 0.0
    l1_to_sm_read_requests: float = 0.0
    sm_to_l1_write_requests: float = 0.0
    shmem_to_sm_read_requests: float = 0.0
    sm_to_shmem_write_requests: float = 0.0
    occupancy: float = 0.0
    registers_per_thread: int = 0
    shared_bytes_per_block: int = 0
    threads_per_block: int = 0
    num_blocks: int = 0

    @property
    def dram_bytes(self) -> float:
        """Total DRAM traffic (reads + writes) — the roofline denominator."""
        return self.dram_read_bytes + self.dram_write_bytes

    def as_dict(self) -> Dict[str, float]:
        """Plain-data view for JSON export (``repro analyze``)."""
        return {
            "time_seconds": self.time_seconds,
            "lsu_utilization": self.lsu_utilization,
            "fma_utilization": self.fma_utilization,
            "l2_to_l1_read_bytes": self.l2_to_l1_read_bytes,
            "l1_to_l2_write_bytes": self.l1_to_l2_write_bytes,
            "dram_read_bytes": self.dram_read_bytes,
            "dram_write_bytes": self.dram_write_bytes,
            "l1_to_sm_read_requests": self.l1_to_sm_read_requests,
            "sm_to_l1_write_requests": self.sm_to_l1_write_requests,
            "shmem_to_sm_read_requests": self.shmem_to_sm_read_requests,
            "sm_to_shmem_write_requests": self.sm_to_shmem_write_requests,
            "occupancy": self.occupancy,
            "registers_per_thread": self.registers_per_thread,
            "shared_bytes_per_block": self.shared_bytes_per_block,
            "threads_per_block": self.threads_per_block,
            "num_blocks": self.num_blocks,
        }

    def table_row(self) -> Dict[str, str]:
        """Formatted like the paper's Table II rows."""
        return {
            "Runtime": "%.4f s" % self.time_seconds,
            "LSU utilization": "%d%%" % round(self.lsu_utilization * 100),
            "FMA utilization": "%d%%" % round(self.fma_utilization * 100),
            "L2 -> L1 Read": _fmt_bytes(self.l2_to_l1_read_bytes),
            "L1 -> L2 Write": _fmt_bytes(self.l1_to_l2_write_bytes),
            "L1 -> SM Read Req.": _fmt_count(self.l1_to_sm_read_requests),
            "SM -> L1 Write Req.": _fmt_count(self.sm_to_l1_write_requests),
            "ShMem -> SM Read Req.": _fmt_count(
                self.shmem_to_sm_read_requests),
            "SM -> ShMem Write Req.": _fmt_count(
                self.sm_to_shmem_write_requests),
        }


def _fmt_bytes(value: float) -> str:
    if value >= 1e9:
        return "%.2f GB" % (value / 1e9)
    if value >= 1e6:
        return "%.0f MB" % (value / 1e6)
    if value >= 1e3:
        return "%.0f KB" % (value / 1e3)
    return "%d B" % value


def _fmt_count(value: float) -> str:
    if value >= 1e6:
        return "%.2f M" % (value / 1e6)
    if value >= 1e3:
        return "%.2f K" % (value / 1e3)
    return "%d" % value
