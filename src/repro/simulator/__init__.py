"""GPU performance simulator.

Substitutes for the paper's physical GPUs: an analytical latency-hiding
model (occupancy × memory-level parallelism × coalescing × bandwidth
rooflines) for fast configuration ranking, and a trace-driven mode that
functionally executes sampled blocks through a cache hierarchy model to
produce Nsight-Compute-style counters (Table II).
"""

from .coalescing import GlobalAccess, analyze_coalescing
from .metrics import KernelMetrics
from .model import (KernelModel, LaunchFeatures, LaunchTiming,
                    evaluate_launch, model_wrapper_launch)
from .trace import TraceCollector, trace_kernel

__all__ = [
    "GlobalAccess", "KernelMetrics", "KernelModel", "LaunchFeatures",
    "LaunchTiming", "TraceCollector", "analyze_coalescing",
    "evaluate_launch", "model_wrapper_launch", "trace_kernel",
]
