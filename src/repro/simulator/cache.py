"""Set-associative LRU cache models for the trace-driven simulator mode."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class Cache:
    """A set-associative LRU cache over (buffer_id, line) addresses."""

    def __init__(self, size_bytes: int, line_bytes: int = 128,
                 ways: int = 8):
        self.line_bytes = line_bytes
        self.ways = max(1, ways)
        self.num_sets = max(1, size_bytes // (line_bytes * self.ways))
        self._sets: Dict[int, OrderedDict] = {}
        self.stats = CacheStats()

    def access(self, buffer_id: int, byte_address: int) -> bool:
        """Access one address; returns True on hit."""
        line = byte_address // self.line_bytes
        set_index = (line ^ buffer_id * 0x9E3779B1) % self.num_sets
        tag = (buffer_id, line)
        entries = self._sets.setdefault(set_index, OrderedDict())
        self.stats.accesses += 1
        if tag in entries:
            entries.move_to_end(tag)
            self.stats.hits += 1
            return True
        entries[tag] = True
        if len(entries) > self.ways:
            entries.popitem(last=False)
        return False

    def reset_stats(self) -> None:
        self.stats = CacheStats()
