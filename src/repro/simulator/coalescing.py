"""Static coalescing analysis (§II-A2, Fig. 11 of the paper).

For every global-memory access in a thread body, compute the affine stride
of its flattened address with respect to ``threadIdx.x`` and derive how many
memory transactions one warp's execution of the access needs. Thread
coarsening with the coalescing-friendly ``iv + k·new_ub`` indexing keeps
stride 1 for every copy; naive ``iv·f + k`` indexing would double the
stride — the distinction at the heart of Fig. 11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..analysis.affine import AffineForm, affine_of
from ..analysis.uniformity import depends_on_values
from ..dialects import arith, memref as memref_d, scf
from ..ir import Block, MemRefType, Operation, Value, byte_width


@dataclass
class GlobalAccess:
    """One static global-memory access site."""

    op: Operation
    is_store: bool
    element_bytes: int
    #: executions per thread (loop trip products; 0.5 per enclosing if)
    executions: float
    #: elements stepped per +1 of threadIdx.x (None = unknown/irregular)
    stride_x: Optional[int]
    #: memory transactions one warp needs per execution
    transactions_per_warp: float
    #: useful bytes / transferred bytes
    efficiency: float


def _flat_affine(op: Operation) -> Optional[AffineForm]:
    ref = memref_d.load_op_ref(op)
    type_ = ref.type
    if not isinstance(type_, MemRefType):
        return None
    # row-major strides only need the non-outermost extents to be static
    if any(extent < 0 for extent in type_.shape[1:]):
        return None
    strides: List[int] = []
    stride = 1
    for extent in reversed(type_.shape):
        strides.append(stride)
        stride *= max(extent, 1)
    strides.reverse()
    form = AffineForm(0)
    for scale, index in zip(strides, memref_d.access_indices(op)):
        form = form.add(affine_of(index).scaled(scale))
    return form


def _stride_of(form: AffineForm, tid_x: Value) -> Optional[int]:
    coeff = form.coefficient(tid_x)
    for sym in form.terms:
        if sym is tid_x:
            continue
        if depends_on_values(sym, {tid_x}):
            return None
    return coeff


def transactions_for_stride(stride_elements: Optional[int],
                            element_bytes: int, warp_size: int,
                            transaction_bytes: int = 32) -> float:
    """Transactions per warp access for a given per-lane stride."""
    if stride_elements is None:
        return float(warp_size)  # fully scattered
    stride_bytes = abs(stride_elements) * element_bytes
    if stride_bytes == 0:
        return 1.0  # broadcast
    if stride_bytes >= transaction_bytes:
        return float(warp_size)
    total_span = warp_size * stride_bytes
    return max(1.0, total_span / transaction_bytes)


def bank_conflict_factor(stride_elements: Optional[int],
                         element_bytes: int,
                         banks: int = 32) -> float:
    """Serialized passes one warp's shared access needs (bank conflicts).

    With 4-byte banks, lanes hitting word stride ``s`` spread over
    ``banks / gcd(s, banks)`` distinct banks, so the access serializes into
    ``gcd(s, banks)`` passes. Stride 0 is a broadcast (one pass).
    """
    import math
    if stride_elements is None:
        return float(banks) / 4.0  # scattered: partial conflicts
    word_stride = abs(stride_elements) * max(1, element_bytes // 4)
    if word_stride == 0:
        return 1.0
    return float(math.gcd(word_stride, banks))


def analyze_shared_conflicts(thread_parallel: Operation,
                             banks: int = 32,
                             symbolic_trips: float = 16.0) -> float:
    """Execution-weighted average bank-conflict factor over all shared
    accesses of a thread body (1.0 = conflict free)."""
    tid_x = thread_parallel.body_block().arg(0)
    total_weight = 0.0
    weighted = 0.0

    def visit(block: Block, factor: float) -> None:
        nonlocal total_weight, weighted
        for op in block.ops:
            name = op.name
            if name == "scf.for":
                lb = arith.constant_value(op.operand(0))
                ub = arith.constant_value(op.operand(1))
                step = arith.constant_value(op.operand(2))
                trips = symbolic_trips if None in (lb, ub, step) or \
                    step <= 0 else max(0.0, (ub - lb + step - 1) // step)
                visit(op.body_block(), factor * trips)
            elif name == "scf.if":
                visit(op.body_block(0), factor * 0.5)
                visit(op.body_block(1), factor * 0.5)
            elif name in ("scf.while",):
                visit(op.body_block(0), factor * symbolic_trips)
                visit(op.body_block(1), factor * symbolic_trips)
            elif name in ("scf.parallel", "polygeist.alternatives"):
                visit(op.body_block(), factor)
            elif name in ("memref.load", "memref.store"):
                ref = memref_d.load_op_ref(op)
                if not isinstance(ref.type, MemRefType) or \
                        ref.type.memory_space != "shared":
                    continue
                element_bytes = byte_width(ref.type.element)
                form = _flat_affine(op)
                stride = None if form is None else _stride_of(form, tid_x)
                conflict = bank_conflict_factor(stride, element_bytes,
                                                banks)
                weighted += factor * conflict
                total_weight += factor

    visit(thread_parallel.body_block(), 1.0)
    return weighted / total_weight if total_weight else 1.0


def analyze_coalescing(thread_parallel: Operation,
                       warp_size: int,
                       transaction_bytes: int = 32,
                       symbolic_trips: float = 16.0) -> List[GlobalAccess]:
    """Analyze every global access reachable from a thread loop body."""
    tid_x = thread_parallel.body_block().arg(0)
    accesses: List[GlobalAccess] = []

    def visit(block: Block, factor: float) -> None:
        for op in block.ops:
            name = op.name
            if name == "scf.for":
                lb = arith.constant_value(op.operand(0))
                ub = arith.constant_value(op.operand(1))
                step = arith.constant_value(op.operand(2))
                if None in (lb, ub, step) or step <= 0:
                    trips = symbolic_trips
                else:
                    trips = max(0.0, (ub - lb + step - 1) // step)
                visit(op.body_block(), factor * trips)
            elif name == "scf.while":
                visit(op.body_block(0), factor * symbolic_trips)
                visit(op.body_block(1), factor * symbolic_trips)
            elif name == "scf.if":
                visit(op.body_block(0), factor * 0.5)
                visit(op.body_block(1), factor * 0.5)
            elif name == "scf.parallel":
                visit(op.body_block(), factor)
            elif name == "polygeist.alternatives":
                visit(op.body_block(0), factor)
            elif name in ("memref.load", "memref.store",
                          "memref.atomic_rmw"):
                ref = memref_d.load_op_ref(op)
                if not isinstance(ref.type, MemRefType):
                    continue
                space = ref.type.memory_space
                if space not in ("global", "constant"):
                    continue
                element_bytes = byte_width(ref.type.element)
                form = _flat_affine(op)
                stride = None if form is None else _stride_of(form, tid_x)
                transactions = transactions_for_stride(
                    stride, element_bytes, warp_size, transaction_bytes)
                useful = warp_size * element_bytes
                efficiency = min(1.0, useful /
                                 (transactions * transaction_bytes))
                accesses.append(GlobalAccess(
                    op=op,
                    is_store=(name == "memref.store"),
                    element_bytes=element_bytes,
                    executions=factor,
                    stride_x=stride,
                    transactions_per_warp=transactions,
                    efficiency=efficiency))

    visit(thread_parallel.body_block(), 1.0)
    return accesses
