"""Kernel outlining: gpu_wrapper regions → standalone kernel functions.

After high-level optimization the paper outlines each kernel and hands it to
the target-specific backend (§III). Here outlining produces a ``func.func``
(marked as a kernel) whose arguments are the values the wrapper captured
from host code, and replaces the wrapper with a ``func.call``.
"""

from __future__ import annotations

from typing import List, Tuple

from ..analysis.uniformity import _external_operands
from ..dialects import func as func_d
from ..dialects import polygeist
from ..ir import Builder, FunctionType, Module, Operation


def outline_gpu_wrappers(module: Module) -> List[str]:
    """Outline every gpu_wrapper in the module; returns new kernel names."""
    outlined: List[str] = []
    counter = 0
    for f in list(module.funcs):
        wrappers = polygeist.find_gpu_wrappers(f)
        for wrapper in wrappers:
            name = "%s_kernel_%d" % (
                wrapper.attr(polygeist.KERNEL_NAME_ATTR) or "anon", counter)
            counter += 1
            _outline_one(module, wrapper, name)
            outlined.append(name)
    return outlined


def _outline_one(module: Module, wrapper: Operation, name: str) -> None:
    captured = sorted(_external_operands(wrapper),
                      key=lambda v: (v.name_hint, id(v)))
    # deterministic ordering: keep stable by first use
    captured = _order_by_first_use(wrapper, captured)
    arg_types = tuple(v.type for v in captured)
    builder = Builder(module.body)
    kernel = func_d.func(builder, name, FunctionType(arg_types, ()),
                         [v.name_hint or "arg" for v in captured],
                         kernel=True)
    kernel_block = kernel.body_block()
    value_map = dict(zip(captured, kernel_block.args))
    clone = wrapper.clone(value_map)
    kernel_block.append(clone)
    call_builder = Builder(wrapper.parent, wrapper.parent.index_of(wrapper))
    func_d.call(call_builder, name, captured, [])
    wrapper.erase()
    func_d.return_(Builder(kernel_block))


def _order_by_first_use(wrapper: Operation, captured) -> List:
    order = []
    seen = set()

    def visit(op: Operation) -> None:
        for operand in op.operands:
            if operand in captured_set and id(operand) not in seen:
                seen.add(id(operand))
                order.append(operand)

    captured_set = set(captured)
    wrapper.walk_preorder(visit)
    # values used only via regions of wrapper itself
    for value in captured:
        if id(value) not in seen:
            order.append(value)
    return order
