"""Barrier elimination (one of the pre-existing Polygeist optimizations).

Removes provably redundant ``polygeist.barrier`` ops:

* adjacent barriers with no memory access between them collapse to one
  (the coarsening transformations produce these when merging copies);
* a leading barrier with no preceding shared/global access in the thread
  body orders nothing and is removed;
* likewise a trailing barrier with no following access.
"""

from __future__ import annotations

from ..dialects import effects
from ..ir import Block, Module, Operation, Pass


def _accesses_memory(op: Operation) -> bool:
    return effects.reads_memory(op) or effects.writes_memory(op)


class BarrierElimination(Pass):
    name = "barrier-elim"

    def run(self, module: Module) -> bool:
        self.changed = False
        parallels = []
        module.op.walk(lambda op: parallels.append(op)
                       if op.name == "scf.parallel" and
                       op.attr("gpu.kind") == "threads" else None)
        for parallel in parallels:
            if parallel.parent is not None:
                self._clean_block(parallel.body_block(), top_level=True)
        return self.changed

    def _clean_block(self, block: Block, top_level: bool) -> None:
        # collapse adjacent barriers (no memory access in between)
        pending_barrier = None
        for op in list(block.ops):
            if op.name == "polygeist.barrier":
                if pending_barrier is not None:
                    op.erase()
                    self.changed = True
                    continue
                pending_barrier = op
            elif _accesses_memory(op) or effects.is_sync(op):
                pending_barrier = None
            for region in op.regions:
                for nested in region.blocks:
                    self._clean_block(nested, top_level=False)
        if not top_level:
            return
        # leading barrier: nothing before it accesses memory
        self._trim(block, forward=True)
        self._trim(block, forward=False)

    def _trim(self, block: Block, forward: bool) -> None:
        ops = block.ops if forward else list(reversed(block.ops))
        for op in list(ops):
            if op.name == "polygeist.barrier":
                op.erase()
                self.changed = True
                return
            if _accesses_memory(op) or effects.is_sync(op) or op.regions:
                return
