"""Dead code elimination: removes unused side-effect-free operations."""

from __future__ import annotations

from ..dialects import effects
from ..ir import Block, Module, Operation, Pass


#: per-name deadness verdict for region-free ops (their terminator and
#: side-effect classification depends only on the name)
_DEAD_BY_NAME: dict = {}


def _is_dead(op: Operation) -> bool:
    for result in op.results:
        if result.uses:
            return False
    # ops with regions are never removed: if anything nested has side
    # effects they are unsound to drop, and otherwise the region guard
    # below rejects them anyway — so only name-level checks remain, and
    # those memoize
    if op.regions:
        return False
    name = op.name
    verdict = _DEAD_BY_NAME.get(name)
    if verdict is None:
        # pure ops, unused loads, and unused allocations are removable
        verdict = not effects.is_terminator(op) and \
            not effects.has_side_effects(op)
        _DEAD_BY_NAME[name] = verdict
    return verdict


class DCE(Pass):
    name = "dce"

    def run(self, module: Module) -> bool:
        self.changed = False
        # iterate: removing a user may make its operands dead
        while self._sweep(module.body):
            self.changed = True
        return self.changed

    def _sweep(self, block: Block) -> bool:
        removed = False
        # bottom-up: users die before their operands' defining ops are
        # inspected, so a whole dead chain disappears in one sweep instead
        # of one op per sweep (the fixpoint reached is the same — DCE only
        # ever shrinks the same dead set)
        for op in reversed(list(block.ops)):
            for region in op.regions:
                for nested in region.blocks:
                    if self._sweep(nested):
                        removed = True
            if _is_dead(op):
                op.erase()
                removed = True
        return removed
