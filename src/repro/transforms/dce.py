"""Dead code elimination: removes unused side-effect-free operations."""

from __future__ import annotations

from ..dialects import effects
from ..ir import Block, Module, Operation, Pass


def _is_dead(op: Operation) -> bool:
    if any(result.has_uses() for result in op.results):
        return False
    if effects.is_terminator(op):
        return False
    if effects.has_side_effects(op):
        return False
    # pure ops, unused loads, and unused allocations are all removable —
    # but an allocation is only dead if nothing accesses it
    if effects.is_allocation(op):
        return True
    if op.regions:
        return False
    return True


class DCE(Pass):
    name = "dce"

    def run(self, module: Module) -> bool:
        self.changed = False
        # iterate: removing a user may make its operands dead
        while self._sweep(module.body):
            self.changed = True
        return self.changed

    def _sweep(self, block: Block) -> bool:
        removed = False
        for op in list(block.ops):
            for region in op.regions:
                for nested in region.blocks:
                    if self._sweep(nested):
                        removed = True
            if _is_dead(op):
                op.erase()
                removed = True
        return removed
