"""Nested parallel loop unroll-and-interleave (§IV of the paper).

Unrolls one dimension of an ``scf.parallel`` by a factor ``f`` and
interleaves the statement copies:

* side-effecting statements are grouped copy-by-copy (parallel iterations
  have no mutual ordering constraints, Fig. 7);
* nested ``scf.for``/``scf.if``/``scf.parallel`` ops that contain barriers
  are *jammed*: a single loop/conditional is emitted whose bounds/condition
  come from copy 0 (legal because they are uniform in the unrolled iv), with
  iteration arguments concatenated across copies (Fig. 8);
* ``polygeist.barrier`` ops are merged — all ``f`` copies become one barrier
  (Fig. 10, left). If a barrier *would* have to be duplicated (it sits under
  control flow whose shape varies with the unrolled iv) the transformation
  is illegal and raises :class:`IllegalUnroll` (Fig. 10, right);
* nested control flow without barriers is simply replicated wholesale
  (Fig. 9).

Two indexing styles are provided (Fig. 11): ``"thread"`` uses the
coalescing-friendly ``iv + k * new_ub`` decomposition and requires the
factor to divide the extent; ``"block"`` uses contiguous grouping
``iv * f + k`` and emits an *epilogue* parallel loop covering the remainder,
so any factor is accepted (§V-C).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.uniformity import contains_barrier, is_uniform_in
from ..dialects import arith, polygeist, scf
from ..ir import (Block, BlockArgument, Builder, INDEX, Operation, Region,
                  Value, single_block_region)


class IllegalUnroll(ValueError):
    """The requested unroll-and-interleave would break barrier semantics."""


# -- legality -----------------------------------------------------------------


def check_unroll_legality(parallel_op: Operation,
                          trust_convergence: bool = False
                          ) -> Optional[str]:
    """Why unrolling ``parallel_op`` is illegal, or None if it is legal.

    ``trust_convergence`` applies when unrolling a *thread* loop: the GPU
    programming model already guarantees that control flow around barriers
    does not vary across threads, so only structural jammability is checked
    (§V-A: thread coarsening "is always legal").
    """
    ivs = set(parallel_op.body_block().args)
    barriers: List[Operation] = []
    parallel_op.walk_preorder(
        lambda op: barriers.append(op)
        if op.name == polygeist.BARRIER else None, include_self=False)
    for barrier in barriers:
        ancestor = barrier.parent_op
        while ancestor is not None and ancestor is not parallel_op:
            reason = _jammable(ancestor, ivs, trust_convergence)
            if reason is not None:
                return reason
            ancestor = ancestor.parent_op
    return None


def _jammable(op: Operation, ivs, trust_convergence: bool) -> Optional[str]:
    if op.name == scf.FOR:
        if trust_convergence:
            return None
        for bound in op.operands[:3]:
            if not is_uniform_in(bound, ivs):
                return ("barrier inside scf.for whose bounds depend on the "
                        "unrolled induction variable")
        return None
    if op.name == scf.IF:
        if trust_convergence:
            return None
        if not is_uniform_in(op.operand(0), ivs):
            return ("barrier inside scf.if whose condition depends on the "
                    "unrolled induction variable")
        return None
    if op.name == scf.PARALLEL:
        for bound in op.operands:
            if not is_uniform_in(bound, ivs):
                return "barrier inside a parallel loop with varying bounds"
        return None
    if op.name == scf.WHILE:
        return "barrier inside scf.while cannot be jammed"
    return "barrier inside un-jammable op %s" % op.name


# -- the transformation -------------------------------------------------------


def unroll_and_interleave(parallel_op: Operation, dim: int, factor: int,
                          style: str) -> Tuple[Operation,
                                               Optional[Operation]]:
    """Unroll dimension ``dim`` of ``parallel_op`` by ``factor``.

    Returns ``(main_loop, epilogue_loop_or_None)``. The original op is
    erased. ``style`` is ``"thread"`` or ``"block"`` (see module docstring).
    """
    if style not in ("thread", "block", "thread_naive"):
        raise ValueError(
            "style must be 'thread', 'thread_naive', or 'block'")
    if factor < 1:
        raise ValueError("factor must be >= 1")
    if factor == 1:
        return parallel_op, None
    num_dims = scf.parallel_num_dims(parallel_op)
    if not 0 <= dim < num_dims:
        raise ValueError("dimension %d out of range" % dim)
    reason = check_unroll_legality(
        parallel_op, trust_convergence=style.startswith("thread"))
    if reason is not None:
        raise IllegalUnroll(reason)

    lb = scf.parallel_lower_bounds(parallel_op)[dim]
    ub = scf.parallel_upper_bounds(parallel_op)[dim]
    step = scf.parallel_steps(parallel_op)[dim]
    if arith.constant_value(lb) != 0 or arith.constant_value(step) != 1:
        raise IllegalUnroll("only lb=0, step=1 parallel loops are supported")
    ub_const = arith.constant_value(ub)

    parent = parallel_op.parent
    builder = Builder(parent, parent.index_of(parallel_op))

    need_epilogue = False
    if style in ("thread", "thread_naive"):
        if ub_const is None:
            raise IllegalUnroll("thread coarsening needs a constant extent")
        if ub_const % factor != 0:
            raise IllegalUnroll(
                "thread factor %d does not divide extent %d" %
                (factor, ub_const))
        new_ub = arith.index_constant(builder, ub_const // factor)
    else:
        if ub_const is not None:
            main_extent = ub_const // factor
            if main_extent == 0:
                raise IllegalUnroll(
                    "block factor %d exceeds grid extent %d" %
                    (factor, ub_const))
            new_ub = arith.index_constant(builder, main_extent)
            need_epilogue = (ub_const % factor) != 0
        else:
            factor_const = arith.index_constant(builder, factor)
            new_ub = arith.binary(builder, "arith.divsi", ub, factor_const)
            need_epilogue = True  # unknown remainder: always emit epilogue

    # -- build the new main loop ----------------------------------------------
    old_block = parallel_op.body_block()
    new_lbs = scf.parallel_lower_bounds(parallel_op)
    new_ubs = scf.parallel_upper_bounds(parallel_op)
    new_steps = scf.parallel_steps(parallel_op)
    new_ubs[dim] = new_ub
    attributes = dict(parallel_op.attributes)
    history = list(attributes.get("coarsen.history", []))
    history.append("%s:dim%d:x%d" % (style, dim, factor))
    attributes["coarsen.history"] = history
    region = single_block_region(
        [INDEX] * num_dims, [a.name_hint for a in old_block.args])
    new_par = Operation(scf.PARALLEL, [*new_lbs, *new_ubs, *new_steps], [],
                        attributes, [region])
    builder.insert(new_par)
    new_block = new_par.body_block()
    body_builder = Builder(new_block)

    new_iv = new_block.arg(dim)
    old_iv = old_block.arg(dim)
    factor_value = arith.index_constant(body_builder, factor)

    maps: List[Dict[Value, Value]] = []
    iv_substitution: Dict[Value, Value] = {old_iv: new_iv}
    for d in range(num_dims):
        if d != dim:
            iv_substitution[old_block.arg(d)] = new_block.arg(d)
    for k in range(factor):
        copy_map: Dict[Value, Value] = {}
        for d in range(num_dims):
            if d != dim:
                copy_map[old_block.arg(d)] = new_block.arg(d)
        if style == "thread":
            # coalescing-friendly decomposition (Fig. 11): copy k handles
            # original thread iv + k * new_ub, keeping lane-adjacent
            # addresses adjacent
            if k == 0:
                copy_map[old_iv] = new_iv
            else:
                offset = arith.index_constant(body_builder, k)
                shift = arith.muli(body_builder, offset, new_ub)
                copy_map[old_iv] = arith.addi(body_builder, new_iv, shift)
        else:
            # contiguous grouping iv*f + k: the right choice for blocks,
            # and the *naive* (stride-destroying) choice for threads
            # (style "thread_naive", kept for the Fig. 11 ablation)
            scaled = arith.muli(body_builder, new_iv, factor_value)
            if k == 0:
                copy_map[old_iv] = scaled
            else:
                offset = arith.index_constant(body_builder, k)
                copy_map[old_iv] = arith.addi(body_builder, scaled, offset)
        maps.append(copy_map)

    _interleave_block(old_block, body_builder, maps, iv_substitution)

    # -- epilogue ---------------------------------------------------------------
    epilogue: Optional[Operation] = None
    if style == "block" and need_epilogue:
        epilogue_builder = Builder(parent, parent.index_of(new_par) + 1)
        ep_lb = arith.muli(epilogue_builder, new_ub,
                           arith.index_constant(epilogue_builder, factor))
        epilogue = parallel_op.clone({})
        epilogue.set_operand(dim, ep_lb)  # lower bound slot of dim
        epilogue.attributes["coarsen.epilogue"] = True
        epilogue_builder.insert(epilogue)

    parallel_op.erase()
    return new_par, epilogue


def _interleave_block(old_block: Block, builder: Builder,
                      maps: List[Dict[Value, Value]],
                      iv_substitution: Dict[Value, Value]) -> None:
    """Emit interleaved copies of ``old_block``'s ops via ``builder``."""
    factor = len(maps)
    for op in old_block.ops:
        name = op.name
        if name in (scf.YIELD, scf.CONDITION):
            operands = [m.get(v, v) for m in maps for v in op.operands]
            builder.create(name, operands, [])
            continue
        if name == polygeist.BARRIER:
            operands = []
            for operand in op.operands:
                mapped = iv_substitution.get(operand)
                if mapped is None:
                    mapped = maps[0].get(operand, operand)
                operands.append(mapped)
            builder.create(polygeist.BARRIER, operands, [])
            continue
        has_barrier = contains_barrier(op)
        if has_barrier or _jammable_across_copies(op, maps):
            # unroll-and-jam (Fig. 8): a single loop/conditional whose body
            # interleaves all copies. Mandatory around barriers; applied to
            # any nested control flow with copy-uniform shape, which is
            # what lets redundant-load elimination find cross-copy reuse.
            if name == scf.FOR:
                _jam_for(op, builder, maps, iv_substitution)
                continue
            if name == scf.IF:
                _jam_if(op, builder, maps, iv_substitution)
                continue
            if name == scf.PARALLEL:
                _jam_parallel(op, builder, maps, iv_substitution)
                continue
            if has_barrier:
                raise IllegalUnroll(
                    "cannot jam barrier-carrying op %s" % name)
        # variable-shape control flow without barriers, or plain
        # statements: replicate once per copy, grouped together
        # (Fig. 7 / Fig. 9)
        for copy_map in maps:
            builder.insert(op.clone(copy_map))


def _jammable_across_copies(op: Operation,
                            maps: List[Dict[Value, Value]]) -> bool:
    """True if the op's shape (bounds/condition) is identical per copy."""
    if op.name == scf.FOR:
        shape_operands = op.operands[:3]
    elif op.name == scf.IF:
        shape_operands = op.operands[:1]
    elif op.name == scf.PARALLEL:
        shape_operands = op.operands
    else:
        return False
    first = maps[0]
    for operand in shape_operands:
        mapped = first.get(operand, operand)
        mapped_const = arith.constant_value(mapped)
        for copy_map in maps[1:]:
            other = copy_map.get(operand, operand)
            if other is mapped:
                continue
            # per-copy clones of the same constant are still uniform
            if mapped_const is not None and \
                    arith.constant_value(other) == mapped_const:
                continue
            return False
    return True


def _jam_for(old_for: Operation, builder: Builder,
             maps: List[Dict[Value, Value]],
             iv_substitution: Dict[Value, Value]) -> None:
    factor = len(maps)
    n_iter = old_for.num_operands - 3
    bounds = [maps[0].get(v, v) for v in old_for.operands[:3]]
    inits = [m.get(v, v) for m in maps for v in old_for.operands[3:]]
    iter_types = [v.type for v in old_for.operands[3:]]
    result_types = iter_types * factor
    old_body = old_for.body_block()
    region = single_block_region(
        [INDEX] + result_types,
        [old_body.arg(0).name_hint] +
        [old_body.args[1 + i % n_iter].name_hint if n_iter else ""
         for i in range(len(result_types))])
    new_for = Operation(scf.FOR, bounds + inits, result_types,
                        dict(old_for.attributes), [region])
    builder.insert(new_for)
    new_body = new_for.body_block()
    inner_maps = [dict(m) for m in maps]
    for k in range(factor):
        inner_maps[k][old_body.arg(0)] = new_body.arg(0)
        for i in range(n_iter):
            inner_maps[k][old_body.args[1 + i]] = \
                new_body.args[1 + k * n_iter + i]
    _interleave_block(old_body, Builder(new_body), inner_maps,
                      iv_substitution)
    for k in range(factor):
        for i in range(n_iter):
            maps[k][old_for.results[i]] = new_for.results[k * n_iter + i]


def _jam_if(old_if: Operation, builder: Builder,
            maps: List[Dict[Value, Value]],
            iv_substitution: Dict[Value, Value]) -> None:
    factor = len(maps)
    n_results = old_if.num_results
    cond = maps[0].get(old_if.operand(0), old_if.operand(0))
    result_types = [r.type for r in old_if.results] * factor
    new_if = Operation(scf.IF, [cond], result_types,
                       dict(old_if.attributes),
                       [single_block_region(), single_block_region()])
    builder.insert(new_if)
    for region_index in range(2):
        branch_maps = [dict(m) for m in maps]
        _interleave_block(old_if.body_block(region_index),
                          Builder(new_if.body_block(region_index)),
                          branch_maps, iv_substitution)
    for k in range(factor):
        for i in range(n_results):
            maps[k][old_if.results[i]] = new_if.results[k * n_results + i]


def _jam_parallel(old_par: Operation, builder: Builder,
                  maps: List[Dict[Value, Value]],
                  iv_substitution: Dict[Value, Value]) -> None:
    """Jam a nested parallel loop (e.g. the thread loop during block
    coarsening): a single nested loop whose body holds all copies."""
    operands = [maps[0].get(v, v) for v in old_par.operands]
    old_body = old_par.body_block()
    region = single_block_region([a.type for a in old_body.args],
                                 [a.name_hint for a in old_body.args])
    new_par = Operation(scf.PARALLEL, operands, [],
                        dict(old_par.attributes), [region])
    builder.insert(new_par)
    new_body = new_par.body_block()
    inner_maps = [dict(m) for m in maps]
    inner_subst = dict(iv_substitution)
    for old_arg, new_arg in zip(old_body.args, new_body.args):
        inner_subst[old_arg] = new_arg
        for inner_map in inner_maps:
            inner_map[old_arg] = new_arg
    _interleave_block(old_body, Builder(new_body), inner_maps, inner_subst)
