"""Standard optimization pipelines."""

from __future__ import annotations

from ..ir import Module, PassManager
from ..obs import tracer as obs_tracer
from .barrier_elim import BarrierElimination
from .canonicalize import Canonicalize
from .cse import CSE
from .dce import DCE
from .licm import LICM
from .load_elim import RedundantLoadElimination


def default_cleanup_pipeline(parallel_optimizations: bool = True
                             ) -> PassManager:
    """The cleanup pipeline run before and after coarsening.

    With ``parallel_optimizations`` disabled only the classical scalar
    cleanups run — this models the paper's "Polygeist-GPU without
    optimizations" configuration used as the clang-parity baseline in
    Fig. 16.
    """
    passes = [Canonicalize(), CSE(), RedundantLoadElimination()]
    if parallel_optimizations:
        passes.append(LICM())
        passes.append(BarrierElimination())
    passes.append(DCE())
    # transforms are verified by the test suite; verifying after every pass
    # on every pipeline run is prohibitively slow for autotuning sweeps
    return PassManager(passes, verify=False)


def run_cleanup(module: Module, parallel_optimizations: bool = True,
                max_iterations: int = 8) -> None:
    pipeline = default_cleanup_pipeline(parallel_optimizations)
    with obs_tracer.span("cleanup", category="transforms",
                         parallel=parallel_optimizations):
        pipeline.run_until_fixpoint(module, max_iterations)


def cleanup_regions(regions, parallel_optimizations: bool = True,
                    max_iterations: int = 8) -> None:
    """Run the cleanup pipeline to fixpoint over just ``regions``.

    Each region is wrapped in a :class:`~repro.ir.scoped.RegionModule`
    facade and driven to its own fixpoint; the enclosing module is never
    walked. With the enclosing IR already at the pipeline's fixpoint (the
    autotuning flow pre-cleans the whole module before generating
    alternatives), the result is identical to a whole-module
    :func:`run_cleanup` — proven by the benchsuite-wide equivalence test.
    """
    from ..ir.scoped import RegionModule
    pipeline = default_cleanup_pipeline(parallel_optimizations)
    with obs_tracer.span("cleanup", category="transforms",
                         parallel=parallel_optimizations,
                         regions=len(regions)):
        pipeline.run_modules_until_fixpoint(
            [RegionModule(region) for region in regions], max_iterations)
