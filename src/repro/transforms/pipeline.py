"""Standard optimization pipelines."""

from __future__ import annotations

from ..ir import Module, PassManager
from ..obs import tracer as obs_tracer
from .barrier_elim import BarrierElimination
from .canonicalize import Canonicalize
from .cse import CSE
from .dce import DCE
from .licm import LICM
from .load_elim import RedundantLoadElimination


def default_cleanup_pipeline(parallel_optimizations: bool = True
                             ) -> PassManager:
    """The cleanup pipeline run before and after coarsening.

    With ``parallel_optimizations`` disabled only the classical scalar
    cleanups run — this models the paper's "Polygeist-GPU without
    optimizations" configuration used as the clang-parity baseline in
    Fig. 16.
    """
    passes = [Canonicalize(), CSE(), RedundantLoadElimination()]
    if parallel_optimizations:
        passes.append(LICM())
        passes.append(BarrierElimination())
    passes.append(DCE())
    # transforms are verified by the test suite; verifying after every pass
    # on every pipeline run is prohibitively slow for autotuning sweeps
    return PassManager(passes, verify=False)


def run_cleanup(module: Module, parallel_optimizations: bool = True,
                max_iterations: int = 8) -> None:
    pipeline = default_cleanup_pipeline(parallel_optimizations)
    with obs_tracer.span("cleanup", category="transforms",
                         parallel=parallel_optimizations):
        pipeline.run_until_fixpoint(module, max_iterations)
