"""Redundant load elimination.

Within a block, a load from the same buffer at the same index values as an
earlier load — with no intervening store to that buffer and no barrier —
reuses the earlier value. This is the standard backend optimization that
makes coarsening pay off: unroll-and-interleave copies whose addresses do
not depend on the unrolled induction variable become *identical* loads, and
eliminating them is precisely the cross-(coarsened-)block data reuse the
paper measures in Table II (block coarsening cutting L2→L1 read traffic;
thread coarsening cutting shared-memory requests).

Barriers act as memory fences: all cached loads are invalidated, matching
the conservative behaviour of real GPU backends around ``__syncthreads``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..ir import Block, Module, Operation, Pass


class RedundantLoadElimination(Pass):
    name = "load-elim"

    def run(self, module: Module) -> bool:
        self.changed = False
        self._run_block(module.body)
        return self.changed

    def _run_block(self, block: Block) -> None:
        #: (id(base), index value ids) -> available load op
        available: Dict[Tuple, Operation] = {}
        #: (id(base), index value ids) -> last value stored there
        stored: Dict[Tuple, object] = {}
        for op in list(block.ops):
            name = op.name
            if name == "memref.load":
                base = op.operand(0)
                key = (id(base), tuple(id(v) for v in op.operands[1:]))
                forwarded = stored.get(key)
                if forwarded is not None:
                    # store-to-load forwarding: the thread just wrote this
                    # cell and nothing synchronized in between
                    op.replace_all_uses_with([forwarded])
                    op.erase()
                    self.changed = True
                    continue
                earlier = available.get(key)
                if earlier is not None:
                    op.replace_all_uses_with([earlier.result()])
                    op.erase()
                    self.changed = True
                    continue
                available[key] = op
            elif name == "memref.store":
                base = op.operand(1)
                self._invalidate_base(available, base)
                self._invalidate_base(stored, base)
                key = (id(base), tuple(id(v) for v in op.operands[2:]))
                stored[key] = op.operand(0)
            elif name == "memref.atomic_rmw":
                base = op.operand(1)
                self._invalidate_base(available, base)
                self._invalidate_base(stored, base)
            elif name == "polygeist.barrier":
                available.clear()
                stored.clear()
            elif op.regions:
                # region ops may store or synchronize: invalidate what they
                # touch, then process their blocks independently
                if self._has_side_effects_inside(op):
                    available.clear()
                    stored.clear()
                for region in op.regions:
                    for nested in region.blocks:
                        self._run_block(nested)

    @staticmethod
    def _invalidate_base(available: Dict[Tuple, Operation], base) -> None:
        for key in [k for k in available if k[0] == id(base)]:
            del available[key]

    _EFFECTFUL = frozenset(("memref.store", "memref.atomic_rmw",
                            "polygeist.barrier", "func.call",
                            "gpu.launch_func"))

    @classmethod
    def _has_side_effects_inside(cls, op: Operation) -> bool:
        # explicit stack so the walk stops at the first hit instead of
        # visiting the whole subtree
        effectful = cls._EFFECTFUL
        stack = [op]
        while stack:
            current = stack.pop()
            for region in current.regions:
                for block in region.blocks:
                    for child in block.ops:
                        if child.name in effectful:
                            return True
                        if child.regions:
                            stack.append(child)
        return False
