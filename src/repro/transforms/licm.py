"""Loop-invariant code motion, including GPU shared-memory loads.

The paper attributes its lavaMD speedup (§VII-C) to "better loop invariant
code motion with respect to GPU shared memory": loads from shared buffers
that are not written inside the loop get hoisted out of the innermost
compute loops. This pass implements that: pure ops are hoisted whenever
their operands are loop-invariant, and loads additionally require that no
write to the same buffer occurs inside the loop and that they execute on
every iteration of a loop with a known positive trip count.
"""

from __future__ import annotations

from typing import Set

from ..dialects import arith, effects, memref as memref_d
from ..ir import Module, Operation, Pass, Value


def _values_defined_inside(op: Operation) -> Set[Value]:
    inside: Set[Value] = set()

    def collect(child: Operation) -> None:
        inside.update(child.results)
        for region in child.regions:
            for block in region.blocks:
                inside.update(block.args)

    op.walk_preorder(collect, include_self=False)
    for region in op.regions:
        for block in region.blocks:
            inside.update(block.args)
    return inside


def _written_buffers(op: Operation) -> Set[int]:
    """ids of memref base values stored to anywhere inside ``op``."""
    written: Set[int] = set()

    def collect(child: Operation) -> None:
        if child.name in ("memref.store", "memref.atomic_rmw"):
            written.add(id(memref_d.load_op_ref(child)))
        elif child.name in ("func.call", "gpu.launch_func"):
            written.add(-1)  # unknown writes

    op.walk_preorder(collect)
    return written


def _has_positive_trip_count(loop: Operation) -> bool:
    lb = arith.constant_value(loop.operand(0))
    ub = arith.constant_value(loop.operand(1))
    return lb is not None and ub is not None and ub > lb


def _is_speculatable(op: Operation) -> bool:
    """Pure and safe to execute even if the loop body never ran."""
    if op.regions or not effects.is_pure(op):
        return False
    if op.name in ("arith.divsi", "arith.remsi", "arith.divui",
                   "arith.remui"):
        divisor = arith.constant_value(op.operand(1))
        return divisor is not None and divisor != 0
    return True


class LICM(Pass):
    name = "licm"

    def run(self, module: Module) -> bool:
        self.changed = False
        loops = []
        module.op.walk(lambda op: loops.append(op)
                       if op.name == "scf.for" else None)
        # post-order walk already yields innermost loops first
        for loop in loops:
            if loop.parent is not None:
                self._hoist_from(loop)
        return self.changed

    def _hoist_from(self, loop: Operation) -> None:
        inside = _values_defined_inside(loop)
        written = _written_buffers(loop)
        guarded_trip = _has_positive_trip_count(loop)
        body = loop.body_block()
        parent = loop.parent
        for op in list(body.ops):
            if any(operand in inside for operand in op.operands):
                continue
            hoist = False
            if _is_speculatable(op):
                hoist = True
            elif op.name == "memref.load" and guarded_trip:
                base = memref_d.load_op_ref(op)
                if id(base) not in written and -1 not in written:
                    hoist = True
            if not hoist:
                continue
            op.detach()
            parent.insert(parent.index_of(loop), op)
            for result in op.results:
                inside.discard(result)
            self.changed = True
