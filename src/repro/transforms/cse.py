"""Common subexpression elimination for pure ops, scoped by region nesting."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..dialects import effects
from ..ir import Block, Module, Operation, Pass
from ..ir.types import Type

#: memoized ``str(type)`` per distinct type object — types are immutable
#: value objects, so the cache never goes stale and stays small
_TYPE_STRS: Dict[Type, str] = {}


def _type_str(type_: Type) -> str:
    text = _TYPE_STRS.get(type_)
    if text is None:
        text = str(type_)
        _TYPE_STRS[type_] = text
    return text


def _key(op: Operation) -> Optional[Tuple]:
    if op.regions or not effects.is_pure(op):
        return None
    attributes = op.attributes
    attrs = tuple(sorted((k, _hashable(v)) for k, v in attributes.items())) \
        if attributes else ()
    return (op.name, tuple(map(id, op._operands)), attrs,
            tuple(_type_str(r.type) for r in op.results))


def _hashable(value):
    if isinstance(value, list):
        return tuple(_hashable(v) for v in value)
    return value


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.table: Dict[Tuple, Operation] = {}

    def lookup(self, key: Tuple) -> Optional[Operation]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if key in scope.table:
                return scope.table[key]
            scope = scope.parent
        return None


class CSE(Pass):
    """Deduplicates pure operations; outer-scope values are reused inside
    nested regions (valid in our structured, single-block IR)."""

    name = "cse"

    def run(self, module: Module) -> bool:
        self.changed = False
        self._run_block(module.body, self._root_scope(module))
        return self.changed

    @staticmethod
    def _root_scope(module: Module) -> _Scope:
        """The starting scope chain for ``module``.

        A plain :class:`~repro.ir.Module` starts empty. A region-scoped
        facade (:class:`~repro.ir.scoped.RegionModule`) exposes
        ``enclosing_scope_blocks``; the chain is then seeded, outermost
        first, with the pure ops preceding the nesting path in each
        enclosing block — exactly the visibility a whole-module run would
        have established by the time it descends into the region. The
        seeds are read-only: the enclosing IR is already at fixpoint, so a
        whole-module run would not have mutated it either.
        """
        scope = _Scope()
        enclosing = getattr(module, "enclosing_scope_blocks", None)
        if enclosing is None:
            return scope
        for block, stop in enclosing():
            scope = _Scope(scope)
            table = scope.table
            for op in block.ops:
                if op is stop:
                    break
                key = _key(op)
                if key is not None and key not in table:
                    table[key] = op
        return _Scope(scope)

    def _run_block(self, block: Block, scope: _Scope) -> None:
        for op in list(block.ops):
            key = _key(op)
            if key is not None:
                existing = scope.lookup(key)
                if existing is not None:
                    op.replace_all_uses_with(existing.results)
                    op.erase()
                    self.changed = True
                    continue
                scope.table[key] = op
            for region in op.regions:
                for nested in region.blocks:
                    self._run_block(nested, _Scope(scope))
