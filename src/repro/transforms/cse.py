"""Common subexpression elimination for pure ops, scoped by region nesting."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..dialects import effects
from ..ir import Block, Module, Operation, Pass


def _key(op: Operation) -> Optional[Tuple]:
    if op.regions or not effects.is_pure(op):
        return None
    attrs = tuple(sorted((k, _hashable(v)) for k, v in op.attributes.items()))
    return (op.name, tuple(id(v) for v in op.operands), attrs,
            tuple(str(r.type) for r in op.results))


def _hashable(value):
    if isinstance(value, list):
        return tuple(_hashable(v) for v in value)
    return value


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.table: Dict[Tuple, Operation] = {}

    def lookup(self, key: Tuple) -> Optional[Operation]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if key in scope.table:
                return scope.table[key]
            scope = scope.parent
        return None


class CSE(Pass):
    """Deduplicates pure operations; outer-scope values are reused inside
    nested regions (valid in our structured, single-block IR)."""

    name = "cse"

    def run(self, module: Module) -> bool:
        self.changed = False
        self._run_block(module.body, _Scope())
        return self.changed

    def _run_block(self, block: Block, scope: _Scope) -> None:
        for op in list(block.ops):
            key = _key(op)
            if key is not None:
                existing = scope.lookup(key)
                if existing is not None:
                    op.replace_all_uses_with(existing.results)
                    op.erase()
                    self.changed = True
                    continue
                scope.table[key] = op
            for region in op.regions:
                for nested in region.blocks:
                    self._run_block(nested, _Scope(scope))
