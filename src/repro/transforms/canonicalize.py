"""Canonicalization: constant folding and algebraic simplification."""

from __future__ import annotations

from typing import List, Optional

from ..dialects import arith
from ..ir import (Builder, FloatType, IndexType, IntegerType, Module,
                  Operation, OpResult, Pass, Value)

_INT_FOLDS = {
    "arith.addi": lambda a, b: a + b,
    "arith.subi": lambda a, b: a - b,
    "arith.muli": lambda a, b: a * b,
    "arith.andi": lambda a, b: a & b,
    "arith.ori": lambda a, b: a | b,
    "arith.xori": lambda a, b: a ^ b,
    "arith.shli": lambda a, b: a << b,
    "arith.shrsi": lambda a, b: a >> b,
    "arith.minsi": min,
    "arith.maxsi": max,
}

_CMP = {
    "eq": lambda a, b: a == b, "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b, "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b, "ge": lambda a, b: a >= b,
}

#: every op name :meth:`Canonicalize._simplify_op` can act on — anything
#: else exits before the dispatch cascade
_CANON_NAMES = frozenset(_INT_FOLDS) | {
    "arith.divsi", "arith.remsi", "arith.cmpi", "arith.select",
    "arith.index_cast", "scf.if",
}


def _const(value: Value) -> Optional[object]:
    return arith.constant_value(value)


def _as_op(value, name):
    if value.__class__ is OpResult and value.owner.name == name:
        return value.owner
    return None


def _match_divmod_recompose(add_op: Operation) -> Optional[Value]:
    """Recognize ``(x / y) * y + x % y`` (either operand order) as ``x``.

    Holds for C division semantics with any sign. This is the row/column
    linearization idiom (``row = i / n; col = i % n; a[row * n + col]``)
    whose recomposition the coalescing analysis needs to see through.
    """
    as_op = _as_op
    lhs, rhs = add_op._operands
    for mul_side, rem_side in ((lhs, rhs), (rhs, lhs)):
        rem = as_op(rem_side, "arith.remsi")
        mul = as_op(mul_side, "arith.muli")
        if rem is None or mul is None:
            continue
        x, y = rem._operands
        mul_lhs, mul_rhs = mul._operands
        for div_side, factor in ((mul_lhs, mul_rhs), (mul_rhs, mul_lhs)):
            div = as_op(div_side, "arith.divsi")
            if div is None or factor is not y:
                continue
            if div._operands[0] is x and div._operands[1] is y:
                return x
    return None


class Canonicalize(Pass):
    """Folds constants and applies identities like x+0, x*1, x*0."""

    name = "canonicalize"

    def run(self, module: Module) -> bool:
        self.changed = False
        # iterate to propagate folds
        for _ in range(8):
            before = self.changed
            for op in self._candidates(module.op):
                self._simplify_op(op)
            if self.changed == before:
                break
        return self.changed

    @staticmethod
    def _candidates(root: Operation) -> List[Operation]:
        """Canonicalizable ops, in exactly ``walk()``'s post-order.

        Snapshotting candidates before rewriting visits the same ops in
        the same order as walking with ``_simplify_op`` as the callback:
        the rewrites only erase the visited op (and its already-visited
        subtree), and ops they create or move land in block positions a
        walk's per-block snapshot would not revisit mid-sweep either.
        Collecting first skips the per-op Python call for the ~90% of ops
        no canonicalization pattern matches.
        """
        post: List[Operation] = []
        stack = [root]
        while stack:
            op = stack.pop()
            post.append(op)
            for region in op.regions:
                for block in region.blocks:
                    stack.extend(block.ops)
        names = _CANON_NAMES
        # reversed preorder-with-reversed-children == post-order
        return [op for op in reversed(post) if op.name in names]

    def _replace_with_constant(self, op: Operation, value) -> None:
        builder = Builder(op.parent, op.parent.index_of(op))
        new_value = arith.constant(builder, value, op.result().type)
        op.replace_all_uses_with([new_value])
        op.erase()
        self.changed = True

    def _replace_with_value(self, op: Operation, value: Value) -> None:
        op.replace_all_uses_with([value])
        op.erase()
        self.changed = True

    def _simplify_op(self, op: Operation) -> None:
        name = op.name
        if name not in _CANON_NAMES or op.parent is None:
            return
        if name in _INT_FOLDS:
            operands = op._operands
            lhs, rhs = _const(operands[0]), _const(operands[1])
            if lhs is not None and rhs is not None:
                self._replace_with_constant(op, _INT_FOLDS[name](lhs, rhs))
                return
            if name == "arith.addi":
                reconstructed = _match_divmod_recompose(op)
                if reconstructed is not None:
                    self._replace_with_value(op, reconstructed)
                    return
            self._int_identities(op, lhs, rhs)
            return
        if name in ("arith.divsi", "arith.remsi"):
            lhs, rhs = _const(op._operands[0]), _const(op._operands[1])
            if lhs is not None and rhs not in (None, 0):
                q = abs(lhs) // abs(rhs)
                if (lhs >= 0) != (rhs >= 0):
                    q = -q
                value = q if name == "arith.divsi" else lhs - q * rhs
                self._replace_with_constant(op, value)
            elif rhs == 1:
                if name == "arith.divsi":
                    self._replace_with_value(op, op._operands[0])
                else:
                    self._replace_with_constant(op, 0)
            return
        if name == "arith.cmpi":
            lhs, rhs = _const(op._operands[0]), _const(op._operands[1])
            if lhs is not None and rhs is not None:
                predicate = op.attr("predicate")
                self._replace_with_constant(op, _CMP[predicate](lhs, rhs))
            return
        if name == "arith.select":
            operands = op._operands
            cond = _const(operands[0])
            if cond is not None:
                self._replace_with_value(
                    op, operands[1] if cond else operands[2])
            elif operands[1] is operands[2]:
                self._replace_with_value(op, operands[1])
            return
        if name == "arith.index_cast":
            source = op._operands[0]
            if source.type == op.result().type:
                self._replace_with_value(op, source)
            else:
                folded = _const(source)
                if folded is not None and isinstance(
                        op.result().type, (IndexType, IntegerType)):
                    self._replace_with_constant(op, folded)
            return
        if name == "scf.if":
            cond = _const(op._operands[0])
            if cond is not None:
                self._inline_if_branch(op, bool(cond))
            return

    def _int_identities(self, op: Operation, lhs, rhs) -> None:
        name = op.name
        if name == "arith.addi":
            if rhs == 0:
                self._replace_with_value(op, op._operands[0])
            elif lhs == 0:
                self._replace_with_value(op, op._operands[1])
        elif name == "arith.subi":
            if rhs == 0:
                self._replace_with_value(op, op._operands[0])
        elif name == "arith.muli":
            if rhs == 1:
                self._replace_with_value(op, op._operands[0])
            elif lhs == 1:
                self._replace_with_value(op, op._operands[1])
            elif rhs == 0 or lhs == 0:
                self._replace_with_constant(op, 0)

    def _inline_if_branch(self, op: Operation, take_then: bool) -> None:
        block = op.body_block(0 if take_then else 1)
        parent = op.parent
        index = parent.index_of(op)
        terminator = block.ops[-1] if block.ops and \
            block.ops[-1].name == "scf.yield" else None
        moved = [child for child in block.ops if child is not terminator]
        for child in moved:
            child.parent = None
        block.ops = [terminator] if terminator else []
        for offset, child in enumerate(moved):
            parent.insert(index + offset, child)
        if terminator is not None:
            op.replace_all_uses_with(terminator.operands)
        op.erase()
        self.changed = True
