"""IR transformations.

Cleanup passes (canonicalize/CSE/DCE/LICM/barrier elimination) mirror the
pre-existing Polygeist/MLIR optimizations the paper builds on (§III); the
paper's own contributions live in :mod:`unroll_interleave` (nested parallel
loop unroll-and-interleave, §IV), :mod:`coarsen` (thread and block
coarsening, §V), and :mod:`alternatives` (compile-time multi-versioning,
§VI).
"""

from .alternatives import (AlternativeInfo, PlannedAlternatives,
                           generate_coarsening_alternatives,
                           plan_coarsening_alternatives, select_alternative)
from .barrier_elim import BarrierElimination
from .canonicalize import Canonicalize
from .coarsen import (CoarsenError, CoarsenResult, balance_factors,
                      block_coarsen, coarsen_wrapper, thread_coarsen)
from .cse import CSE
from .dce import DCE
from .licm import LICM
from .load_elim import RedundantLoadElimination
from .outline import outline_gpu_wrappers
from .pipeline import cleanup_regions, default_cleanup_pipeline, run_cleanup
from .unroll_interleave import IllegalUnroll, check_unroll_legality, \
    unroll_and_interleave

__all__ = [
    "AlternativeInfo", "BarrierElimination", "CSE", "Canonicalize",
    "CoarsenError", "CoarsenResult", "DCE", "IllegalUnroll", "LICM",
    "balance_factors", "block_coarsen", "check_unroll_legality",
    "cleanup_regions", "coarsen_wrapper", "default_cleanup_pipeline",
    "generate_coarsening_alternatives", "outline_gpu_wrappers",
    "PlannedAlternatives", "plan_coarsening_alternatives",
    "RedundantLoadElimination",
    "run_cleanup", "select_alternative", "thread_coarsen",
    "unroll_and_interleave",
]
