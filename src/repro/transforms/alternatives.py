"""Alternative code paths: compile-time multi-versioning (§VI, Fig. 12).

Each coarsening configuration is applied to its own clone of the kernel's
parallel nest; the clones become regions of one ``polygeist.alternatives``
op. Later pipeline stages prune regions (shared-memory limits, register
spills) and finally TDO selects exactly one, which
:func:`select_alternative` splices back in place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..dialects import polygeist
from ..ir import Operation, Region
from .coarsen import CoarsenError, CoarsenResult, coarsen_wrapper


@dataclass
class AlternativeInfo:
    """Metadata about one generated alternative region."""

    index: int
    desc: str
    config: Dict[str, object]
    result: CoarsenResult


@dataclass
class AlternativesReport:
    """Outcome of alternative generation: what was built, what was illegal."""

    op: Optional[Operation]
    alternatives: List[AlternativeInfo] = field(default_factory=list)
    rejected: List[str] = field(default_factory=list)
    #: structured twin of ``rejected``: (config, reason) pairs
    rejected_configs: List[tuple] = field(default_factory=list)


def generate_coarsening_alternatives(
        wrapper: Operation,
        configs: Sequence[Dict[str, object]]) -> AlternativesReport:
    """Replace a gpu_wrapper's body with a ``polygeist.alternatives`` op
    holding one coarsened clone per config.

    Each config is a kwargs dict for
    :func:`~repro.transforms.coarsen.coarsen_wrapper` (e.g.
    ``{"block_total": 4, "thread_total": 2}``). Configs whose coarsening is
    illegal are recorded in ``rejected`` and skipped.
    """
    if wrapper.name != polygeist.GPU_WRAPPER:
        raise ValueError("expected a polygeist.gpu_wrapper")
    report = AlternativesReport(op=None)
    regions: List[Region] = []
    descs: List[str] = []
    for config in configs:
        clone = wrapper.clone({})
        try:
            result = coarsen_wrapper(clone, **config)
        except CoarsenError as error:
            report.rejected.append("%r: %s" % (config, error))
            report.rejected_configs.append((dict(config), str(error)))
            continue
        desc = result.describe()
        region = clone.region(0)
        regions.append(region)
        report.alternatives.append(
            AlternativeInfo(len(regions) - 1, desc, dict(config), result))
        descs.append(desc)
    if not regions:
        return report
    alt = Operation(polygeist.ALTERNATIVES, [], [],
                    {polygeist.DESCS_ATTR: descs}, regions)
    body = wrapper.body_block()
    # erase the original nest (in reverse, so defs outlive their uses)
    for op in reversed(list(body.ops)):
        op.erase()
    body.append(alt)
    report.op = alt
    return report


def prune_alternatives(alt: Operation, keep: Sequence[int]) -> None:
    """Drop all regions except those at the given indices (order kept)."""
    keep_set = sorted(set(keep))
    if not keep_set:
        raise ValueError("cannot prune every alternative")
    descs = polygeist.alternative_descs(alt)
    alt.regions = [alt.regions[i] for i in keep_set]
    for region in alt.regions:
        region.parent = alt
    alt.attributes[polygeist.DESCS_ATTR] = [descs[i] for i in keep_set]


def select_alternative(alt: Operation, index: int) -> None:
    """Replace the alternatives op with the contents of region ``index``."""
    if not 0 <= index < len(alt.regions):
        raise IndexError("alternative %d out of range" % index)
    chosen = alt.body_block(index)
    parent = alt.parent
    position = parent.index_of(alt)
    moved = list(chosen.ops)
    for op in moved:
        op.parent = None
    chosen.ops = []
    for offset, op in enumerate(moved):
        parent.insert(position + offset, op)
    alt.erase()


def find_alternatives(root: Operation) -> List[Operation]:
    return root.ops_matching(polygeist.ALTERNATIVES)
