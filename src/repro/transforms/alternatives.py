"""Alternative code paths: compile-time multi-versioning (§VI, Fig. 12).

Each coarsening configuration is applied to its own clone of the kernel's
parallel nest; the clones become regions of one ``polygeist.alternatives``
op. Later pipeline stages prune regions (shared-memory limits, register
spills) and finally TDO selects exactly one, which
:func:`select_alternative` splices back in place.

Generation is two-phase so its cost scales with *survivors*, not
candidates: :func:`plan_coarsening_alternatives` legality-checks every
config and predicts its post-coarsening shared-memory footprint without
cloning anything, and :meth:`PlannedAlternatives.materialize` builds full
IR clones only for the configs that survive the early filters. The
one-shot :func:`generate_coarsening_alternatives` (plan + materialize
everything) is kept for callers that need all regions, e.g. profiling and
differential validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis import shared_allocas
from ..dialects import polygeist
from ..ir import Operation, Region
from .coarsen import (CoarsenError, CoarsenResult, block_parallels,
                      coarsen_wrapper, plan_coarsening, thread_parallel)


@dataclass
class AlternativeInfo:
    """Metadata about one generated (or planned) alternative region."""

    index: int
    desc: str
    config: Dict[str, object]
    result: CoarsenResult
    #: predicted static shared memory per block after coarsening, in bytes
    shared_bytes: int = 0


@dataclass
class AlternativesReport:
    """Outcome of alternative generation: what was built, what was illegal."""

    op: Optional[Operation]
    alternatives: List[AlternativeInfo] = field(default_factory=list)
    rejected: List[str] = field(default_factory=list)
    #: structured twin of ``rejected``: (config, reason) pairs
    rejected_configs: List[tuple] = field(default_factory=list)


def _shared_alloca_split(main: Operation) -> Tuple[int, int]:
    """Static shared bytes under the main block loop, split into
    (outside the thread loop, inside the thread loop).

    Block coarsening replicates *everything* under the block loop, thread
    coarsening only the thread loop's body — and only the first thread
    loop, which is exactly the one :func:`thread_parallel` resolves.
    """
    total = sum(op.result().type.size_bytes()
                for op in shared_allocas(main))
    try:
        threads = thread_parallel(main)
    except CoarsenError:
        return total, 0
    inside = sum(op.result().type.size_bytes()
                 for op in shared_allocas(threads))
    return total - inside, inside


@dataclass
class PlannedAlternatives:
    """Legality-checked coarsening candidates, not yet materialized."""

    wrapper: Operation
    alternatives: List[AlternativeInfo] = field(default_factory=list)
    rejected: List[str] = field(default_factory=list)
    rejected_configs: List[tuple] = field(default_factory=list)
    #: wrapper clones built so far (one per materialized alternative)
    clones_materialized: int = 0
    _consumed: bool = field(default=False, repr=False)

    def materialize(self, indices: Iterable[int]) -> Operation:
        """Build the alternatives op holding exactly ``indices``' regions.

        Clones and coarsens one region per index (in the given order),
        replaces the wrapper's body with the resulting
        ``polygeist.alternatives`` op, and returns it. One-shot: the
        wrapper body is consumed.
        """
        if self._consumed:
            raise ValueError("alternatives were already materialized")
        self._consumed = True
        wrapper = self.wrapper
        regions: List[Region] = []
        descs: List[str] = []
        for index in indices:
            info = self.alternatives[index]
            clone = wrapper.clone({})
            self.clones_materialized += 1
            result = coarsen_wrapper(clone, **info.config)
            if result.describe() != info.desc:
                raise AssertionError(
                    "coarsening plan promised %s but materialization "
                    "produced %s" % (info.desc, result.describe()))
            info.result = result
            regions.append(clone.region(0))
            descs.append(info.desc)
        alt = Operation(polygeist.ALTERNATIVES, [], [],
                        {polygeist.DESCS_ATTR: descs}, regions)
        body = wrapper.body_block()
        # erase the original nest (in reverse, so defs outlive their uses)
        for op in reversed(list(body.ops)):
            op.erase()
        body.append(alt)
        return alt


def plan_coarsening_alternatives(
        wrapper: Operation,
        configs: Sequence[Dict[str, object]]) -> PlannedAlternatives:
    """Legality-check every config against ``wrapper`` without cloning.

    Produces the same legal/illegal partition, descriptions, and
    rejection messages as eager generation, plus a per-survivor
    shared-memory prediction for the early pruning filter. The wrapper is
    left untouched until :meth:`PlannedAlternatives.materialize`.
    """
    if wrapper.name != polygeist.GPU_WRAPPER:
        raise ValueError("expected a polygeist.gpu_wrapper")
    planned = PlannedAlternatives(wrapper)
    layout: Optional[Tuple[int, int]] = None
    for config in configs:
        try:
            result = plan_coarsening(wrapper, **config)
        except CoarsenError as error:
            planned.rejected.append("%r: %s" % (config, error))
            planned.rejected_configs.append((dict(config), str(error)))
            continue
        if layout is None:
            # a legal plan implies exactly one main block loop
            layout = _shared_alloca_split(
                block_parallels(wrapper, include_epilogues=False)[0])
        outside, inside = layout
        usage = result.total_block * (outside +
                                      result.total_thread * inside)
        planned.alternatives.append(
            AlternativeInfo(len(planned.alternatives), result.describe(),
                            dict(config), result, shared_bytes=usage))
    return planned


def generate_coarsening_alternatives(
        wrapper: Operation,
        configs: Sequence[Dict[str, object]]) -> AlternativesReport:
    """Replace a gpu_wrapper's body with a ``polygeist.alternatives`` op
    holding one coarsened clone per config.

    Each config is a kwargs dict for
    :func:`~repro.transforms.coarsen.coarsen_wrapper` (e.g.
    ``{"block_total": 4, "thread_total": 2}``). Configs whose coarsening is
    illegal are recorded in ``rejected`` and skipped.
    """
    planned = plan_coarsening_alternatives(wrapper, configs)
    report = AlternativesReport(op=None, rejected=planned.rejected,
                                rejected_configs=planned.rejected_configs)
    if not planned.alternatives:
        return report
    report.op = planned.materialize(range(len(planned.alternatives)))
    report.alternatives = planned.alternatives
    return report


def prune_alternatives(alt: Operation, keep: Sequence[int]) -> None:
    """Drop all regions except those at the given indices (order kept)."""
    keep_set = sorted(set(keep))
    if not keep_set:
        raise ValueError("cannot prune every alternative")
    descs = polygeist.alternative_descs(alt)
    alt.regions = [alt.regions[i] for i in keep_set]
    for region in alt.regions:
        region.parent = alt
    alt.attributes[polygeist.DESCS_ATTR] = [descs[i] for i in keep_set]


def select_alternative(alt: Operation, index: int) -> None:
    """Replace the alternatives op with the contents of region ``index``."""
    if not 0 <= index < len(alt.regions):
        raise IndexError("alternative %d out of range" % index)
    chosen = alt.body_block(index)
    parent = alt.parent
    position = parent.index_of(alt)
    moved = list(chosen.ops)
    for op in moved:
        op.parent = None
    chosen.ops = []
    for offset, op in enumerate(moved):
        parent.insert(position + offset, op)
    alt.erase()


def find_alternatives(root: Operation) -> List[Operation]:
    return root.ops_matching(polygeist.ALTERNATIVES)
